//! Columnar predicate scans: compare a typed value plane against a constant
//! and emit `u64` bitmap words directly.
//!
//! The scan semantics replicate the workspace's `Value` comparison rules
//! exactly — IEEE equality with NaN-matches-NaN for `Eq`/`Ne`/`InSet`, the
//! `f64::total_cmp` total order for `Lt`/`Le`/`Gt`/`Ge` (implemented on the
//! sign-flipped integer key, which SIMD integer compares evaluate exactly),
//! and plain IEEE range compares for `Between`. Because every row's bit is
//! an exact boolean function of its value, the AVX2 / AVX-512 paths are
//! bit-identical to the scalar twin by construction; the equivalence suites
//! pin that.
//!
//! Vector kernels fill whole 64-row words (sixteen 4-lane or eight 8-lane
//! compares per word); any tail shorter than 64 rows runs the scalar
//! evaluator on every tier, so word counts and slack bits match the scalar
//! twin exactly: every scan returns `ceil(n / 64)` words with slack bits
//! zero.

use crate::dispatch::{self, Isa};

/// Comparison operator of a [`NumericScan::Cmp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// IEEE equality, except NaN matches NaN.
    Eq,
    /// Complement of [`CmpOp::Eq`].
    Ne,
    /// Strictly less in the `f64::total_cmp` order.
    Lt,
    /// Less or equal in the `f64::total_cmp` order.
    Le,
    /// Strictly greater in the `f64::total_cmp` order.
    Gt,
    /// Greater or equal in the `f64::total_cmp` order.
    Ge,
}

/// A predicate over a numeric plane, lowered from the query layer's
/// `Predicate` with the constant already widened to `f64`.
#[derive(Clone, Debug)]
pub enum NumericScan {
    /// Compare every row against one constant.
    Cmp {
        /// The comparison to apply.
        op: CmpOp,
        /// The right-hand constant.
        constant: f64,
    },
    /// Half-open range `low <= x < high` under plain IEEE compares (NaN
    /// never matches).
    Between {
        /// Inclusive lower bound.
        low: f64,
        /// Exclusive upper bound.
        high: f64,
    },
    /// Membership: any value equal under the [`CmpOp::Eq`] rules.
    InSet {
        /// The member constants.
        values: Vec<f64>,
    },
    /// Every row gets the same bit — the lowering of predicates whose
    /// constant makes the row value irrelevant (e.g. a string constant
    /// compared against a numeric plane).
    Const {
        /// The bit every row receives.
        matches: bool,
    },
}

/// The sign-flipped integer key that maps `f64::total_cmp` onto a signed
/// 64-bit integer compare (the same transform `std` uses internally).
#[inline(always)]
fn total_key(x: f64) -> i64 {
    let b = x.to_bits() as i64;
    b ^ (((b >> 63) as u64) >> 1) as i64
}

/// The scan lowered to one primitive compare the kernels implement
/// directly.
enum Prim {
    Const(bool),
    /// IEEE `x == c`, `c` non-NaN.
    Eq(f64),
    /// IEEE `x != c`, `c` non-NaN (true for NaN rows).
    Ne(f64),
    IsNan,
    NotNan,
    KeyLt(i64),
    KeyLe(i64),
    KeyGt(i64),
    KeyGe(i64),
    /// `x >= low && x < high`, plain IEEE.
    Range {
        low: f64,
        high: f64,
    },
    /// Any IEEE equality against the non-NaN members; `has_nan` adds
    /// NaN-rows-match.
    AnyEq {
        values: Vec<f64>,
        has_nan: bool,
    },
}

fn lower(scan: &NumericScan) -> Prim {
    match scan {
        NumericScan::Cmp { op, constant: c } => match op {
            CmpOp::Eq if c.is_nan() => Prim::IsNan,
            CmpOp::Eq => Prim::Eq(*c),
            CmpOp::Ne if c.is_nan() => Prim::NotNan,
            CmpOp::Ne => Prim::Ne(*c),
            CmpOp::Lt => Prim::KeyLt(total_key(*c)),
            CmpOp::Le => Prim::KeyLe(total_key(*c)),
            CmpOp::Gt => Prim::KeyGt(total_key(*c)),
            CmpOp::Ge => Prim::KeyGe(total_key(*c)),
        },
        NumericScan::Between { low, high } => Prim::Range {
            low: *low,
            high: *high,
        },
        NumericScan::InSet { values } => Prim::AnyEq {
            has_nan: values.iter().any(|v| v.is_nan()),
            values: values.iter().copied().filter(|v| !v.is_nan()).collect(),
        },
        NumericScan::Const { matches } => Prim::Const(*matches),
    }
}

/// Scalar evaluation of one row — the pinned reference the vector kernels
/// must match bit-for-bit.
#[inline(always)]
fn eval(prim: &Prim, x: f64) -> bool {
    match prim {
        Prim::Const(b) => *b,
        Prim::Eq(c) => x == *c,
        Prim::Ne(c) => x != *c,
        Prim::IsNan => x.is_nan(),
        Prim::NotNan => !x.is_nan(),
        Prim::KeyLt(k) => total_key(x) < *k,
        Prim::KeyLe(k) => total_key(x) <= *k,
        Prim::KeyGt(k) => total_key(x) > *k,
        Prim::KeyGe(k) => total_key(x) >= *k,
        Prim::Range { low, high } => x >= *low && x < *high,
        Prim::AnyEq { values, has_nan } => (*has_nan && x.is_nan()) || values.contains(&x),
    }
}

/// One bitmap word from up to 64 rows, scalar tier.
fn word_scalar(chunk: &[f64], prim: &Prim) -> u64 {
    let mut word = 0u64;
    for (i, &x) in chunk.iter().enumerate() {
        word |= (eval(prim, x) as u64) << i;
    }
    word
}

/// One bitmap word from exactly 64 rows, AVX2 tier (sixteen 4-lane
/// compares).
///
/// # Safety
/// Requires AVX2 and 64 readable f64s at `ptr`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn word64_avx2(ptr: *const f64, prim: &Prim) -> u64 {
    use std::arch::x86_64::*;
    let mut word = 0u64;
    macro_rules! sweep {
        (|$v:ident| $mask:expr) => {
            for i in 0..16 {
                let $v = _mm256_loadu_pd(ptr.add(i * 4));
                let m = $mask;
                word |= ((_mm256_movemask_pd(m) as u64) & 0xF) << (i * 4);
            }
        };
    }
    // Integer total-order key: flip the payload bits of negatives so a
    // signed compare realises `f64::total_cmp`. AVX2 has no 64-bit
    // arithmetic shift, so the sign fill comes from a compare-less-than-
    // zero instead.
    macro_rules! key {
        ($v:ident, $zero:ident, $payload:ident) => {{
            let b = _mm256_castpd_si256($v);
            let neg = _mm256_cmpgt_epi64($zero, b);
            _mm256_xor_si256(b, _mm256_and_si256(neg, $payload))
        }};
    }
    match prim {
        Prim::Const(b) => {
            if *b {
                word = !0u64;
            }
        }
        Prim::Eq(c) => {
            let cv = _mm256_set1_pd(*c);
            sweep!(|v| _mm256_cmp_pd::<_CMP_EQ_OQ>(v, cv));
        }
        Prim::Ne(c) => {
            let cv = _mm256_set1_pd(*c);
            sweep!(|v| _mm256_cmp_pd::<_CMP_NEQ_UQ>(v, cv));
        }
        Prim::IsNan => {
            sweep!(|v| _mm256_cmp_pd::<_CMP_UNORD_Q>(v, v));
        }
        Prim::NotNan => {
            sweep!(|v| _mm256_cmp_pd::<_CMP_ORD_Q>(v, v));
        }
        Prim::KeyLt(k) => {
            let kv = _mm256_set1_epi64x(*k);
            let zero = _mm256_setzero_si256();
            let payload = _mm256_set1_epi64x(0x7FFF_FFFF_FFFF_FFFF);
            sweep!(|v| {
                let key = key!(v, zero, payload);
                _mm256_castsi256_pd(_mm256_cmpgt_epi64(kv, key))
            });
        }
        Prim::KeyLe(k) => {
            let kv = _mm256_set1_epi64x(*k);
            let zero = _mm256_setzero_si256();
            let payload = _mm256_set1_epi64x(0x7FFF_FFFF_FFFF_FFFF);
            let ones = _mm256_set1_epi64x(-1);
            sweep!(|v| {
                let key = key!(v, zero, payload);
                // le = !(key > k)
                _mm256_castsi256_pd(_mm256_xor_si256(_mm256_cmpgt_epi64(key, kv), ones))
            });
        }
        Prim::KeyGt(k) => {
            let kv = _mm256_set1_epi64x(*k);
            let zero = _mm256_setzero_si256();
            let payload = _mm256_set1_epi64x(0x7FFF_FFFF_FFFF_FFFF);
            sweep!(|v| {
                let key = key!(v, zero, payload);
                _mm256_castsi256_pd(_mm256_cmpgt_epi64(key, kv))
            });
        }
        Prim::KeyGe(k) => {
            let kv = _mm256_set1_epi64x(*k);
            let zero = _mm256_setzero_si256();
            let payload = _mm256_set1_epi64x(0x7FFF_FFFF_FFFF_FFFF);
            let ones = _mm256_set1_epi64x(-1);
            sweep!(|v| {
                let key = key!(v, zero, payload);
                // ge = !(k > key)
                _mm256_castsi256_pd(_mm256_xor_si256(_mm256_cmpgt_epi64(kv, key), ones))
            });
        }
        Prim::Range { low, high } => {
            let lo = _mm256_set1_pd(*low);
            let hi = _mm256_set1_pd(*high);
            sweep!(|v| _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_GE_OQ>(v, lo),
                _mm256_cmp_pd::<_CMP_LT_OQ>(v, hi)
            ));
        }
        Prim::AnyEq { values, has_nan } => {
            sweep!(|v| {
                let mut m = if *has_nan {
                    _mm256_cmp_pd::<_CMP_UNORD_Q>(v, v)
                } else {
                    _mm256_setzero_pd()
                };
                for &c in values {
                    m = _mm256_or_pd(m, _mm256_cmp_pd::<_CMP_EQ_OQ>(v, _mm256_set1_pd(c)));
                }
                m
            });
        }
    }
    word
}

/// One bitmap word from exactly 64 rows, AVX-512F tier (eight 8-lane
/// compares).
///
/// # Safety
/// Requires AVX-512F and 64 readable f64s at `ptr`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn word64_avx512(ptr: *const f64, prim: &Prim) -> u64 {
    use std::arch::x86_64::*;
    let mut word = 0u64;
    macro_rules! sweep {
        (|$v:ident| $mask:expr) => {
            for i in 0..8 {
                let $v = _mm512_loadu_pd(ptr.add(i * 8));
                let m: __mmask8 = $mask;
                word |= (m as u64) << (i * 8);
            }
        };
    }
    // AVX-512 has the 64-bit arithmetic shift, so the total-order key is the
    // textbook `b ^ ((b >> 63) >>> 1)`.
    macro_rules! key {
        ($v:ident) => {{
            let b = _mm512_castpd_si512($v);
            _mm512_xor_si512(b, _mm512_srli_epi64::<1>(_mm512_srai_epi64::<63>(b)))
        }};
    }
    match prim {
        Prim::Const(b) => {
            if *b {
                word = !0u64;
            }
        }
        Prim::Eq(c) => {
            let cv = _mm512_set1_pd(*c);
            sweep!(|v| _mm512_cmp_pd_mask::<_CMP_EQ_OQ>(v, cv));
        }
        Prim::Ne(c) => {
            let cv = _mm512_set1_pd(*c);
            sweep!(|v| _mm512_cmp_pd_mask::<_CMP_NEQ_UQ>(v, cv));
        }
        Prim::IsNan => {
            sweep!(|v| _mm512_cmp_pd_mask::<_CMP_UNORD_Q>(v, v));
        }
        Prim::NotNan => {
            sweep!(|v| _mm512_cmp_pd_mask::<_CMP_ORD_Q>(v, v));
        }
        Prim::KeyLt(k) => {
            let kv = _mm512_set1_epi64(*k);
            sweep!(|v| _mm512_cmp_epi64_mask::<_MM_CMPINT_LT>(key!(v), kv));
        }
        Prim::KeyLe(k) => {
            let kv = _mm512_set1_epi64(*k);
            sweep!(|v| _mm512_cmp_epi64_mask::<_MM_CMPINT_LE>(key!(v), kv));
        }
        Prim::KeyGt(k) => {
            let kv = _mm512_set1_epi64(*k);
            sweep!(|v| _mm512_cmp_epi64_mask::<_MM_CMPINT_NLE>(key!(v), kv));
        }
        Prim::KeyGe(k) => {
            let kv = _mm512_set1_epi64(*k);
            sweep!(|v| _mm512_cmp_epi64_mask::<_MM_CMPINT_NLT>(key!(v), kv));
        }
        Prim::Range { low, high } => {
            let lo = _mm512_set1_pd(*low);
            let hi = _mm512_set1_pd(*high);
            sweep!(|v| _mm512_cmp_pd_mask::<_CMP_GE_OQ>(v, lo)
                & _mm512_cmp_pd_mask::<_CMP_LT_OQ>(v, hi));
        }
        Prim::AnyEq { values, has_nan } => {
            sweep!(|v| {
                let mut m: __mmask8 = if *has_nan {
                    _mm512_cmp_pd_mask::<_CMP_UNORD_Q>(v, v)
                } else {
                    0
                };
                for &c in values {
                    m |= _mm512_cmp_pd_mask::<_CMP_EQ_OQ>(v, _mm512_set1_pd(c));
                }
                m
            });
        }
    }
    word
}

/// All-ones bitmap words for `n` rows, slack bits zeroed.
fn ones_words(n: usize) -> Vec<u64> {
    let mut words = vec![!0u64; n.div_ceil(64)];
    mask_tail(&mut words, n);
    words
}

fn mask_tail(words: &mut [u64], n: usize) {
    if !n.is_multiple_of(64) {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << (n % 64)) - 1;
        }
    }
}

fn scan_prim_f64(isa: Isa, values: &[f64], prim: &Prim) -> Vec<u64> {
    let n = values.len();
    if let Prim::Const(b) = prim {
        return if *b {
            ones_words(n)
        } else {
            vec![0u64; n.div_ceil(64)]
        };
    }
    let isa = if isa.available() { isa } else { Isa::Scalar };
    let mut words = vec![0u64; n.div_ceil(64)];
    let full = n / 64;
    #[cfg(target_arch = "x86_64")]
    let simd_done = match isa {
        Isa::Avx2Fma => {
            for (w, word) in words.iter_mut().enumerate().take(full) {
                *word = unsafe { word64_avx2(values.as_ptr().add(w * 64), prim) };
            }
            full
        }
        Isa::Avx512 => {
            for (w, word) in words.iter_mut().enumerate().take(full) {
                *word = unsafe { word64_avx512(values.as_ptr().add(w * 64), prim) };
            }
            full
        }
        Isa::Scalar => 0,
    };
    #[cfg(not(target_arch = "x86_64"))]
    let simd_done = 0;
    for (w, word) in words.iter_mut().enumerate().skip(simd_done) {
        *word = word_scalar(&values[w * 64..n.min(w * 64 + 64)], prim);
    }
    words
}

/// Scan an `f64` plane with the best available tier. Returns `ceil(n / 64)`
/// bitmap words, slack bits zero.
pub fn scan_f64(values: &[f64], scan: &NumericScan) -> Vec<u64> {
    scan_f64_with_isa(dispatch::detect(), values, scan)
}

/// [`scan_f64`] pinned to a specific tier (downgraded to scalar if the CPU
/// cannot run it) — the entry point equivalence tests compare through.
pub fn scan_f64_with_isa(isa: Isa, values: &[f64], scan: &NumericScan) -> Vec<u64> {
    scan_prim_f64(isa, values, &lower(scan))
}

/// [`scan_f64`] with the result ANDed against validity words (same word
/// count), clearing rows whose stored value is a null sentinel.
pub fn scan_f64_masked(values: &[f64], scan: &NumericScan, validity: &[u64]) -> Vec<u64> {
    let mut words = scan_f64(values, scan);
    apply_mask(&mut words, validity);
    words
}

/// Scan an `i64` plane: each 64-row chunk is widened to `f64` on the stack
/// (the same `x as f64` rounding the row-at-a-time reference applies) and
/// run through the `f64` kernels.
pub fn scan_i64(values: &[i64], scan: &NumericScan) -> Vec<u64> {
    scan_i64_with_isa(dispatch::detect(), values, scan)
}

/// [`scan_i64`] pinned to a specific tier.
pub fn scan_i64_with_isa(isa: Isa, values: &[i64], scan: &NumericScan) -> Vec<u64> {
    let n = values.len();
    let prim = lower(scan);
    if let Prim::Const(b) = &prim {
        return if *b {
            ones_words(n)
        } else {
            vec![0u64; n.div_ceil(64)]
        };
    }
    let isa = if isa.available() { isa } else { Isa::Scalar };
    let mut words = vec![0u64; n.div_ceil(64)];
    let mut buf = [0.0f64; 64];
    for (word, chunk) in words.iter_mut().zip(values.chunks(64)) {
        for (slot, &x) in buf.iter_mut().zip(chunk) {
            *slot = x as f64;
        }
        *word = match isa {
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2Fma if chunk.len() == 64 => unsafe { word64_avx2(buf.as_ptr(), &prim) },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 if chunk.len() == 64 => unsafe { word64_avx512(buf.as_ptr(), &prim) },
            _ => word_scalar(&buf[..chunk.len()], &prim),
        };
    }
    words
}

/// [`scan_i64`] with the result ANDed against validity words.
pub fn scan_i64_masked(values: &[i64], scan: &NumericScan, validity: &[u64]) -> Vec<u64> {
    let mut words = scan_i64(values, scan);
    apply_mask(&mut words, validity);
    words
}

/// Scan a `bool` plane given the predicate's precomputed outcome for each
/// of the two possible values (exact for every predicate kind, since a bool
/// plane only ever holds two distinct values).
pub fn scan_bools(values: &[bool], match_true: bool, match_false: bool) -> Vec<u64> {
    let n = values.len();
    match (match_true, match_false) {
        (true, true) => ones_words(n),
        (false, false) => vec![0u64; n.div_ceil(64)],
        _ => {
            // Exactly one of the two values matches.
            let mut words = vec![0u64; n.div_ceil(64)];
            for (word, chunk) in words.iter_mut().zip(values.chunks(64)) {
                let mut w = 0u64;
                for (i, &b) in chunk.iter().enumerate() {
                    w |= ((b == match_true) as u64) << i;
                }
                *word = w;
            }
            words
        }
    }
}

/// [`scan_bools`] with the result ANDed against validity words.
pub fn scan_bools_masked(
    values: &[bool],
    match_true: bool,
    match_false: bool,
    validity: &[u64],
) -> Vec<u64> {
    let mut words = scan_bools(values, match_true, match_false);
    apply_mask(&mut words, validity);
    words
}

/// Scan a dictionary-code plane given a per-dictionary-value match table
/// (`table[code]` = does the predicate match that dictionary string).
///
/// Fast paths: an all-false or all-true table short-circuits to constant
/// words; a single matching (or single non-matching) dictionary value
/// becomes a SIMD code-equality scan (complemented in the latter case);
/// anything else falls back to a scalar table lookup per row. Codes outside
/// the table (possible in null sentinel slots) never match — callers AND
/// with validity via [`scan_codes_masked`].
pub fn scan_codes(codes: &[u32], table: &[bool]) -> Vec<u64> {
    scan_codes_with_isa(dispatch::detect(), codes, table)
}

/// [`scan_codes`] pinned to a specific tier.
pub fn scan_codes_with_isa(isa: Isa, codes: &[u32], table: &[bool]) -> Vec<u64> {
    let n = codes.len();
    let trues = table.iter().filter(|&&b| b).count();
    if trues == 0 {
        return vec![0u64; n.div_ceil(64)];
    }
    if trues == table.len() {
        return ones_words(n);
    }
    if trues == 1 {
        let target = table.iter().position(|&b| b).unwrap() as u32;
        return scan_code_eq(isa, codes, target);
    }
    if trues + 1 == table.len() {
        let target = table.iter().position(|&b| !b).unwrap() as u32;
        let mut words = scan_code_eq(isa, codes, target);
        for w in words.iter_mut() {
            *w = !*w;
        }
        mask_tail(&mut words, n);
        return words;
    }
    let mut words = vec![0u64; n.div_ceil(64)];
    for (word, chunk) in words.iter_mut().zip(codes.chunks(64)) {
        let mut w = 0u64;
        for (i, &code) in chunk.iter().enumerate() {
            let hit = table.get(code as usize).copied().unwrap_or(false);
            w |= (hit as u64) << i;
        }
        *word = w;
    }
    words
}

/// [`scan_codes`] with the result ANDed against validity words.
pub fn scan_codes_masked(codes: &[u32], table: &[bool], validity: &[u64]) -> Vec<u64> {
    let mut words = scan_codes(codes, table);
    apply_mask(&mut words, validity);
    words
}

fn scan_code_eq(isa: Isa, codes: &[u32], target: u32) -> Vec<u64> {
    let isa = if isa.available() { isa } else { Isa::Scalar };
    let n = codes.len();
    let mut words = vec![0u64; n.div_ceil(64)];
    let full = n / 64;
    #[cfg(target_arch = "x86_64")]
    let simd_done = match isa {
        Isa::Avx2Fma => {
            for (w, word) in words.iter_mut().enumerate().take(full) {
                *word = unsafe { word64_codes_eq_avx2(codes.as_ptr().add(w * 64), target) };
            }
            full
        }
        Isa::Avx512 => {
            for (w, word) in words.iter_mut().enumerate().take(full) {
                *word = unsafe { word64_codes_eq_avx512(codes.as_ptr().add(w * 64), target) };
            }
            full
        }
        Isa::Scalar => 0,
    };
    #[cfg(not(target_arch = "x86_64"))]
    let simd_done = 0;
    for (w, word) in words.iter_mut().enumerate().skip(simd_done) {
        let chunk = &codes[w * 64..n.min(w * 64 + 64)];
        let mut bits = 0u64;
        for (i, &code) in chunk.iter().enumerate() {
            bits |= ((code == target) as u64) << i;
        }
        *word = bits;
    }
    words
}

/// # Safety
/// Requires AVX2 and 64 readable u32s at `ptr`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn word64_codes_eq_avx2(ptr: *const u32, target: u32) -> u64 {
    use std::arch::x86_64::*;
    let cv = _mm256_set1_epi32(target as i32);
    let mut word = 0u64;
    for i in 0..8 {
        let v = _mm256_loadu_si256(ptr.add(i * 8) as *const __m256i);
        let m = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, cv)));
        word |= ((m as u64) & 0xFF) << (i * 8);
    }
    word
}

/// # Safety
/// Requires AVX-512F and 64 readable u32s at `ptr`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn word64_codes_eq_avx512(ptr: *const u32, target: u32) -> u64 {
    use std::arch::x86_64::*;
    let cv = _mm512_set1_epi32(target as i32);
    let mut word = 0u64;
    for i in 0..4 {
        let v = _mm512_loadu_si512(ptr.add(i * 16) as *const _);
        let m: __mmask16 = _mm512_cmpeq_epi32_mask(v, cv);
        word |= (m as u64) << (i * 16);
    }
    word
}

fn apply_mask(words: &mut [u64], validity: &[u64]) {
    debug_assert_eq!(words.len(), validity.len());
    for (w, v) in words.iter_mut().zip(validity) {
        *w &= v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    /// Independent row-at-a-time reference mirroring the query layer's
    /// `Value` comparison semantics.
    fn ref_bit(scan: &NumericScan, x: f64) -> bool {
        match scan {
            NumericScan::Cmp { op, constant } => {
                let ord = x.total_cmp(constant);
                let loose = x == *constant || (x.is_nan() && constant.is_nan());
                match op {
                    CmpOp::Eq => loose,
                    CmpOp::Ne => !loose,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                }
            }
            NumericScan::Between { low, high } => x >= *low && x < *high,
            NumericScan::InSet { values } => {
                values.iter().any(|&v| x == v || (x.is_nan() && v.is_nan()))
            }
            NumericScan::Const { matches } => *matches,
        }
    }

    fn ref_words(scan: &NumericScan, values: &[f64]) -> Vec<u64> {
        let mut words = vec![0u64; values.len().div_ceil(64)];
        for (i, &x) in values.iter().enumerate() {
            if ref_bit(scan, x) {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        words
    }

    fn adversarial_plane(len: usize) -> Vec<f64> {
        let specials = [
            f64::NAN,
            -f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            f64::MIN_POSITIVE / 2.0,  // subnormal
            -f64::MIN_POSITIVE / 2.0, // negative subnormal
            1.0,
            -1.0,
            2.5,
            -2.5,
            1e300,
            -1e300,
        ];
        let mut state = 0x5EEDu64;
        (0..len)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if i % 3 == 0 {
                    specials[(state >> 33) as usize % specials.len()]
                } else {
                    ((state >> 16) as i64 as f64) / 1e7 - 1.0
                }
            })
            .collect()
    }

    fn battery() -> Vec<NumericScan> {
        let mut scans = Vec::new();
        for c in [2.5, 0.0, -0.0, f64::NAN, f64::INFINITY, -1.0, 1e300] {
            for op in [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ] {
                scans.push(NumericScan::Cmp { op, constant: c });
            }
        }
        scans.push(NumericScan::Between {
            low: -1.0,
            high: 2.5,
        });
        scans.push(NumericScan::Between {
            low: f64::NEG_INFINITY,
            high: 0.0,
        });
        scans.push(NumericScan::InSet {
            values: vec![2.5, -0.0, f64::NAN],
        });
        scans.push(NumericScan::InSet { values: vec![] });
        scans.push(NumericScan::Const { matches: true });
        scans.push(NumericScan::Const { matches: false });
        scans
    }

    fn available_isas() -> Vec<Isa> {
        [Isa::Avx512, Isa::Avx2Fma, Isa::Scalar]
            .into_iter()
            .filter(|isa| isa.available())
            .collect()
    }

    #[test]
    fn every_tier_matches_the_reference_on_adversarial_f64() {
        for len in [0usize, 1, 63, 64, 65, 130, 256] {
            let plane = adversarial_plane(len);
            for scan in battery() {
                let expected = ref_words(&scan, &plane);
                for isa in available_isas() {
                    let got = scan_f64_with_isa(isa, &plane, &scan);
                    assert_eq!(got, expected, "isa {isa:?} len {len} scan {scan:?}");
                }
            }
        }
    }

    #[test]
    fn i64_scan_matches_widened_reference() {
        let values: Vec<i64> = [
            0i64,
            1,
            -1,
            i64::MAX,
            i64::MIN,
            1 << 53,
            (1 << 53) + 1, // rounds when widened — reference must agree
            42,
            -42,
        ]
        .into_iter()
        .cycle()
        .take(130)
        .collect();
        let widened: Vec<f64> = values.iter().map(|&x| x as f64).collect();
        for scan in battery() {
            let expected = ref_words(&scan, &widened);
            for isa in available_isas() {
                let got = scan_i64_with_isa(isa, &values, &scan);
                assert_eq!(got, expected, "isa {isa:?} scan {scan:?}");
            }
        }
    }

    #[test]
    fn masked_variants_clear_invalid_rows() {
        let plane = adversarial_plane(100);
        let mut validity = vec![!0u64; 2];
        validity[0] &= !0b1010; // rows 1 and 3 invalid
        validity[1] &= (1u64 << 36) - 1;
        let scan = NumericScan::Cmp {
            op: CmpOp::Ne,
            constant: 123.0,
        };
        let masked = scan_f64_masked(&plane, &scan, &validity);
        let unmasked = scan_f64(&plane, &scan);
        for (i, (m, u)) in masked.iter().zip(unmasked.iter()).enumerate() {
            assert_eq!(*m, u & validity[i]);
        }
    }

    #[test]
    fn bool_scan_covers_all_four_outcome_pairs() {
        let values: Vec<bool> = (0..70).map(|i| i % 3 == 0).collect();
        for (mt, mf) in [(false, false), (true, false), (false, true), (true, true)] {
            let words = scan_bools(&values, mt, mf);
            assert_eq!(words.len(), 2);
            for (i, &b) in values.iter().enumerate() {
                let expected = if b { mt } else { mf };
                assert_eq!(
                    words[i / 64] >> (i % 64) & 1,
                    expected as u64,
                    "mt {mt} mf {mf} row {i}"
                );
            }
            // Slack bits stay zero.
            assert_eq!(words[1] >> (70 - 64), 0);
        }
    }

    #[test]
    fn code_scan_fast_paths_match_the_table_lookup() {
        let dict_len = 5usize;
        let mut state = 77u64;
        let codes: Vec<u32> = (0..200)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % dict_len as u64) as u32
            })
            .collect();
        // Tables exercising each fast path plus the general case.
        let tables: Vec<Vec<bool>> = vec![
            vec![false; dict_len],
            vec![true; dict_len],
            (0..dict_len).map(|i| i == 2).collect(),
            (0..dict_len).map(|i| i != 2).collect(),
            (0..dict_len).map(|i| i % 2 == 0).collect(),
        ];
        for table in &tables {
            let mut expected = vec![0u64; codes.len().div_ceil(64)];
            for (i, &c) in codes.iter().enumerate() {
                if table[c as usize] {
                    expected[i / 64] |= 1u64 << (i % 64);
                }
            }
            for isa in available_isas() {
                let got = scan_codes_with_isa(isa, &codes, table);
                assert_eq!(got, expected, "isa {isa:?} table {table:?}");
            }
        }
    }

    #[test]
    fn total_key_realises_total_cmp() {
        let xs = adversarial_plane(64);
        for &a in &xs {
            for &b in &xs {
                assert_eq!(total_key(a).cmp(&total_key(b)), a.total_cmp(&b));
            }
        }
    }
}
