//! Dequantizing accumulators for compact embedding storage: add an f16- or
//! i8-encoded embedding row into an f32 accumulator in one pass.
//!
//! `subtab-embed` can store a trained embedding matrix as IEEE half floats
//! (16 bits per weight) or as signed bytes with one f32 scale per row
//! (8 bits per weight plus 4 bytes per row). The hot path over that storage
//! is the cell-vector gather — sum a handful of matrix rows into a scratch
//! accumulator, then divide — so the kernel surface is exactly that
//! accumulation step, fused with the decode.
//!
//! # Bit-compatibility contract
//!
//! Both kernels are elementwise: lane `i` of the output depends only on
//! `dst[i]` and `src[i]`. The f16 decode is exact (every half float is
//! representable as an f32), and the i8 path rounds the product before the
//! add on every tier (multiply then add, never a fused multiply-add), so the
//! vector tiers are bit-identical to the pinned scalar twins by
//! construction. The equivalence tests below pin that across tiers.
//!
//! The half-float codecs themselves ([`f16_to_f32`], [`f32_to_f16`]) are
//! plain bit manipulation with round-to-nearest-even, exhaustively
//! round-trip tested over all 65 536 half patterns.

use crate::dispatch::{self, Isa};

/// Decode one IEEE 754 binary16 value to f32. Exact for every input,
/// including subnormals, infinities and NaN (payload preserved, quiet bit
/// set).
#[inline(always)]
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x03ff) as u32;
    f32::from_bits(match (exp, man) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal half: value = m * 2^-24 with m in 1..=0x3ff.
            // Normalise the most significant bit of m into the implicit bit.
            let p = 31 - m.leading_zeros(); // MSB position, 0..=9
            let e = p + 103; // (p - 24) + 127
            sign | (e << 23) | ((m << (23 - p)) & 0x007f_ffff)
        }
        (31, 0) => sign | 0x7f80_0000,
        (31, m) => sign | 0x7fc0_0000 | (m << 13),
        (e, m) => sign | ((e + 112) << 23) | (m << 13),
    })
}

/// Encode an f32 as IEEE 754 binary16 with round-to-nearest-even.
///
/// Values above the half range become infinity; values below the smallest
/// subnormal half round to (signed) zero; NaN stays NaN with the payload
/// truncated and the quiet bit set.
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        return if man == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00 | ((man >> 13) as u16 & 0x03ff)
        };
    }
    let unbiased = exp - 127;
    if unbiased >= 16 {
        return sign | 0x7c00;
    }
    if unbiased >= -14 {
        // Normal half: drop 13 mantissa bits with round-to-nearest-even.
        let mut m = man >> 13;
        let rest = man & 0x1fff;
        if rest > 0x1000 || (rest == 0x1000 && m & 1 == 1) {
            m += 1;
        }
        let mut e = (unbiased + 15) as u32;
        if m == 0x400 {
            m = 0;
            e += 1;
            if e >= 31 {
                return sign | 0x7c00;
            }
        }
        return sign | ((e as u16) << 10) | m as u16;
    }
    if unbiased >= -25 {
        // Subnormal half: shift the full significand (implicit bit included)
        // right, rounding to nearest-even. A carry out of the top reaches
        // the smallest normal half, whose bit pattern is still `m`.
        let full = man | 0x0080_0000;
        let shift = (13 - 14 - unbiased) as u32;
        let mut m = full >> shift;
        let rest = full & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        if rest > half || (rest == half && m & 1 == 1) {
            m += 1;
        }
        return sign | m as u16;
    }
    sign
}

/// Pinned scalar twin of [`add_assign_f16`]: `dst[i] += decode(src[i])`.
pub fn add_assign_f16_scalar(dst: &mut [f32], src: &[u16]) {
    assert_eq!(dst.len(), src.len(), "dst/src length mismatch");
    for (d, &h) in dst.iter_mut().zip(src) {
        *d += f16_to_f32(h);
    }
}

/// Pinned scalar twin of [`add_assign_i8`]: `dst[i] += codes[i] * scale`,
/// with the product rounded before the add (no fused multiply-add).
pub fn add_assign_i8_scalar(dst: &mut [f32], codes: &[i8], scale: f32) {
    assert_eq!(dst.len(), codes.len(), "dst/codes length mismatch");
    for (d, &c) in dst.iter_mut().zip(codes) {
        *d += c as f32 * scale;
    }
}

/// Add a half-float row into an f32 accumulator, dispatching on the best
/// available ISA tier (honours `SUBTAB_FORCE_SCALAR_KERNELS`).
pub fn add_assign_f16(dst: &mut [f32], src: &[u16]) {
    add_assign_f16_with_isa(dispatch::detect(), dst, src)
}

/// [`add_assign_f16`] with an explicit ISA tier, for equivalence tests.
///
/// The vector tiers additionally require the `f16c` CPU flag (present on
/// every AVX2 part this workspace targets) and fall back to the scalar twin
/// without it — the result is bit-identical either way.
pub fn add_assign_f16_with_isa(isa: Isa, dst: &mut [f32], src: &[u16]) {
    assert_eq!(dst.len(), src.len(), "dst/src length mismatch");
    match isa {
        Isa::Scalar => add_assign_f16_scalar(dst, src),
        Isa::Avx2Fma | Isa::Avx512 => {
            #[cfg(target_arch = "x86_64")]
            if is_x86_feature_detected!("avx") && is_x86_feature_detected!("f16c") {
                // SAFETY: `avx` and `f16c` were just detected.
                unsafe { add_assign_f16_f16c(dst, src) };
                return;
            }
            add_assign_f16_scalar(dst, src)
        }
    }
}

/// Add a scaled i8 row into an f32 accumulator, dispatching on the best
/// available ISA tier (honours `SUBTAB_FORCE_SCALAR_KERNELS`).
pub fn add_assign_i8(dst: &mut [f32], codes: &[i8], scale: f32) {
    add_assign_i8_with_isa(dispatch::detect(), dst, codes, scale)
}

/// [`add_assign_i8`] with an explicit ISA tier, for equivalence tests.
pub fn add_assign_i8_with_isa(isa: Isa, dst: &mut [f32], codes: &[i8], scale: f32) {
    assert_eq!(dst.len(), codes.len(), "dst/codes length mismatch");
    match isa {
        Isa::Scalar => add_assign_i8_scalar(dst, codes, scale),
        Isa::Avx2Fma | Isa::Avx512 => {
            #[cfg(target_arch = "x86_64")]
            if Isa::Avx2Fma.available() {
                // SAFETY: the AVX2 tier was just confirmed available.
                unsafe { add_assign_i8_avx2(dst, codes, scale) };
                return;
            }
            add_assign_i8_scalar(dst, codes, scale)
        }
    }
}

/// Eight halves decoded per iteration via `vcvtph2ps` (exact, same bits as
/// the scalar decode) plus one vector add; the tail runs the scalar twin.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx,f16c")]
unsafe fn add_assign_f16_f16c(dst: &mut [f32], src: &[u16]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let mut i = 0;
    while i + 8 <= n {
        let h = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
        let v = _mm256_cvtph_ps(h);
        let d = _mm256_loadu_ps(dst.as_ptr().add(i));
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, v));
        i += 8;
    }
    for k in i..n {
        dst[k] += f16_to_f32(src[k]);
    }
}

/// Eight codes sign-extended and converted per iteration; multiply and add
/// stay separate instructions so the rounding sequence matches the scalar
/// twin exactly.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_assign_i8_avx2(dst: &mut [f32], codes: &[i8], scale: f32) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let s = _mm256_set1_ps(scale);
    let mut i = 0;
    while i + 8 <= n {
        let c = _mm_loadl_epi64(codes.as_ptr().add(i) as *const __m128i);
        let w = _mm256_cvtepi8_epi32(c);
        let v = _mm256_cvtepi32_ps(w);
        let d = _mm256_loadu_ps(dst.as_ptr().add(i));
        _mm256_storeu_ps(
            dst.as_mut_ptr().add(i),
            _mm256_add_ps(d, _mm256_mul_ps(v, s)),
        );
        i += 8;
    }
    for k in i..n {
        dst[k] += codes[k] as f32 * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trip_is_exhaustively_exact() {
        for h in 0..=u16::MAX {
            let f = f16_to_f32(h);
            let back = f32_to_f16(f);
            if f.is_nan() {
                // NaN encodes back to *a* NaN with the same sign/payload.
                assert_eq!(back & 0x7c00, 0x7c00);
                assert_ne!(back & 0x03ff, 0);
            } else {
                assert_eq!(
                    back, h,
                    "half 0x{h:04x} decoded to {f} re-encoded to 0x{back:04x}"
                );
            }
        }
    }

    #[test]
    fn f16_encode_known_values() {
        assert_eq!(f32_to_f16(0.0), 0x0000);
        assert_eq!(f32_to_f16(-0.0), 0x8000);
        assert_eq!(f32_to_f16(1.0), 0x3c00);
        assert_eq!(f32_to_f16(0.5), 0x3800);
        assert_eq!(f32_to_f16(-2.0), 0xc000);
        assert_eq!(f32_to_f16(65504.0), 0x7bff); // largest finite half
        assert_eq!(f32_to_f16(65520.0), 0x7c00); // rounds to +inf
        assert_eq!(f32_to_f16(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f32_to_f16(5.960_464_5e-8), 0x0001); // smallest subnormal
        assert_eq!(f32_to_f16(1.0e-10), 0x0000); // underflows to zero
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
    }

    #[test]
    fn f16_encode_rounds_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 0x3c00 and 0x3c01 -> even.
        let halfway_low = 1.0f32 + (2.0f32).powi(-11);
        assert_eq!(f32_to_f16(halfway_low), 0x3c00);
        // 1 + 3 * 2^-11 is halfway between 0x3c01 and 0x3c02 -> even (0x3c02).
        let halfway_high = 1.0f32 + 3.0 * (2.0f32).powi(-11);
        assert_eq!(f32_to_f16(halfway_high), 0x3c02);
        // Just above the low halfway point rounds up.
        assert_eq!(
            f32_to_f16(1.0f32 + (2.0f32).powi(-11) + (2.0f32).powi(-20)),
            0x3c01
        );
    }

    fn lcg_f32(state: &mut u64) -> f32 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((*state >> 33) as i32) as f32) * 1.0e-8
    }

    #[test]
    fn f16_add_assign_tiers_are_bit_identical() {
        let mut state = 7u64;
        for n in [0usize, 1, 7, 8, 9, 31, 32, 64, 67] {
            let src: Vec<u16> = (0..n).map(|_| f32_to_f16(lcg_f32(&mut state))).collect();
            let base: Vec<f32> = (0..n).map(|_| lcg_f32(&mut state)).collect();
            let mut want = base.clone();
            add_assign_f16_scalar(&mut want, &src);
            for isa in [Isa::Avx2Fma, Isa::Avx512] {
                let mut got = base.clone();
                add_assign_f16_with_isa(isa, &mut got, &src);
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "n={n} isa={isa:?}");
                }
            }
        }
    }

    #[test]
    fn i8_add_assign_tiers_are_bit_identical() {
        let mut state = 11u64;
        for n in [0usize, 1, 7, 8, 9, 31, 32, 64, 67] {
            let codes: Vec<i8> = (0..n)
                .map(|_| ((lcg_f32(&mut state) * 1.0e10) as i64 % 128) as i8)
                .collect();
            let base: Vec<f32> = (0..n).map(|_| lcg_f32(&mut state)).collect();
            let scale = 0.0123f32;
            let mut want = base.clone();
            add_assign_i8_scalar(&mut want, &codes, scale);
            for isa in [Isa::Avx2Fma, Isa::Avx512] {
                let mut got = base.clone();
                add_assign_i8_with_isa(isa, &mut got, &codes, scale);
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "n={n} isa={isa:?}");
                }
            }
        }
    }

    #[test]
    fn forced_scalar_pins_default_dispatch() {
        // Whatever tier `detect()` lands on, the default entry points must
        // match the scalar twin bit-for-bit (the contract CI relies on when
        // it re-runs the suite under SUBTAB_FORCE_SCALAR_KERNELS).
        let src: Vec<u16> = (0..37).map(|i| f32_to_f16(i as f32 * 0.37 - 5.0)).collect();
        let codes: Vec<i8> = (0..37).map(|i| (i * 7 % 255 - 127) as i8).collect();
        let base: Vec<f32> = (0..37).map(|i| i as f32 * 0.01).collect();

        let mut want = base.clone();
        add_assign_f16_scalar(&mut want, &src);
        let mut got = base.clone();
        add_assign_f16(&mut got, &src);
        assert_eq!(
            want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );

        let mut want = base.clone();
        add_assign_i8_scalar(&mut want, &codes, 0.05);
        let mut got = base;
        add_assign_i8(&mut got, &codes, 0.05);
        assert_eq!(
            want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}
