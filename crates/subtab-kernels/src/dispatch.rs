//! Runtime ISA detection shared by every SIMD kernel in the workspace.
//!
//! Detection is cached and honours the `SUBTAB_FORCE_SCALAR_KERNELS`
//! environment variable (any non-empty value other than `0` pins every
//! default dispatch to the scalar tier). Explicit `*_with_isa` kernel entry
//! points ignore the override so equivalence tests can still compare tiers.

use std::sync::OnceLock;

/// Instruction-set tier a kernel can dispatch to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    /// AVX-512F: 16 f32 / 8 f64 lanes.
    Avx512,
    /// AVX2 + FMA: 8 f32 / 4 f64 lanes.
    Avx2Fma,
    /// Portable scalar fallback; always available.
    Scalar,
}

impl Isa {
    /// Raw CPU capability for this tier, ignoring the scalar override.
    ///
    /// Explicit-ISA kernel constructors use this to downgrade a requested
    /// tier the hardware cannot run, while still letting equivalence tests
    /// compare tiers on machines where `SUBTAB_FORCE_SCALAR_KERNELS` has
    /// pinned the *default* dispatch.
    pub fn available(self) -> bool {
        match self {
            Isa::Avx512 => cpu_has_avx512f(),
            Isa::Avx2Fma => cpu_has_avx2_fma(),
            Isa::Scalar => true,
        }
    }
}

/// True when `SUBTAB_FORCE_SCALAR_KERNELS` pins dispatch to the scalar tier.
///
/// Read once per process: flipping the variable after the first kernel call
/// has no effect, which keeps dispatch stable for the lifetime of a run.
pub fn force_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("SUBTAB_FORCE_SCALAR_KERNELS")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// True when the AVX-512F tier is usable (CPU support and no scalar override).
pub fn has_avx512f() -> bool {
    !force_scalar() && cpu_has_avx512f()
}

/// True when the AVX2+FMA tier is usable (CPU support and no scalar override).
pub fn has_avx2_fma() -> bool {
    !force_scalar() && cpu_has_avx2_fma()
}

/// Pick the best available tier, honouring the scalar override.
pub fn detect() -> Isa {
    if has_avx512f() {
        Isa::Avx512
    } else if has_avx2_fma() {
        Isa::Avx2Fma
    } else {
        Isa::Scalar
    }
}

#[cfg(target_arch = "x86_64")]
fn cpu_has_avx512f() -> bool {
    is_x86_feature_detected!("avx512f")
}

#[cfg(not(target_arch = "x86_64"))]
fn cpu_has_avx512f() -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
fn cpu_has_avx2_fma() -> bool {
    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn cpu_has_avx2_fma() -> bool {
    false
}

/// Multiply-add with a compile-time choice between the fused contraction and
/// the two-rounding `a * b + c` sequence.
///
/// `FUSED = false` is the bit-compatibility twin: it rounds the product
/// before the add exactly like the scalar reference loops, so deterministic
/// kernels must use it. `FUSED = true` maps to a hardware FMA where
/// available and is reserved for paths that have opted out of determinism.
#[inline(always)]
pub fn fma_select<const FUSED: bool>(a: f32, b: f32, c: f32) -> f32 {
    if FUSED {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_consistent_with_tier_helpers() {
        let isa = detect();
        match isa {
            Isa::Avx512 => assert!(has_avx512f()),
            Isa::Avx2Fma => assert!(has_avx2_fma() && !has_avx512f()),
            Isa::Scalar => assert!(!has_avx512f() && !has_avx2_fma()),
        }
    }

    #[test]
    fn forced_scalar_env_pins_detection() {
        // The override is latched on first use, so this test can only assert
        // the env-consistent direction rather than toggling it mid-process.
        if std::env::var("SUBTAB_FORCE_SCALAR_KERNELS")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
        {
            assert_eq!(detect(), Isa::Scalar);
            assert!(!has_avx512f());
            assert!(!has_avx2_fma());
        }
    }

    #[test]
    fn unfused_fma_matches_separate_rounding() {
        let cases = [
            (1.0e-7f32, 3.0e7, -3.0),
            (0.1, 0.2, 0.3),
            (f32::MAX, 2.0, f32::MIN),
            (-0.0, 5.0, 0.0),
        ];
        for (a, b, c) in cases {
            assert_eq!(
                fma_select::<false>(a, b, c).to_bits(),
                (a * b + c).to_bits()
            );
        }
    }
}
