//! Squared-euclidean distance and the lane-parallel argmin centroid scan.
//!
//! [`nearest_centroid_scalar`] is the pinned scalar twin: a 4-way blocked
//! scan with one independent accumulator per centroid, each accumulating its
//! squared differences in element order (no reassociation). [`CentroidScan`]
//! is the SIMD counterpart — it vectorises *across centroids* (one lane per
//! centroid) with the same per-lane operation sequence, so the deterministic
//! AVX2 and AVX-512 paths are bit-identical to the scalar twin.

use crate::dispatch::{self, Isa};

/// Squared Euclidean distance between two equal-length vectors.
///
/// Panics in debug builds if the lengths differ (callers always compare
/// vectors produced by the same pipeline, so this indicates a logic error).
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two equal-length vectors.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    squared_euclidean(a, b).sqrt()
}

/// Nearest centroid of `point` over a flat `k × dim` centroid buffer
/// (candidates scanned in centroid order, first strict improvement wins —
/// ties keep the earlier centroid).
///
/// Centroids are processed four at a time with one independent accumulator
/// per centroid: each distance still accumulates its squared differences in
/// element order exactly like [`squared_euclidean`] (no reassociation), and
/// the best-so-far comparisons run in centroid order, so the result is
/// bit-identical to a one-centroid-at-a-time scan — the blocking only lets
/// the CPU overlap the four serial addition chains instead of waiting out
/// one chain's latency per candidate.
pub fn nearest_centroid_scalar(point: &[f32], centroids: &[f32], dim: usize) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    let mut update = |c: usize, d: f32| {
        if d < best_d {
            best_d = d;
            best = c;
        }
    };
    let mut blocks = centroids.chunks_exact(dim * 4);
    let mut c = 0usize;
    for block in &mut blocks {
        let (c0, rest) = block.split_at(dim);
        let (c1, rest) = rest.split_at(dim);
        let (c2, c3) = rest.split_at(dim);
        let (mut d0, mut d1, mut d2, mut d3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for ((((&x, y0), y1), y2), y3) in point.iter().zip(c0).zip(c1).zip(c2).zip(c3) {
            let e0 = x - y0;
            d0 += e0 * e0;
            let e1 = x - y1;
            d1 += e1 * e1;
            let e2 = x - y2;
            d2 += e2 * e2;
            let e3 = x - y3;
            d3 += e3 * e3;
        }
        update(c, d0);
        update(c + 1, d1);
        update(c + 2, d2);
        update(c + 3, d3);
        c += 4;
    }
    for centroid in blocks.remainder().chunks_exact(dim) {
        update(c, squared_euclidean(point, centroid));
        c += 1;
    }
    (best, best_d)
}

/// A prepared argmin scan over a fixed centroid set.
///
/// Construction re-packs the `k × dim` centroid buffer into a
/// lane-interleaved layout for the selected ISA tier (lane = centroid), so
/// the per-point [`nearest`](CentroidScan::nearest) call is a straight run
/// of wide loads. The deterministic kernels accumulate with separate
/// subtract / multiply / add instructions per lane — the exact operation
/// sequence of [`nearest_centroid_scalar`] — and resolve the argmin in
/// centroid order with a strict `<`, so they are bit-identical to the
/// scalar twin. Passing `deterministic = false` switches the accumulate to
/// a hardware fused multiply-add, which skips the intermediate rounding and
/// may pick a different (still valid) nearest centroid under exact ties of
/// the rounded sums.
pub struct CentroidScan {
    k: usize,
    dim: usize,
    isa: Isa,
    fused: bool,
    /// Scalar tier: the flat `k × dim` buffer. Vector tiers: blocks of
    /// `lanes` centroids, element-major within a block
    /// (`data[block][d][lane]`), zero-padded to a whole block.
    data: Vec<f32>,
}

impl CentroidScan {
    /// Prepare a scan with the best available tier (honouring the
    /// `SUBTAB_FORCE_SCALAR_KERNELS` override).
    pub fn new(centroids: &[f32], dim: usize, deterministic: bool) -> Self {
        Self::with_isa(dispatch::detect(), centroids, dim, deterministic)
    }

    /// Prepare a scan pinned to a specific tier (for equivalence tests); a
    /// tier the CPU cannot run is downgraded to scalar.
    pub fn with_isa(isa: Isa, centroids: &[f32], dim: usize, deterministic: bool) -> Self {
        let dim = dim.max(1);
        debug_assert_eq!(centroids.len() % dim, 0);
        let k = centroids.len() / dim;
        let isa = if isa.available() { isa } else { Isa::Scalar };
        let data = match isa {
            Isa::Scalar => centroids.to_vec(),
            Isa::Avx2Fma => interleave(centroids, k, dim, 8),
            Isa::Avx512 => interleave(centroids, k, dim, 16),
        };
        CentroidScan {
            k,
            dim,
            isa,
            fused: !deterministic,
            data,
        }
    }

    /// The tier this scan actually runs on.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// Number of centroids in the scan.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Index and squared distance of the nearest centroid to `point`
    /// (`point.len()` must equal `dim`). Returns `(0, f32::INFINITY)` for an
    /// empty centroid set, like the scalar twin.
    pub fn nearest(&self, point: &[f32]) -> (usize, f32) {
        debug_assert_eq!(point.len(), self.dim);
        if self.k == 0 {
            return (0, f32::INFINITY);
        }
        match self.isa {
            Isa::Scalar => nearest_centroid_scalar(point, &self.data, self.dim),
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2Fma => unsafe {
                if self.fused {
                    self.nearest_avx2::<true>(point)
                } else {
                    self.nearest_avx2::<false>(point)
                }
            },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => unsafe {
                if self.fused {
                    self.nearest_avx512::<true>(point)
                } else {
                    self.nearest_avx512::<false>(point)
                }
            },
            #[cfg(not(target_arch = "x86_64"))]
            _ => unreachable!("non-scalar ISA constructed on non-x86_64"),
        }
    }

    /// # Safety
    /// Requires AVX2 + FMA (guaranteed by construction: `with_isa` only
    /// selects tiers `Isa::available` confirmed).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn nearest_avx2<const FUSED: bool>(&self, point: &[f32]) -> (usize, f32) {
        use std::arch::x86_64::*;
        const LANES: usize = 8;
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        let mut lane_d = [0.0f32; LANES];
        let mut base = 0usize;
        for block in self.data.chunks_exact(LANES * self.dim) {
            let mut acc = _mm256_setzero_ps();
            for (d, &x) in point.iter().enumerate() {
                let xs = _mm256_set1_ps(x);
                let ys = _mm256_loadu_ps(block.as_ptr().add(d * LANES));
                let e = _mm256_sub_ps(xs, ys);
                if FUSED {
                    acc = _mm256_fmadd_ps(e, e, acc);
                } else {
                    // Separate multiply and add: rounds the product before
                    // accumulating, matching the scalar `d += e * e`.
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(e, e));
                }
            }
            // Lanes that strictly beat the running best (an ordered compare,
            // so NaN lanes never qualify — exactly like the scalar `<`).
            // Most blocks improve on nothing, skipping the lane loop.
            let live = LANES.min(self.k - base);
            let live_bits = if live == LANES {
                0xff
            } else {
                (1i32 << live) - 1
            };
            let lt = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_LT_OQ>(acc, _mm256_set1_ps(best_d)))
                & live_bits;
            if lt != 0 {
                _mm256_storeu_ps(lane_d.as_mut_ptr(), acc);
                let mut m = lt as u32;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    let d = lane_d[l];
                    if d < best_d {
                        best_d = d;
                        best = base + l;
                    }
                    m &= m - 1;
                }
            }
            base += LANES;
        }
        (best, best_d)
    }

    /// # Safety
    /// Requires AVX-512F (guaranteed by construction: `with_isa` only
    /// selects tiers `Isa::available` confirmed).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn nearest_avx512<const FUSED: bool>(&self, point: &[f32]) -> (usize, f32) {
        use std::arch::x86_64::*;
        const LANES: usize = 16;
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        let mut base = 0usize;
        for block in self.data.chunks_exact(LANES * self.dim) {
            let mut acc = _mm512_setzero_ps();
            for (d, &x) in point.iter().enumerate() {
                let xs = _mm512_set1_ps(x);
                let ys = _mm512_loadu_ps(block.as_ptr().add(d * LANES));
                let e = _mm512_sub_ps(xs, ys);
                if FUSED {
                    acc = _mm512_fmadd_ps(e, e, acc);
                } else {
                    acc = _mm512_add_ps(acc, _mm512_mul_ps(e, e));
                }
            }
            // Live lanes that strictly beat the running best (ordered
            // compare, so NaN lanes never qualify — like the scalar `<`).
            // The minimum of those lanes is what an in-order scalar scan of
            // this block would end on, and the first lane equal to it is the
            // index the scalar scan would keep (distances are sums of
            // squares, so `-0.0` can never make the equality ambiguous).
            let live = LANES.min(self.k - base);
            let live_mask: __mmask16 = if live == LANES {
                !0
            } else {
                (1u16 << live) - 1
            };
            let lt = _mm512_mask_cmp_ps_mask::<_CMP_LT_OQ>(live_mask, acc, _mm512_set1_ps(best_d));
            if lt != 0 {
                let block_min = _mm512_mask_reduce_min_ps(lt, acc);
                let eq = _mm512_mask_cmp_ps_mask::<_CMP_EQ_OQ>(lt, acc, _mm512_set1_ps(block_min));
                best_d = block_min;
                best = base + eq.trailing_zeros() as usize;
            }
            base += LANES;
        }
        (best, best_d)
    }
}

/// Re-pack a flat `k × dim` centroid buffer into lane-interleaved blocks:
/// `out[block][d][lane]` holds element `d` of centroid `block * lanes +
/// lane`, zero-padded so every block is full. Padding lanes never reach the
/// argmin (the update loop stops at `k`), so their distance values are
/// irrelevant.
fn interleave(centroids: &[f32], k: usize, dim: usize, lanes: usize) -> Vec<f32> {
    let mut data = vec![0.0f32; k.div_ceil(lanes) * lanes * dim];
    for (c, row) in centroids.chunks_exact(dim).enumerate() {
        let block = &mut data[(c / lanes) * lanes * dim..];
        let lane = c % lanes;
        for (d, &v) in row.iter().enumerate() {
            block[d * lanes + lane] = v;
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn rand_f32(state: &mut u64) -> f32 {
        // Uniform-ish in [-4, 4) with plenty of low-bit entropy.
        ((splitmix(state) >> 40) as f32 / (1u64 << 24) as f32) * 8.0 - 4.0
    }

    fn rand_vec(state: &mut u64, len: usize) -> Vec<f32> {
        (0..len).map(|_| rand_f32(state)).collect()
    }

    #[test]
    fn known_distances() {
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [1.5, -2.0, 0.25];
        let b = [0.0, 4.0, 1.0];
        assert_eq!(squared_euclidean(&a, &b), squared_euclidean(&b, &a));
    }

    #[test]
    fn scalar_scan_matches_naive_reference() {
        let mut state = 7u64;
        for dim in [1usize, 3, 7, 16, 33] {
            for k in [1usize, 2, 4, 5, 9] {
                let centroids = rand_vec(&mut state, k * dim);
                let point = rand_vec(&mut state, dim);
                let (best, best_d) = nearest_centroid_scalar(&point, &centroids, dim);
                let mut ref_best = 0usize;
                let mut ref_d = f32::INFINITY;
                for (c, cen) in centroids.chunks_exact(dim).enumerate() {
                    let d = squared_euclidean(&point, cen);
                    if d < ref_d {
                        ref_d = d;
                        ref_best = c;
                    }
                }
                assert_eq!(best, ref_best);
                assert_eq!(best_d.to_bits(), ref_d.to_bits());
            }
        }
    }

    #[test]
    fn deterministic_simd_tiers_are_bit_identical_to_scalar() {
        let mut state = 42u64;
        for dim in [1usize, 2, 8, 13, 16, 32, 64] {
            // k values straddling both vector widths and their remainders.
            for k in [1usize, 3, 7, 8, 9, 15, 16, 17, 31, 40] {
                let centroids = rand_vec(&mut state, k * dim);
                let scans: Vec<CentroidScan> = [Isa::Avx512, Isa::Avx2Fma, Isa::Scalar]
                    .into_iter()
                    .filter(|isa| isa.available())
                    .map(|isa| CentroidScan::with_isa(isa, &centroids, dim, true))
                    .collect();
                for _ in 0..8 {
                    let point = rand_vec(&mut state, dim);
                    let (ref_best, ref_d) = nearest_centroid_scalar(&point, &centroids, dim);
                    for scan in &scans {
                        let (best, best_d) = scan.nearest(&point);
                        assert_eq!(best, ref_best, "isa {:?} dim {dim} k {k}", scan.isa());
                        assert_eq!(
                            best_d.to_bits(),
                            ref_d.to_bits(),
                            "isa {:?} dim {dim} k {k}",
                            scan.isa()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ties_keep_the_earlier_centroid_on_every_tier() {
        // Duplicate centroids in every lane position of a 2-block scan.
        let dim = 4usize;
        let proto = [1.0f32, -2.0, 0.5, 3.0];
        let k = 20usize;
        let centroids: Vec<f32> = (0..k).flat_map(|_| proto).collect();
        let point = [0.0f32, 0.0, 0.0, 0.0];
        for isa in [Isa::Avx512, Isa::Avx2Fma, Isa::Scalar] {
            if !isa.available() {
                continue;
            }
            let scan = CentroidScan::with_isa(isa, &centroids, dim, true);
            assert_eq!(scan.nearest(&point).0, 0, "isa {isa:?}");
        }
    }

    #[test]
    fn empty_centroid_set_matches_scalar_twin() {
        let scan = CentroidScan::new(&[], 3, true);
        let (best, best_d) = scan.nearest(&[0.0, 0.0, 0.0]);
        assert_eq!(best, 0);
        assert_eq!(best_d, f32::INFINITY);
    }

    #[test]
    fn fused_variant_agrees_on_separated_data() {
        // With well-separated centroids the fused rounding difference cannot
        // flip the argmin; sanity-check the non-deterministic path.
        let dim = 16usize;
        let mut state = 99u64;
        let centroids: Vec<f32> = (0..5)
            .flat_map(|c| {
                let base = c as f32 * 100.0;
                (0..dim)
                    .map(|_| base + rand_f32(&mut state))
                    .collect::<Vec<_>>()
            })
            .collect();
        let scan = CentroidScan::new(&centroids, dim, false);
        for target in 0..5 {
            let point: Vec<f32> = (0..dim).map(|_| target as f32 * 100.0).collect();
            assert_eq!(scan.nearest(&point).0, target);
        }
    }
}
