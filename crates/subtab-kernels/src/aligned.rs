//! Cache-line-aligned scratch buffers for the wide-load kernels.

/// A 64-byte-aligned f32 buffer the fast paths work in: rows of the common
/// dimensionalities then start on cache-line boundaries, so the wide loads
/// and stores of the kernels never straddle two lines (straddling defeats
/// store-to-load forwarding on hot, frequently re-visited rows). Contents
/// are copied in from and back out to the caller's plain vectors around the
/// kernel run.
pub struct AlignedBuf {
    raw: Vec<f32>,
    offset: usize,
    len: usize,
}

impl AlignedBuf {
    /// A zero-filled buffer of `len` f32s starting on a 64-byte boundary.
    pub fn zeroed(len: usize) -> Self {
        let raw = vec![0.0f32; len + 16];
        // `Vec<f32>` data is at least 4-byte aligned, so the misalignment is
        // a whole number of f32 slots.
        let misalign = (raw.as_ptr() as usize % 64) / 4;
        let offset = (16 - misalign) % 16;
        AlignedBuf { raw, offset, len }
    }

    /// An aligned copy of `src`.
    pub fn from_slice(src: &[f32]) -> Self {
        let mut buf = AlignedBuf::zeroed(src.len());
        buf.as_mut_slice().copy_from_slice(src);
        buf
    }

    /// The aligned payload.
    pub fn as_slice(&self) -> &[f32] {
        &self.raw[self.offset..self.offset + self.len]
    }

    /// The aligned payload, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        let (offset, len) = (self.offset, self.len);
        &mut self.raw[offset..offset + len]
    }

    /// Copy the payload back out to `dst` (lengths must match).
    pub fn copy_back(&self, dst: &mut [f32]) {
        dst.copy_from_slice(self.as_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_cache_line_aligned_and_round_trips() {
        for len in [0usize, 1, 7, 16, 64, 129] {
            let src: Vec<f32> = (0..len).map(|i| i as f32 * 0.5 - 3.0).collect();
            let buf = AlignedBuf::from_slice(&src);
            assert_eq!(buf.as_slice().as_ptr() as usize % 64, 0);
            assert_eq!(buf.as_slice(), &src[..]);
            let mut out = vec![0.0f32; len];
            buf.copy_back(&mut out);
            assert_eq!(out, src);
        }
    }
}
