//! Shared SIMD kernel layer: runtime-dispatched vector kernels with pinned
//! scalar twins.
//!
//! Every hot inner loop of the workspace that benefits from SIMD lives here:
//! squared-euclidean distance with a lane-parallel argmin centroid scan (the
//! k-means assignment step in `subtab-cluster`), and columnar predicate
//! scans that compare a typed value plane against a constant and emit `u64`
//! bitmap words directly (the compiled query leaves in `subtab-core`). The
//! feature-detection and FMA helpers that used to be trapped inside
//! `subtab-embed`'s SGNS trainer are exported from [`dispatch`] so every
//! consumer shares one dispatch story.
//!
//! # Dispatch tiers
//!
//! Kernels pick an ISA tier at runtime — AVX-512F, AVX2+FMA, or the
//! portable scalar fallback — via [`dispatch::detect`]. Setting the
//! environment variable `SUBTAB_FORCE_SCALAR_KERNELS` (to anything but `0`
//! or the empty string) before the first kernel call pins every default
//! dispatch to the scalar tier, which is how CI exercises both sides of the
//! equivalence suites on machines regardless of their CPU flags. Explicit
//! `*_with_isa` entry points bypass the default dispatch so tests can
//! compare tiers directly.
//!
//! # Bit-compatibility contract
//!
//! The vector kernels are *bit-identical* to their scalar twins, not merely
//! close:
//!
//! - Predicate scans are exact boolean functions of each row (IEEE compares
//!   plus the sign-flipped integer total-order key for `f64::total_cmp`
//!   semantics), so every tier produces the same words by construction.
//! - The centroid scan vectorises *across centroids* — one SIMD lane per
//!   centroid — and accumulates each lane with separate subtract, multiply
//!   and add instructions in element order: exactly the operation sequence
//!   of the scalar per-centroid loop, with no reassociation and no fused
//!   multiply-add (an FMA skips the intermediate rounding and changes the
//!   low bits). Argmin comparisons run in centroid order with a strict `<`,
//!   so ties keep the earlier centroid on every tier.
//!
//! A *reassociating* fused variant of the centroid scan exists for callers
//! that opt out of determinism (`deterministic = false` in the consumer's
//! config); it is never selected by default.

pub mod aligned;
pub mod dequant;
pub mod dispatch;
pub mod distance;
pub mod scan;

pub use aligned::AlignedBuf;
pub use dequant::{
    add_assign_f16, add_assign_f16_with_isa, add_assign_i8, add_assign_i8_with_isa, f16_to_f32,
    f32_to_f16,
};
pub use dispatch::{detect, fma_select, has_avx2_fma, has_avx512f, Isa};
pub use distance::{euclidean, nearest_centroid_scalar, squared_euclidean, CentroidScan};
pub use scan::{
    scan_bools, scan_bools_masked, scan_codes, scan_codes_masked, scan_codes_with_isa, scan_f64,
    scan_f64_masked, scan_f64_with_isa, scan_i64, scan_i64_masked, scan_i64_with_isa, CmpOp,
    NumericScan,
};
