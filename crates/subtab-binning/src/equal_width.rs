//! Equal-width cut-point computation.

/// Computes `num_bins - 1` interior cut points splitting `[min, max]` into
/// equal-length intervals.
///
/// Returns an empty vector when the data has fewer than two distinct values
/// or when `num_bins < 2` (a single bin needs no cuts).
pub fn equal_width_cuts(values: &[f64], num_bins: usize) -> Vec<f64> {
    if num_bins < 2 || values.is_empty() {
        return Vec::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() || lo == hi {
        return Vec::new();
    }
    let width = (hi - lo) / num_bins as f64;
    (1..num_bins).map(|i| lo + width * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_range_evenly() {
        let vals = vec![0.0, 10.0];
        let cuts = equal_width_cuts(&vals, 5);
        assert_eq!(cuts, vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(equal_width_cuts(&[], 5).is_empty());
        assert!(equal_width_cuts(&[3.0, 3.0, 3.0], 5).is_empty());
        assert!(equal_width_cuts(&[1.0, 2.0], 1).is_empty());
        assert!(equal_width_cuts(&[f64::NAN], 3).is_empty());
    }

    #[test]
    fn ignores_non_finite_values() {
        let vals = vec![0.0, f64::INFINITY, 10.0, f64::NAN];
        let cuts = equal_width_cuts(&vals, 2);
        assert_eq!(cuts, vec![5.0]);
    }
}
