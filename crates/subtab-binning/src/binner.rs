//! Fitting a binning function on a table and applying it to (sub-)tables.

use crate::binned::BinnedTable;
use crate::categorical::group_categories;
use crate::equal_width::equal_width_cuts;
use crate::kde::kde_cuts_with_cutoff;
use crate::quantile::quantile_cuts;
use crate::strategy::{BinId, BinLabel, BinningConfig, BinningError, BinningStrategy};
use crate::Result;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use subtab_data::{Column, ColumnType, Table, Value};

/// How the values of one column are mapped to bins.
#[derive(Debug, Clone, PartialEq)]
enum ColumnKind {
    /// Numeric column split at the given (sorted) cut points.
    Numeric { cuts: Vec<f64> },
    /// Categorical column: explicit category → bin mapping, with an optional
    /// `OTHER` bin for unseen/infrequent categories.
    Categorical {
        lookup: HashMap<String, BinId>,
        other: Option<BinId>,
    },
}

/// The fitted binning of a single column (Definition 3.2: a finite set of
/// bins such that every value belongs to exactly one).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBinner {
    name: String,
    kind: ColumnKind,
    labels: Vec<BinLabel>,
    null_bin: BinId,
}

impl ColumnBinner {
    /// Column name this binner applies to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of bins, including the dedicated null bin.
    pub fn num_bins(&self) -> usize {
        self.labels.len()
    }

    /// Labels of the bins, indexed by [`BinId`].
    pub fn labels(&self) -> &[BinLabel] {
        &self.labels
    }

    /// The bin id reserved for missing values.
    pub fn null_bin(&self) -> BinId {
        self.null_bin
    }

    /// Maps a value of this column to its bin.
    ///
    /// Every value maps to exactly one bin: nulls to the null bin, unseen
    /// categories to the `OTHER` bin if present (or the null bin otherwise —
    /// this only happens when applying a binner to data it was not fitted on),
    /// and numeric values to the interval containing them. Non-finite
    /// numerics (`NaN`, `±inf`) carry no interval information and land in
    /// the null bin — `NaN` in particular fails every cut comparison, so it
    /// would otherwise be silently mistaken for the first interval.
    pub fn bin_value(&self, value: &Value) -> BinId {
        if value.is_null() {
            return self.null_bin;
        }
        match &self.kind {
            ColumnKind::Numeric { cuts } => {
                let Some(x) = value.as_f64() else {
                    return self.null_bin;
                };
                if !x.is_finite() {
                    return self.null_bin;
                }
                bin_of_cuts(cuts, x)
            }
            ColumnKind::Categorical { lookup, other } => {
                let key = value.render();
                match lookup.get(&key) {
                    Some(&b) => b,
                    None => other.unwrap_or(self.null_bin),
                }
            }
        }
    }
}

/// A fitted binning function over a whole table.
///
/// Fit once on the raw input table ([`Binner::fit`]); apply to the table
/// itself or to any query result over it ([`Binner::apply`]) — column lookup
/// is by name, so projections and row subsets bin consistently with the
/// original table. This mirrors the paper's pre-processing phase, where the
/// binning computed at load time is reused for every query result.
#[derive(Debug, Clone)]
pub struct Binner {
    columns: Vec<ColumnBinner>,
    index: HashMap<String, usize>,
    config: BinningConfig,
}

impl Binner {
    /// Fits a binning function on `table` using `config`.
    ///
    /// Columns are fitted independently; with `config.threads != 1` they fan
    /// out across scoped worker threads (`0` = all available cores). The
    /// result is bit-identical at every thread count.
    pub fn fit(table: &Table, config: &BinningConfig) -> Result<Self> {
        if config.num_bins < 1 {
            return Err(BinningError::InvalidConfig(
                "num_bins must be at least 1".into(),
            ));
        }
        if config.max_categories < 1 {
            return Err(BinningError::InvalidConfig(
                "max_categories must be at least 1".into(),
            ));
        }
        if config.kde_cutoff_bandwidths.is_nan() || config.kde_cutoff_bandwidths <= 0.0 {
            return Err(BinningError::InvalidConfig(
                "kde_cutoff_bandwidths must be positive".into(),
            ));
        }
        let cols = table.columns();
        let threads = resolve_threads(config.threads, cols.len());
        let columns = if threads <= 1 {
            cols.iter().map(|c| fit_column(c, config)).collect()
        } else {
            fit_columns_parallel(cols, config, threads)
        };
        let index = columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
        Ok(Binner {
            columns,
            index,
            config: config.clone(),
        })
    }

    /// The configuration this binner was fitted with.
    pub fn config(&self) -> &BinningConfig {
        &self.config
    }

    /// Per-column binners in the order of the fitted table's schema.
    pub fn columns(&self) -> &[ColumnBinner] {
        &self.columns
    }

    /// The binner for a column, by name.
    pub fn column(&self, name: &str) -> Option<&ColumnBinner> {
        self.index.get(name).map(|&i| &self.columns[i])
    }

    /// Maps a single value of the named column to its bin.
    pub fn bin_value(&self, column: &str, value: &Value) -> Result<BinId> {
        let c = self
            .column(column)
            .ok_or_else(|| BinningError::UnknownColumn(column.to_string()))?;
        Ok(c.bin_value(value))
    }

    /// Applies the fitted binning to a table (the original table, a query
    /// result over it, or a sub-table), producing a [`BinnedTable`].
    ///
    /// Every column of `table` must have been present at fit time. Columns
    /// whose storage matches the fitted kind take a columnar fast path —
    /// numeric binners scan the contiguous value plane and read nullness
    /// off the validity bitmap, categorical binners resolve each *distinct*
    /// dictionary entry once and then map the code plane — and fall back to
    /// per-row [`ColumnBinner::bin_value`] otherwise. Both paths are
    /// bit-identical (asserted by the storage-equivalence suite).
    pub fn apply(&self, table: &Table) -> Result<BinnedTable> {
        let mut names = Vec::with_capacity(table.num_columns());
        let mut labels = Vec::with_capacity(table.num_columns());
        let mut codes: Vec<Vec<BinId>> = Vec::with_capacity(table.num_columns());
        for col in table.columns() {
            let binner = self
                .column(col.name())
                .ok_or_else(|| BinningError::UnknownColumn(col.name().to_string()))?;
            names.push(col.name().to_string());
            labels.push(binner.labels.clone());
            codes.push(apply_column(binner, col));
        }
        Ok(BinnedTable::new(names, labels, codes))
    }
}

/// Bins one column, columnar when the storage allows it. Exactly mirrors
/// [`ColumnBinner::bin_value`] on [`Column::get`] for every row.
fn apply_column(binner: &ColumnBinner, col: &Column) -> Vec<BinId> {
    let n = col.len();
    let null_bin = binner.null_bin;
    match &binner.kind {
        ColumnKind::Numeric { cuts } => {
            if let Some(v) = col.numeric_view() {
                // The view widens exactly like `Value::as_f64`, so the
                // finite/cut logic below is `bin_value` verbatim; null slots
                // hold sentinels and are filed by the validity bit instead.
                return v
                    .values
                    .iter()
                    .enumerate()
                    .map(|(r, &x)| {
                        if !v.validity.get(r) || !x.is_finite() {
                            null_bin
                        } else {
                            bin_of_cuts(cuts, x)
                        }
                    })
                    .collect();
            }
        }
        ColumnKind::Categorical { lookup, other } => {
            let unseen = other.unwrap_or(null_bin);
            if let Some(v) = col.code_view() {
                // One lookup per distinct value, then a pure code-plane map.
                let by_code: Vec<BinId> = v
                    .dict
                    .iter()
                    .map(|s| lookup.get(s).copied().unwrap_or(unseen))
                    .collect();
                return v
                    .codes
                    .iter()
                    .enumerate()
                    .map(|(r, &c)| {
                        if v.validity.get(r) {
                            by_code[c as usize]
                        } else {
                            null_bin
                        }
                    })
                    .collect();
            }
            if let Some(v) = col.int_view() {
                // Categorical ints are low-cardinality by construction
                // (`categorical_int_threshold`), so memoising the rendered
                // lookups makes the scan allocation-free per row.
                let mut memo: HashMap<i64, BinId> = HashMap::new();
                return v
                    .values
                    .iter()
                    .enumerate()
                    .map(|(r, &x)| {
                        if v.validity.get(r) {
                            *memo.entry(x).or_insert_with(|| {
                                lookup.get(&x.to_string()).copied().unwrap_or(unseen)
                            })
                        } else {
                            null_bin
                        }
                    })
                    .collect();
            }
            if let Some(v) = col.bool_view() {
                let of = |b: bool| {
                    lookup
                        .get(if b { "true" } else { "false" })
                        .copied()
                        .unwrap_or(unseen)
                };
                let (bin_false, bin_true) = (of(false), of(true));
                return v
                    .values
                    .iter()
                    .enumerate()
                    .map(|(r, &b)| {
                        if v.validity.get(r) {
                            if b {
                                bin_true
                            } else {
                                bin_false
                            }
                        } else {
                            null_bin
                        }
                    })
                    .collect();
            }
        }
    }
    // Kind/storage mismatch (e.g. a numeric binner applied to a string
    // column): the per-row reference path.
    (0..n).map(|r| binner.bin_value(&col.get(r))).collect()
}

/// The interval index of `x` among sorted `cuts` (the `bin_value` cut scan).
fn bin_of_cuts(cuts: &[f64], x: f64) -> BinId {
    let mut idx = 0usize;
    for &c in cuts {
        if x >= c {
            idx += 1;
        } else {
            break;
        }
    }
    idx as BinId
}

/// Resolves a configured thread count: `0` means all available cores, and
/// more workers than columns would only idle.
fn resolve_threads(configured: usize, num_columns: usize) -> usize {
    let threads = match configured {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    };
    threads.min(num_columns.max(1))
}

/// Fits one column by its type (the unit of work the parallel fit fans out).
fn fit_column(col: &Column, config: &BinningConfig) -> ColumnBinner {
    match col.column_type() {
        ColumnType::Str | ColumnType::Bool => fit_categorical(col, config),
        // Integer columns with few distinct values (flags, small codes
        // like CANCELLED or MONTH) are treated as categorical; other
        // numeric columns are binned by the configured strategy. The probe
        // must early-exit at the threshold: a full distinct count over a
        // ~all-distinct timestamp column is quadratic in rows and used to
        // dominate the whole fit at the 100k/1M scale tiers.
        ColumnType::Int => {
            if col
                .distinct_at_most(config.categorical_int_threshold)
                .is_some()
            {
                fit_categorical(col, config)
            } else {
                fit_numeric(col, config)
            }
        }
        ColumnType::Float => fit_numeric(col, config),
    }
}

/// Fans per-column fits out across `threads` scoped workers pulling column
/// indices from a shared queue. Each fitted binner lands in its column's
/// slot, so the output order (and content) matches the sequential fit
/// exactly.
fn fit_columns_parallel(
    cols: &[Column],
    config: &BinningConfig,
    threads: usize,
) -> Vec<ColumnBinner> {
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ColumnBinner>>> = cols.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cols.len() {
                    break;
                }
                let fitted = fit_column(&cols[i], config);
                *slots[i].lock().expect("binner slot lock poisoned") = Some(fitted);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("binner slot lock poisoned")
                .expect("every column index was drained by a worker")
        })
        .collect()
}

fn fit_categorical(col: &subtab_data::Column, config: &BinningConfig) -> ColumnBinner {
    // Category frequencies, rendered exactly like `Value::render` on the
    // row-wise iterator but computed plane-wise: string columns count codes
    // and render each distinct dictionary entry once, low-cardinality
    // ints/bools render per distinct value. No per-row string allocation.
    let mut counts: HashMap<String, usize> = HashMap::new();
    if let Some(v) = col.code_view() {
        let mut by_code = vec![0usize; v.dict.len()];
        for (r, &c) in v.codes.iter().enumerate() {
            if v.validity.get(r) {
                by_code[c as usize] += 1;
            }
        }
        for (c, &count) in by_code.iter().enumerate() {
            if count > 0 {
                counts.insert(v.dict[c].clone(), count);
            }
        }
    } else if let Some(v) = col.int_view() {
        let mut by_value: HashMap<i64, usize> = HashMap::new();
        for (r, &x) in v.values.iter().enumerate() {
            if v.validity.get(r) {
                *by_value.entry(x).or_insert(0) += 1;
            }
        }
        counts.extend(by_value.into_iter().map(|(x, c)| (x.to_string(), c)));
    } else if let Some(v) = col.bool_view() {
        let mut trues = 0usize;
        let mut falses = 0usize;
        for (r, &b) in v.values.iter().enumerate() {
            if v.validity.get(r) {
                if b {
                    trues += 1;
                } else {
                    falses += 1;
                }
            }
        }
        if trues > 0 {
            counts.insert("true".to_string(), trues);
        }
        if falses > 0 {
            counts.insert("false".to_string(), falses);
        }
    } else {
        for v in col.iter() {
            if !v.is_null() {
                *counts.entry(v.render()).or_insert(0) += 1;
            }
        }
    }
    let grouping = group_categories(&counts, config.max_categories);
    let mut lookup = HashMap::new();
    let mut labels = Vec::new();
    for (i, cat) in grouping.kept.iter().enumerate() {
        lookup.insert(cat.clone(), i as BinId);
        labels.push(BinLabel::new(cat.clone()));
    }
    let other = if grouping.has_other {
        let id = labels.len() as BinId;
        labels.push(BinLabel::new("OTHER"));
        Some(id)
    } else {
        None
    };
    let null_bin = labels.len() as BinId;
    labels.push(BinLabel::null());
    ColumnBinner {
        name: col.name().to_string(),
        kind: ColumnKind::Categorical { lookup, other },
        labels,
        null_bin,
    }
}

fn fit_numeric(col: &subtab_data::Column, config: &BinningConfig) -> ColumnBinner {
    // Non-null values in row order, straight off the contiguous plane; the
    // view widens ints/bools exactly like `Column::get_f64` did.
    let values: Vec<f64> = match col.numeric_view() {
        Some(v) => v
            .values
            .iter()
            .enumerate()
            .filter(|&(r, _)| v.validity.get(r))
            .map(|(_, &x)| x)
            .collect(),
        None => (0..col.len()).filter_map(|r| col.get_f64(r)).collect(),
    };
    let cuts = match config.strategy {
        BinningStrategy::EqualWidth => equal_width_cuts(&values, config.num_bins),
        BinningStrategy::Quantile => quantile_cuts(&values, config.num_bins),
        BinningStrategy::Kde => kde_cuts_with_cutoff(
            &values,
            config.num_bins,
            config.kde_grid_size,
            config.kde_cutoff_bandwidths,
        ),
    };
    let mut labels = Vec::with_capacity(cuts.len() + 2);
    let mut lower = f64::NEG_INFINITY;
    for &c in &cuts {
        labels.push(BinLabel::new(format_range(lower, c)));
        lower = c;
    }
    labels.push(BinLabel::new(format_range(lower, f64::INFINITY)));
    let null_bin = labels.len() as BinId;
    labels.push(BinLabel::null());
    ColumnBinner {
        name: col.name().to_string(),
        kind: ColumnKind::Numeric { cuts },
        labels,
        null_bin,
    }
}

fn format_range(lo: f64, hi: f64) -> String {
    let fmt = |v: f64| {
        if v == f64::NEG_INFINITY {
            "-inf".to_string()
        } else if v == f64::INFINITY {
            "inf".to_string()
        } else {
            format!("{v:.3}")
        }
    };
    format!("[{}, {})", fmt(lo), fmt(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_data::Table;

    fn sample_table() -> Table {
        // Distances form two clusters (short / long); airline has 3 categories;
        // cancelled is a 0/1 integer → categorical.
        Table::builder()
            .column_f64(
                "distance",
                vec![
                    Some(100.0),
                    Some(120.0),
                    Some(110.0),
                    Some(2400.0),
                    Some(2500.0),
                    None,
                ],
            )
            .column_str(
                "airline",
                vec![
                    Some("AA"),
                    Some("AA"),
                    Some("DL"),
                    Some("DL"),
                    Some("UA"),
                    Some("AA"),
                ],
            )
            .column_i64(
                "cancelled",
                vec![Some(0), Some(0), Some(0), Some(0), Some(1), Some(1)],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn fit_assigns_expected_kinds() {
        let t = sample_table();
        let b = Binner::fit(&t, &BinningConfig::default()).unwrap();
        assert_eq!(b.columns().len(), 3);
        // cancelled has 2 distinct values -> categorical with 2 bins + null.
        let cancelled = b.column("cancelled").unwrap();
        assert_eq!(cancelled.num_bins(), 3);
        // airline has 3 categories -> 3 bins + null.
        let airline = b.column("airline").unwrap();
        assert_eq!(airline.num_bins(), 4);
        assert!(b.column("missing").is_none());
    }

    #[test]
    fn numeric_binning_separates_clusters() {
        let t = sample_table();
        // Force numeric treatment by lowering the categorical threshold.
        let cfg = BinningConfig {
            categorical_int_threshold: 1,
            num_bins: 2,
            ..Default::default()
        };
        let b = Binner::fit(&t, &cfg).unwrap();
        let d = b.column("distance").unwrap();
        let short = d.bin_value(&Value::Float(105.0));
        let long = d.bin_value(&Value::Float(2450.0));
        assert_ne!(short, long);
        assert_eq!(d.bin_value(&Value::Null), d.null_bin());
    }

    #[test]
    fn every_value_maps_to_exactly_one_bin() {
        let t = sample_table();
        let b = Binner::fit(&t, &BinningConfig::default()).unwrap();
        for col in t.columns() {
            let cb = b.column(col.name()).unwrap();
            for v in col.iter() {
                let id = cb.bin_value(&v);
                assert!((id as usize) < cb.num_bins());
                if v.is_null() {
                    assert_eq!(id, cb.null_bin());
                } else {
                    assert_ne!(id, cb.null_bin());
                }
            }
        }
    }

    #[test]
    fn apply_matches_fit_and_handles_projections() {
        let t = sample_table();
        let b = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let binned = b.apply(&t).unwrap();
        assert_eq!(binned.num_rows(), 6);
        assert_eq!(binned.num_columns(), 3);

        // Applying to a projection / row subset reuses the same bins.
        let sub = t.sub_table(&[0, 4], &["airline", "cancelled"]).unwrap();
        let binned_sub = b.apply(&sub).unwrap();
        assert_eq!(binned_sub.num_rows(), 2);
        assert_eq!(binned_sub.num_columns(), 2);
        let airline_idx_full = binned.column_index("airline").unwrap();
        let airline_idx_sub = binned_sub.column_index("airline").unwrap();
        assert_eq!(
            binned.bin_id(0, airline_idx_full),
            binned_sub.bin_id(0, airline_idx_sub)
        );
    }

    #[test]
    fn apply_rejects_unknown_columns() {
        let t = sample_table();
        let b = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let other = Table::builder()
            .column_i64("unrelated", vec![Some(1)])
            .build()
            .unwrap();
        assert!(matches!(
            b.apply(&other),
            Err(BinningError::UnknownColumn(_))
        ));
        assert!(b.bin_value("unrelated", &Value::Int(1)).is_err());
    }

    #[test]
    fn unseen_category_goes_to_other_or_null() {
        let t = sample_table();
        let cfg = BinningConfig {
            max_categories: 2, // forces an OTHER bin for the 3 airlines
            ..Default::default()
        };
        let b = Binner::fit(&t, &cfg).unwrap();
        let airline = b.column("airline").unwrap();
        let unseen = airline.bin_value(&Value::from("ZZ"));
        let other_label = &airline.labels()[unseen as usize];
        assert_eq!(other_label.label, "OTHER");

        // Without OTHER (all categories kept), unseen categories fall back to
        // the null bin rather than panicking.
        let b2 = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let airline2 = b2.column("airline").unwrap();
        assert_eq!(airline2.bin_value(&Value::from("ZZ")), airline2.null_bin());
    }

    #[test]
    fn invalid_configs_rejected() {
        let t = sample_table();
        let bad = BinningConfig {
            num_bins: 0,
            ..Default::default()
        };
        assert!(Binner::fit(&t, &bad).is_err());
        let bad = BinningConfig {
            max_categories: 0,
            ..Default::default()
        };
        assert!(Binner::fit(&t, &bad).is_err());
        for cutoff in [0.0, -1.0, f64::NAN] {
            let bad = BinningConfig {
                kde_cutoff_bandwidths: cutoff,
                ..Default::default()
            };
            assert!(Binner::fit(&t, &bad).is_err(), "cutoff {cutoff} accepted");
        }
    }

    #[test]
    fn non_finite_numerics_map_to_the_null_bin() {
        let t = sample_table();
        let cfg = BinningConfig {
            categorical_int_threshold: 1,
            num_bins: 2,
            ..Default::default()
        };
        let b = Binner::fit(&t, &cfg).unwrap();
        let d = b.column("distance").unwrap();
        // Regression: NaN fails every `x >= cut` comparison, so the old cut
        // loop filed it under the first interval instead of the null bin.
        assert_eq!(d.bin_value(&Value::Float(f64::NAN)), d.null_bin());
        assert_eq!(d.bin_value(&Value::Float(f64::INFINITY)), d.null_bin());
        assert_eq!(d.bin_value(&Value::Float(f64::NEG_INFINITY)), d.null_bin());
        // Finite values are unaffected.
        assert_ne!(d.bin_value(&Value::Float(105.0)), d.null_bin());
        assert_ne!(d.bin_value(&Value::Float(2450.0)), d.null_bin());
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_sequential() {
        // A wider table than the fixtures: several numeric KDE columns plus
        // categorical ones, so the worker queue actually interleaves.
        let rows = 400usize;
        let mut builder = Table::builder();
        for c in 0..6 {
            builder = builder.column_f64(
                &format!("num{c}"),
                (0..rows)
                    .map(|i| {
                        let base = if i % 2 == 0 {
                            0.0
                        } else {
                            500.0 + c as f64 * 37.0
                        };
                        Some(base + (i % 13) as f64 * 1.7)
                    })
                    .collect(),
            );
        }
        let t = builder
            .column_str(
                "cat",
                (0..rows).map(|i| Some(["a", "b", "c"][i % 3])).collect(),
            )
            .column_i64("code", (0..rows).map(|i| Some((i % 40) as i64)).collect())
            .build()
            .unwrap();
        let sequential = Binner::fit(&t, &BinningConfig::default()).unwrap();
        for threads in [0, 2, 5] {
            let cfg = BinningConfig::default().threads(threads);
            let parallel = Binner::fit(&t, &cfg).unwrap();
            assert_eq!(
                sequential.columns(),
                parallel.columns(),
                "threads = {threads} diverged from the sequential fit"
            );
        }
    }

    #[test]
    fn strategies_produce_requested_bin_counts() {
        let values: Vec<Option<f64>> = (0..500).map(|i| Some((i % 97) as f64 * 3.7)).collect();
        let t = Table::builder().column_f64("x", values).build().unwrap();
        for strategy in [
            BinningStrategy::EqualWidth,
            BinningStrategy::Quantile,
            BinningStrategy::Kde,
        ] {
            for bins in [2, 5, 10] {
                let cfg = BinningConfig {
                    strategy,
                    num_bins: bins,
                    categorical_int_threshold: 1,
                    ..Default::default()
                };
                let b = Binner::fit(&t, &cfg).unwrap();
                let c = b.column("x").unwrap();
                // bins for values + 1 null bin; some strategies may merge.
                assert!(c.num_bins() <= bins + 1);
                assert!(c.num_bins() >= 2);
            }
        }
    }

    #[test]
    fn high_cardinality_int_column_fits_fast_with_bounded_bins() {
        // Regression for the scale tier's timestamp shape: a ~all-distinct
        // epoch-seconds column. The categorical probe must early-exit at
        // the threshold (the old full distinct count was O(rows²) and
        // effectively hung here), and the numeric strategy must keep the
        // token count per column bounded by the configured bin budget.
        let rows = 100_000;
        let values: Vec<Option<i64>> = (0..rows)
            .map(|i| {
                if i % 97 == 0 {
                    None
                } else {
                    Some(1_672_531_200 + (i as i64 * 6_007) % 63_158_400)
                }
            })
            .collect();
        let t = Table::builder()
            .column_i64("started_at", values)
            .build()
            .unwrap();
        let cfg = BinningConfig::default();
        let b = Binner::fit(&t, &cfg).unwrap();
        let c = b.column("started_at").unwrap();
        assert!(
            c.num_bins() <= cfg.num_bins + 1,
            "{} bins exceed the budget of {} value bins + 1 null bin",
            c.num_bins(),
            cfg.num_bins
        );
        assert!(c.num_bins() >= 2, "binning collapsed the column");
    }

    #[test]
    fn numeric_labels_are_ranges() {
        let t = sample_table();
        let cfg = BinningConfig {
            categorical_int_threshold: 1,
            num_bins: 2,
            ..Default::default()
        };
        let b = Binner::fit(&t, &cfg).unwrap();
        let d = b.column("distance").unwrap();
        assert!(d.labels()[0].label.starts_with('['));
        assert!(d.labels().last().unwrap().is_null);
    }
}
