//! Grouping of categorical columns into a bounded number of bins.
//!
//! The paper (Example 3.3) groups high-cardinality categorical columns (e.g.
//! airlines grouped by continent) so that each column ends up with a small
//! number of bins. Without domain knowledge, the standard equivalent is
//! frequency grouping: the most frequent `max_categories − 1` categories keep
//! their own bin and the rest are merged into an `OTHER` bin.

use std::collections::HashMap;

/// The grouping decision for a categorical column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoryGrouping {
    /// Categories that keep their own bin, most frequent first.
    pub kept: Vec<String>,
    /// Whether infrequent categories are mapped to an `OTHER` bin.
    pub has_other: bool,
}

impl CategoryGrouping {
    /// Number of bins produced by this grouping (excluding the null bin).
    pub fn num_bins(&self) -> usize {
        self.kept.len() + usize::from(self.has_other)
    }
}

/// Computes the frequency grouping of the given category occurrences.
///
/// `counts` maps category → number of occurrences. At most `max_categories`
/// bins are produced; ties are broken alphabetically for determinism.
pub fn group_categories(
    counts: &HashMap<String, usize>,
    max_categories: usize,
) -> CategoryGrouping {
    let max_categories = max_categories.max(1);
    let mut by_freq: Vec<(&String, &usize)> = counts.iter().collect();
    by_freq.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
    if by_freq.len() <= max_categories {
        return CategoryGrouping {
            kept: by_freq.into_iter().map(|(c, _)| c.clone()).collect(),
            has_other: false,
        };
    }
    let kept: Vec<String> = by_freq
        .iter()
        .take(max_categories - 1)
        .map(|(c, _)| (*c).clone())
        .collect();
    CategoryGrouping {
        kept,
        has_other: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> HashMap<String, usize> {
        pairs.iter().map(|(c, n)| (c.to_string(), *n)).collect()
    }

    #[test]
    fn few_categories_kept_as_is() {
        let g = group_categories(&counts(&[("AA", 10), ("DL", 5)]), 8);
        assert_eq!(g.kept.len(), 2);
        assert!(!g.has_other);
        assert_eq!(g.num_bins(), 2);
        // Most frequent first.
        assert_eq!(g.kept[0], "AA");
    }

    #[test]
    fn many_categories_get_other_bin() {
        let g = group_categories(
            &counts(&[("a", 100), ("b", 50), ("c", 10), ("d", 5), ("e", 1)]),
            3,
        );
        assert_eq!(g.kept, vec!["a".to_string(), "b".to_string()]);
        assert!(g.has_other);
        assert_eq!(g.num_bins(), 3);
    }

    #[test]
    fn ties_broken_alphabetically() {
        let g = group_categories(&counts(&[("z", 5), ("a", 5), ("m", 5)]), 2);
        assert_eq!(g.kept, vec!["a".to_string()]);
        assert!(g.has_other);
    }

    #[test]
    fn max_categories_of_one_means_everything_is_other() {
        let g = group_categories(&counts(&[("a", 1), ("b", 2)]), 1);
        assert!(g.kept.is_empty());
        assert!(g.has_other);
        assert_eq!(g.num_bins(), 1);
    }

    #[test]
    fn empty_counts() {
        let g = group_categories(&HashMap::new(), 4);
        assert!(g.kept.is_empty());
        assert!(!g.has_other);
        assert_eq!(g.num_bins(), 0);
    }
}
