//! Quantile (equal-frequency) cut-point computation.

/// Computes up to `num_bins - 1` interior cut points so that each interval
/// receives roughly the same number of values.
///
/// Duplicate cut points (which happen for heavily repeated values) are
/// collapsed, so fewer than `num_bins` bins may result.
pub fn quantile_cuts(values: &[f64], num_bins: usize) -> Vec<f64> {
    if num_bins < 2 {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.len() < 2 {
        return Vec::new();
    }
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let mut cuts = Vec::with_capacity(num_bins - 1);
    for i in 1..num_bins {
        let q = i as f64 / num_bins as f64;
        let cut = quantile_of_sorted(&sorted, q);
        if cut > *sorted.first().expect("non-empty")
            && cut < *sorted.last().expect("non-empty")
            && cuts.last().is_none_or(|&last: &f64| cut > last)
        {
            cuts.push(cut);
        }
    }
    let _ = n;
    cuts
}

/// Linear-interpolation quantile of pre-sorted data, `q ∈ [0, 1]`.
pub fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_data_gets_even_cuts() {
        let vals: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let cuts = quantile_cuts(&vals, 4);
        assert_eq!(cuts.len(), 3);
        assert!((cuts[0] - 25.0).abs() < 1.0);
        assert!((cuts[1] - 50.0).abs() < 1.0);
        assert!((cuts[2] - 75.0).abs() < 1.0);
    }

    #[test]
    fn skewed_data_gets_denser_cuts_in_dense_region() {
        // 90% of the mass near 0, 10% near 1000.
        let mut vals: Vec<f64> = (0..90).map(|i| i as f64 / 100.0).collect();
        vals.extend((0..10).map(|i| 1000.0 + i as f64));
        let cuts = quantile_cuts(&vals, 5);
        // Most cuts should be below 1.0 (dense region).
        assert!(cuts.iter().filter(|&&c| c < 1.0).count() >= 3);
    }

    #[test]
    fn repeated_values_collapse_cuts() {
        let vals = vec![1.0; 50];
        assert!(quantile_cuts(&vals, 5).is_empty());
        let mut vals = vec![1.0; 50];
        vals.extend(vec![2.0; 50]);
        let cuts = quantile_cuts(&vals, 4);
        assert!(cuts.len() <= 1);
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = vec![0.0, 10.0];
        assert_eq!(quantile_of_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_of_sorted(&sorted, 0.5), 5.0);
        assert_eq!(quantile_of_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        quantile_of_sorted(&[], 0.5);
    }
}
