//! # subtab-binning
//!
//! Binning of table columns for the SubTab framework (Definition 3.2 of the
//! paper).
//!
//! Binning maps every column to a small, fixed set of *bins* so that
//! heterogeneous columns (continuous, skewed, categorical, with missing
//! values) can be treated uniformly by the downstream components:
//!
//! * association-rule mining operates on (column, bin) items,
//! * the diversity metric considers two values similar when they fall in the
//!   same bin,
//! * the embedding corpus uses bin identifiers as "words".
//!
//! Three numeric strategies are provided, mirroring the paper's setup
//! (the reference implementation uses a kernel-density-estimation based
//! binning; quantile and equal-width serve as ablations):
//!
//! * [`BinningStrategy::Kde`] — Gaussian KDE with Silverman bandwidth;
//!   cut points are placed at density valleys,
//! * [`BinningStrategy::Quantile`] — equal-frequency bins,
//! * [`BinningStrategy::EqualWidth`] — equal-length intervals.
//!
//! Categorical columns are grouped into the most frequent categories plus an
//! `OTHER` group (Example 3.3 groups airlines by continent; frequency grouping
//! is the domain-agnostic equivalent). Missing values always get a dedicated
//! `NaN` bin, because the paper's association rules explicitly mention `NaN`
//! (e.g. `DEP_TIME = NaN → CANCELLED = 1`).
//!
//! ```
//! use subtab_data::Table;
//! use subtab_binning::{Binner, BinningConfig};
//!
//! let table = Table::builder()
//!     .column_f64("distance", vec![Some(10.0), Some(12.0), Some(900.0), Some(950.0)])
//!     .column_str("airline", vec![Some("AA"), Some("AA"), Some("DL"), Some("UA")])
//!     .build()
//!     .unwrap();
//! let binner = Binner::fit(&table, &BinningConfig::with_bins(2)).unwrap();
//! let binned = binner.apply(&table).unwrap();
//! assert_eq!(binned.num_rows(), 4);
//! // The two short flights land in the same distance bin.
//! assert_eq!(binned.bin_id(0, 0), binned.bin_id(1, 0));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod binned;
pub mod binner;
pub mod categorical;
pub mod equal_width;
pub mod kde;
pub mod quantile;
pub mod strategy;

pub use binned::BinnedTable;
pub use binner::{Binner, ColumnBinner};
pub use strategy::{BinId, BinLabel, BinningConfig, BinningError, BinningStrategy};

/// Result alias for binning operations.
pub type Result<T> = std::result::Result<T, BinningError>;
