//! The binned view of a table: every cell replaced by its bin id.

use crate::strategy::{BinId, BinLabel};

/// A table whose cells have been replaced by bin identifiers.
///
/// This is the representation consumed by association-rule mining, by the
/// diversity metric and by the embedding corpus builder. It is deliberately
/// small: per column, one `Vec<BinId>` plus the bin labels.
#[derive(Debug, Clone)]
pub struct BinnedTable {
    column_names: Vec<String>,
    labels: Vec<Vec<BinLabel>>,
    codes: Vec<Vec<BinId>>,
    num_rows: usize,
}

impl BinnedTable {
    /// Assembles a binned table from per-column names, labels and codes.
    ///
    /// Panics if the per-column vectors have inconsistent lengths — this is an
    /// internal constructor used by [`crate::Binner::apply`].
    pub(crate) fn new(
        column_names: Vec<String>,
        labels: Vec<Vec<BinLabel>>,
        codes: Vec<Vec<BinId>>,
    ) -> Self {
        assert_eq!(column_names.len(), labels.len());
        assert_eq!(column_names.len(), codes.len());
        let num_rows = codes.first().map_or(0, Vec::len);
        for c in &codes {
            assert_eq!(c.len(), num_rows, "ragged binned table");
        }
        BinnedTable {
            column_names,
            labels,
            codes,
            num_rows,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.column_names.len()
    }

    /// Column names, in order.
    pub fn column_names(&self) -> &[String] {
        &self.column_names
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.column_names.iter().position(|c| c == name)
    }

    /// Bin id of the cell at (`row`, `col`).
    pub fn bin_id(&self, row: usize, col: usize) -> BinId {
        self.codes[col][row]
    }

    /// The full bin-code column of `col` (one entry per row) — the integer
    /// access path used to build token-id planes without going through
    /// per-cell string tokens.
    pub fn codes(&self, col: usize) -> &[BinId] {
        &self.codes[col]
    }

    /// Number of bins of column `col` (including the null bin).
    pub fn num_bins(&self, col: usize) -> usize {
        self.labels[col].len()
    }

    /// Number of bins of every column, in column order — the shape the rule
    /// engine's dense item interner is built from (item ids are column-major
    /// offsets into this layout, with [`BinnedTable::codes`] as the
    /// per-column transaction source).
    pub fn bin_counts(&self) -> Vec<usize> {
        self.labels.iter().map(Vec::len).collect()
    }

    /// Label of bin `bin` of column `col`.
    pub fn label(&self, col: usize, bin: BinId) -> &BinLabel {
        &self.labels[col][bin as usize]
    }

    /// Whether the cell at (`row`, `col`) is in the null bin.
    pub fn is_null(&self, row: usize, col: usize) -> bool {
        self.label(col, self.bin_id(row, col)).is_null
    }

    /// The items (column index, bin id) of one row — the "transaction" used
    /// by association-rule mining.
    pub fn row_items(&self, row: usize) -> Vec<(usize, BinId)> {
        (0..self.num_columns())
            .map(|c| (c, self.bin_id(row, c)))
            .collect()
    }

    /// A token uniquely identifying (column, bin), used as a "word" in the
    /// embedding corpus, e.g. `"distance=[100.000, 550.000)"`.
    pub fn token(&self, col: usize, bin: BinId) -> String {
        format!(
            "{}={}",
            self.column_names[col], self.labels[col][bin as usize]
        )
    }

    /// Token of the cell at (`row`, `col`).
    pub fn cell_token(&self, row: usize, col: usize) -> String {
        self.token(col, self.bin_id(row, col))
    }

    /// Restricts the binned table to the given rows (in order).
    pub fn take_rows(&self, rows: &[usize]) -> BinnedTable {
        let codes = self
            .codes
            .iter()
            .map(|col| rows.iter().map(|&r| col[r]).collect())
            .collect();
        BinnedTable::new(self.column_names.clone(), self.labels.clone(), codes)
    }

    /// Restricts the binned table to the given columns (by index, in order).
    pub fn take_columns(&self, cols: &[usize]) -> BinnedTable {
        BinnedTable::new(
            cols.iter().map(|&c| self.column_names[c].clone()).collect(),
            cols.iter().map(|&c| self.labels[c].clone()).collect(),
            cols.iter().map(|&c| self.codes[c].clone()).collect(),
        )
    }

    /// Frequency of each bin of column `col` over all rows.
    pub fn bin_histogram(&self, col: usize) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_bins(col)];
        for &code in &self.codes[col] {
            hist[code as usize] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Binner, BinningConfig};
    use subtab_data::Table;

    fn binned() -> BinnedTable {
        let t = Table::builder()
            .column_str("airline", vec![Some("AA"), Some("DL"), Some("AA"), None])
            .column_i64("cancelled", vec![Some(0), Some(1), Some(0), Some(1)])
            .build()
            .unwrap();
        let b = Binner::fit(&t, &BinningConfig::default()).unwrap();
        b.apply(&t).unwrap()
    }

    #[test]
    fn shape_and_lookup() {
        let bt = binned();
        assert_eq!(bt.num_rows(), 4);
        assert_eq!(bt.num_columns(), 2);
        assert_eq!(bt.column_index("cancelled"), Some(1));
        assert_eq!(bt.column_index("nope"), None);
        assert_eq!(bt.column_names()[0], "airline");
    }

    #[test]
    fn codes_column_matches_per_cell_lookup() {
        let bt = binned();
        for c in 0..bt.num_columns() {
            let codes = bt.codes(c);
            assert_eq!(codes.len(), bt.num_rows());
            for (r, &code) in codes.iter().enumerate() {
                assert_eq!(code, bt.bin_id(r, c));
            }
        }
    }

    #[test]
    fn same_category_same_bin() {
        let bt = binned();
        let a = bt.column_index("airline").unwrap();
        assert_eq!(bt.bin_id(0, a), bt.bin_id(2, a));
        assert_ne!(bt.bin_id(0, a), bt.bin_id(1, a));
        assert!(bt.is_null(3, a));
        assert!(!bt.is_null(0, a));
    }

    #[test]
    fn tokens_include_column_and_label() {
        let bt = binned();
        let a = bt.column_index("airline").unwrap();
        let tok = bt.cell_token(0, a);
        assert!(tok.starts_with("airline="));
        assert!(tok.contains("AA"));
    }

    #[test]
    fn row_items_cover_all_columns() {
        let bt = binned();
        let items = bt.row_items(1);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].0, 0);
        assert_eq!(items[1].0, 1);
    }

    #[test]
    fn take_rows_and_columns() {
        let bt = binned();
        let rows = bt.take_rows(&[2, 0]);
        assert_eq!(rows.num_rows(), 2);
        assert_eq!(rows.bin_id(0, 0), bt.bin_id(2, 0));
        let cols = bt.take_columns(&[1]);
        assert_eq!(cols.num_columns(), 1);
        assert_eq!(cols.column_names()[0], "cancelled");
        assert_eq!(cols.bin_id(3, 0), bt.bin_id(3, 1));
    }

    #[test]
    fn bin_counts_match_per_column_lookup() {
        let bt = binned();
        let counts = bt.bin_counts();
        assert_eq!(counts.len(), bt.num_columns());
        for (c, &n) in counts.iter().enumerate() {
            assert_eq!(n, bt.num_bins(c));
        }
    }

    #[test]
    fn histogram_sums_to_row_count() {
        let bt = binned();
        for c in 0..bt.num_columns() {
            let hist = bt.bin_histogram(c);
            assert_eq!(hist.iter().sum::<usize>(), bt.num_rows());
        }
    }
}
