//! Configuration types and errors for binning.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a bin within one column (dense, starting at 0).
pub type BinId = u16;

/// Human-readable description of one bin of one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinLabel {
    /// Short label, e.g. `"[100.0, 550.0)"`, `"AA"`, `"OTHER"`, `"NaN"`.
    pub label: String,
    /// Whether this is the dedicated missing-value bin.
    pub is_null: bool,
}

impl BinLabel {
    /// Creates a non-null bin label.
    pub fn new(label: impl Into<String>) -> Self {
        BinLabel {
            label: label.into(),
            is_null: false,
        }
    }

    /// The dedicated missing-value bin label.
    pub fn null() -> Self {
        BinLabel {
            label: "NaN".to_string(),
            is_null: true,
        }
    }
}

impl fmt::Display for BinLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// The strategy used to split a numeric column into bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinningStrategy {
    /// Intervals of equal length between min and max.
    EqualWidth,
    /// Intervals with (approximately) equal numbers of values.
    Quantile,
    /// Cut points at valleys of a Gaussian kernel density estimate —
    /// the strategy used by the paper's reference implementation.
    Kde,
}

/// Configuration of the binning step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinningConfig {
    /// Strategy for numeric columns.
    pub strategy: BinningStrategy,
    /// Target number of bins per numeric column (the paper's default is 5).
    pub num_bins: usize,
    /// Maximum number of categorical groups before low-frequency categories
    /// are merged into an `OTHER` group.
    pub max_categories: usize,
    /// Numeric columns with at most this many distinct values are treated as
    /// categorical (e.g. a 0/1 `CANCELLED` column keeps its two categories).
    pub categorical_int_threshold: usize,
    /// Number of evaluation points of the KDE grid.
    pub kde_grid_size: usize,
    /// Truncation radius of the windowed KDE evaluator, in bandwidths
    /// (default [`crate::kde::DEFAULT_KDE_CUTOFF_BANDWIDTHS`]).
    ///
    /// Kernel contributions beyond this many bandwidths from a grid point
    /// are skipped; at the default of 8 the dropped tail is below
    /// `exp(−32)` relative, so the cuts match the exact evaluator's.
    /// `f64::INFINITY` selects the exact dense reference evaluation
    /// (the mode pinned by the golden fixture). Must be positive.
    pub kde_cutoff_bandwidths: f64,
    /// Worker threads for fitting column binners: columns fan out across
    /// scoped threads. `0` uses all available cores; `1` (the default) fits
    /// sequentially. Per-column fits are independent, so the fitted binner
    /// is bit-identical at every thread count.
    pub threads: usize,
}

impl Default for BinningConfig {
    fn default() -> Self {
        BinningConfig {
            strategy: BinningStrategy::Kde,
            num_bins: 5,
            max_categories: 8,
            categorical_int_threshold: 10,
            kde_grid_size: 256,
            kde_cutoff_bandwidths: crate::kde::DEFAULT_KDE_CUTOFF_BANDWIDTHS,
            threads: 1,
        }
    }
}

impl BinningConfig {
    /// Convenience constructor setting only the bin count.
    pub fn with_bins(num_bins: usize) -> Self {
        BinningConfig {
            num_bins,
            ..Default::default()
        }
    }

    /// Sets the numeric strategy.
    pub fn strategy(mut self, strategy: BinningStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the worker-thread count for fitting (`0` = all available cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the KDE truncation cutoff in bandwidths (`f64::INFINITY` = the
    /// exact dense reference evaluator).
    pub fn kde_cutoff(mut self, cutoff_bandwidths: f64) -> Self {
        self.kde_cutoff_bandwidths = cutoff_bandwidths;
        self
    }
}

/// Errors produced while fitting or applying a binning.
#[derive(Debug, Clone, PartialEq)]
pub enum BinningError {
    /// The configuration was invalid (e.g. zero bins).
    InvalidConfig(String),
    /// The underlying table operation failed.
    Data(subtab_data::DataError),
    /// A column present in the data was not seen at fit time.
    UnknownColumn(String),
}

impl fmt::Display for BinningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinningError::InvalidConfig(msg) => write!(f, "invalid binning config: {msg}"),
            BinningError::Data(e) => write!(f, "table error during binning: {e}"),
            BinningError::UnknownColumn(c) => {
                write!(f, "column {c:?} was not part of the fitted binning")
            }
        }
    }
}

impl std::error::Error for BinningError {}

impl From<subtab_data::DataError> for BinningError {
    fn from(e: subtab_data::DataError) -> Self {
        BinningError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_defaults() {
        let c = BinningConfig::default();
        assert_eq!(c.num_bins, 5);
        assert_eq!(c.strategy, BinningStrategy::Kde);
    }

    #[test]
    fn builders() {
        let c = BinningConfig::with_bins(7).strategy(BinningStrategy::Quantile);
        assert_eq!(c.num_bins, 7);
        assert_eq!(c.strategy, BinningStrategy::Quantile);
        let c = BinningConfig::default()
            .threads(4)
            .kde_cutoff(f64::INFINITY);
        assert_eq!(c.threads, 4);
        assert!(c.kde_cutoff_bandwidths.is_infinite());
    }

    #[test]
    fn defaults_use_the_windowed_evaluator_single_threaded() {
        let c = BinningConfig::default();
        assert_eq!(c.threads, 1);
        assert_eq!(
            c.kde_cutoff_bandwidths,
            crate::kde::DEFAULT_KDE_CUTOFF_BANDWIDTHS
        );
    }

    #[test]
    fn labels() {
        let l = BinLabel::new("[0, 10)");
        assert!(!l.is_null);
        assert_eq!(l.to_string(), "[0, 10)");
        let n = BinLabel::null();
        assert!(n.is_null);
        assert_eq!(n.label, "NaN");
    }

    #[test]
    fn error_display() {
        let e = BinningError::InvalidConfig("zero bins".into());
        assert!(e.to_string().contains("zero bins"));
        let e: BinningError = subtab_data::DataError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains('x'));
    }
}
