//! Kernel-density-estimation based cut-point computation.
//!
//! The paper's reference implementation bins continuous columns with a
//! SciPy-based kernel density estimate: cut points are placed at the valleys
//! (local minima) of the estimated density so that each bin corresponds to a
//! "natural" mode of the distribution. This module reimplements that idea:
//! a Gaussian KDE with Silverman's rule-of-thumb bandwidth is evaluated on a
//! uniform grid, local minima of the density are detected, and the deepest
//! `num_bins − 1` valleys become cut points. If the density has fewer valleys
//! than requested (e.g. a unimodal column), the remaining cuts fall back to
//! quantile cuts so the configured bin count is still honoured.
//!
//! Two grid evaluators are provided:
//!
//! * [`GaussianKde::density_grid`] — the **exact reference**: a dense
//!   O(grid × samples) Gaussian sum with one `exp` per (grid point, sample)
//!   pair, summed over the samples in ascending order. The golden fixture in
//!   `tests/golden/kde_cuts_ref.txt` pins this evaluator's cuts on the
//!   planted datasets.
//! * [`GaussianKde::density_grid_windowed`] — the **windowed** evaluator the
//!   binner uses by default: samples are sorted once at fit time, the kernel
//!   is truncated at a configurable number of bandwidths
//!   ([`DEFAULT_KDE_CUTOFF_BANDWIDTHS`]), and each sample scatters its
//!   contribution into its grid window with a two-multiply Gaussian
//!   recurrence instead of an `exp` per grid point, turning the evaluation
//!   into O(grid × window + n log n). Per grid point the contributions still
//!   accumulate in ascending-sample order, so the result is bit-compatible
//!   with the reference up to the truncation tolerance (the dropped tail
//!   terms are below `exp(−cutoff²/2)` relative, ≈ 1.3e−14 at the default
//!   cutoff of 8 bandwidths — the same magnitude as f64 rounding across the
//!   grid) plus the recurrence's rounding, and in practice selects identical
//!   cut points (asserted against the exact evaluator on every planted
//!   dataset).

use crate::quantile::quantile_cuts;

/// Default truncation radius of the windowed evaluator, in bandwidths.
///
/// Contributions beyond 8 bandwidths are below `exp(−32) ≈ 1.3e−14` of the
/// kernel peak — comparable to the f64 rounding the dense sum accumulates
/// anyway — so cutting there keeps the windowed cuts identical to the exact
/// evaluator's on real data while skipping far samples entirely.
pub const DEFAULT_KDE_CUTOFF_BANDWIDTHS: f64 = 8.0;

/// When the grid step exceeds this many bandwidths, a sample's window covers
/// only a handful of grid points and the recurrence setup (two `exp` calls)
/// would cost more than evaluating those points directly.
const DIRECT_EVAL_STEP_BANDWIDTHS: f64 = 4.0;

/// A fitted one-dimensional Gaussian kernel density estimate.
///
/// Samples are sorted at fit time; both grid evaluators sum contributions in
/// ascending-sample order so their results are directly comparable.
#[derive(Debug, Clone)]
pub struct GaussianKde {
    /// Finite samples, sorted ascending.
    samples: Vec<f64>,
    bandwidth: f64,
}

impl GaussianKde {
    /// Fits a KDE with Silverman's rule-of-thumb bandwidth.
    ///
    /// Returns `None` when there are fewer than two finite samples or the
    /// data has zero spread (no density structure to exploit).
    pub fn fit(values: &[f64]) -> Option<Self> {
        let mut samples: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if samples.len() < 2 {
            return None;
        }
        samples.sort_by(f64::total_cmp);
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt();
        let q75 = crate::quantile::quantile_of_sorted(&samples, 0.75);
        let q25 = crate::quantile::quantile_of_sorted(&samples, 0.25);
        let iqr = q75 - q25;
        // Silverman's rule: 0.9 * min(std, IQR/1.34) * n^(-1/5).
        let spread = if iqr > 0.0 { std.min(iqr / 1.34) } else { std };
        if spread <= 0.0 {
            return None;
        }
        let bandwidth = 0.9 * spread * n.powf(-0.2);
        Some(GaussianKde { samples, bandwidth })
    }

    /// The bandwidth chosen by Silverman's rule.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `x` (dense sum over all samples).
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * h * self.samples.len() as f64);
        self.samples
            .iter()
            .map(|&s| (-0.5 * ((x - s) / h).powi(2)).exp())
            .sum::<f64>()
            * norm
    }

    /// The grid point at index `i` of an `n`-point grid over `[lo, hi]`.
    ///
    /// Shared by both evaluators so their grids are bit-identical.
    fn grid_x(lo: f64, hi: f64, i: usize, n: usize) -> f64 {
        lo + (hi - lo) * i as f64 / (n - 1) as f64
    }

    /// The grid bounds: the sample range padded by one bandwidth per side.
    fn grid_bounds(&self) -> (f64, f64) {
        let lo = self.samples.first().copied().expect("fit requires samples") - self.bandwidth;
        let hi = self.samples.last().copied().expect("fit requires samples") + self.bandwidth;
        (lo, hi)
    }

    /// Evaluates the density on a uniform grid over the sample range
    /// (slightly padded by one bandwidth on each side).
    ///
    /// This is the **exact reference evaluator**: one `exp` per
    /// (grid point, sample) pair, no truncation. The windowed evaluator is
    /// validated against it.
    pub fn density_grid(&self, grid_size: usize) -> Vec<(f64, f64)> {
        let (lo, hi) = self.grid_bounds();
        let n = grid_size.max(8);
        (0..n)
            .map(|i| {
                let x = Self::grid_x(lo, hi, i, n);
                (x, self.density(x))
            })
            .collect()
    }

    /// Evaluates the density grid with a Gaussian kernel truncated at
    /// `cutoff_bandwidths` bandwidths.
    ///
    /// Each (sorted) sample scatters into the grid points within its cutoff
    /// window; along the window the kernel value follows the recurrence
    /// `g(x + Δ) = g(x)·c(x)` with `c(x + Δ) = c(x)·exp(−(Δ/h)²)`, so only
    /// two `exp` calls are needed per sample instead of one per grid point.
    /// A non-finite cutoff (e.g. `f64::INFINITY`) selects the exact dense
    /// evaluator, making the truncation strictly opt-out.
    pub fn density_grid_windowed(
        &self,
        grid_size: usize,
        cutoff_bandwidths: f64,
    ) -> Vec<(f64, f64)> {
        if !cutoff_bandwidths.is_finite() {
            return self.density_grid(grid_size);
        }
        let (lo, hi) = self.grid_bounds();
        let n = grid_size.max(8);
        let h = self.bandwidth;
        let dx = (hi - lo) / (n - 1) as f64;
        let radius = cutoff_bandwidths.max(0.0) * h;
        let mut acc = vec![0.0f64; n];
        // Grid step in bandwidth units; `r` is the constant second-order
        // factor of the Gaussian recurrence along the grid.
        let u = dx / h;
        let r = (-u * u).exp();
        let direct = u > DIRECT_EVAL_STEP_BANDWIDTHS;
        for &s in &self.samples {
            // Grid indices whose |x - s| <= radius. Samples are processed in
            // ascending order, so each acc[i] accumulates its window's terms
            // in the same order the dense evaluator sums them.
            let a = (((s - radius) - lo) / dx).ceil().max(0.0) as usize;
            let b = ((((s + radius) - lo) / dx).floor() as isize).min(n as isize - 1);
            if b < a as isize {
                continue;
            }
            let b = b as usize;
            if direct {
                // Window of only a few grid points: direct `exp` is cheaper
                // than setting up the recurrence.
                for (i, slot) in acc.iter_mut().enumerate().take(b + 1).skip(a) {
                    let t = (Self::grid_x(lo, hi, i, n) - s) / h;
                    *slot += (-0.5 * t * t).exp();
                }
            } else {
                let t_a = (Self::grid_x(lo, hi, a, n) - s) / h;
                let mut g = (-0.5 * t_a * t_a).exp();
                let mut c = (-(t_a * u + 0.5 * u * u)).exp();
                for slot in acc.iter_mut().take(b + 1).skip(a) {
                    *slot += g;
                    g *= c;
                    c *= r;
                }
            }
        }
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * h * self.samples.len() as f64);
        (0..n)
            .map(|i| (Self::grid_x(lo, hi, i, n), acc[i] * norm))
            .collect()
    }
}

/// Two cut points close enough to describe the same split.
///
/// The tolerance is *relative* to the cuts' magnitude (with an absolute
/// floor of 1e−12 near zero, matching the historic final-dedup epsilon at
/// unit scale): the old absolute `f64::EPSILON` check missed rounding-level
/// coincidences on large-magnitude columns — a valley grid point and an
/// interpolated quantile landing on "the same" point differ by thousands of
/// ULPs there, far more than `f64::EPSILON` in absolute terms — so both
/// survived and produced an empty bin between them. 1e−12 relative (a few
/// thousand ULPs) catches those coincidences; anything wider would start
/// merging genuinely distinct cuts on offset columns such as epoch-second
/// timestamps, whose sub-second structure sits at ~1e−10 relative.
fn cuts_close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() < 1e-12 * scale
}

/// Merges valley cuts with quantile top-up candidates into at most `want`
/// sorted, deduplicated cut points.
///
/// Quantile candidates that fall within [`cuts_close`] tolerance of an
/// existing cut are skipped rather than creating a duplicate; the final pass
/// collapses any remaining near-identical neighbours with the same relative
/// tolerance.
fn merge_cut_candidates(mut cuts: Vec<f64>, quantile: &[f64], want: usize) -> Vec<f64> {
    if cuts.len() < want {
        for &q in quantile {
            if cuts.len() >= want {
                break;
            }
            if cuts.iter().all(|&c| !cuts_close(c, q)) {
                cuts.push(q);
            }
        }
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup_by(|a, b| cuts_close(*a, *b));
    cuts
}

/// Computes cut points at the deepest valleys of the KDE, topping up with
/// quantile cuts when the density is not multi-modal enough.
///
/// Uses the windowed evaluator truncated at
/// [`DEFAULT_KDE_CUTOFF_BANDWIDTHS`]; see [`kde_cuts_with_cutoff`] for an
/// explicit cutoff (pass `f64::INFINITY` for the exact reference).
pub fn kde_cuts(values: &[f64], num_bins: usize, grid_size: usize) -> Vec<f64> {
    kde_cuts_with_cutoff(values, num_bins, grid_size, DEFAULT_KDE_CUTOFF_BANDWIDTHS)
}

/// [`kde_cuts`] with an explicit truncation cutoff in bandwidths.
///
/// `cutoff_bandwidths = f64::INFINITY` evaluates the dense exact reference;
/// finite cutoffs use the windowed evaluator.
pub fn kde_cuts_with_cutoff(
    values: &[f64],
    num_bins: usize,
    grid_size: usize,
    cutoff_bandwidths: f64,
) -> Vec<f64> {
    if num_bins < 2 {
        return Vec::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let Some(kde) = GaussianKde::fit(&finite) else {
        return quantile_cuts(&finite, num_bins);
    };
    let grid = kde.density_grid_windowed(grid_size, cutoff_bandwidths);
    // A valley is a grid point whose density is a local minimum; its depth is
    // the smaller of the two peak-to-valley drops around it. Peaks on each
    // side are looked up in prefix/suffix running maxima.
    let mut prefix_max = Vec::with_capacity(grid.len());
    let mut run = f64::NEG_INFINITY;
    for &(_, d) in &grid {
        prefix_max.push(run);
        run = run.max(d);
    }
    let mut suffix_max = vec![f64::NEG_INFINITY; grid.len()];
    run = f64::NEG_INFINITY;
    for i in (0..grid.len()).rev() {
        suffix_max[i] = run;
        run = run.max(grid[i].1);
    }
    let mut valleys: Vec<(f64, f64)> = Vec::new(); // (depth, x)
    for i in 1..grid.len().saturating_sub(1) {
        let (x, d) = grid[i];
        if d <= grid[i - 1].1 && d <= grid[i + 1].1 && (d < grid[i - 1].1 || d < grid[i + 1].1) {
            let depth = (prefix_max[i] - d).min(suffix_max[i] - d);
            if depth > 0.0 {
                valleys.push((depth, x));
            }
        }
    }
    valleys.sort_by(|a, b| b.0.total_cmp(&a.0));
    let cuts: Vec<f64> = valleys
        .into_iter()
        .take(num_bins - 1)
        .map(|(_, x)| x)
        .collect();
    merge_cut_candidates(cuts, &quantile_cuts(&finite, num_bins), num_bins - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_data_cut_between_modes() {
        // Two clear modes around 0 and 100.
        let mut vals: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        vals.extend((0..100).map(|i| 100.0 + (i % 10) as f64));
        let cuts = kde_cuts(&vals, 2, 256);
        assert_eq!(cuts.len(), 1);
        assert!(cuts[0] > 15.0 && cuts[0] < 95.0, "cut at {}", cuts[0]);
    }

    #[test]
    fn trimodal_data_gets_two_valley_cuts() {
        let mut vals = Vec::new();
        for center in [0.0, 50.0, 100.0] {
            vals.extend((0..60).map(|i| center + (i % 6) as f64));
        }
        let cuts = kde_cuts(&vals, 3, 256);
        assert_eq!(cuts.len(), 2);
        assert!(cuts[0] > 10.0 && cuts[0] < 50.0);
        assert!(cuts[1] > 60.0 && cuts[1] < 100.0);
    }

    #[test]
    fn unimodal_data_falls_back_to_quantiles() {
        let vals: Vec<f64> = (0..200).map(|i| i as f64 * 0.5).collect();
        let cuts = kde_cuts(&vals, 4, 128);
        assert_eq!(cuts.len(), 3);
        // Cuts must be strictly increasing.
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn degenerate_data() {
        assert!(kde_cuts(&[], 5, 64).is_empty());
        assert!(kde_cuts(&[1.0], 5, 64).is_empty());
        assert!(kde_cuts(&[2.0; 30], 5, 64).is_empty());
        assert!(kde_cuts(&[1.0, 2.0, 3.0], 1, 64).is_empty());
    }

    #[test]
    fn kde_density_integrates_roughly_to_one() {
        let vals: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let kde = GaussianKde::fit(&vals).unwrap();
        let grid = kde.density_grid(512);
        let dx = grid[1].0 - grid[0].0;
        let integral: f64 = grid.iter().map(|&(_, d)| d * dx).sum();
        assert!((integral - 1.0).abs() < 0.1, "integral = {integral}");
        assert!(kde.bandwidth() > 0.0);
    }

    #[test]
    fn kde_fit_requires_spread() {
        assert!(GaussianKde::fit(&[5.0, 5.0, 5.0]).is_none());
        assert!(GaussianKde::fit(&[1.0]).is_none());
        assert!(GaussianKde::fit(&[f64::NAN, f64::NAN]).is_none());
    }

    #[test]
    fn windowed_grid_matches_exact_grid() {
        // Mixed multi-modal data with uneven mode sizes.
        let mut vals: Vec<f64> = (0..400).map(|i| (i % 37) as f64 * 0.7).collect();
        vals.extend((0..150).map(|i| 120.0 + (i % 11) as f64));
        vals.extend((0..80).map(|i| 300.0 + (i % 23) as f64 * 0.3));
        let kde = GaussianKde::fit(&vals).unwrap();
        let exact = kde.density_grid(256);
        let windowed = kde.density_grid_windowed(256, DEFAULT_KDE_CUTOFF_BANDWIDTHS);
        assert_eq!(exact.len(), windowed.len());
        let peak = exact.iter().map(|&(_, d)| d).fold(0.0f64, f64::max);
        for (&(xe, de), &(xw, dw)) in exact.iter().zip(&windowed) {
            assert_eq!(xe, xw, "grid positions must be bit-identical");
            assert!(
                (de - dw).abs() <= 1e-12 * peak,
                "density at {xe} drifted: exact {de} vs windowed {dw}"
            );
        }
        // An infinite cutoff IS the exact evaluator.
        let inf = kde.density_grid_windowed(256, f64::INFINITY);
        assert_eq!(exact, inf);
    }

    #[test]
    fn windowed_cuts_match_exact_cuts() {
        // Same planted shapes as the grid test, exercised end to end.
        for (scale, shift) in [(1.0, 0.0), (1e6, 3e8), (1e-3, -5.0)] {
            let mut vals = Vec::new();
            for center in [0.0, 50.0, 100.0] {
                vals.extend((0..60).map(|i| (center + (i % 6) as f64) * scale + shift));
            }
            let exact = kde_cuts_with_cutoff(&vals, 4, 256, f64::INFINITY);
            let windowed = kde_cuts(&vals, 4, 256);
            assert_eq!(exact, windowed, "scale {scale} shift {shift}");
        }
    }

    #[test]
    fn sparse_grid_uses_direct_window_evaluation() {
        // Far outliers around a tight central cluster: the IQR-driven
        // bandwidth is tiny relative to the span, so the grid step exceeds
        // DIRECT_EVAL_STEP_BANDWIDTHS bandwidths and each sample's window
        // covers only a handful of grid points (the direct-`exp` fallback).
        let mut vals: Vec<f64> = vec![-350.0; 25];
        vals.extend((0..150).map(|i| (i % 50) as f64 / 50.0));
        vals.extend(vec![350.0; 25]);
        let kde = GaussianKde::fit(&vals).unwrap();
        let (lo, hi) = kde.grid_bounds();
        let u = (hi - lo) / 255.0 / kde.bandwidth();
        assert!(
            u > DIRECT_EVAL_STEP_BANDWIDTHS,
            "setup must trigger the direct path, step = {u} bandwidths"
        );
        let exact = kde.density_grid(256);
        let windowed = kde.density_grid_windowed(256, DEFAULT_KDE_CUTOFF_BANDWIDTHS);
        let peak = exact.iter().map(|&(_, d)| d).fold(0.0f64, f64::max);
        assert!(peak > 0.0);
        for (&(xe, de), &(xw, dw)) in exact.iter().zip(&windowed) {
            assert_eq!(xe, xw);
            assert!(
                (de - dw).abs() <= 1e-11 * peak,
                "density at {xe} drifted: exact {de} vs windowed {dw}"
            );
        }
    }

    #[test]
    fn cut_dedup_uses_relative_tolerance() {
        // On a 1e12-magnitude column, cuts 0.5 apart (a few thousand ULPs —
        // a rounding-level coincidence) are the same split; the old absolute
        // `f64::EPSILON` check kept both.
        assert!(cuts_close(1.0e12, 1.0e12 + 0.5));
        // Wider gaps are genuinely distinct, even at large magnitude.
        assert!(!cuts_close(1.0e12, 1.0e12 + 100_000.0));
        assert!(!cuts_close(1.0, 2.0));
        // Offset columns keep their sub-unit structure: epoch seconds with
        // millisecond cuts must not merge.
        assert!(!cuts_close(1.7e9, 1.7e9 + 0.2));
        // Near zero the floor keeps the tolerance absolute.
        assert!(cuts_close(0.0, 5e-13));
        assert!(!cuts_close(0.0, 1e-3));
    }

    #[test]
    fn top_up_skips_near_identical_quantile_cuts() {
        // A valley cut at 1e12 and a quantile candidate half a unit away
        // (rounding-level at that magnitude): the old `f64::EPSILON`
        // absolute tolerance admitted the near-duplicate and produced an
        // empty bin between them.
        let merged = merge_cut_candidates(vec![1.0e12], &[1.0e12 + 0.5, 2.0e12], 3);
        assert_eq!(merged, vec![1.0e12, 2.0e12]);
        // Distinct candidates still top up to the requested count.
        let merged = merge_cut_candidates(vec![10.0], &[5.0, 20.0], 3);
        assert_eq!(merged, vec![5.0, 10.0, 20.0]);
        // The final pass also collapses near-identical survivors.
        let merged = merge_cut_candidates(vec![1.0e12 + 0.5, 1.0e12], &[], 3);
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn offset_timestamp_columns_keep_their_cuts() {
        // Epoch-seconds column with millisecond-level structure: the cuts
        // sit ~1e-10 apart in relative terms, hundreds of ULPs each — a
        // coarser relative tolerance would collapse the requested bin count
        // to 2.
        let vals: Vec<f64> = (0..500).map(|i| 1.7e9 + i as f64 * 0.002).collect();
        let cuts = kde_cuts(&vals, 5, 256);
        assert_eq!(cuts.len(), 4, "cuts collapsed: {cuts:?}");
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn large_magnitude_columns_produce_separated_cuts() {
        let mut vals: Vec<f64> = (0..200).map(|i| 1.0e12 + (i % 10) as f64 * 1e8).collect();
        vals.extend((0..200).map(|i| 3.0e12 + (i % 10) as f64 * 1e8));
        for bins in [2, 4, 6] {
            let cuts = kde_cuts(&vals, bins, 128);
            for w in cuts.windows(2) {
                assert!(
                    !cuts_close(w[0], w[1]) && w[0] < w[1],
                    "cuts {} and {} too close for bins={bins}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}
