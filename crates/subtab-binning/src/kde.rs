//! Kernel-density-estimation based cut-point computation.
//!
//! The paper's reference implementation bins continuous columns with a
//! SciPy-based kernel density estimate: cut points are placed at the valleys
//! (local minima) of the estimated density so that each bin corresponds to a
//! "natural" mode of the distribution. This module reimplements that idea:
//! a Gaussian KDE with Silverman's rule-of-thumb bandwidth is evaluated on a
//! uniform grid, local minima of the density are detected, and the deepest
//! `num_bins − 1` valleys become cut points. If the density has fewer valleys
//! than requested (e.g. a unimodal column), the remaining cuts fall back to
//! quantile cuts so the configured bin count is still honoured.

use crate::quantile::quantile_cuts;

/// A fitted one-dimensional Gaussian kernel density estimate.
#[derive(Debug, Clone)]
pub struct GaussianKde {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl GaussianKde {
    /// Fits a KDE with Silverman's rule-of-thumb bandwidth.
    ///
    /// Returns `None` when there are fewer than two finite samples or the
    /// data has zero spread (no density structure to exploit).
    pub fn fit(values: &[f64]) -> Option<Self> {
        let samples: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if samples.len() < 2 {
            return None;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt();
        let iqr = {
            let mut s = samples.clone();
            s.sort_by(f64::total_cmp);
            let q75 = crate::quantile::quantile_of_sorted(&s, 0.75);
            let q25 = crate::quantile::quantile_of_sorted(&s, 0.25);
            q75 - q25
        };
        // Silverman's rule: 0.9 * min(std, IQR/1.34) * n^(-1/5).
        let spread = if iqr > 0.0 { std.min(iqr / 1.34) } else { std };
        if spread <= 0.0 {
            return None;
        }
        let bandwidth = 0.9 * spread * n.powf(-0.2);
        Some(GaussianKde { samples, bandwidth })
    }

    /// The bandwidth chosen by Silverman's rule.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * h * self.samples.len() as f64);
        self.samples
            .iter()
            .map(|&s| (-0.5 * ((x - s) / h).powi(2)).exp())
            .sum::<f64>()
            * norm
    }

    /// Evaluates the density on a uniform grid over the sample range
    /// (slightly padded by one bandwidth on each side).
    pub fn density_grid(&self, grid_size: usize) -> Vec<(f64, f64)> {
        let lo = self.samples.iter().copied().fold(f64::INFINITY, f64::min) - self.bandwidth;
        let hi = self
            .samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            + self.bandwidth;
        let n = grid_size.max(8);
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.density(x))
            })
            .collect()
    }
}

/// Computes cut points at the deepest valleys of the KDE, topping up with
/// quantile cuts when the density is not multi-modal enough.
pub fn kde_cuts(values: &[f64], num_bins: usize, grid_size: usize) -> Vec<f64> {
    if num_bins < 2 {
        return Vec::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let Some(kde) = GaussianKde::fit(&finite) else {
        return quantile_cuts(&finite, num_bins);
    };
    let grid = kde.density_grid(grid_size);
    // A valley is a grid point whose density is a local minimum; its depth is
    // the smaller of the two peak-to-valley drops around it.
    let mut valleys: Vec<(f64, f64)> = Vec::new(); // (depth, x)
    for i in 1..grid.len().saturating_sub(1) {
        let (x, d) = grid[i];
        if d <= grid[i - 1].1 && d <= grid[i + 1].1 && (d < grid[i - 1].1 || d < grid[i + 1].1) {
            // Find surrounding peaks.
            let left_peak = grid[..i]
                .iter()
                .map(|&(_, dd)| dd)
                .fold(f64::NEG_INFINITY, f64::max);
            let right_peak = grid[i + 1..]
                .iter()
                .map(|&(_, dd)| dd)
                .fold(f64::NEG_INFINITY, f64::max);
            let depth = (left_peak - d).min(right_peak - d);
            if depth > 0.0 {
                valleys.push((depth, x));
            }
        }
    }
    valleys.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut cuts: Vec<f64> = valleys
        .into_iter()
        .take(num_bins - 1)
        .map(|(_, x)| x)
        .collect();
    if cuts.len() < num_bins - 1 {
        // Top up with quantile cuts that do not duplicate existing ones.
        for q in quantile_cuts(&finite, num_bins) {
            if cuts.len() >= num_bins - 1 {
                break;
            }
            if cuts.iter().all(|&c| (c - q).abs() > f64::EPSILON) {
                cuts.push(q);
            }
        }
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_data_cut_between_modes() {
        // Two clear modes around 0 and 100.
        let mut vals: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        vals.extend((0..100).map(|i| 100.0 + (i % 10) as f64));
        let cuts = kde_cuts(&vals, 2, 256);
        assert_eq!(cuts.len(), 1);
        assert!(cuts[0] > 15.0 && cuts[0] < 95.0, "cut at {}", cuts[0]);
    }

    #[test]
    fn trimodal_data_gets_two_valley_cuts() {
        let mut vals = Vec::new();
        for center in [0.0, 50.0, 100.0] {
            vals.extend((0..60).map(|i| center + (i % 6) as f64));
        }
        let cuts = kde_cuts(&vals, 3, 256);
        assert_eq!(cuts.len(), 2);
        assert!(cuts[0] > 10.0 && cuts[0] < 50.0);
        assert!(cuts[1] > 60.0 && cuts[1] < 100.0);
    }

    #[test]
    fn unimodal_data_falls_back_to_quantiles() {
        let vals: Vec<f64> = (0..200).map(|i| i as f64 * 0.5).collect();
        let cuts = kde_cuts(&vals, 4, 128);
        assert_eq!(cuts.len(), 3);
        // Cuts must be strictly increasing.
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn degenerate_data() {
        assert!(kde_cuts(&[], 5, 64).is_empty());
        assert!(kde_cuts(&[1.0], 5, 64).is_empty());
        assert!(kde_cuts(&[2.0; 30], 5, 64).is_empty());
        assert!(kde_cuts(&[1.0, 2.0, 3.0], 1, 64).is_empty());
    }

    #[test]
    fn kde_density_integrates_roughly_to_one() {
        let vals: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let kde = GaussianKde::fit(&vals).unwrap();
        let grid = kde.density_grid(512);
        let dx = grid[1].0 - grid[0].0;
        let integral: f64 = grid.iter().map(|&(_, d)| d * dx).sum();
        assert!((integral - 1.0).abs() < 0.1, "integral = {integral}");
        assert!(kde.bandwidth() > 0.0);
    }

    #[test]
    fn kde_fit_requires_spread() {
        assert!(GaussianKde::fit(&[5.0, 5.0, 5.0]).is_none());
        assert!(GaussianKde::fit(&[1.0]).is_none());
        assert!(GaussianKde::fit(&[f64::NAN, f64::NAN]).is_none());
    }
}
