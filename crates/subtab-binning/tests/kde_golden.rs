//! Golden-value tests for the KDE cut-point evaluators.
//!
//! The fixture in `tests/golden/kde_cuts_ref.txt` pins the **exact** dense
//! evaluator (`kde_cuts_with_cutoff(…, f64::INFINITY)`): for every planted
//! evaluation dataset and every column the binner treats numerically, it
//! records the cut points as hex `f64::to_bits`. The exact evaluator must
//! keep reproducing it byte for byte, and the windowed evaluator (the
//! binner's default) must select bit-identical cuts on all of these
//! datasets — the truncated tail it drops is below the rounding noise of the
//! dense sum.

use subtab_binning::kde::{kde_cuts, kde_cuts_with_cutoff};
use subtab_binning::BinningConfig;
use subtab_data::ColumnType;
use subtab_datasets::{DatasetKind, DatasetSize};

const DATASETS: &[DatasetKind] = &[
    DatasetKind::Flights,
    DatasetKind::Cyber,
    DatasetKind::Spotify,
    DatasetKind::CreditCard,
    DatasetKind::UsFunds,
    DatasetKind::BankLoans,
];

/// The seed the `preprocess` benchmark builds its datasets with.
const SEED: u64 = 31;

/// Numeric values of every column the binner would cut numerically, exactly
/// as `fit_numeric` collects them.
fn numeric_columns(kind: DatasetKind, config: &BinningConfig) -> Vec<(String, Vec<f64>)> {
    let ds = kind.build(DatasetSize::Tiny, SEED);
    let mut out = Vec::new();
    for col in ds.table.columns() {
        let numeric = match col.column_type() {
            ColumnType::Float => true,
            ColumnType::Int => col.distinct_count() > config.categorical_int_threshold,
            ColumnType::Str | ColumnType::Bool => false,
        };
        if !numeric {
            continue;
        }
        let values: Vec<f64> = (0..col.len()).filter_map(|r| col.get_f64(r)).collect();
        out.push((col.name().to_string(), values));
    }
    out
}

/// Renders one dataset's exact cuts in the fixture format:
/// `<dataset> <column> <hex bits of each cut>`.
fn render_exact_cuts(kind: DatasetKind, config: &BinningConfig) -> String {
    let mut out = String::new();
    for (name, values) in numeric_columns(kind, config) {
        let cuts = kde_cuts_with_cutoff(
            &values,
            config.num_bins,
            config.kde_grid_size,
            f64::INFINITY,
        );
        out.push_str(kind.label());
        out.push(' ');
        out.push_str(&name);
        for c in cuts {
            out.push_str(&format!(" {:016x}", c.to_bits()));
        }
        out.push('\n');
    }
    out
}

#[test]
fn exact_evaluator_matches_the_golden_fixture() {
    let config = BinningConfig::default();
    let mut rendered = String::new();
    for &kind in DATASETS {
        rendered.push_str(&render_exact_cuts(kind, &config));
    }
    let golden = include_str!("golden/kde_cuts_ref.txt");
    assert_eq!(
        rendered, golden,
        "exact KDE cuts drifted from the golden fixture \
         (run the ignored `regenerate_golden_fixture` test if the drift is intentional)"
    );
}

#[test]
fn windowed_cuts_match_exact_cuts_on_every_planted_dataset() {
    let config = BinningConfig::default();
    for &kind in DATASETS {
        for (name, values) in numeric_columns(kind, &config) {
            let exact = kde_cuts_with_cutoff(
                &values,
                config.num_bins,
                config.kde_grid_size,
                f64::INFINITY,
            );
            let windowed = kde_cuts(&values, config.num_bins, config.kde_grid_size);
            assert_eq!(
                exact,
                windowed,
                "windowed cuts diverged from the exact evaluator on {} column {name}",
                kind.label()
            );
        }
    }
}

/// Regenerates the golden fixture in the source tree. Run explicitly with
/// `cargo test -p subtab-binning --test kde_golden -- --ignored` after an
/// intentional change to the exact evaluator, and review the diff.
#[test]
#[ignore]
fn regenerate_golden_fixture() {
    let config = BinningConfig::default();
    let mut rendered = String::new();
    for &kind in DATASETS {
        rendered.push_str(&render_exact_cuts(kind, &config));
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/kde_cuts_ref.txt");
    std::fs::write(path, rendered).expect("write fixture");
}
