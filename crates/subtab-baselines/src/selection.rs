//! The common output type of all selection algorithms.

/// A candidate sub-table identified by row and column indices into the full
/// table. Produced by every baseline (and convertible from SubTab's own
/// output), consumed by `subtab_metrics::Evaluator::score`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Selection {
    /// Selected row indices (distinct, ascending).
    pub rows: Vec<usize>,
    /// Selected column indices (distinct, ascending).
    pub cols: Vec<usize>,
}

impl Selection {
    /// Creates a selection, sorting and deduplicating the indices.
    pub fn new(mut rows: Vec<usize>, mut cols: Vec<usize>) -> Self {
        rows.sort_unstable();
        rows.dedup();
        cols.sort_unstable();
        cols.dedup();
        Selection { rows, cols }
    }

    /// Whether the selection is a valid `k × l` sub-table of an `n × m`
    /// table.
    pub fn is_valid(&self, k: usize, l: usize, n: usize, m: usize) -> bool {
        self.rows.len() == k.min(n)
            && self.cols.len() == l.min(m)
            && self.rows.iter().all(|&r| r < n)
            && self.cols.iter().all(|&c| c < m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let s = Selection::new(vec![3, 1, 3, 2], vec![5, 5, 0]);
        assert_eq!(s.rows, vec![1, 2, 3]);
        assert_eq!(s.cols, vec![0, 5]);
    }

    #[test]
    fn validity() {
        let s = Selection::new(vec![0, 1, 2], vec![0, 1]);
        assert!(s.is_valid(3, 2, 10, 5));
        assert!(!s.is_valid(4, 2, 10, 5));
        assert!(!s.is_valid(3, 2, 2, 5)); // row 2 out of range for n=2... and k.min(n)=2 != 3
        let clamped = Selection::new(vec![0, 1], vec![0, 1]);
        assert!(clamped.is_valid(5, 2, 2, 5));
    }
}
