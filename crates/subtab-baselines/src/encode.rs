//! One-hot / numeric encoding of raw tables for the naive-clustering
//! baseline (`NC` in the paper: "transform the categorical and textual
//! columns to continuous values using one-hot encoding").

use subtab_data::{ColumnType, Table};

/// Encodes every row of `table` as a dense vector:
///
/// * numeric columns contribute one min–max-normalised dimension (nulls → 0),
/// * categorical columns contribute one 0/1 dimension per distinct value
///   (nulls → all zeros).
pub fn encode_rows(table: &Table) -> Vec<Vec<f32>> {
    let n = table.num_rows();
    let mut features: Vec<Vec<f32>> = vec![Vec::new(); n];
    for col in table.columns() {
        match col.column_type() {
            ColumnType::Int | ColumnType::Float | ColumnType::Bool => {
                let (lo, hi) = col.min_max().unwrap_or((0.0, 1.0));
                let span = if hi > lo { hi - lo } else { 1.0 };
                for (r, row_features) in features.iter_mut().enumerate() {
                    let v = col.get_f64(r).map(|x| (x - lo) / span).unwrap_or(0.0);
                    row_features.push(v as f32);
                }
            }
            ColumnType::Str => {
                let dict = col.dictionary().to_vec();
                for (r, row_features) in features.iter_mut().enumerate() {
                    let code = col.get_code(r);
                    for (d, _) in dict.iter().enumerate() {
                        row_features.push(if code == Some(d as u32) { 1.0 } else { 0.0 });
                    }
                }
            }
        }
    }
    features
}

/// Encodes every column of `table` as a dense vector of length `num_rows`:
/// numeric columns use min–max-normalised values, categorical columns use
/// their dictionary code scaled to `[0, 1]`, nulls use `-1` so that columns
/// with the same missingness pattern cluster together.
pub fn encode_columns(table: &Table) -> Vec<Vec<f32>> {
    let n = table.num_rows();
    table
        .columns()
        .iter()
        .map(|col| {
            let mut v = Vec::with_capacity(n);
            match col.column_type() {
                ColumnType::Int | ColumnType::Float | ColumnType::Bool => {
                    let (lo, hi) = col.min_max().unwrap_or((0.0, 1.0));
                    let span = if hi > lo { hi - lo } else { 1.0 };
                    for r in 0..n {
                        v.push(match col.get_f64(r) {
                            Some(x) => ((x - lo) / span) as f32,
                            None => -1.0,
                        });
                    }
                }
                ColumnType::Str => {
                    let dict_len = col.dictionary().len().max(1) as f32;
                    for r in 0..n {
                        v.push(match col.get_code(r) {
                            Some(c) => c as f32 / dict_len,
                            None => -1.0,
                        });
                    }
                }
            }
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::builder()
            .column_f64("x", vec![Some(0.0), Some(5.0), Some(10.0), None])
            .column_str("c", vec![Some("a"), Some("b"), Some("a"), Some("b")])
            .build()
            .unwrap()
    }

    #[test]
    fn row_encoding_dimensions_and_normalisation() {
        let rows = encode_rows(&table());
        assert_eq!(rows.len(), 4);
        // 1 numeric + 2 one-hot dims.
        assert!(rows.iter().all(|r| r.len() == 3));
        assert_eq!(rows[0][0], 0.0);
        assert_eq!(rows[1][0], 0.5);
        assert_eq!(rows[2][0], 1.0);
        assert_eq!(rows[3][0], 0.0); // null
        assert_eq!(rows[0][1..], [1.0, 0.0]);
        assert_eq!(rows[1][1..], [0.0, 1.0]);
    }

    #[test]
    fn column_encoding_length_matches_rows() {
        let cols = encode_columns(&table());
        assert_eq!(cols.len(), 2);
        assert!(cols.iter().all(|c| c.len() == 4));
        // Null is marked distinctly.
        assert_eq!(cols[0][3], -1.0);
    }

    #[test]
    fn constant_columns_do_not_divide_by_zero() {
        let t = Table::builder()
            .column_f64("k", vec![Some(3.0), Some(3.0)])
            .build()
            .unwrap();
        let rows = encode_rows(&t);
        assert!(rows.iter().flatten().all(|v| v.is_finite()));
        let cols = encode_columns(&t);
        assert!(cols.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_table() {
        let t = Table::builder()
            .column_i64("x", Vec::new())
            .build()
            .unwrap();
        assert!(encode_rows(&t).is_empty());
        assert_eq!(encode_columns(&t).len(), 1);
        assert!(encode_columns(&t)[0].is_empty());
    }
}
