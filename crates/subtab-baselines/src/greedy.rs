//! Algorithm 1: greedy sub-table selection with column enumeration.
//!
//! `ColumnSelection` enumerates column subsets of size `l`; for each subset,
//! `GreedyRowSelection` adds rows one at a time, always picking the row with
//! the largest marginal gain in cell coverage. For a fixed column set the
//! greedy row selection is a `(1 − 1/e)`-approximation of the optimal
//! coverage (Proposition 4.3), because cell coverage is monotone and
//! submodular in the row set.
//!
//! Full enumeration of `C(m, l)` column subsets is infeasible for real tables
//! (the paper reports >48 h on a server), so the same function also
//! implements the paper's "semi-greedy" variant: visit the column subsets in
//! random order and stop when a time budget or a subset-count budget is
//! exhausted, returning the best sub-table found so far.

use crate::selection::Selection;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use subtab_metrics::Evaluator;

/// Configuration of the greedy / semi-greedy baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreedyConfig {
    /// Maximum number of column subsets to evaluate (`None` = all of them,
    /// the exact Algorithm 1).
    pub max_column_subsets: Option<usize>,
    /// Wall-clock budget (`None` = unlimited).
    pub time_budget: Option<Duration>,
    /// Visit column subsets in random order (the semi-greedy variant) rather
    /// than lexicographic order.
    pub shuffle_columns: bool,
    /// RNG seed for the shuffle.
    pub seed: u64,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            max_column_subsets: None,
            time_budget: None,
            shuffle_columns: false,
            seed: 42,
        }
    }
}

impl GreedyConfig {
    /// The paper's semi-greedy setting: random column order under a budget.
    pub fn semi_greedy(max_column_subsets: usize, seed: u64) -> Self {
        GreedyConfig {
            max_column_subsets: Some(max_column_subsets),
            time_budget: None,
            shuffle_columns: true,
            seed,
        }
    }
}

/// Runs Algorithm 1 (or its semi-greedy variant) and returns the best
/// selection found, optimising cell coverage only (as in the paper, the
/// greedy baseline does not optimise diversity).
pub fn greedy_select(
    evaluator: &Evaluator,
    k: usize,
    l: usize,
    target_columns: &[usize],
    config: &GreedyConfig,
) -> Selection {
    let binned = evaluator.binned();
    let n = binned.num_rows();
    let m = binned.num_columns();
    if n == 0 || m == 0 || k == 0 || l == 0 {
        return Selection::default();
    }
    let free_cols: Vec<usize> = (0..m).filter(|c| !target_columns.contains(c)).collect();
    let l_free = l.saturating_sub(target_columns.len()).min(free_cols.len());

    // Enumerate the column subsets to visit.
    let mut subsets = combinations(&free_cols, l_free);
    if config.shuffle_columns {
        let mut rng = StdRng::seed_from_u64(config.seed);
        subsets.shuffle(&mut rng);
    }
    if let Some(cap) = config.max_column_subsets {
        subsets.truncate(cap.max(1));
    }

    let start = Instant::now();
    let mut best: Option<(f64, Selection)> = None;
    for (i, subset) in subsets.iter().enumerate() {
        if i > 0 {
            if let Some(budget) = config.time_budget {
                if start.elapsed() >= budget {
                    break;
                }
            }
        }
        let mut cols: Vec<usize> = target_columns.to_vec();
        cols.extend(subset.iter().copied());
        cols.sort_unstable();
        let (rows, cov) = greedy_row_selection(evaluator, k, &cols);
        if best.as_ref().is_none_or(|(b, _)| cov > *b) {
            best = Some((cov, Selection::new(rows, cols)));
        }
    }
    best.map(|(_, s)| s).unwrap_or_default()
}

/// GreedyRowSelection of Algorithm 1: iteratively adds the row with the
/// largest marginal cell-coverage gain. Returns the selected rows and the
/// final coverage.
pub fn greedy_row_selection(evaluator: &Evaluator, k: usize, cols: &[usize]) -> (Vec<usize>, f64) {
    let n = evaluator.binned().num_rows();
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    let mut current_cov = 0.0f64;
    for _ in 0..k.min(n) {
        let mut best_row: Option<usize> = None;
        let mut best_cov = current_cov;
        for r in 0..n {
            if selected.contains(&r) {
                continue;
            }
            selected.push(r);
            let cov = evaluator.cell_coverage(&selected, cols);
            selected.pop();
            if cov > best_cov || (best_row.is_none() && cov >= best_cov) {
                best_cov = cov;
                best_row = Some(r);
            }
        }
        match best_row {
            Some(r) => {
                selected.push(r);
                current_cov = best_cov;
            }
            None => break,
        }
    }
    (selected, current_cov)
}

/// All `size`-element combinations of `items` (lexicographic order).
fn combinations(items: &[usize], size: usize) -> Vec<Vec<usize>> {
    if size == 0 {
        return vec![Vec::new()];
    }
    if size > items.len() {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    let mut indices: Vec<usize> = (0..size).collect();
    loop {
        out.push(indices.iter().map(|&i| items[i]).collect());
        // Advance the combination.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if indices[i] != i + items.len() - size {
                break;
            }
        }
        if indices[i] == i + items.len() - size {
            return out;
        }
        indices[i] += 1;
        for j in i + 1..size {
            indices[j] = indices[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;
    use subtab_rules::{MiningConfig, RuleMiner, RuleSet};

    fn evaluator(alpha: f64) -> Evaluator {
        let t = Table::builder()
            .column_i64(
                "cancelled",
                (0..30).map(|i| Some(i64::from(i % 3 == 0))).collect(),
            )
            .column_str(
                "dep",
                (0..30)
                    .map(|i| if i % 3 == 0 { None } else { Some("morning") })
                    .collect(),
            )
            .column_i64(
                "year",
                (0..30).map(|i| Some(2015 + (i % 2) as i64)).collect(),
            )
            .column_str(
                "extra",
                (0..30)
                    .map(|i| Some(if i % 5 == 0 { "p" } else { "q" }))
                    .collect(),
            )
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let binned = binner.apply(&t).unwrap();
        let rules = RuleMiner::new(MiningConfig {
            min_rule_size: 2,
            ..Default::default()
        })
        .mine(&binned);
        Evaluator::new(binned, &rules, alpha)
    }

    #[test]
    fn combinations_are_correct() {
        let c = combinations(&[1, 2, 3, 4], 2);
        assert_eq!(c.len(), 6);
        assert!(c.contains(&vec![1, 2]));
        assert!(c.contains(&vec![3, 4]));
        assert_eq!(combinations(&[1, 2], 0), vec![Vec::<usize>::new()]);
        assert_eq!(combinations(&[1, 2], 5), vec![vec![1, 2]]);
        assert_eq!(combinations(&[5, 6, 7], 3).len(), 1);
    }

    #[test]
    fn greedy_row_selection_is_monotone_in_k() {
        let ev = evaluator(1.0);
        let cols: Vec<usize> = (0..4).collect();
        let (_, cov2) = greedy_row_selection(&ev, 2, &cols);
        let (_, cov5) = greedy_row_selection(&ev, 5, &cols);
        assert!(cov5 >= cov2);
        assert!(cov5 <= 1.0 + 1e-12);
    }

    #[test]
    fn full_greedy_reaches_near_optimal_coverage_on_a_small_table() {
        // With k = n the greedy selection must reach coverage 1 for the full
        // column set, since every rule becomes covered.
        let ev = evaluator(1.0);
        let n = ev.binned().num_rows();
        let sel = greedy_select(&ev, n, 4, &[], &GreedyConfig::default());
        let cov = ev.cell_coverage(&sel.rows, &sel.cols);
        assert!((cov - 1.0).abs() < 1e-9, "coverage = {cov}");
    }

    #[test]
    fn greedy_beats_or_matches_a_single_random_draw() {
        let ev = evaluator(1.0);
        let sel = greedy_select(&ev, 4, 3, &[], &GreedyConfig::default());
        let greedy_cov = ev.cell_coverage(&sel.rows, &sel.cols);
        // A fixed arbitrary selection.
        let arbitrary_cov = ev.cell_coverage(&[1, 2, 4, 5], &[1, 2, 3]);
        assert!(greedy_cov + 1e-12 >= arbitrary_cov);
    }

    #[test]
    fn greedy_approximation_guarantee_on_enumerable_instance() {
        // Small enough to brute-force the optimum; check the (1 - 1/e) bound
        // of Proposition 4.3 for the best column subset.
        let ev = evaluator(1.0);
        let k = 2usize;
        let l = 2usize;
        let n = ev.binned().num_rows();
        let m = ev.binned().num_columns();
        // Brute-force optimum.
        let mut opt = 0.0f64;
        let col_subsets = combinations(&(0..m).collect::<Vec<_>>(), l);
        let row_ids: Vec<usize> = (0..n).collect();
        let row_subsets = combinations(&row_ids, k);
        for cols in &col_subsets {
            for rows in &row_subsets {
                opt = opt.max(ev.cell_coverage(rows, cols));
            }
        }
        let sel = greedy_select(&ev, k, l, &[], &GreedyConfig::default());
        let greedy_cov = ev.cell_coverage(&sel.rows, &sel.cols);
        assert!(
            greedy_cov >= (1.0 - 1.0 / std::f64::consts::E) * opt - 1e-9,
            "greedy {greedy_cov} vs opt {opt}"
        );
    }

    #[test]
    fn semi_greedy_budget_limits_work() {
        let ev = evaluator(1.0);
        let budget = GreedyConfig::semi_greedy(2, 7);
        let sel = greedy_select(&ev, 3, 2, &[], &budget);
        assert_eq!(sel.rows.len(), 3);
        assert_eq!(sel.cols.len(), 2);
        // Deterministic for the same seed.
        assert_eq!(sel, greedy_select(&ev, 3, 2, &[], &budget));
        // Time budget of zero still evaluates at least one subset.
        let timed = GreedyConfig {
            time_budget: Some(Duration::from_millis(0)),
            ..GreedyConfig::default()
        };
        let sel2 = greedy_select(&ev, 3, 2, &[], &timed);
        assert_eq!(sel2.rows.len(), 3);
    }

    #[test]
    fn target_columns_are_respected() {
        let ev = evaluator(1.0);
        let sel = greedy_select(&ev, 3, 2, &[0], &GreedyConfig::default());
        assert!(sel.cols.contains(&0));
        assert_eq!(sel.cols.len(), 2);
    }

    #[test]
    fn empty_rule_set_degenerates_gracefully() {
        let t = Table::builder()
            .column_i64("x", (0..10).map(Some).collect())
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let binned = binner.apply(&t).unwrap();
        let ev = Evaluator::new(binned, &RuleSet::default(), 1.0);
        let sel = greedy_select(&ev, 3, 1, &[], &GreedyConfig::default());
        assert_eq!(sel.rows.len(), 3);
        assert_eq!(sel.cols.len(), 1);
    }
}
