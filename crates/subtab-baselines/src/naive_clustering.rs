//! The `NC` baseline: k-means directly on one-hot-encoded data.
//!
//! The paper's naive-clustering baseline skips the embedding entirely:
//! categorical columns are one-hot encoded, each row becomes a vector, rows
//! are clustered with k-means and the cluster centroids' nearest members form
//! the sub-table rows; columns are selected analogously. The paper shows this
//! captures the underlying patterns much worse than the embedding-based
//! pipeline.

use crate::encode::{encode_columns, encode_rows};
use crate::selection::Selection;
use subtab_cluster::{select_k_representatives, Matrix};
use subtab_data::Table;

/// Selects a `k × l` sub-table by clustering one-hot encoded rows and
/// columns. Target columns are excluded from the column clustering and always
/// included in the result.
pub fn naive_clustering_select(
    table: &Table,
    k: usize,
    l: usize,
    target_columns: &[usize],
    seed: u64,
) -> Selection {
    let n = table.num_rows();
    let m = table.num_columns();
    if n == 0 || m == 0 || k == 0 || l == 0 {
        return Selection::default();
    }

    // Rows.
    let encoded_rows = encode_rows(table);
    let row_dim = encoded_rows.first().map_or(0, Vec::len);
    let row_vectors = Matrix::from_rows(&encoded_rows, row_dim);
    let rows = select_k_representatives(row_vectors.view(), k.min(n), seed);

    // Columns: cluster the non-target columns, then add the targets.
    let col_vectors = encode_columns(table);
    let free: Vec<usize> = (0..m).filter(|c| !target_columns.contains(c)).collect();
    let col_dim = col_vectors.first().map_or(0, Vec::len);
    let mut free_vectors = Matrix::with_capacity(free.len(), col_dim);
    for &c in &free {
        free_vectors.push_row(&col_vectors[c]);
    }
    let l_free = l.saturating_sub(target_columns.len()).min(free.len());
    let mut cols: Vec<usize> = target_columns.to_vec();
    if l_free > 0 {
        let reps = select_k_representatives(free_vectors.view(), l_free, seed.wrapping_add(1));
        cols.extend(reps.into_iter().map(|p| free[p]));
    }
    Selection::new(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: usize) -> Table {
        Table::builder()
            .column_f64(
                "x",
                (0..rows)
                    .map(|i| Some(if i % 2 == 0 { 1.0 } else { 1000.0 } + i as f64))
                    .collect(),
            )
            .column_str(
                "c",
                (0..rows)
                    .map(|i| Some(if i % 2 == 0 { "a" } else { "b" }))
                    .collect(),
            )
            .column_i64("flag", (0..rows).map(|i| Some((i % 2) as i64)).collect())
            .build()
            .unwrap()
    }

    #[test]
    fn selects_requested_dimensions() {
        let t = table(40);
        let s = naive_clustering_select(&t, 6, 2, &[], 1);
        assert!(s.is_valid(6, 2, 40, 3));
    }

    #[test]
    fn covers_both_row_groups() {
        let t = table(40);
        let s = naive_clustering_select(&t, 4, 3, &[], 2);
        let values: Vec<String> = s
            .rows
            .iter()
            .map(|&r| t.value(r, "c").unwrap().render())
            .collect();
        assert!(values.iter().any(|v| v == "a"));
        assert!(values.iter().any(|v| v == "b"));
    }

    #[test]
    fn target_columns_included() {
        let t = table(20);
        let s = naive_clustering_select(&t, 3, 2, &[2], 3);
        assert!(s.cols.contains(&2));
        assert_eq!(s.cols.len(), 2);
    }

    #[test]
    fn degenerate_inputs() {
        let t = table(5);
        assert_eq!(
            naive_clustering_select(&t, 0, 2, &[], 0),
            Selection::default()
        );
        assert_eq!(
            naive_clustering_select(&t, 2, 0, &[], 0),
            Selection::default()
        );
        let s = naive_clustering_select(&t, 50, 50, &[], 0);
        assert_eq!(s.rows.len(), 5);
        assert_eq!(s.cols.len(), 3);
    }

    #[test]
    fn deterministic() {
        let t = table(30);
        assert_eq!(
            naive_clustering_select(&t, 5, 2, &[], 7),
            naive_clustering_select(&t, 5, 2, &[], 7)
        );
    }
}
