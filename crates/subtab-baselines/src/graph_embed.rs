//! The EmbDI-style graph-embedding baseline.
//!
//! EmbDI (Cappuzzo et al., SIGMOD 2020) builds a tripartite graph over rows,
//! columns and cell values, generates random walks over it, and trains a
//! word-embedding model on the walks — a Node2Vec-flavoured table embedding
//! designed for data-integration tasks. The paper compares SubTab against
//! this embedding: it reaches comparable sub-table quality but its
//! pre-processing is an order of magnitude slower (40 min vs 90 s on FL).
//!
//! This module reimplements the idea at the scale of our substrate: the graph
//! has one node per row, per column and per (column, bin) value; edges connect
//! a row to the values of its cells and a column to the values appearing in
//! it. Random walks over the graph form the sentence corpus; the shared SGNS
//! trainer from `subtab-embed` learns node vectors; rows and columns are then
//! selected with the same centroid mechanism SubTab uses.

use crate::selection::Selection;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subtab_binning::BinnedTable;
use subtab_cluster::{select_k_representatives, Matrix};
use subtab_embed::corpus::Corpus;
use subtab_embed::sgns::train_on_corpus;
use subtab_embed::vocab::Vocab;
use subtab_embed::EmbeddingConfig;

/// Configuration of the graph-embedding baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphEmbedConfig {
    /// Number of random walks started from every node.
    pub walks_per_node: usize,
    /// Length of each walk (number of nodes visited).
    pub walk_length: usize,
    /// SGNS hyper-parameters used to embed the walk corpus.
    pub embedding: EmbeddingConfig,
    /// RNG seed for the walks and the clustering.
    pub seed: u64,
}

impl Default for GraphEmbedConfig {
    fn default() -> Self {
        GraphEmbedConfig {
            walks_per_node: 6,
            walk_length: 20,
            embedding: EmbeddingConfig {
                dim: 32,
                epochs: 2,
                window: Some(5),
                ..Default::default()
            },
            seed: 42,
        }
    }
}

/// Node identifiers in the tripartite graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    Row(usize),
    Column(usize),
    Value(usize), // index into the value-node table
}

/// Selects a `k × l` sub-table with the EmbDI-style pipeline.
pub fn graph_embedding_select(
    binned: &BinnedTable,
    k: usize,
    l: usize,
    target_columns: &[usize],
    config: &GraphEmbedConfig,
) -> Selection {
    let n = binned.num_rows();
    let m = binned.num_columns();
    if n == 0 || m == 0 || k == 0 || l == 0 {
        return Selection::default();
    }

    // --- Build the tripartite graph.
    // Value nodes: one per (column, bin) actually occurring.
    let mut value_ids: Vec<Vec<Option<usize>>> =
        (0..m).map(|c| vec![None; binned.num_bins(c)]).collect();
    let mut num_values = 0usize;
    for (c, ids) in value_ids.iter_mut().enumerate() {
        for r in 0..n {
            let b = binned.bin_id(r, c) as usize;
            if ids[b].is_none() {
                ids[b] = Some(num_values);
                num_values += 1;
            }
        }
    }
    // Adjacency: value -> rows, value -> columns; row -> values; column -> values.
    let mut value_rows: Vec<Vec<usize>> = vec![Vec::new(); num_values];
    let mut value_cols: Vec<Vec<usize>> = vec![Vec::new(); num_values];
    let mut row_values: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut col_values: Vec<Vec<usize>> = vec![Vec::new(); m];
    for r in 0..n {
        for c in 0..m {
            let v = value_ids[c][binned.bin_id(r, c) as usize].expect("registered above");
            value_rows[v].push(r);
            row_values[r].push(v);
            if !col_values[c].contains(&v) {
                col_values[c].push(v);
                value_cols[v].push(c);
            }
        }
    }

    // --- Random walks → sentence corpus.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut vocab = Vocab::default();
    let token = |node: Node| match node {
        Node::Row(r) => format!("R{r}"),
        Node::Column(c) => format!("C{c}"),
        Node::Value(v) => format!("V{v}"),
    };
    let mut sentences: Vec<Vec<u32>> = Vec::new();
    let start_nodes: Vec<Node> = (0..n)
        .map(Node::Row)
        .chain((0..m).map(Node::Column))
        .chain((0..num_values).map(Node::Value))
        .collect();
    for &start in &start_nodes {
        for _ in 0..config.walks_per_node.max(1) {
            let mut sentence = Vec::with_capacity(config.walk_length);
            let mut current = start;
            for _ in 0..config.walk_length.max(2) {
                sentence.push(vocab.add(&token(current)));
                current = match current {
                    Node::Row(r) => {
                        let vals = &row_values[r];
                        Node::Value(vals[rng.gen_range(0..vals.len())])
                    }
                    Node::Column(c) => {
                        let vals = &col_values[c];
                        Node::Value(vals[rng.gen_range(0..vals.len())])
                    }
                    Node::Value(v) => {
                        // Alternate between rows and columns reachable from the value.
                        if rng.gen::<bool>() || value_cols[v].is_empty() {
                            let rows = &value_rows[v];
                            Node::Row(rows[rng.gen_range(0..rows.len())])
                        } else {
                            let cols = &value_cols[v];
                            Node::Column(cols[rng.gen_range(0..cols.len())])
                        }
                    }
                };
            }
            sentences.push(sentence);
        }
    }
    vocab.build_sampling_table();
    let corpus = Corpus { sentences, vocab };
    let embedding = train_on_corpus(&corpus, &config.embedding);

    // --- Node vectors → centroid selection, exactly as in SubTab. Node
    //     vectors are written straight into a flat matrix (zero row for
    //     nodes the walks never embedded), no allocation per node.
    let dim = config.embedding.dim;
    let mut row_vectors = Matrix::with_capacity(n, dim);
    for r in 0..n {
        match embedding.vector(&format!("R{r}")) {
            Some(v) => row_vectors.push_row(v),
            None => row_vectors.push_zero_row(),
        }
    }
    let rows = select_k_representatives(row_vectors.view(), k.min(n), config.seed);

    let free_cols: Vec<usize> = (0..m).filter(|c| !target_columns.contains(c)).collect();
    let l_free = l.saturating_sub(target_columns.len()).min(free_cols.len());
    let mut cols: Vec<usize> = target_columns.to_vec();
    if l_free > 0 {
        let mut col_vectors = Matrix::with_capacity(free_cols.len(), dim);
        for &c in &free_cols {
            match embedding.vector(&format!("C{c}")) {
                Some(v) => col_vectors.push_row(v),
                None => col_vectors.push_zero_row(),
            }
        }
        let reps =
            select_k_representatives(col_vectors.view(), l_free, config.seed.wrapping_add(1));
        cols.extend(reps.into_iter().map(|p| free_cols[p]));
    }
    Selection::new(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;

    fn binned(rows: usize) -> BinnedTable {
        let t = Table::builder()
            .column_i64("group", (0..rows).map(|i| Some((i % 2) as i64)).collect())
            .column_str(
                "label",
                (0..rows)
                    .map(|i| Some(if i % 2 == 0 { "x" } else { "y" }))
                    .collect(),
            )
            .column_f64(
                "value",
                (0..rows)
                    .map(|i| Some(if i % 2 == 0 { 1.0 } else { 100.0 } + i as f64))
                    .collect(),
            )
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        binner.apply(&t).unwrap()
    }

    fn quick_config(seed: u64) -> GraphEmbedConfig {
        GraphEmbedConfig {
            walks_per_node: 3,
            walk_length: 10,
            embedding: EmbeddingConfig {
                dim: 12,
                epochs: 2,
                window: Some(4),
                seed,
                ..Default::default()
            },
            seed,
        }
    }

    #[test]
    fn produces_valid_selection() {
        let bt = binned(30);
        let s = graph_embedding_select(&bt, 6, 2, &[], &quick_config(1));
        assert!(s.is_valid(6, 2, 30, 3));
    }

    #[test]
    fn covers_both_row_groups() {
        let bt = binned(40);
        let s = graph_embedding_select(&bt, 4, 3, &[], &quick_config(2));
        let groups: Vec<u16> = s.rows.iter().map(|&r| bt.bin_id(r, 0)).collect();
        let mut distinct = groups.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() >= 2,
            "representatives should span both groups"
        );
    }

    #[test]
    fn respects_targets_and_is_deterministic() {
        let bt = binned(20);
        let a = graph_embedding_select(&bt, 3, 2, &[0], &quick_config(5));
        let b = graph_embedding_select(&bt, 3, 2, &[0], &quick_config(5));
        assert_eq!(a, b);
        assert!(a.cols.contains(&0));
    }

    #[test]
    fn degenerate_inputs() {
        let bt = binned(10);
        assert_eq!(
            graph_embedding_select(&bt, 0, 2, &[], &quick_config(1)),
            Selection::default()
        );
        assert_eq!(
            graph_embedding_select(&bt, 2, 0, &[], &quick_config(1)),
            Selection::default()
        );
    }
}
