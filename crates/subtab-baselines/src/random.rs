//! The `RAN` baseline: repeated uniform random selection under a time budget.
//!
//! The paper strengthens plain random selection by "iteratively repeating the
//! random selection for one minute and returning the sub-table with highest
//! score among all the randomly drawn sub-tables". The time budget and an
//! iteration cap are both configurable so the experiment harness can scale
//! the budget with the (scaled-down) dataset sizes.

use crate::selection::Selection;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use subtab_metrics::Evaluator;

/// Configuration of the random baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomConfig {
    /// Wall-clock budget for the search (the paper uses one minute).
    pub time_budget: Duration,
    /// Hard cap on the number of random draws (keeps tests deterministic in
    /// duration; the budget usually binds first on large tables).
    pub max_iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            time_budget: Duration::from_secs(60),
            max_iterations: 10_000,
            seed: 42,
        }
    }
}

/// Draws random `k × l` sub-tables and keeps the best one under the combined
/// score. Target columns are always included in the column sample.
pub fn random_select(
    evaluator: &Evaluator,
    k: usize,
    l: usize,
    target_columns: &[usize],
    config: &RandomConfig,
) -> Selection {
    let binned = evaluator.binned();
    let n = binned.num_rows();
    let m = binned.num_columns();
    if n == 0 || m == 0 || k == 0 || l == 0 {
        return Selection::default();
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let all_rows: Vec<usize> = (0..n).collect();
    let free_cols: Vec<usize> = (0..m).filter(|c| !target_columns.contains(c)).collect();
    let l_free = l.saturating_sub(target_columns.len()).min(free_cols.len());

    let start = Instant::now();
    let mut best: Option<(f64, Selection)> = None;
    let mut iterations = 0usize;
    while iterations < config.max_iterations.max(1)
        && (iterations == 0 || start.elapsed() < config.time_budget)
    {
        iterations += 1;
        let rows: Vec<usize> = all_rows
            .choose_multiple(&mut rng, k.min(n))
            .copied()
            .collect();
        let mut cols: Vec<usize> = target_columns.to_vec();
        cols.extend(free_cols.choose_multiple(&mut rng, l_free).copied());
        let candidate = Selection::new(rows, cols);
        let score = evaluator.score(&candidate.rows, &candidate.cols).combined;
        if best.as_ref().is_none_or(|(b, _)| score > *b) {
            best = Some((score, candidate));
        }
    }
    best.map(|(_, s)| s).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;
    use subtab_rules::{MiningConfig, RuleMiner};

    fn evaluator() -> Evaluator {
        let t = Table::builder()
            .column_i64(
                "cancelled",
                (0..60).map(|i| Some(i64::from(i % 3 == 0))).collect(),
            )
            .column_str(
                "dep",
                (0..60)
                    .map(|i| if i % 3 == 0 { None } else { Some("morning") })
                    .collect(),
            )
            .column_i64(
                "year",
                (0..60).map(|i| Some(2015 + (i % 2) as i64)).collect(),
            )
            .column_f64("noise", (0..60).map(|i| Some(i as f64)).collect())
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let binned = binner.apply(&t).unwrap();
        let rules = RuleMiner::new(MiningConfig {
            min_rule_size: 2,
            ..Default::default()
        })
        .mine(&binned);
        Evaluator::new(binned, &rules, 0.5)
    }

    fn quick(seed: u64, iters: usize) -> RandomConfig {
        RandomConfig {
            time_budget: Duration::from_millis(200),
            max_iterations: iters,
            seed,
        }
    }

    #[test]
    fn produces_valid_selection() {
        let ev = evaluator();
        let s = random_select(&ev, 5, 3, &[], &quick(1, 50));
        assert!(s.is_valid(5, 3, 60, 4));
    }

    #[test]
    fn respects_target_columns() {
        let ev = evaluator();
        let s = random_select(&ev, 5, 2, &[0], &quick(2, 50));
        assert!(s.cols.contains(&0));
        assert_eq!(s.cols.len(), 2);
    }

    #[test]
    fn more_iterations_never_hurt_the_score() {
        let ev = evaluator();
        let few = random_select(&ev, 6, 3, &[], &quick(3, 2));
        let many = random_select(&ev, 6, 3, &[], &quick(3, 200));
        let score_few = ev.score(&few.rows, &few.cols).combined;
        let score_many = ev.score(&many.rows, &many.cols).combined;
        assert!(score_many >= score_few - 1e-12);
    }

    #[test]
    fn deterministic_for_fixed_seed_and_iterations() {
        let ev = evaluator();
        let a = random_select(&ev, 4, 3, &[], &quick(9, 40));
        let b = random_select(&ev, 4, 3, &[], &quick(9, 40));
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_dimensions() {
        let ev = evaluator();
        assert_eq!(
            random_select(&ev, 0, 3, &[], &quick(1, 5)),
            Selection::default()
        );
        assert_eq!(
            random_select(&ev, 3, 0, &[], &quick(1, 5)),
            Selection::default()
        );
    }
}
