//! The Multi-Armed-Bandit baseline (`MAB`).
//!
//! Following Section 6.1, each row and each column is an arm. In every
//! iteration the sampler assembles a candidate sub-table from the `k` rows
//! and `l` columns with the highest Upper-Confidence-Bound scores (plus
//! ε-greedy exploration), evaluates it with the combined metric, and
//! distributes the observed reward to all participating arms. The best
//! sub-table seen across all iterations is returned.

use crate::selection::Selection;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use subtab_metrics::Evaluator;

/// Configuration of the MAB baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MabConfig {
    /// Number of sampling iterations.
    pub iterations: usize,
    /// UCB exploration coefficient (√(c · ln T / n)).
    pub exploration: f64,
    /// Probability of picking a uniformly random arm instead of the UCB-best
    /// one (keeps the sampler from collapsing too early on small budgets).
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MabConfig {
    fn default() -> Self {
        MabConfig {
            iterations: 500,
            exploration: 2.0,
            epsilon: 0.1,
            seed: 42,
        }
    }
}

#[derive(Debug, Clone)]
struct ArmStats {
    pulls: Vec<f64>,
    rewards: Vec<f64>,
}

impl ArmStats {
    fn new(n: usize) -> Self {
        ArmStats {
            pulls: vec![0.0; n],
            rewards: vec![0.0; n],
        }
    }

    fn ucb(&self, arm: usize, t: f64, exploration: f64) -> f64 {
        if self.pulls[arm] == 0.0 {
            return f64::INFINITY;
        }
        let mean = self.rewards[arm] / self.pulls[arm];
        mean + (exploration * t.ln() / self.pulls[arm]).sqrt()
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.pulls[arm] += 1.0;
        self.rewards[arm] += reward;
    }
}

/// Runs the UCB sampler and returns the best selection found.
pub fn mab_select(
    evaluator: &Evaluator,
    k: usize,
    l: usize,
    target_columns: &[usize],
    config: &MabConfig,
) -> Selection {
    let binned = evaluator.binned();
    let n = binned.num_rows();
    let m = binned.num_columns();
    if n == 0 || m == 0 || k == 0 || l == 0 {
        return Selection::default();
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut row_stats = ArmStats::new(n);
    let mut col_stats = ArmStats::new(m);
    let free_cols: Vec<usize> = (0..m).filter(|c| !target_columns.contains(c)).collect();
    let l_free = l.saturating_sub(target_columns.len()).min(free_cols.len());

    let mut best: Option<(f64, Selection)> = None;
    for t in 1..=config.iterations.max(1) {
        // Pick rows by UCB with ε-greedy noise.
        let rows = pick_arms(
            &(0..n).collect::<Vec<_>>(),
            k.min(n),
            &row_stats,
            t as f64,
            config,
            &mut rng,
        );
        let mut cols: Vec<usize> = target_columns.to_vec();
        cols.extend(pick_arms(
            &free_cols, l_free, &col_stats, t as f64, config, &mut rng,
        ));

        let candidate = Selection::new(rows.clone(), cols.clone());
        let reward = evaluator.score(&candidate.rows, &candidate.cols).combined;
        for &r in &rows {
            row_stats.update(r, reward);
        }
        for &c in &cols {
            col_stats.update(c, reward);
        }
        if best.as_ref().is_none_or(|(b, _)| reward > *b) {
            best = Some((reward, candidate));
        }
    }
    best.map(|(_, s)| s).unwrap_or_default()
}

fn pick_arms(
    arms: &[usize],
    count: usize,
    stats: &ArmStats,
    t: f64,
    config: &MabConfig,
    rng: &mut StdRng,
) -> Vec<usize> {
    if count >= arms.len() {
        return arms.to_vec();
    }
    let mut scored: Vec<(f64, usize)> = arms
        .iter()
        .map(|&a| (stats.ucb(a, t, config.exploration), a))
        .collect();
    // Shuffle first so ties (e.g. all-infinite UCBs early on) break randomly.
    scored.shuffle(rng);
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut chosen: Vec<usize> = scored.iter().take(count).map(|&(_, a)| a).collect();
    // ε-greedy: replace a few picks with uniformly random arms.
    for slot in chosen.iter_mut() {
        if rng.gen::<f64>() < config.epsilon {
            *slot = arms[rng.gen_range(0..arms.len())];
        }
    }
    chosen.sort_unstable();
    chosen.dedup();
    // Refill if ε-greedy created duplicates.
    let mut i = 0usize;
    while chosen.len() < count && i < arms.len() {
        if !chosen.contains(&arms[i]) {
            chosen.push(arms[i]);
        }
        i += 1;
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;
    use subtab_rules::{MiningConfig, RuleMiner};

    fn evaluator() -> Evaluator {
        let t = Table::builder()
            .column_i64(
                "cancelled",
                (0..40).map(|i| Some(i64::from(i % 4 == 0))).collect(),
            )
            .column_str(
                "dep",
                (0..40)
                    .map(|i| if i % 4 == 0 { None } else { Some("m") })
                    .collect(),
            )
            .column_i64(
                "year",
                (0..40).map(|i| Some(2015 + (i % 2) as i64)).collect(),
            )
            .column_f64(
                "noise",
                (0..40).map(|i| Some((i * 37 % 17) as f64)).collect(),
            )
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let binned = binner.apply(&t).unwrap();
        let rules = RuleMiner::new(MiningConfig {
            min_rule_size: 2,
            ..Default::default()
        })
        .mine(&binned);
        Evaluator::new(binned, &rules, 0.5)
    }

    #[test]
    fn produces_valid_selection() {
        let ev = evaluator();
        let cfg = MabConfig {
            iterations: 50,
            ..Default::default()
        };
        let s = mab_select(&ev, 5, 3, &[], &cfg);
        assert!(s.is_valid(5, 3, 40, 4));
    }

    #[test]
    fn respects_targets_and_determinism() {
        let ev = evaluator();
        let cfg = MabConfig {
            iterations: 40,
            seed: 3,
            ..Default::default()
        };
        let a = mab_select(&ev, 4, 2, &[0], &cfg);
        let b = mab_select(&ev, 4, 2, &[0], &cfg);
        assert_eq!(a, b);
        assert!(a.cols.contains(&0));
    }

    #[test]
    fn more_iterations_do_not_reduce_quality() {
        let ev = evaluator();
        let few = mab_select(
            &ev,
            5,
            3,
            &[],
            &MabConfig {
                iterations: 3,
                seed: 1,
                ..Default::default()
            },
        );
        let many = mab_select(
            &ev,
            5,
            3,
            &[],
            &MabConfig {
                iterations: 300,
                seed: 1,
                ..Default::default()
            },
        );
        let s_few = ev.score(&few.rows, &few.cols).combined;
        let s_many = ev.score(&many.rows, &many.cols).combined;
        assert!(s_many >= s_few - 1e-9);
    }

    #[test]
    fn degenerate_dimensions() {
        let ev = evaluator();
        let cfg = MabConfig {
            iterations: 5,
            ..Default::default()
        };
        assert_eq!(mab_select(&ev, 0, 2, &[], &cfg), Selection::default());
        assert_eq!(mab_select(&ev, 2, 0, &[], &cfg), Selection::default());
        let s = mab_select(&ev, 100, 100, &[], &cfg);
        assert_eq!(s.rows.len(), 40);
        assert_eq!(s.cols.len(), 4);
    }
}
