//! # subtab-baselines
//!
//! The baseline sub-table selection algorithms the paper compares SubTab
//! against (Section 6.1):
//!
//! * [`random`] — `RAN`: repeated uniform random selection within a time
//!   budget, keeping the best-scoring sub-table,
//! * [`naive_clustering`] — `NC`: one-hot encode the raw table and k-means
//!   rows and columns directly, without any embedding,
//! * [`greedy`] — Algorithm 1: exhaustive column enumeration with greedy
//!   row selection (the `(1 − 1/e)`-approximate coverage maximiser), plus the
//!   "semi-greedy" budgeted variant that visits column combinations in random
//!   order,
//! * [`mab`] — a Multi-Armed-Bandit (UCB1) sampler over rows and columns,
//! * [`graph_embed`] — an EmbDI-style baseline: node embeddings from random
//!   walks over the row/column/value graph, fed into the same centroid
//!   selection as SubTab.
//!
//! All baselines return a [`Selection`] (row indices + column indices into
//! the full table), so they can be scored by `subtab_metrics::Evaluator`
//! exactly like SubTab's own output.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod encode;
pub mod graph_embed;
pub mod greedy;
pub mod mab;
pub mod naive_clustering;
pub mod random;
pub mod selection;

pub use graph_embed::{graph_embedding_select, GraphEmbedConfig};
pub use greedy::{greedy_select, GreedyConfig};
pub use mab::{mab_select, MabConfig};
pub use naive_clustering::naive_clustering_select;
pub use random::{random_select, RandomConfig};
pub use selection::Selection;
