//! Edge-case coverage for the query path: null semantics, type-mismatched
//! comparisons, and empty result sets. The query path feeds
//! `SubTab::select_for_query` and was previously only exercised indirectly
//! through the end-to-end pipeline.

use subtab_data::{AggFunc, CompareOp, Predicate, Query, SortOrder, Table, Value};

fn table() -> Table {
    Table::builder()
        .column_str(
            "airline",
            vec![Some("AA"), Some("DL"), None, Some("UA"), Some("DL")],
        )
        .column_f64(
            "distance",
            vec![Some(100.0), Some(2500.0), Some(700.0), None, Some(900.0)],
        )
        .column_i64("cancelled", vec![Some(0), Some(1), Some(1), None, Some(0)])
        .build()
        .unwrap()
}

fn empty_table() -> Table {
    Table::builder()
        .column_str("airline", Vec::new())
        .column_f64("distance", Vec::new())
        .build()
        .unwrap()
}

// --- null handling ---------------------------------------------------------

#[test]
fn comparisons_against_null_constant_never_match() {
    let t = table();
    for op in [
        CompareOp::Eq,
        CompareOp::Ne,
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Gt,
        CompareOp::Ge,
    ] {
        let q = Query::new().filter(Predicate::Compare {
            column: "distance".into(),
            op,
            value: Value::Null,
        });
        assert_eq!(
            q.execute(&t).unwrap().num_rows(),
            0,
            "{op:?} against Null must match nothing"
        );
    }
}

#[test]
fn null_cells_never_match_comparisons_either_way() {
    let t = table();
    // Row 3 has a null distance: neither `> x` nor its complement `<= x`
    // matches it, so the two row sets are disjoint and miss exactly one row.
    let gt = Query::new()
        .filter(Predicate::gt("distance", Value::from(800.0)))
        .execute(&t)
        .unwrap();
    let le = Query::new()
        .filter(Predicate::Compare {
            column: "distance".into(),
            op: CompareOp::Le,
            value: Value::from(800.0),
        })
        .execute(&t)
        .unwrap();
    assert_eq!(gt.num_rows() + le.num_rows(), t.num_rows() - 1);
}

#[test]
fn in_set_with_null_member_does_not_match_null_cells() {
    let t = table();
    let q = Query::new().filter(Predicate::in_set("airline", vec![Value::Null]));
    assert_eq!(q.execute(&t).unwrap().num_rows(), 0);
    // IsNull is the only way to select the null cell.
    let q = Query::new().filter(Predicate::is_null("airline"));
    assert_eq!(q.execute(&t).unwrap().num_rows(), 1);
}

#[test]
fn between_skips_null_cells() {
    let t = table();
    let q = Query::new().filter(Predicate::between("distance", 0.0, 1e9));
    assert_eq!(q.execute(&t).unwrap().num_rows(), 4);
}

#[test]
fn group_by_treats_null_as_its_own_group_and_aggregates_skip_nulls() {
    let t = table();
    let counts = Query::new()
        .group(&["airline"], AggFunc::Count, None)
        .execute(&t)
        .unwrap();
    // AA, DL, null, UA.
    assert_eq!(counts.num_rows(), 4);

    // Mean over a group whose only aggregate value is null must be null,
    // not zero: UA's single row has a null distance.
    let mean = Query::new()
        .group(&["airline"], AggFunc::Mean, Some("distance"))
        .execute(&t)
        .unwrap();
    let ua_row = (0..mean.num_rows())
        .find(|&r| mean.value(r, "airline").unwrap() == Value::from("UA"))
        .expect("UA group exists");
    assert!(mean.value(ua_row, "mean_distance").unwrap().is_null());
}

// --- type-mismatched comparisons -------------------------------------------

#[test]
fn string_column_compared_with_number_never_equals() {
    let t = table();
    let eq = Query::new().filter(Predicate::eq("airline", Value::from(1i64)));
    assert_eq!(eq.execute(&t).unwrap().num_rows(), 0);
    // Ne is the complement over non-null cells: every non-null airline
    // differs from the integer 1.
    let ne = Query::new().filter(Predicate::ne("airline", Value::from(1i64)));
    assert_eq!(ne.execute(&t).unwrap().num_rows(), 4);
}

#[test]
fn numeric_column_compared_with_string_never_equals() {
    let t = table();
    let eq = Query::new().filter(Predicate::eq("distance", Value::from("100")));
    assert_eq!(eq.execute(&t).unwrap().num_rows(), 0);
}

#[test]
fn int_and_float_constants_compare_by_numeric_value() {
    let t = table();
    let as_float = Query::new().filter(Predicate::eq("cancelled", Value::from(1.0)));
    let as_int = Query::new().filter(Predicate::eq("cancelled", Value::from(1i64)));
    assert_eq!(as_float.execute(&t).unwrap().num_rows(), 2);
    assert_eq!(as_int.execute(&t).unwrap().num_rows(), 2);
}

#[test]
fn between_on_string_column_matches_nothing() {
    let t = table();
    let q = Query::new().filter(Predicate::between("airline", 0.0, 1e9));
    assert_eq!(q.execute(&t).unwrap().num_rows(), 0);
}

#[test]
fn in_set_with_mixed_types_matches_only_compatible_values() {
    let t = table();
    let q = Query::new().filter(Predicate::in_set(
        "distance",
        vec![Value::from("DL"), Value::from(900.0), Value::from(100i64)],
    ));
    assert_eq!(q.execute(&t).unwrap().num_rows(), 2);
}

// --- empty result sets ------------------------------------------------------

#[test]
fn unsatisfiable_query_returns_empty_table_with_schema_intact() {
    let t = table();
    let r = Query::new()
        .filter(Predicate::eq("airline", Value::from("ZZ")))
        .execute(&t)
        .unwrap();
    assert_eq!(r.num_rows(), 0);
    assert_eq!(r.num_columns(), t.num_columns());
    assert_eq!(r.column_names(), t.column_names());
}

#[test]
fn inverted_between_bounds_match_nothing() {
    let t = table();
    let q = Query::new().filter(Predicate::between("distance", 900.0, 100.0));
    assert_eq!(q.execute(&t).unwrap().num_rows(), 0);
}

#[test]
fn empty_in_set_matches_nothing() {
    let t = table();
    let q = Query::new().filter(Predicate::in_set("airline", Vec::new()));
    assert_eq!(q.execute(&t).unwrap().num_rows(), 0);
}

#[test]
fn sort_group_and_limit_on_empty_selection() {
    let t = table();
    let q = Query::new()
        .filter(Predicate::eq("airline", Value::from("ZZ")))
        .sort_by("distance", SortOrder::Descending)
        .limit(3);
    let r = q.execute(&t).unwrap();
    assert_eq!(r.num_rows(), 0);

    let grouped = Query::new()
        .filter(Predicate::eq("airline", Value::from("ZZ")))
        .group(&["airline"], AggFunc::Count, None)
        .execute(&t)
        .unwrap();
    assert_eq!(grouped.num_rows(), 0);
    assert_eq!(grouped.column_names(), vec!["airline", "count"]);
}

#[test]
fn queries_against_zero_row_table() {
    let t = empty_table();
    let r = Query::new()
        .filter(Predicate::gt("distance", Value::from(0.0)))
        .execute(&t)
        .unwrap();
    assert_eq!(r.num_rows(), 0);
    let grouped = Query::new()
        .group(&["airline"], AggFunc::Mean, Some("distance"))
        .execute(&t)
        .unwrap();
    assert_eq!(grouped.num_rows(), 0);
    assert_eq!(Query::new().limit(5).execute(&t).unwrap().num_rows(), 0);
}

#[test]
fn matching_rows_agrees_with_execute() {
    let t = table();
    let q = Query::new().filter(Predicate::eq("airline", Value::from("DL")));
    let rows = q.matching_rows(&t).unwrap();
    assert_eq!(rows, vec![1, 4]);
    assert_eq!(q.execute(&t).unwrap().num_rows(), rows.len());
}

#[test]
fn limit_larger_than_result_is_a_noop() {
    let t = table();
    let r = Query::new().limit(100).execute(&t).unwrap();
    assert_eq!(r.num_rows(), t.num_rows());
    let r0 = Query::new().limit(0).execute(&t).unwrap();
    assert_eq!(r0.num_rows(), 0);
}
