//! Error type shared by all table operations.

use std::fmt;

/// Errors produced by table construction, queries and CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// A column with the same name was added twice.
    DuplicateColumn(String),
    /// Columns (or a pushed row) have inconsistent lengths.
    LengthMismatch {
        /// What the length should have been.
        expected: usize,
        /// The length that was observed.
        actual: usize,
    },
    /// A value's type does not match the column type.
    TypeMismatch {
        /// Column in which the mismatch occurred.
        column: String,
        /// Expected column type (as text, to keep the error `Eq`).
        expected: String,
        /// The offending value rendered as text.
        value: String,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// The requested index.
        index: usize,
        /// The number of rows in the table.
        len: usize,
    },
    /// The requested operation is not valid for this column type.
    InvalidOperation(String),
    /// CSV input could not be parsed.
    CsvParse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable explanation.
        message: String,
    },
    /// An empty table (no columns or no rows) where one was required.
    EmptyTable(String),
    /// SQL-ish query text could not be parsed.
    QueryParse {
        /// Byte offset into the query text where parsing failed.
        position: usize,
        /// Human-readable explanation.
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownColumn(name) => write!(f, "unknown column: {name:?}"),
            DataError::DuplicateColumn(name) => write!(f, "duplicate column: {name:?}"),
            DataError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            DataError::TypeMismatch {
                column,
                expected,
                value,
            } => write!(
                f,
                "type mismatch in column {column:?}: expected {expected}, got value {value}"
            ),
            DataError::RowOutOfBounds { index, len } => {
                write!(
                    f,
                    "row index {index} out of bounds for table with {len} rows"
                )
            }
            DataError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
            DataError::CsvParse { line, message } => {
                write!(f, "CSV parse error at line {line}: {message}")
            }
            DataError::EmptyTable(msg) => write!(f, "empty table: {msg}"),
            DataError::QueryParse { position, message } => {
                write!(f, "query parse error at byte {position}: {message}")
            }
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DataError::UnknownColumn("foo".into());
        assert!(e.to_string().contains("foo"));
        let e = DataError::LengthMismatch {
            expected: 3,
            actual: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
        let e = DataError::CsvParse {
            line: 7,
            message: "bad field".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = DataError::QueryParse {
            position: 12,
            message: "expected `)`".into(),
        };
        assert!(e.to_string().contains("byte 12") && e.to_string().contains("expected `)`"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<DataError>();
    }
}
