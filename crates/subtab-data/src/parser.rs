//! Hand-written lexer + recursive-descent parser for the SQL-ish query
//! text form.
//!
//! Grammar (EBNF, keywords case-insensitive):
//!
//! ```text
//! query      := [ "SELECT" ( "*" | [ ident { "," ident } ] ) ]
//!               [ [ "WHERE" ] expr ]          (* WHERE required after SELECT *)
//!               [ "ORDER" "BY" sortkey { "," sortkey } ]
//!               [ "LIMIT" integer ] ;
//! sortkey    := ident [ "ASC" | "DESC" ] ;
//! expr       := conj { "OR" conj } ;
//! conj       := unary { "AND" unary } ;
//! unary      := "NOT" unary | primary ;
//! primary    := "(" expr ")" | "TRUE" | "FALSE" | predicate ;
//! predicate  := ident ( compare | in | between | nulltest ) ;
//! compare    := ( "=" | "!=" | "<>" | "<" | "<=" | ">" | ">=" ) literal ;
//! in         := [ "NOT" ] "IN" "(" [ literal { "," literal } ] ")" ;
//! between    := [ "NOT" ] "BETWEEN" number "AND" number ;
//! nulltest   := "IS" [ "NOT" ] "NULL" ;
//! literal    := number | string | "TRUE" | "FALSE" | "NULL" ;
//! ident      := plain identifier | '"' double-quoted ("" escapes) '"' ;
//! string     := "'" single-quoted ('' escapes) "'" ;
//! ```
//!
//! `BETWEEN` keeps the engine's half-open `[low, high)` semantics, and its
//! `AND` belongs to the predicate, not the boolean connective. Parse
//! failures are typed [`DataError::QueryParse`] errors carrying the byte
//! position of the offending token.

use crate::error::DataError;
use crate::expr::{fmt_ident, QueryExpr};
use crate::query::{CompareOp, Predicate, Query, SortOrder, SortSpec};
use crate::value::Value;
use crate::Result;
use std::fmt;

/// The reserved words of the text form; a column spelled like one must be
/// double-quoted.
const KEYWORDS: &[(&str, Kw)] = &[
    ("SELECT", Kw::Select),
    ("WHERE", Kw::Where),
    ("ORDER", Kw::Order),
    ("BY", Kw::By),
    ("ASC", Kw::Asc),
    ("DESC", Kw::Desc),
    ("LIMIT", Kw::Limit),
    ("AND", Kw::And),
    ("OR", Kw::Or),
    ("NOT", Kw::Not),
    ("IN", Kw::In),
    ("BETWEEN", Kw::Between),
    ("IS", Kw::Is),
    ("NULL", Kw::Null),
    ("TRUE", Kw::True),
    ("FALSE", Kw::False),
];

/// Whether `word` is reserved (case-insensitive) and must be quoted to be
/// used as a column name.
pub(crate) fn is_reserved_word(word: &str) -> bool {
    KEYWORDS.iter().any(|(k, _)| word.eq_ignore_ascii_case(k))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kw {
    Select,
    Where,
    Order,
    By,
    Asc,
    Desc,
    Limit,
    And,
    Or,
    Not,
    In,
    Between,
    Is,
    Null,
    True,
    False,
}

impl Kw {
    fn name(self) -> &'static str {
        KEYWORDS
            .iter()
            .find(|(_, k)| *k == self)
            .map(|(n, _)| *n)
            .expect("every keyword is in the table")
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Kw(Kw),
    Op(CompareOp),
    LParen,
    RParen,
    Comma,
    Star,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Int(i) => write!(f, "number `{i}`"),
            Tok::Float(x) => write!(f, "number `{x}`"),
            Tok::Kw(k) => write!(f, "`{}`", k.name()),
            Tok::Op(op) => {
                let s = match op {
                    CompareOp::Eq => "=",
                    CompareOp::Ne => "!=",
                    CompareOp::Lt => "<",
                    CompareOp::Le => "<=",
                    CompareOp::Gt => ">",
                    CompareOp::Ge => ">=",
                };
                write!(f, "`{s}`")
            }
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Star => write!(f, "`*`"),
        }
    }
}

fn parse_err(position: usize, message: impl Into<String>) -> DataError {
    DataError::QueryParse {
        position,
        message: message.into(),
    }
}

/// Tokenises `input` into `(byte position, token)` pairs.
fn lex(input: &str) -> Result<Vec<(usize, Tok)>> {
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let (pos, c) = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                toks.push((pos, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((pos, Tok::RParen));
                i += 1;
            }
            ',' => {
                toks.push((pos, Tok::Comma));
                i += 1;
            }
            '*' => {
                toks.push((pos, Tok::Star));
                i += 1;
            }
            '=' => {
                toks.push((pos, Tok::Op(CompareOp::Eq)));
                i += 1;
            }
            '!' => {
                if chars.get(i + 1).is_some_and(|&(_, c)| c == '=') {
                    toks.push((pos, Tok::Op(CompareOp::Ne)));
                    i += 2;
                } else {
                    return Err(parse_err(pos, "unknown operator `!` (did you mean `!=`?)"));
                }
            }
            '<' => match chars.get(i + 1).map(|&(_, c)| c) {
                Some('=') => {
                    toks.push((pos, Tok::Op(CompareOp::Le)));
                    i += 2;
                }
                Some('>') => {
                    toks.push((pos, Tok::Op(CompareOp::Ne)));
                    i += 2;
                }
                _ => {
                    toks.push((pos, Tok::Op(CompareOp::Lt)));
                    i += 1;
                }
            },
            '>' => {
                if chars.get(i + 1).is_some_and(|&(_, c)| c == '=') {
                    toks.push((pos, Tok::Op(CompareOp::Ge)));
                    i += 2;
                } else {
                    toks.push((pos, Tok::Op(CompareOp::Gt)));
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut out = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < chars.len() {
                    let (_, cj) = chars[j];
                    if cj == quote {
                        // A doubled quote is an escaped quote character.
                        if chars.get(j + 1).is_some_and(|&(_, n)| n == quote) {
                            out.push(quote);
                            j += 2;
                        } else {
                            closed = true;
                            j += 1;
                            break;
                        }
                    } else {
                        out.push(cj);
                        j += 1;
                    }
                }
                if !closed {
                    let what = if quote == '\'' {
                        "unterminated string literal"
                    } else {
                        "unterminated quoted identifier"
                    };
                    return Err(parse_err(pos, what));
                }
                toks.push((
                    pos,
                    if quote == '\'' {
                        Tok::Str(out)
                    } else {
                        Tok::Ident(out)
                    },
                ));
                i = j;
            }
            c if c.is_ascii_digit() || c == '-' => {
                if c == '-'
                    && !chars
                        .get(i + 1)
                        .is_some_and(|&(_, n)| n.is_ascii_digit() || n == '.')
                {
                    return Err(parse_err(pos, "unexpected character `-`"));
                }
                i += 1; // sign or first digit
                while i < chars.len() && chars[i].1.is_ascii_digit() {
                    i += 1;
                }
                if i < chars.len() && chars[i].1 == '.' {
                    i += 1;
                    while i < chars.len() && chars[i].1.is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < chars.len() && matches!(chars[i].1, 'e' | 'E') {
                    i += 1;
                    if i < chars.len() && matches!(chars[i].1, '+' | '-') {
                        i += 1;
                    }
                    while i < chars.len() && chars[i].1.is_ascii_digit() {
                        i += 1;
                    }
                }
                let end = chars.get(i).map_or(input.len(), |&(p, _)| p);
                let text = &input[pos..end];
                let tok = if text.contains(['.', 'e', 'E']) {
                    Tok::Float(
                        text.parse::<f64>()
                            .map_err(|_| parse_err(pos, format!("bad numeric literal `{text}`")))?,
                    )
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => Tok::Int(v),
                        // Magnitudes beyond i64 degrade to float.
                        Err(_) => Tok::Float(text.parse::<f64>().map_err(|_| {
                            parse_err(pos, format!("bad numeric literal `{text}`"))
                        })?),
                    }
                };
                toks.push((pos, tok));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < chars.len() && (chars[j].1.is_ascii_alphanumeric() || chars[j].1 == '_') {
                    j += 1;
                }
                let end = chars.get(j).map_or(input.len(), |&(p, _)| p);
                let word = &input[pos..end];
                let tok = match KEYWORDS.iter().find(|(k, _)| word.eq_ignore_ascii_case(k)) {
                    Some(&(_, kw)) => Tok::Kw(kw),
                    None => Tok::Ident(word.to_string()),
                };
                toks.push((pos, tok));
                i = j;
            }
            other => return Err(parse_err(pos, format!("unexpected character `{other}`"))),
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    i: usize,
    /// Byte length of the input; the position reported at end-of-input.
    eof: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self> {
        Ok(Parser {
            toks: lex(input)?,
            i: 0,
            eof: input.len(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(_, t)| t)
    }

    fn pos(&self) -> usize {
        self.toks.get(self.i).map_or(self.eof, |&(p, _)| p)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(_, t)| t.clone());
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        if self.peek() == Some(&Tok::Kw(kw)) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{}`", kw.name())))
        }
    }

    fn unexpected(&self, wanted: &str) -> DataError {
        let found = match self.peek() {
            Some(t) => format!("{t}"),
            None => "end of input".to_string(),
        };
        parse_err(self.pos(), format!("expected {wanted}, found {found}"))
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(_)) => match self.bump() {
                Some(Tok::Ident(s)) => Ok(s),
                _ => unreachable!("peeked an identifier"),
            },
            _ => Err(self.unexpected(what)),
        }
    }

    /// `expr := conj { OR conj }`
    fn parse_or(&mut self) -> Result<QueryExpr> {
        let first = self.parse_and()?;
        if self.peek() != Some(&Tok::Kw(Kw::Or)) {
            return Ok(first);
        }
        let mut children = vec![first];
        while self.eat_kw(Kw::Or) {
            children.push(self.parse_and()?);
        }
        Ok(QueryExpr::Or(children))
    }

    /// `conj := unary { AND unary }`
    fn parse_and(&mut self) -> Result<QueryExpr> {
        let first = self.parse_unary()?;
        if self.peek() != Some(&Tok::Kw(Kw::And)) {
            return Ok(first);
        }
        let mut children = vec![first];
        while self.eat_kw(Kw::And) {
            children.push(self.parse_unary()?);
        }
        Ok(QueryExpr::And(children))
    }

    /// `unary := NOT unary | primary`
    fn parse_unary(&mut self) -> Result<QueryExpr> {
        if self.eat_kw(Kw::Not) {
            Ok(self.parse_unary()?.negated())
        } else {
            self.parse_primary()
        }
    }

    /// `primary := '(' expr ')' | TRUE | FALSE | predicate`
    fn parse_primary(&mut self) -> Result<QueryExpr> {
        if self.eat(&Tok::LParen) {
            let inner = self.parse_or()?;
            if !self.eat(&Tok::RParen) {
                return Err(self.unexpected("`)`"));
            }
            return Ok(inner);
        }
        if self.eat_kw(Kw::True) {
            return Ok(QueryExpr::And(Vec::new()));
        }
        if self.eat_kw(Kw::False) {
            return Ok(QueryExpr::Or(Vec::new()));
        }
        let column = self.expect_ident("a predicate")?;
        self.parse_predicate_rest(column)
    }

    /// Everything after a predicate's column name.
    fn parse_predicate_rest(&mut self, column: String) -> Result<QueryExpr> {
        match self.peek() {
            Some(Tok::Op(_)) => {
                let Some(Tok::Op(op)) = self.bump() else {
                    unreachable!("peeked an operator");
                };
                let value = self.expect_literal()?;
                Ok(QueryExpr::Leaf(Predicate::Compare { column, op, value }))
            }
            Some(Tok::Kw(Kw::Is)) => {
                self.i += 1;
                let negated = self.eat_kw(Kw::Not);
                self.expect_kw(Kw::Null)?;
                Ok(QueryExpr::Leaf(if negated {
                    Predicate::NotNull { column }
                } else {
                    Predicate::IsNull { column }
                }))
            }
            Some(Tok::Kw(Kw::In)) => {
                self.i += 1;
                Ok(QueryExpr::Leaf(self.parse_in_tail(column)?))
            }
            Some(Tok::Kw(Kw::Between)) => {
                self.i += 1;
                Ok(QueryExpr::Leaf(self.parse_between_tail(column)?))
            }
            Some(Tok::Kw(Kw::Not)) => {
                // `col NOT IN (...)` / `col NOT BETWEEN a AND b`.
                self.i += 1;
                if self.eat_kw(Kw::In) {
                    Ok(QueryExpr::Leaf(self.parse_in_tail(column)?).negated())
                } else if self.eat_kw(Kw::Between) {
                    Ok(QueryExpr::Leaf(self.parse_between_tail(column)?).negated())
                } else {
                    Err(self.unexpected("`IN` or `BETWEEN` after `NOT`"))
                }
            }
            _ => Err(self.unexpected("a comparison operator, `IN`, `BETWEEN` or `IS`")),
        }
    }

    /// The `( literal, ... )` tail of an `IN` predicate (empty list allowed,
    /// so every printable expression round-trips).
    fn parse_in_tail(&mut self, column: String) -> Result<Predicate> {
        if !self.eat(&Tok::LParen) {
            return Err(self.unexpected("`(` after `IN`"));
        }
        let mut values = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                values.push(self.expect_literal()?);
                if self.eat(&Tok::Comma) {
                    continue;
                }
                if self.eat(&Tok::RParen) {
                    break;
                }
                return Err(self.unexpected("`,` or `)` in IN list"));
            }
        }
        Ok(Predicate::InSet { column, values })
    }

    /// The `low AND high` tail of a `BETWEEN` predicate.
    fn parse_between_tail(&mut self, column: String) -> Result<Predicate> {
        let low = self.expect_number("a numeric BETWEEN bound")?;
        self.expect_kw(Kw::And)?;
        let high = self.expect_number("a numeric BETWEEN bound")?;
        Ok(Predicate::Between { column, low, high })
    }

    fn expect_literal(&mut self) -> Result<Value> {
        match self.peek() {
            Some(Tok::Int(_) | Tok::Float(_) | Tok::Str(_))
            | Some(Tok::Kw(Kw::True | Kw::False | Kw::Null)) => Ok(match self.bump() {
                Some(Tok::Int(i)) => Value::Int(i),
                Some(Tok::Float(x)) => Value::Float(x),
                Some(Tok::Str(s)) => Value::Str(s),
                Some(Tok::Kw(Kw::True)) => Value::Bool(true),
                Some(Tok::Kw(Kw::False)) => Value::Bool(false),
                Some(Tok::Kw(Kw::Null)) => Value::Null,
                _ => unreachable!("peeked a literal"),
            }),
            _ => Err(self.unexpected("a literal")),
        }
    }

    fn expect_number(&mut self, what: &str) -> Result<f64> {
        match self.peek() {
            Some(&Tok::Int(i)) => {
                self.i += 1;
                Ok(i as f64)
            }
            Some(&Tok::Float(x)) => {
                self.i += 1;
                Ok(x)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn expect_limit(&mut self) -> Result<usize> {
        match self.peek() {
            Some(&Tok::Int(i)) if i >= 0 => {
                self.i += 1;
                Ok(i as usize)
            }
            _ => Err(self.unexpected("a non-negative integer LIMIT")),
        }
    }

    fn expect_end(&self) -> Result<()> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(parse_err(
                self.pos(),
                format!("unexpected trailing {t} after the query"),
            )),
        }
    }

    /// Whether the next token can start an expression.
    fn at_expr_start(&self) -> bool {
        matches!(
            self.peek(),
            Some(Tok::Ident(_) | Tok::LParen | Tok::Kw(Kw::Not | Kw::True | Kw::False))
        )
    }

    fn parse_query(&mut self) -> Result<Query> {
        let mut q = Query::new();
        let had_select = self.eat_kw(Kw::Select);
        if had_select && !self.eat(&Tok::Star) {
            // `SELECT *` keeps projection = None; a (possibly empty) column
            // list sets it.
            let mut cols = Vec::new();
            if matches!(self.peek(), Some(Tok::Ident(_))) {
                loop {
                    cols.push(self.expect_ident("a projection column")?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
            q.projection = Some(cols);
        }
        if self.eat_kw(Kw::Where) {
            q.expr = self.parse_or()?;
        } else if !had_select && self.at_expr_start() {
            // Without a SELECT clause the WHERE keyword is optional:
            // `age > 30 LIMIT 5` is a complete query.
            q.expr = self.parse_or()?;
        }
        if self.eat_kw(Kw::Order) {
            self.expect_kw(Kw::By)?;
            loop {
                let column = self.expect_ident("a sort column")?;
                let order = if self.eat_kw(Kw::Desc) {
                    SortOrder::Descending
                } else {
                    self.eat_kw(Kw::Asc);
                    SortOrder::Ascending
                };
                q.sort.push(SortSpec { column, order });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Kw::Limit) {
            q.limit = Some(self.expect_limit()?);
        }
        self.expect_end()?;
        Ok(q)
    }
}

impl QueryExpr {
    /// Parses the boolean-expression text form (the `expr` production of
    /// the grammar documented on [`Query::parse`]). Fails with a
    /// positioned [`DataError::QueryParse`] on malformed input.
    pub fn parse(input: &str) -> Result<QueryExpr> {
        let mut p = Parser::new(input)?;
        let expr = p.parse_or()?;
        p.expect_end()?;
        Ok(expr)
    }
}

impl std::str::FromStr for QueryExpr {
    type Err = DataError;

    fn from_str(s: &str) -> Result<Self> {
        QueryExpr::parse(s)
    }
}

impl Query {
    /// Parses the full query text form: optional `SELECT` projection,
    /// optional (`WHERE`-introduced or bare) boolean expression, `ORDER BY`
    /// and `LIMIT` clauses. The empty string parses to the match-all
    /// [`Query::new`]. Group-by has no text form.
    ///
    /// ```
    /// use subtab_data::Query;
    /// let q = Query::parse(
    ///     "age > 30 AND (city = 'NYC' OR NOT risk IN ('high', 'unknown')) LIMIT 20",
    /// )
    /// .unwrap();
    /// assert_eq!(q.limit, Some(20));
    /// ```
    pub fn parse(input: &str) -> Result<Query> {
        Parser::new(input)?.parse_query()
    }
}

impl std::str::FromStr for Query {
    type Err = DataError;

    fn from_str(s: &str) -> Result<Self> {
        Query::parse(s)
    }
}

impl fmt::Display for Query {
    /// Prints the query in the text form [`Query::parse`] accepts.
    /// Reparsing yields a selection-equivalent query (identical
    /// [`Query::selection_key`]); the group-by clause has no text form and
    /// is omitted. The match-all [`Query::new`] prints as the empty string.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        if let Some(proj) = &self.projection {
            write!(f, "SELECT")?;
            for (i, c) in proj.iter().enumerate() {
                write!(f, "{}", if i == 0 { " " } else { ", " })?;
                fmt_ident(c, f)?;
            }
            sep = " ";
        }
        if !self.expr.is_match_all() {
            // After a SELECT clause the WHERE keyword is mandatory (it
            // separates projection columns from the expression).
            write!(f, "{sep}")?;
            if self.projection.is_some() {
                write!(f, "WHERE ")?;
            }
            write!(f, "{}", self.expr)?;
            sep = " ";
        }
        if !self.sort.is_empty() {
            write!(f, "{sep}ORDER BY")?;
            for (i, s) in self.sort.iter().enumerate() {
                write!(f, "{}", if i == 0 { " " } else { ", " })?;
                fmt_ident(&s.column, f)?;
                write!(
                    f,
                    " {}",
                    match s.order {
                        SortOrder::Ascending => "ASC",
                        SortOrder::Descending => "DESC",
                    }
                )?;
            }
            sep = " ";
        }
        if let Some(n) = self.limit {
            write!(f, "{sep}LIMIT {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(s: &str) -> QueryExpr {
        QueryExpr::parse(s).unwrap()
    }

    #[test]
    fn parses_the_flagship_nested_query() {
        let q =
            Query::parse("age > 30 AND (city = 'NYC' OR NOT risk IN ('high','unknown')) LIMIT 20")
                .unwrap();
        assert_eq!(q.limit, Some(20));
        let QueryExpr::And(children) = &q.expr else {
            panic!("top level is AND, got {:?}", q.expr);
        };
        assert_eq!(children.len(), 2);
        assert_eq!(
            children[0],
            QueryExpr::Leaf(Predicate::gt("age", Value::Int(30)))
        );
        let QueryExpr::Or(inner) = &children[1] else {
            panic!("parenthesised OR");
        };
        assert_eq!(inner.len(), 2);
        assert!(matches!(&inner[1], QueryExpr::Not(_)));
    }

    #[test]
    fn precedence_is_or_under_and_under_not() {
        // a AND b OR c = (a AND b) OR c
        let e = expr("x = 1 AND y = 2 OR z = 3");
        assert!(matches!(&e, QueryExpr::Or(v) if v.len() == 2));
        // NOT binds tighter than AND.
        let e = expr("NOT x = 1 AND y = 2");
        let QueryExpr::And(v) = &e else {
            panic!("AND on top");
        };
        assert!(matches!(&v[0], QueryExpr::Not(_)));
        // Parens override.
        let e = expr("x = 1 AND (y = 2 OR z = 3)");
        let QueryExpr::And(v) = &e else {
            panic!("AND on top");
        };
        assert!(matches!(&v[1], QueryExpr::Or(_)));
        // NOT NOT nests without parens.
        let e = expr("NOT NOT x = 1");
        assert!(matches!(&e, QueryExpr::Not(inner) if matches!(**inner, QueryExpr::Not(_))));
    }

    #[test]
    fn predicate_forms_parse() {
        assert_eq!(
            expr("x != 'a'"),
            QueryExpr::Leaf(Predicate::ne("x", Value::from("a")))
        );
        assert_eq!(expr("x <> 'a'"), expr("x != 'a'"), "<> is an alias of !=");
        assert_eq!(
            expr("x BETWEEN 1 AND 2.5"),
            QueryExpr::Leaf(Predicate::between("x", 1.0, 2.5))
        );
        assert_eq!(
            expr("x NOT BETWEEN 1 AND 2"),
            QueryExpr::Leaf(Predicate::between("x", 1.0, 2.0)).negated()
        );
        assert_eq!(
            expr("x IN (1, 'two', TRUE, NULL)"),
            QueryExpr::Leaf(Predicate::in_set(
                "x",
                vec![
                    Value::Int(1),
                    Value::from("two"),
                    Value::Bool(true),
                    Value::Null
                ]
            ))
        );
        assert_eq!(
            expr("x NOT IN (1)"),
            QueryExpr::Leaf(Predicate::in_set("x", vec![Value::Int(1)])).negated()
        );
        assert_eq!(
            expr("x IN ()"),
            QueryExpr::Leaf(Predicate::in_set("x", vec![]))
        );
        assert_eq!(expr("x IS NULL"), QueryExpr::Leaf(Predicate::is_null("x")));
        assert_eq!(
            expr("x IS NOT NULL"),
            QueryExpr::Leaf(Predicate::not_null("x"))
        );
        assert_eq!(expr("TRUE"), QueryExpr::And(vec![]));
        assert_eq!(expr("FALSE"), QueryExpr::Or(vec![]));
    }

    #[test]
    fn keywords_are_case_insensitive_and_quotable() {
        assert_eq!(
            Query::parse("select a, b where x = 1 order by a desc limit 3").unwrap(),
            Query::parse("SELECT a, b WHERE x = 1 ORDER BY a DESC LIMIT 3").unwrap()
        );
        // A column named like a keyword must be double-quoted.
        assert_eq!(
            expr("\"select\" = 1"),
            QueryExpr::Leaf(Predicate::eq("select", Value::Int(1)))
        );
        assert_eq!(
            expr("\"two words\" IS NULL"),
            QueryExpr::Leaf(Predicate::is_null("two words"))
        );
        // Doubled quotes escape inside both string and identifier quoting.
        assert_eq!(
            expr("\"a\"\"b\" = 'it''s'"),
            QueryExpr::Leaf(Predicate::eq("a\"b", Value::from("it's")))
        );
    }

    #[test]
    fn numeric_literals_parse_by_shape() {
        assert_eq!(
            expr("x = 3"),
            QueryExpr::Leaf(Predicate::eq("x", Value::Int(3)))
        );
        assert_eq!(
            expr("x = -3.5"),
            QueryExpr::Leaf(Predicate::eq("x", Value::Float(-3.5)))
        );
        assert_eq!(
            expr("x = 1e3"),
            QueryExpr::Leaf(Predicate::eq("x", Value::Float(1000.0)))
        );
        // i64 overflow degrades to float.
        assert_eq!(
            expr("x = 99999999999999999999"),
            QueryExpr::Leaf(Predicate::eq("x", Value::Float(1e20)))
        );
    }

    #[test]
    fn query_clauses_parse() {
        let q = Query::parse("SELECT * WHERE x = 1").unwrap();
        assert_eq!(q.projection, None);
        let q = Query::parse("SELECT a, b").unwrap();
        assert_eq!(q.projection, Some(vec!["a".to_string(), "b".to_string()]));
        assert!(q.expr.is_match_all());
        let q = Query::parse("ORDER BY a, b DESC LIMIT 0").unwrap();
        assert_eq!(q.sort.len(), 2);
        assert_eq!(q.sort[0].order, SortOrder::Ascending);
        assert_eq!(q.sort[1].order, SortOrder::Descending);
        assert_eq!(q.limit, Some(0));
        assert_eq!(Query::parse("").unwrap(), Query::new());
        assert_eq!(Query::parse("  \t ").unwrap(), Query::new());
        // FromStr works too.
        let q: Query = "x = 1".parse().unwrap();
        assert_eq!(q.expr, expr("x = 1"));
    }

    fn parse_error(input: &str) -> (usize, String) {
        match Query::parse(input) {
            Err(DataError::QueryParse { position, message }) => (position, message),
            other => panic!("expected a parse error for {input:?}, got {other:?}"),
        }
    }

    #[test]
    fn unbalanced_parens_are_positioned_errors() {
        let (pos, msg) = parse_error("(x = 1 AND y = 2");
        assert_eq!(pos, 16, "error at end of input");
        assert!(msg.contains("`)`"), "{msg}");
        let (pos, msg) = parse_error("x = 1)");
        assert_eq!(pos, 5);
        assert!(msg.contains("trailing"), "{msg}");
        let (_, msg) = parse_error("x IN (1, 2");
        assert!(msg.contains("`,` or `)`"), "{msg}");
    }

    #[test]
    fn unknown_operators_are_errors() {
        let (pos, msg) = parse_error("x ! 1");
        assert_eq!(pos, 2);
        assert!(msg.contains("unknown operator"), "{msg}");
        let (_, msg) = parse_error("x # 1");
        assert!(msg.contains("unexpected character"), "{msg}");
        let (_, msg) = parse_error("x == 1");
        assert!(msg.contains("expected a literal"), "{msg}");
    }

    #[test]
    fn bad_literals_are_errors() {
        let (_, msg) = parse_error("x = 'oops");
        assert!(msg.contains("unterminated string"), "{msg}");
        let (_, msg) = parse_error("x = 1.2.3");
        assert!(msg.contains("unexpected character `.`"), "{msg}");
        let (_, msg) = parse_error("x BETWEEN 'a' AND 2");
        assert!(msg.contains("numeric BETWEEN bound"), "{msg}");
        let (_, msg) = parse_error("x = 1 LIMIT -2");
        assert!(msg.contains("non-negative integer"), "{msg}");
        let (_, msg) = parse_error("x =");
        assert!(msg.contains("end of input"), "{msg}");
    }

    #[test]
    fn parsed_text_matches_builder_queries() {
        // The text form and the builder produce selection-equivalent
        // queries (identical cache keys).
        let text = Query::parse("city = 'NYC' AND age >= 21").unwrap();
        let built = Query::new()
            .filter(Predicate::eq("city", Value::from("NYC")))
            .filter(Predicate::Compare {
                column: "age".into(),
                op: CompareOp::Ge,
                value: Value::Int(21),
            });
        assert_eq!(text.selection_key(), built.selection_key());
    }

    #[test]
    fn display_round_trips_queries() {
        for text in [
            "age > 30 AND (city = 'NYC' OR NOT risk IN ('high', 'unknown')) LIMIT 20",
            "SELECT a, b WHERE x = 1 ORDER BY a ASC LIMIT 7",
            "SELECT \"order\" WHERE \"order\" != 'x'",
            "x IS NOT NULL OR y BETWEEN 0 AND 1",
            "NOT (a = 1 AND b = 2)",
            "",
        ] {
            let q = Query::parse(text).unwrap();
            let printed = q.to_string();
            let reparsed = Query::parse(&printed).unwrap();
            assert_eq!(
                q.selection_key(),
                reparsed.selection_key(),
                "{text:?} -> {printed:?}"
            );
            assert_eq!(q, reparsed, "structural round-trip of {printed:?}");
        }
    }
}
