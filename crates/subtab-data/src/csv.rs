//! Minimal CSV reader/writer with type inference.
//!
//! Supports quoted fields, embedded commas and quotes, and recognises empty
//! fields / `NaN` / `null` as missing values. Column types are inferred from
//! the data: a column is `Int` if every non-null value parses as an integer,
//! `Float` if every non-null value parses as a number, `Bool` if every value
//! is `true`/`false`, and `Str` otherwise.

use crate::column::Column;
use crate::error::DataError;
use crate::table::Table;
use crate::Result;
use std::path::Path;

/// Parses CSV text (first line = header) into a [`Table`].
pub fn parse_csv(text: &str) -> Result<Table> {
    let mut records = Vec::new();
    let mut line_no = 0usize;
    for line in split_records(text) {
        line_no += 1;
        if line.trim().is_empty() {
            continue;
        }
        records.push((line_no, parse_record(&line, line_no)?));
    }
    if records.is_empty() {
        return Err(DataError::EmptyTable("CSV input has no header".into()));
    }
    let (_, header) = records.remove(0);
    let ncols = header.len();
    let mut cells: Vec<Vec<Option<String>>> = vec![Vec::with_capacity(records.len()); ncols];
    for (line, rec) in &records {
        if rec.len() != ncols {
            return Err(DataError::CsvParse {
                line: *line,
                message: format!("expected {ncols} fields, found {}", rec.len()),
            });
        }
        for (i, field) in rec.iter().enumerate() {
            cells[i].push(normalize_missing(field));
        }
    }

    let mut columns = Vec::with_capacity(ncols);
    for (name, values) in header.iter().zip(cells) {
        columns.push(infer_column(name, values));
    }
    Table::from_columns(columns)
}

/// Reads a CSV file from disk into a [`Table`].
pub fn read_csv_file(path: impl AsRef<Path>) -> Result<Table> {
    let text = std::fs::read_to_string(path.as_ref()).map_err(|e| DataError::CsvParse {
        line: 0,
        message: format!("io error reading {}: {e}", path.as_ref().display()),
    })?;
    parse_csv(&text)
}

/// Serialises a [`Table`] to CSV text (header + rows).
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names = table.column_names();
    out.push_str(
        &names
            .iter()
            .map(|n| quote_field(n))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for r in 0..table.num_rows() {
        let row: Vec<String> = table
            .columns()
            .iter()
            .map(|c| {
                let v = c.get(r);
                if v.is_null() {
                    String::new()
                } else {
                    quote_field(&v.render())
                }
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Writes a [`Table`] to a CSV file.
pub fn write_csv_file(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path.as_ref(), to_csv(table)).map_err(|e| DataError::CsvParse {
        line: 0,
        message: format!("io error writing {}: {e}", path.as_ref().display()),
    })
}

fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn normalize_missing(field: &str) -> Option<String> {
    let t = field.trim();
    if t.is_empty() || t.eq_ignore_ascii_case("nan") || t.eq_ignore_ascii_case("null") {
        None
    } else {
        Some(t.to_string())
    }
}

/// Splits CSV text into logical records, respecting quoted newlines.
fn split_records(text: &str) -> Vec<String> {
    let mut records = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for ch in text.chars() {
        match ch {
            '"' => {
                in_quotes = !in_quotes;
                current.push(ch);
            }
            '\n' if !in_quotes => {
                records.push(std::mem::take(&mut current));
            }
            '\r' if !in_quotes => {}
            _ => current.push(ch),
        }
    }
    if !current.is_empty() {
        records.push(current);
    }
    records
}

/// Parses one CSV record into fields.
fn parse_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        field.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(ch),
            }
        } else {
            match ch {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(DataError::CsvParse {
                            line: line_no,
                            message: "unexpected quote inside unquoted field".into(),
                        });
                    }
                }
                ',' => fields.push(std::mem::take(&mut field)),
                _ => field.push(ch),
            }
        }
    }
    if in_quotes {
        return Err(DataError::CsvParse {
            line: line_no,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(field);
    Ok(fields)
}

fn infer_column(name: &str, values: Vec<Option<String>>) -> Column {
    let non_null: Vec<&String> = values.iter().flatten().collect();
    let all_bool = !non_null.is_empty()
        && non_null
            .iter()
            .all(|v| v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("false"));
    if all_bool {
        return Column::from_bool(
            name,
            values
                .iter()
                .map(|v| v.as_ref().map(|s| s.eq_ignore_ascii_case("true")))
                .collect(),
        );
    }
    let all_int = !non_null.is_empty() && non_null.iter().all(|v| v.parse::<i64>().is_ok());
    if all_int {
        return Column::from_i64(
            name,
            values
                .iter()
                .map(|v| v.as_ref().and_then(|s| s.parse::<i64>().ok()))
                .collect(),
        );
    }
    let all_float = !non_null.is_empty() && non_null.iter().all(|v| v.parse::<f64>().is_ok());
    if all_float {
        return Column::from_f64(
            name,
            values
                .iter()
                .map(|v| v.as_ref().and_then(|s| s.parse::<f64>().ok()))
                .collect(),
        );
    }
    Column::from_str_values(name, values.iter().map(|v| v.as_deref()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::value::Value;

    #[test]
    fn parse_with_type_inference() {
        let csv =
            "airline,distance,cancelled,ontime\nAA,100.5,0,true\nDL,,1,false\nUA,300,0,true\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.schema().field("airline").unwrap().ty, ColumnType::Str);
        assert_eq!(t.schema().field("distance").unwrap().ty, ColumnType::Float);
        assert_eq!(t.schema().field("cancelled").unwrap().ty, ColumnType::Int);
        assert_eq!(t.schema().field("ontime").unwrap().ty, ColumnType::Bool);
        assert!(t.value(1, "distance").unwrap().is_null());
        assert_eq!(t.value(2, "distance").unwrap(), Value::Float(300.0));
    }

    #[test]
    fn nan_and_null_are_missing() {
        let csv = "x\nNaN\nnull\n5\n";
        let t = parse_csv(csv).unwrap();
        assert!(t.value(0, "x").unwrap().is_null());
        assert!(t.value(1, "x").unwrap().is_null());
        assert_eq!(t.value(2, "x").unwrap(), Value::Int(5));
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "name,note\n\"Smith, John\",\"said \"\"hi\"\"\"\nPlain,ok\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.value(0, "name").unwrap(), Value::from("Smith, John"));
        assert_eq!(t.value(0, "note").unwrap(), Value::from("said \"hi\""));
    }

    #[test]
    fn quoted_newline_inside_field() {
        let csv = "a,b\n\"line1\nline2\",x\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.value(0, "a").unwrap(), Value::from("line1\nline2"));
    }

    #[test]
    fn field_count_mismatch_is_error() {
        let csv = "a,b\n1,2\n3\n";
        let err = parse_csv(csv).unwrap_err();
        assert!(matches!(err, DataError::CsvParse { line: 3, .. }));
    }

    #[test]
    fn unterminated_quote_is_error() {
        let csv = "a\n\"oops\n";
        assert!(parse_csv(csv).is_err());
    }

    #[test]
    fn empty_input_is_error() {
        assert!(parse_csv("").is_err());
        assert!(parse_csv("\n\n").is_err());
    }

    #[test]
    fn roundtrip_through_csv() {
        let csv = "airline,distance,cancelled\nAA,100.5,0\nDL,,1\n\"X,Y\",3.25,0\n";
        let t = parse_csv(csv).unwrap();
        let serialized = to_csv(&t);
        let t2 = parse_csv(&serialized).unwrap();
        assert_eq!(t2.num_rows(), t.num_rows());
        assert_eq!(t2.num_columns(), t.num_columns());
        for r in 0..t.num_rows() {
            for c in t.column_names() {
                assert_eq!(t.value(r, c).unwrap(), t2.value(r, c).unwrap());
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("subtab_data_csv_test.csv");
        let csv = "a,b\n1,x\n2,y\n";
        let t = parse_csv(csv).unwrap();
        write_csv_file(&t, &path).unwrap();
        let t2 = read_csv_file(&path).unwrap();
        assert_eq!(t2.num_rows(), 2);
        std::fs::remove_file(&path).ok();
        assert!(read_csv_file(dir.join("does_not_exist_subtab.csv")).is_err());
    }

    #[test]
    fn all_null_column_becomes_string() {
        let csv = "x,y\n,1\n,2\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.schema().field("x").unwrap().ty, ColumnType::Str);
        assert_eq!(t.column("x").unwrap().null_count(), 2);
    }
}
