//! # subtab-data
//!
//! A small, self-contained in-memory columnar table substrate used by the
//! SubTab framework ("Selecting Sub-tables for Data Exploration", ICDE 2023).
//!
//! The paper's reference implementation hooks into Pandas; this crate provides
//! the equivalent functionality needed by the algorithm and by the evaluation
//! harness:
//!
//! * typed, null-aware columnar storage ([`Table`], [`Column`], [`Value`]),
//! * schema handling ([`Schema`], [`Field`], [`ColumnType`]),
//! * selection–projection (SP) queries with sorting and grouping
//!   ([`Query`], [`Predicate`]) — the exploratory-query vocabulary the paper's
//!   EDA-session study replays,
//! * CSV import/export with type inference ([`csv`]).
//!
//! The crate is dependency-light (only `serde` for configuration/value
//! serialisation) and deterministic, which keeps the rest of the workspace
//! reproducible.
//!
//! ## Quick example
//!
//! ```
//! use subtab_data::{Table, Value, Query, Predicate};
//!
//! let mut table = Table::builder()
//!     .column_f64("distance", vec![Some(100.0), Some(2500.0), None])
//!     .column_str("airline", vec![Some("AA"), Some("DL"), Some("AA")])
//!     .column_i64("cancelled", vec![Some(0), Some(0), Some(1)])
//!     .build()
//!     .unwrap();
//! assert_eq!(table.num_rows(), 3);
//!
//! let q = Query::new().filter(Predicate::eq("airline", Value::from("AA")));
//! let result = q.execute(&table).unwrap();
//! assert_eq!(result.num_rows(), 2);
//! table.push_row(vec![Value::from(410.0), Value::from("UA"), Value::from(0i64)]).unwrap();
//! assert_eq!(table.num_rows(), 4);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bitmap;
pub mod column;
pub mod csv;
pub mod error;
pub mod expr;
mod parser;
pub mod query;
pub mod schema;
pub mod table;
pub mod value;

pub use bitmap::Bitmap;
pub use column::{BoolView, CodeView, Column, FloatView, IntView, NumericView};
pub use error::DataError;
pub use expr::QueryExpr;
pub use query::{AggFunc, CompareOp, GroupBy, Predicate, Query, SortOrder, SortSpec};
pub use schema::{ColumnType, Field, Schema};
pub use table::{Table, TableBuilder};
pub use value::Value;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, DataError>;
