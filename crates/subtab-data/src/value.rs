//! Dynamically-typed cell values.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single table cell value.
///
/// Values are dynamically typed; the containing [`crate::Column`] enforces a
/// single type per column (plus nulls). `Null` models missing data (`NaN` in
/// the paper's Pandas examples).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Missing value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (categorical/textual data).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Returns `true` if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one.
    ///
    /// Integers and booleans are widened to `f64`; strings and nulls return
    /// `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an integer or boolean.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Boolean view of the value, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A short, lossless textual rendering used for display and for building
    /// the embedding corpus ("tabular sentences").
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NaN".to_string(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        }
    }

    /// Total ordering used by sorting and group-by.
    ///
    /// Nulls sort last; values of different types are ordered by a fixed type
    /// rank so that sorting a mixed column is still deterministic. Numeric
    /// values (`Int`, `Float`, `Bool`) compare numerically with each other.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Greater,
            (_, Null) => Ordering::Less,
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (None, None) => a.render().cmp(&b.render()),
            },
        }
    }

    /// Equality used by predicates and grouping: numeric types compare by
    /// value (`Int(1) == Float(1.0)`), nulls are equal only to nulls.
    pub fn loose_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Null, _) | (_, Null) => false,
            (Str(a), Str(b)) => a == b,
            (Str(_), _) | (_, Str(_)) => false,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y || (x.is_nan() && y.is_nan()),
                _ => false,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.loose_eq(other)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl<T> From<Option<T>> for Value
where
    T: Into<Value>,
{
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(Value::from(3i64).as_i64(), Some(3));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert!(Value::from(None::<i64>).is_null());
    }

    #[test]
    fn numeric_widening() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn loose_equality_across_numeric_types() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::Int(1), Value::Float(1.5));
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
        assert_ne!(Value::Str("1".into()), Value::Int(1));
    }

    #[test]
    fn ordering_places_nulls_last() {
        let mut vals = [
            Value::Null,
            Value::Int(3),
            Value::Float(1.5),
            Value::Int(-2),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Int(-2));
        assert_eq!(vals[1], Value::Float(1.5));
        assert_eq!(vals[2], Value::Int(3));
        assert!(vals[3].is_null());
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        assert_eq!(
            Value::from("apple").total_cmp(&Value::from("banana")),
            Ordering::Less
        );
    }

    #[test]
    fn render_formats() {
        assert_eq!(Value::Null.render(), "NaN");
        assert_eq!(Value::Int(7).render(), "7");
        assert_eq!(Value::Float(7.0).render(), "7.0");
        assert_eq!(Value::Float(7.25).render(), "7.25");
        assert_eq!(Value::from("x").render(), "x");
        assert_eq!(Value::Bool(false).render(), "false");
    }
}
