//! Typed, null-aware columnar storage.
//!
//! ## Storage layout
//!
//! Every column is a pair of planes: a flat, contiguous *value plane*
//! (`Vec<i64>` / `Vec<f64>` / `Vec<u32>` codes / `Vec<bool>`) and a
//! *validity plane* ([`Bitmap`], bit `i` set iff row `i` is non-null).
//! Null slots hold a defined sentinel (`0`, `0.0`, code `0`, `false`) so the
//! value plane is always fully initialised and scan kernels never branch on
//! an `Option`. Downstream crates read columns through the zero-copy view
//! structs ([`FloatView`], [`IntView`], [`CodeView`], [`BoolView`],
//! [`NumericView`]); the row-wise accessors ([`Column::get`] and friends)
//! are kept as cold compatibility shims.
//!
//! Strings are dictionary-encoded: the `codes` plane stores indices into a
//! deduplicated `dict` of distinct strings, which keeps memory proportional
//! to the number of *distinct* categorical values — important for wide
//! categorical datasets like the paper's US-Funds table (298 columns).

use crate::bitmap::Bitmap;
use crate::error::DataError;
use crate::schema::ColumnType;
use crate::value::Value;
use crate::Result;
use std::borrow::Cow;
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Reverse lookup from dictionary value to code, keyed by the string's hash
/// so interning a new entry allocates the `String` exactly once (in the
/// dictionary). 64-bit hash collisions spill into a tiny linear `overflow`
/// chain; both probes confirm against the dictionary before answering.
#[derive(Debug, Clone, Default)]
struct DictLookup {
    map: HashMap<u64, u32>,
    overflow: Vec<(u64, u32)>,
}

impl DictLookup {
    fn hash_of(s: &str) -> u64 {
        let mut h = DefaultHasher::new();
        s.hash(&mut h);
        h.finish()
    }

    /// The code of `s` if it is already interned in `dict`.
    fn get(&self, s: &str, dict: &[String]) -> Option<u32> {
        let h = Self::hash_of(s);
        if let Some(&c) = self.map.get(&h) {
            if dict[c as usize] == s {
                return Some(c);
            }
        }
        self.overflow
            .iter()
            .find(|&&(oh, oc)| oh == h && dict[oc as usize] == s)
            .map(|&(_, c)| c)
    }

    /// Records `s → code`; the caller has already pushed (or is about to
    /// push) `s` at `dict[code]` and verified it was absent.
    fn insert(&mut self, s: &str, code: u32) {
        match self.map.entry(Self::hash_of(s)) {
            Entry::Vacant(e) => {
                e.insert(code);
            }
            // A different string owns this hash slot: chain into overflow.
            Entry::Occupied(e) => self.overflow.push((*e.key(), code)),
        }
    }

    fn reserve(&mut self, additional: usize) {
        self.map.reserve(additional);
    }
}

/// Rows inspected before the dictionary-lookup sizing heuristics trust the
/// observed distinct ratio of a string column.
const DICT_RATIO_SAMPLE: usize = 1024;

/// Expected number of *new* distinct values among `additional` upcoming rows
/// of a column that showed `distinct` distinct values over `observed` rows,
/// clamped to a small floor (rehash slack) and to `additional` itself.
fn projected_distinct(distinct: usize, observed: usize, additional: usize) -> usize {
    let ratio = distinct as f64 / observed.max(1) as f64;
    ((additional as f64 * ratio).ceil() as usize).clamp(additional.min(64), additional.max(1))
}

/// Typed backing storage of a column: one value plane + one validity plane
/// (see the [module docs](self) for the layout contract).
#[derive(Debug, Clone)]
enum ColumnData {
    /// Integer storage (sentinel `0` in null slots).
    Int { values: Vec<i64>, validity: Bitmap },
    /// Float storage (sentinel `0.0` in null slots).
    Float { values: Vec<f64>, validity: Bitmap },
    /// Dictionary-encoded string storage (sentinel code `0` in null slots).
    Str {
        codes: Vec<u32>,
        validity: Bitmap,
        dict: Vec<String>,
        lookup: DictLookup,
    },
    /// Boolean storage (sentinel `false` in null slots).
    Bool { values: Vec<bool>, validity: Bitmap },
}

/// Zero-copy view of a float column: contiguous value plane + validity.
///
/// `values[i]` is meaningful only where `validity.get(i)`; null slots hold
/// the `0.0` sentinel.
#[derive(Debug, Clone, Copy)]
pub struct FloatView<'a> {
    /// The value plane (sentinel `0.0` where invalid).
    pub values: &'a [f64],
    /// Bit `i` set iff row `i` is non-null.
    pub validity: &'a Bitmap,
}

/// Zero-copy view of an integer column (see [`FloatView`] for the contract).
#[derive(Debug, Clone, Copy)]
pub struct IntView<'a> {
    /// The value plane (sentinel `0` where invalid).
    pub values: &'a [i64],
    /// Bit `i` set iff row `i` is non-null.
    pub validity: &'a Bitmap,
}

/// Zero-copy view of a boolean column (see [`FloatView`] for the contract).
#[derive(Debug, Clone, Copy)]
pub struct BoolView<'a> {
    /// The value plane (sentinel `false` where invalid).
    pub values: &'a [bool],
    /// Bit `i` set iff row `i` is non-null.
    pub validity: &'a Bitmap,
}

/// Zero-copy view of a dictionary-encoded string column.
#[derive(Debug, Clone, Copy)]
pub struct CodeView<'a> {
    /// Per-row dictionary codes (sentinel `0` where invalid — always check
    /// `validity` before trusting a code).
    pub codes: &'a [u32],
    /// Bit `i` set iff row `i` is non-null.
    pub validity: &'a Bitmap,
    /// The dictionary of distinct values the codes index into.
    pub dict: &'a [String],
}

/// Numeric view of any numeric column (`Int`, `Float`, `Bool`) as `f64`.
///
/// Zero-copy (`Cow::Borrowed`) for float columns; integer and boolean
/// columns are widened into one owned buffer per call — still a single
/// contiguous pass, amortised across whole-column consumers like binning.
#[derive(Debug)]
pub struct NumericView<'a> {
    /// The widened value plane (sentinel `0.0` where invalid).
    pub values: Cow<'a, [f64]>,
    /// Bit `i` set iff row `i` is non-null.
    pub validity: &'a Bitmap,
}

/// A single named column of a [`crate::Table`].
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    data: ColumnData,
}

/// Splits a `Vec<Option<T>>` into a sentinel-filled value plane and its
/// validity bitmap.
fn split_options<T: Copy + Default>(values: Vec<Option<T>>) -> (Vec<T>, Bitmap) {
    let mut validity = Bitmap::with_capacity(values.len());
    let plane = values
        .into_iter()
        .enumerate()
        .map(|(i, v)| {
            validity.push_bit(i, v.is_some());
            v.unwrap_or_default()
        })
        .collect();
    (plane, validity)
}

impl Column {
    /// Creates an integer column.
    pub fn from_i64(name: impl Into<String>, values: Vec<Option<i64>>) -> Self {
        let (values, validity) = split_options(values);
        Column {
            name: name.into(),
            data: ColumnData::Int { values, validity },
        }
    }

    /// Creates a float column.
    pub fn from_f64(name: impl Into<String>, values: Vec<Option<f64>>) -> Self {
        let (values, validity) = split_options(values);
        Column {
            name: name.into(),
            data: ColumnData::Float { values, validity },
        }
    }

    /// Creates a boolean column.
    pub fn from_bool(name: impl Into<String>, values: Vec<Option<bool>>) -> Self {
        let (values, validity) = split_options(values);
        Column {
            name: name.into(),
            data: ColumnData::Bool { values, validity },
        }
    }

    /// Creates a dictionary-encoded string column.
    pub fn from_str_values<S: AsRef<str>>(name: impl Into<String>, values: Vec<Option<S>>) -> Self {
        let len = values.len();
        let mut dict: Vec<String> = Vec::new();
        let mut lookup = DictLookup::default();
        // Reserve enough for the sampling prefix; once the prefix is
        // interned the observed distinct ratio sizes the rest of the load
        // (high-cardinality columns would otherwise rehash the lookup
        // dozens of times across a bulk ingest).
        lookup.reserve(len.min(DICT_RATIO_SAMPLE));
        let mut codes = Vec::with_capacity(len);
        let mut validity = Bitmap::with_capacity(len);
        for (i, v) in values.into_iter().enumerate() {
            if i == DICT_RATIO_SAMPLE {
                lookup.reserve(projected_distinct(dict.len(), i, len - i));
            }
            match v {
                None => {
                    codes.push(0);
                    validity.push_bit(i, false);
                }
                Some(s) => {
                    let s = s.as_ref();
                    let code = match lookup.get(s, &dict) {
                        Some(c) => c,
                        None => {
                            let c = dict.len() as u32;
                            lookup.insert(s, c);
                            dict.push(s.to_string());
                            c
                        }
                    };
                    codes.push(code);
                    validity.push_bit(i, true);
                }
            }
        }
        Column {
            name: name.into(),
            data: ColumnData::Str {
                codes,
                validity,
                dict,
                lookup,
            },
        }
    }

    /// Creates an empty column of the given type.
    pub fn empty(name: impl Into<String>, ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int => Column::from_i64(name, Vec::new()),
            ColumnType::Float => Column::from_f64(name, Vec::new()),
            ColumnType::Bool => Column::from_bool(name, Vec::new()),
            ColumnType::Str => Column::from_str_values::<&str>(name, Vec::new()),
        }
    }

    /// Reserves capacity for at least `additional` more rows on every plane
    /// (and, for string columns, on the dictionary lookup) — the bulk-append
    /// path for CSV loads and dataset generation.
    pub fn reserve(&mut self, additional: usize) {
        match &mut self.data {
            ColumnData::Int { values, validity } => {
                validity.reserve(values.len() + additional);
                values.reserve(additional);
            }
            ColumnData::Float { values, validity } => {
                validity.reserve(values.len() + additional);
                values.reserve(additional);
            }
            ColumnData::Bool { values, validity } => {
                validity.reserve(values.len() + additional);
                values.reserve(additional);
            }
            ColumnData::Str {
                codes,
                validity,
                dict,
                lookup,
            } => {
                validity.reserve(codes.len() + additional);
                codes.reserve(additional);
                // Size the lookup from the column's observed distinct ratio
                // (sampled over at most the first `DICT_RATIO_SAMPLE` rows'
                // worth of data): a high-cardinality column pre-reserves
                // close to one slot per appended row, a low-cardinality one
                // keeps the small slab. A fixed small slab here caused
                // rehash churn on every reserved bulk append of a
                // high-cardinality column.
                lookup.reserve(if codes.is_empty() {
                    additional.min(64)
                } else {
                    projected_distinct(dict.len(), codes.len(), additional)
                });
            }
        }
    }

    /// The column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the column.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The column's type.
    pub fn column_type(&self) -> ColumnType {
        match &self.data {
            ColumnData::Int { .. } => ColumnType::Int,
            ColumnData::Float { .. } => ColumnType::Float,
            ColumnData::Str { .. } => ColumnType::Str,
            ColumnData::Bool { .. } => ColumnType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int { values, .. } => values.len(),
            ColumnData::Float { values, .. } => values.len(),
            ColumnData::Str { codes, .. } => codes.len(),
            ColumnData::Bool { values, .. } => values.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The validity plane: bit `i` set iff row `i` is non-null.
    pub fn validity(&self) -> &Bitmap {
        match &self.data {
            ColumnData::Int { validity, .. }
            | ColumnData::Float { validity, .. }
            | ColumnData::Str { validity, .. }
            | ColumnData::Bool { validity, .. } => validity,
        }
    }

    /// Zero-copy view of a float column (`None` for other types).
    pub fn float_view(&self) -> Option<FloatView<'_>> {
        match &self.data {
            ColumnData::Float { values, validity } => Some(FloatView { values, validity }),
            _ => None,
        }
    }

    /// Zero-copy view of an integer column (`None` for other types).
    pub fn int_view(&self) -> Option<IntView<'_>> {
        match &self.data {
            ColumnData::Int { values, validity } => Some(IntView { values, validity }),
            _ => None,
        }
    }

    /// Zero-copy view of a boolean column (`None` for other types).
    pub fn bool_view(&self) -> Option<BoolView<'_>> {
        match &self.data {
            ColumnData::Bool { values, validity } => Some(BoolView { values, validity }),
            _ => None,
        }
    }

    /// Zero-copy view of a dictionary-encoded string column (`None` for
    /// other types).
    pub fn code_view(&self) -> Option<CodeView<'_>> {
        match &self.data {
            ColumnData::Str {
                codes,
                validity,
                dict,
                ..
            } => Some(CodeView {
                codes,
                validity,
                dict,
            }),
            _ => None,
        }
    }

    /// `f64` view of any numeric column (`None` for string columns):
    /// zero-copy for floats, one widening pass for ints and bools. Matches
    /// [`Column::get_f64`] element-wise on valid rows.
    pub fn numeric_view(&self) -> Option<NumericView<'_>> {
        match &self.data {
            ColumnData::Float { values, validity } => Some(NumericView {
                values: Cow::Borrowed(values),
                validity,
            }),
            ColumnData::Int { values, validity } => Some(NumericView {
                values: Cow::Owned(values.iter().map(|&x| x as f64).collect()),
                validity,
            }),
            ColumnData::Bool { values, validity } => Some(NumericView {
                values: Cow::Owned(values.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect()),
                validity,
            }),
            ColumnData::Str { .. } => None,
        }
    }

    /// Value at `row` (panics if out of bounds; use [`Column::try_get`] for a
    /// checked variant). Cold row-wise shim — scans should use the views.
    pub fn get(&self, row: usize) -> Value {
        match &self.data {
            ColumnData::Int { values, validity } => {
                // Indexing before the validity test preserves the panic on
                // out-of-bounds rows.
                let x = values[row];
                if validity.get(row) {
                    Value::Int(x)
                } else {
                    Value::Null
                }
            }
            ColumnData::Float { values, validity } => {
                let x = values[row];
                if validity.get(row) {
                    Value::Float(x)
                } else {
                    Value::Null
                }
            }
            ColumnData::Str {
                codes,
                validity,
                dict,
                ..
            } => {
                let c = codes[row];
                if validity.get(row) {
                    Value::Str(dict[c as usize].clone())
                } else {
                    Value::Null
                }
            }
            ColumnData::Bool { values, validity } => {
                let x = values[row];
                if validity.get(row) {
                    Value::Bool(x)
                } else {
                    Value::Null
                }
            }
        }
    }

    /// Checked access to the value at `row`.
    pub fn try_get(&self, row: usize) -> Result<Value> {
        if row >= self.len() {
            return Err(DataError::RowOutOfBounds {
                index: row,
                len: self.len(),
            });
        }
        Ok(self.get(row))
    }

    /// Whether the value at `row` is null.
    pub fn is_null(&self, row: usize) -> bool {
        !self.validity().get(row)
    }

    /// Number of nulls in the column.
    pub fn null_count(&self) -> usize {
        self.len() - self.validity().count()
    }

    /// Numeric view of the value at `row` (nulls and strings yield `None`).
    pub fn get_f64(&self, row: usize) -> Option<f64> {
        match &self.data {
            ColumnData::Int { values, validity } => validity.get(row).then(|| values[row] as f64),
            ColumnData::Float { values, validity } => validity.get(row).then(|| values[row]),
            ColumnData::Bool { values, validity } => {
                validity
                    .get(row)
                    .then(|| if values[row] { 1.0 } else { 0.0 })
            }
            ColumnData::Str { .. } => None,
        }
    }

    /// Dictionary code at `row` for string columns (`None` for nulls or
    /// non-string columns).
    pub fn get_code(&self, row: usize) -> Option<u32> {
        match &self.data {
            ColumnData::Str {
                codes, validity, ..
            } => validity.get(row).then(|| codes[row]),
            _ => None,
        }
    }

    /// The dictionary of a string column (empty slice otherwise).
    pub fn dictionary(&self) -> &[String] {
        match &self.data {
            ColumnData::Str { dict, .. } => dict,
            _ => &[],
        }
    }

    /// Appends a value, checking its type against the column type.
    pub fn push(&mut self, value: Value) -> Result<()> {
        let type_err = |expected: &str, v: &Value| DataError::TypeMismatch {
            column: self.name.clone(),
            expected: expected.to_string(),
            value: v.render(),
        };
        match (&mut self.data, value) {
            (ColumnData::Int { values, validity }, Value::Null) => {
                validity.push_bit(values.len(), false);
                values.push(0);
            }
            (ColumnData::Int { values, validity }, Value::Int(x)) => {
                validity.push_bit(values.len(), true);
                values.push(x);
            }
            (ColumnData::Float { values, validity }, Value::Null) => {
                validity.push_bit(values.len(), false);
                values.push(0.0);
            }
            (ColumnData::Float { values, validity }, Value::Float(x)) => {
                validity.push_bit(values.len(), true);
                values.push(x);
            }
            (ColumnData::Float { values, validity }, Value::Int(x)) => {
                validity.push_bit(values.len(), true);
                values.push(x as f64);
            }
            (ColumnData::Bool { values, validity }, Value::Null) => {
                validity.push_bit(values.len(), false);
                values.push(false);
            }
            (ColumnData::Bool { values, validity }, Value::Bool(x)) => {
                validity.push_bit(values.len(), true);
                values.push(x);
            }
            (
                ColumnData::Str {
                    codes, validity, ..
                },
                Value::Null,
            ) => {
                validity.push_bit(codes.len(), false);
                codes.push(0);
            }
            (
                ColumnData::Str {
                    codes,
                    validity,
                    dict,
                    lookup,
                },
                Value::Str(s),
            ) => {
                let code = match lookup.get(&s, dict) {
                    Some(c) => c,
                    None => {
                        let c = dict.len() as u32;
                        lookup.insert(&s, c);
                        dict.push(s);
                        c
                    }
                };
                validity.push_bit(codes.len(), true);
                codes.push(code);
            }
            (ColumnData::Int { .. }, v) => return Err(type_err("int", &v)),
            (ColumnData::Float { .. }, v) => return Err(type_err("float", &v)),
            (ColumnData::Bool { .. }, v) => return Err(type_err("bool", &v)),
            (ColumnData::Str { .. }, v) => return Err(type_err("str", &v)),
        }
        Ok(())
    }

    /// Returns a new column containing only the rows at `indices`
    /// (in the given order; indices may repeat).
    pub fn take(&self, indices: &[usize]) -> Column {
        match &self.data {
            ColumnData::Int { values, validity } => {
                let mut nv = Vec::with_capacity(indices.len());
                let mut nvalid = Bitmap::with_capacity(indices.len());
                for (j, &i) in indices.iter().enumerate() {
                    nvalid.push_bit(j, validity.get(i));
                    nv.push(values[i]);
                }
                Column {
                    name: self.name.clone(),
                    data: ColumnData::Int {
                        values: nv,
                        validity: nvalid,
                    },
                }
            }
            ColumnData::Float { values, validity } => {
                let mut nv = Vec::with_capacity(indices.len());
                let mut nvalid = Bitmap::with_capacity(indices.len());
                for (j, &i) in indices.iter().enumerate() {
                    nvalid.push_bit(j, validity.get(i));
                    nv.push(values[i]);
                }
                Column {
                    name: self.name.clone(),
                    data: ColumnData::Float {
                        values: nv,
                        validity: nvalid,
                    },
                }
            }
            ColumnData::Bool { values, validity } => {
                let mut nv = Vec::with_capacity(indices.len());
                let mut nvalid = Bitmap::with_capacity(indices.len());
                for (j, &i) in indices.iter().enumerate() {
                    nvalid.push_bit(j, validity.get(i));
                    nv.push(values[i]);
                }
                Column {
                    name: self.name.clone(),
                    data: ColumnData::Bool {
                        values: nv,
                        validity: nvalid,
                    },
                }
            }
            ColumnData::Str {
                codes,
                validity,
                dict,
                ..
            } => {
                // Rebuild the dictionary from the surviving values only.
                let values: Vec<Option<&str>> = indices
                    .iter()
                    .map(|&i| validity.get(i).then(|| dict[codes[i] as usize].as_str()))
                    .collect();
                Column::from_str_values(self.name.clone(), values)
            }
        }
    }

    /// All distinct non-null values of the column.
    pub fn distinct(&self) -> Vec<Value> {
        match &self.data {
            ColumnData::Str { dict, .. } => dict.iter().map(|s| Value::Str(s.clone())).collect(),
            _ => {
                let mut seen: Vec<Value> = Vec::new();
                for i in 0..self.len() {
                    let v = self.get(i);
                    if v.is_null() {
                        continue;
                    }
                    if !seen.iter().any(|s| s.loose_eq(&v)) {
                        seen.push(v);
                    }
                }
                seen
            }
        }
    }

    /// Number of distinct non-null values if it does not exceed `limit`,
    /// `None` as soon as a `limit + 1`-th distinct value is seen.
    ///
    /// Equivalent to `self.distinct_count() <= limit` (same loose numeric
    /// equality: values that compare equal as `f64`, with all NaNs
    /// identified, count once) but O(rows) with a bounded hash set instead
    /// of the O(rows × distinct) pairwise scan of [`Column::distinct`] —
    /// the difference between milliseconds and tens of seconds when a
    /// binner probes a ~100k-distinct timestamp column against a
    /// single-digit categorical threshold.
    pub fn distinct_at_most(&self, limit: usize) -> Option<usize> {
        // Canonical key under loose equality: the f64 bit pattern with all
        // NaNs collapsed and -0.0 folded into +0.0.
        fn key(x: f64) -> u64 {
            if x.is_nan() {
                f64::NAN.to_bits()
            } else if x == 0.0 {
                0.0f64.to_bits()
            } else {
                x.to_bits()
            }
        }
        match &self.data {
            ColumnData::Str { .. } => {
                let n = self.distinct_count();
                (n <= limit).then_some(n)
            }
            _ => {
                let view = self.numeric_view().expect("non-string column");
                let mut seen = std::collections::HashSet::with_capacity(limit.saturating_add(1));
                for (i, &x) in view.values.iter().enumerate() {
                    if view.validity.get(i) && seen.insert(key(x)) && seen.len() > limit {
                        return None;
                    }
                }
                Some(seen.len())
            }
        }
    }

    /// Number of distinct non-null values.
    pub fn distinct_count(&self) -> usize {
        match &self.data {
            ColumnData::Str {
                codes,
                validity,
                dict,
                ..
            } => {
                // dict may contain values that were fully removed by `take`;
                // count codes actually in use (null slots hold a sentinel
                // code and must not count).
                let mut used = vec![false; dict.len()];
                for (i, &c) in codes.iter().enumerate() {
                    if validity.get(i) {
                        used[c as usize] = true;
                    }
                }
                used.into_iter().filter(|&u| u).count()
            }
            _ => self.distinct().len(),
        }
    }

    /// Iterator over all values (including nulls) as [`Value`]s.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Mean of the non-null numeric values (`None` for string columns or if
    /// all values are null).
    pub fn mean(&self) -> Option<f64> {
        if !self.column_type().is_numeric() {
            return None;
        }
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in 0..self.len() {
            if let Some(x) = self.get_f64(i) {
                sum += x;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Minimum and maximum of the non-null numeric values.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        let mut out: Option<(f64, f64)> = None;
        for i in 0..self.len() {
            if let Some(x) = self.get_f64(i) {
                out = Some(match out {
                    None => (x, x),
                    Some((lo, hi)) => (lo.min(x), hi.max(x)),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_dictionary_encoding_dedups() {
        let c = Column::from_str_values(
            "airline",
            vec![Some("AA"), Some("DL"), Some("AA"), None, Some("AA")],
        );
        assert_eq!(c.len(), 5);
        assert_eq!(c.dictionary().len(), 2);
        assert_eq!(c.get(0), Value::from("AA"));
        assert!(c.get(3).is_null());
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.distinct_count(), 2);
    }

    #[test]
    fn push_type_checking() {
        let mut c = Column::from_i64("x", vec![Some(1)]);
        c.push(Value::Int(2)).unwrap();
        c.push(Value::Null).unwrap();
        assert!(c.push(Value::from("oops")).is_err());
        assert_eq!(c.len(), 3);

        // Ints are silently widened when pushed into float columns.
        let mut f = Column::from_f64("y", vec![]);
        f.push(Value::Int(3)).unwrap();
        assert_eq!(f.get_f64(0), Some(3.0));
    }

    #[test]
    fn take_reorders_and_repeats() {
        let c = Column::from_i64("x", vec![Some(10), Some(20), Some(30)]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.get(0), Value::Int(30));
        assert_eq!(t.get(1), Value::Int(10));
        assert_eq!(t.get(2), Value::Int(10));
    }

    #[test]
    fn take_string_column_rebuilds_dictionary() {
        let c = Column::from_str_values("s", vec![Some("a"), Some("b"), Some("c")]);
        let t = c.take(&[2]);
        assert_eq!(t.dictionary(), &["c".to_string()]);
        assert_eq!(t.get(0), Value::from("c"));
    }

    #[test]
    fn statistics() {
        let c = Column::from_f64("x", vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(c.mean(), Some(2.0));
        assert_eq!(c.min_max(), Some((1.0, 3.0)));
        let s = Column::from_str_values("s", vec![Some("a")]);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn distinct_numeric() {
        let c = Column::from_i64("x", vec![Some(1), Some(1), Some(2), None]);
        assert_eq!(c.distinct().len(), 2);
    }

    #[test]
    fn try_get_bounds() {
        let c = Column::from_i64("x", vec![Some(1)]);
        assert!(c.try_get(0).is_ok());
        assert!(c.try_get(1).is_err());
    }

    #[test]
    fn empty_columns() {
        for ty in [
            ColumnType::Int,
            ColumnType::Float,
            ColumnType::Str,
            ColumnType::Bool,
        ] {
            let c = Column::empty("e", ty);
            assert!(c.is_empty());
            assert_eq!(c.column_type(), ty);
        }
    }

    #[test]
    fn views_expose_planes_with_sentinels() {
        let c = Column::from_f64("x", vec![Some(1.5), None, Some(-2.0)]);
        let v = c.float_view().unwrap();
        assert_eq!(v.values, &[1.5, 0.0, -2.0], "null slot holds the sentinel");
        assert!(v.validity.get(0) && !v.validity.get(1) && v.validity.get(2));
        assert!(c.int_view().is_none() && c.code_view().is_none());

        let c = Column::from_i64("y", vec![None, Some(7)]);
        let v = c.int_view().unwrap();
        assert_eq!(v.values, &[0, 7]);
        assert!(!v.validity.get(0) && v.validity.get(1));

        let c = Column::from_bool("b", vec![Some(true), None]);
        let v = c.bool_view().unwrap();
        assert_eq!(v.values, &[true, false]);

        let c = Column::from_str_values("s", vec![None, Some("a"), Some("b"), Some("a")]);
        let v = c.code_view().unwrap();
        assert_eq!(v.codes, &[0, 0, 1, 0], "null sentinel code aliases code 0");
        assert!(!v.validity.get(0) && v.validity.get(1));
        assert_eq!(v.dict, &["a".to_string(), "b".to_string()]);
        // The alias never leaks: row-wise access and distinct counting
        // consult validity first.
        assert!(c.get(0).is_null());
        assert_eq!(c.distinct_count(), 2);
    }

    #[test]
    fn numeric_view_matches_get_f64_for_every_numeric_type() {
        let cols = [
            Column::from_f64("f", vec![Some(1.0), None, Some(f64::NAN), Some(3.5)]),
            Column::from_i64("i", vec![Some(-4), None, Some(9)]),
            Column::from_bool("b", vec![Some(true), Some(false), None]),
        ];
        for c in &cols {
            let v = c.numeric_view().unwrap();
            assert_eq!(v.values.len(), c.len());
            for r in 0..c.len() {
                match c.get_f64(r) {
                    Some(x) => {
                        assert!(v.validity.get(r));
                        // NaN-safe comparison via bit pattern.
                        assert_eq!(v.values[r].to_bits(), x.to_bits(), "row {r}");
                    }
                    None => assert!(!v.validity.get(r)),
                }
            }
        }
        // Float view is zero-copy, int/bool are widened.
        assert!(matches!(
            cols[0].numeric_view().unwrap().values,
            Cow::Borrowed(_)
        ));
        assert!(matches!(
            cols[1].numeric_view().unwrap().values,
            Cow::Owned(_)
        ));
        let s = Column::from_str_values("s", vec![Some("x")]);
        assert!(s.numeric_view().is_none());
    }

    #[test]
    fn validity_word_boundary_and_extreme_columns() {
        // 130 rows crosses the u64 word boundary; nulls placed at both
        // sides of bit 64 and at the trailing slack region.
        let values: Vec<Option<i64>> = (0..130)
            .map(|i| {
                if [0usize, 63, 64, 65, 128, 129].contains(&i) {
                    None
                } else {
                    Some(i as i64)
                }
            })
            .collect();
        let c = Column::from_i64("x", values);
        assert_eq!(c.null_count(), 6);
        assert_eq!(c.validity().count(), 130 - 6);
        for i in [0usize, 63, 64, 65, 128, 129] {
            assert!(c.is_null(i), "row {i}");
        }
        assert!(!c.is_null(62) && !c.is_null(66) && !c.is_null(127));

        // All-null and no-null columns at exactly one word.
        let all_null = Column::from_f64("n", vec![None; 64]);
        assert_eq!(all_null.null_count(), 64);
        assert_eq!(all_null.validity().count(), 0);
        assert_eq!(all_null.mean(), None);
        let no_null = Column::from_f64("v", (0..64).map(|i| Some(i as f64)).collect());
        assert_eq!(no_null.null_count(), 0);
        assert_eq!(no_null.validity().count(), 64);
    }

    #[test]
    fn random_appends_keep_validity_in_sync() {
        // Property test with a deterministic xorshift: after any append
        // sequence, validity.count() == number of non-null appends.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut c = Column::from_str_values::<&str>("s", Vec::new());
        let mut f = Column::from_f64("f", Vec::new());
        let mut non_null_c = 0usize;
        let mut non_null_f = 0usize;
        let words = ["a", "b", "c", "d", "e"];
        for i in 0..1000 {
            if rng() % 4 == 0 {
                c.push(Value::Null).unwrap();
                f.push(Value::Null).unwrap();
            } else {
                c.push(Value::from(words[(rng() % 5) as usize])).unwrap();
                f.push(Value::Float(i as f64)).unwrap();
                non_null_c += 1;
                non_null_f += 1;
            }
            assert_eq!(c.validity().count(), non_null_c, "after append {i}");
            assert_eq!(f.validity().count(), non_null_f, "after append {i}");
            assert_eq!(c.len(), i + 1);
        }
        assert_eq!(c.null_count(), 1000 - non_null_c);
        // Every interned word resolves back through the dictionary.
        assert_eq!(c.distinct_count(), 5);
    }

    #[test]
    fn dict_lookup_survives_hash_collisions() {
        // Real 64-bit collisions are unconstructable in a unit test, so
        // simulate one: occupy "x"'s hash slot with a different code, then
        // intern "x" — it must chain into overflow and still resolve.
        let mut dict = vec!["decoy".to_string()];
        let mut lookup = DictLookup::default();
        lookup.map.insert(DictLookup::hash_of("x"), 0);
        assert_eq!(lookup.get("x", &dict), None, "decoy does not match");
        let c = dict.len() as u32;
        lookup.insert("x", c);
        dict.push("x".to_string());
        assert!(!lookup.overflow.is_empty(), "collision chained to overflow");
        assert_eq!(lookup.get("x", &dict), Some(1));
        assert_eq!(lookup.get("decoy", &dict), None, "hash mismatch stays miss");
    }

    #[test]
    fn distinct_at_most_matches_distinct_count() {
        let cols = [
            Column::from_i64("i", vec![Some(1), Some(1), Some(2), None, Some(3)]),
            Column::from_f64(
                "f",
                vec![
                    Some(0.0),
                    Some(-0.0),
                    Some(f64::NAN),
                    Some(f64::NAN),
                    Some(2.5),
                    None,
                ],
            ),
            Column::from_bool("b", vec![Some(true), Some(false), Some(true)]),
            Column::from_str_values("s", vec![Some("a"), Some("b"), Some("a"), None]),
        ];
        for c in &cols {
            let n = c.distinct_count();
            assert_eq!(c.distinct_at_most(c.len()), Some(n), "{}", c.name());
            assert_eq!(c.distinct_at_most(n), Some(n), "{}", c.name());
            if n > 0 {
                assert_eq!(c.distinct_at_most(n - 1), None, "{}", c.name());
            }
        }
        // Empty column: zero distinct values fit under any limit.
        assert_eq!(Column::from_i64("e", vec![]).distinct_at_most(0), Some(0));
    }

    #[test]
    fn reserve_sizes_lookup_from_distinct_ratio() {
        // A high-cardinality column (every value distinct) must project
        // roughly one lookup slot per reserved row, not the old fixed slab.
        let values: Vec<Option<String>> = (0..2000).map(|i| Some(format!("v{i}"))).collect();
        let mut c = Column::from_str_values("s", values);
        c.reserve(10_000);
        let cap = match &c.data {
            ColumnData::Str { lookup, .. } => lookup.map.capacity(),
            _ => unreachable!(),
        };
        assert!(cap >= 12_000, "capacity {cap} ignores the distinct ratio");

        // A constant column keeps the small slab.
        let values: Vec<Option<&str>> = (0..2000).map(|_| Some("same")).collect();
        let mut c = Column::from_str_values("s", values);
        c.reserve(1_000_000);
        let cap = match &c.data {
            ColumnData::Str { lookup, .. } => lookup.map.capacity(),
            _ => unreachable!(),
        };
        assert!(
            cap < 10_000,
            "capacity {cap} over-reserves a constant column"
        );
    }

    #[test]
    fn reserve_is_transparent() {
        let mut c = Column::from_str_values("s", vec![Some("a")]);
        let snapshot = format!("{:?}", c.iter().collect::<Vec<_>>());
        c.reserve(10_000);
        assert_eq!(format!("{:?}", c.iter().collect::<Vec<_>>()), snapshot);
        c.push(Value::from("b")).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.distinct_count(), 2);
    }
}
