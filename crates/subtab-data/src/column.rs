//! Typed, null-aware columnar storage.

use crate::error::DataError;
use crate::schema::ColumnType;
use crate::value::Value;
use crate::Result;
use std::collections::HashMap;

/// Typed backing storage of a column.
///
/// Strings are dictionary-encoded: the `codes` vector stores indices into a
/// deduplicated `dict` of distinct strings, which keeps memory proportional to
/// the number of *distinct* categorical values — important for wide
/// categorical datasets like the paper's US-Funds table (298 columns).
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Integer storage.
    Int(Vec<Option<i64>>),
    /// Float storage.
    Float(Vec<Option<f64>>),
    /// Dictionary-encoded string storage.
    Str {
        /// Per-row code into `dict` (`None` = null).
        codes: Vec<Option<u32>>,
        /// Distinct values.
        dict: Vec<String>,
        /// Reverse lookup from value to code.
        lookup: HashMap<String, u32>,
    },
    /// Boolean storage.
    Bool(Vec<Option<bool>>),
}

/// A single named column of a [`crate::Table`].
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    data: ColumnData,
}

impl Column {
    /// Creates an integer column.
    pub fn from_i64(name: impl Into<String>, values: Vec<Option<i64>>) -> Self {
        Column {
            name: name.into(),
            data: ColumnData::Int(values),
        }
    }

    /// Creates a float column.
    pub fn from_f64(name: impl Into<String>, values: Vec<Option<f64>>) -> Self {
        Column {
            name: name.into(),
            data: ColumnData::Float(values),
        }
    }

    /// Creates a boolean column.
    pub fn from_bool(name: impl Into<String>, values: Vec<Option<bool>>) -> Self {
        Column {
            name: name.into(),
            data: ColumnData::Bool(values),
        }
    }

    /// Creates a dictionary-encoded string column.
    pub fn from_str_values<S: AsRef<str>>(name: impl Into<String>, values: Vec<Option<S>>) -> Self {
        let mut dict: Vec<String> = Vec::new();
        let mut lookup: HashMap<String, u32> = HashMap::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            match v {
                None => codes.push(None),
                Some(s) => {
                    let s = s.as_ref();
                    let code = match lookup.get(s) {
                        Some(&c) => c,
                        None => {
                            let c = dict.len() as u32;
                            dict.push(s.to_string());
                            lookup.insert(s.to_string(), c);
                            c
                        }
                    };
                    codes.push(Some(code));
                }
            }
        }
        Column {
            name: name.into(),
            data: ColumnData::Str {
                codes,
                dict,
                lookup,
            },
        }
    }

    /// Creates an empty column of the given type.
    pub fn empty(name: impl Into<String>, ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int => Column::from_i64(name, Vec::new()),
            ColumnType::Float => Column::from_f64(name, Vec::new()),
            ColumnType::Bool => Column::from_bool(name, Vec::new()),
            ColumnType::Str => Column::from_str_values::<&str>(name, Vec::new()),
        }
    }

    /// The column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the column.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The column's type.
    pub fn column_type(&self) -> ColumnType {
        match &self.data {
            ColumnData::Int(_) => ColumnType::Int,
            ColumnData::Float(_) => ColumnType::Float,
            ColumnData::Str { .. } => ColumnType::Str,
            ColumnData::Bool(_) => ColumnType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `row` (panics if out of bounds; use [`Column::try_get`] for a
    /// checked variant).
    pub fn get(&self, row: usize) -> Value {
        match &self.data {
            ColumnData::Int(v) => v[row].map_or(Value::Null, Value::Int),
            ColumnData::Float(v) => v[row].map_or(Value::Null, Value::Float),
            ColumnData::Str { codes, dict, .. } => {
                codes[row].map_or(Value::Null, |c| Value::Str(dict[c as usize].clone()))
            }
            ColumnData::Bool(v) => v[row].map_or(Value::Null, Value::Bool),
        }
    }

    /// Checked access to the value at `row`.
    pub fn try_get(&self, row: usize) -> Result<Value> {
        if row >= self.len() {
            return Err(DataError::RowOutOfBounds {
                index: row,
                len: self.len(),
            });
        }
        Ok(self.get(row))
    }

    /// Whether the value at `row` is null.
    pub fn is_null(&self, row: usize) -> bool {
        match &self.data {
            ColumnData::Int(v) => v[row].is_none(),
            ColumnData::Float(v) => v[row].is_none(),
            ColumnData::Str { codes, .. } => codes[row].is_none(),
            ColumnData::Bool(v) => v[row].is_none(),
        }
    }

    /// Number of nulls in the column.
    pub fn null_count(&self) -> usize {
        (0..self.len()).filter(|&i| self.is_null(i)).count()
    }

    /// Numeric view of the value at `row` (nulls and strings yield `None`).
    pub fn get_f64(&self, row: usize) -> Option<f64> {
        match &self.data {
            ColumnData::Int(v) => v[row].map(|x| x as f64),
            ColumnData::Float(v) => v[row],
            ColumnData::Bool(v) => v[row].map(|b| if b { 1.0 } else { 0.0 }),
            ColumnData::Str { .. } => None,
        }
    }

    /// Dictionary code at `row` for string columns (`None` for nulls or
    /// non-string columns).
    pub fn get_code(&self, row: usize) -> Option<u32> {
        match &self.data {
            ColumnData::Str { codes, .. } => codes[row],
            _ => None,
        }
    }

    /// The dictionary of a string column (empty slice otherwise).
    pub fn dictionary(&self) -> &[String] {
        match &self.data {
            ColumnData::Str { dict, .. } => dict,
            _ => &[],
        }
    }

    /// Appends a value, checking its type against the column type.
    pub fn push(&mut self, value: Value) -> Result<()> {
        let type_err = |expected: &str, v: &Value| DataError::TypeMismatch {
            column: self.name.clone(),
            expected: expected.to_string(),
            value: v.render(),
        };
        match (&mut self.data, value) {
            (ColumnData::Int(v), Value::Null) => v.push(None),
            (ColumnData::Int(v), Value::Int(x)) => v.push(Some(x)),
            (ColumnData::Float(v), Value::Null) => v.push(None),
            (ColumnData::Float(v), Value::Float(x)) => v.push(Some(x)),
            (ColumnData::Float(v), Value::Int(x)) => v.push(Some(x as f64)),
            (ColumnData::Bool(v), Value::Null) => v.push(None),
            (ColumnData::Bool(v), Value::Bool(x)) => v.push(Some(x)),
            (ColumnData::Str { codes, .. }, Value::Null) => codes.push(None),
            (
                ColumnData::Str {
                    codes,
                    dict,
                    lookup,
                },
                Value::Str(s),
            ) => {
                let code = match lookup.get(&s) {
                    Some(&c) => c,
                    None => {
                        let c = dict.len() as u32;
                        dict.push(s.clone());
                        lookup.insert(s, c);
                        c
                    }
                };
                codes.push(Some(code));
            }
            (ColumnData::Int(_), v) => return Err(type_err("int", &v)),
            (ColumnData::Float(_), v) => return Err(type_err("float", &v)),
            (ColumnData::Bool(_), v) => return Err(type_err("bool", &v)),
            (ColumnData::Str { .. }, v) => return Err(type_err("str", &v)),
        }
        Ok(())
    }

    /// Returns a new column containing only the rows at `indices`
    /// (in the given order; indices may repeat).
    pub fn take(&self, indices: &[usize]) -> Column {
        match &self.data {
            ColumnData::Int(v) => {
                Column::from_i64(self.name.clone(), indices.iter().map(|&i| v[i]).collect())
            }
            ColumnData::Float(v) => {
                Column::from_f64(self.name.clone(), indices.iter().map(|&i| v[i]).collect())
            }
            ColumnData::Bool(v) => {
                Column::from_bool(self.name.clone(), indices.iter().map(|&i| v[i]).collect())
            }
            ColumnData::Str { codes, dict, .. } => {
                let values: Vec<Option<&str>> = indices
                    .iter()
                    .map(|&i| codes[i].map(|c| dict[c as usize].as_str()))
                    .collect();
                Column::from_str_values(self.name.clone(), values)
            }
        }
    }

    /// All distinct non-null values of the column.
    pub fn distinct(&self) -> Vec<Value> {
        match &self.data {
            ColumnData::Str { dict, .. } => dict.iter().map(|s| Value::Str(s.clone())).collect(),
            _ => {
                let mut seen: Vec<Value> = Vec::new();
                for i in 0..self.len() {
                    let v = self.get(i);
                    if v.is_null() {
                        continue;
                    }
                    if !seen.iter().any(|s| s.loose_eq(&v)) {
                        seen.push(v);
                    }
                }
                seen
            }
        }
    }

    /// Number of distinct non-null values.
    pub fn distinct_count(&self) -> usize {
        match &self.data {
            ColumnData::Str { dict, codes, .. } => {
                // dict may contain values that were fully removed by `take`;
                // count codes actually in use.
                let mut used = vec![false; dict.len()];
                for c in codes.iter().flatten() {
                    used[*c as usize] = true;
                }
                used.into_iter().filter(|&u| u).count()
            }
            _ => self.distinct().len(),
        }
    }

    /// Iterator over all values (including nulls) as [`Value`]s.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Mean of the non-null numeric values (`None` for string columns or if
    /// all values are null).
    pub fn mean(&self) -> Option<f64> {
        if !self.column_type().is_numeric() {
            return None;
        }
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in 0..self.len() {
            if let Some(x) = self.get_f64(i) {
                sum += x;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Minimum and maximum of the non-null numeric values.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        let mut out: Option<(f64, f64)> = None;
        for i in 0..self.len() {
            if let Some(x) = self.get_f64(i) {
                out = Some(match out {
                    None => (x, x),
                    Some((lo, hi)) => (lo.min(x), hi.max(x)),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_dictionary_encoding_dedups() {
        let c = Column::from_str_values(
            "airline",
            vec![Some("AA"), Some("DL"), Some("AA"), None, Some("AA")],
        );
        assert_eq!(c.len(), 5);
        assert_eq!(c.dictionary().len(), 2);
        assert_eq!(c.get(0), Value::from("AA"));
        assert!(c.get(3).is_null());
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.distinct_count(), 2);
    }

    #[test]
    fn push_type_checking() {
        let mut c = Column::from_i64("x", vec![Some(1)]);
        c.push(Value::Int(2)).unwrap();
        c.push(Value::Null).unwrap();
        assert!(c.push(Value::from("oops")).is_err());
        assert_eq!(c.len(), 3);

        // Ints are silently widened when pushed into float columns.
        let mut f = Column::from_f64("y", vec![]);
        f.push(Value::Int(3)).unwrap();
        assert_eq!(f.get_f64(0), Some(3.0));
    }

    #[test]
    fn take_reorders_and_repeats() {
        let c = Column::from_i64("x", vec![Some(10), Some(20), Some(30)]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.get(0), Value::Int(30));
        assert_eq!(t.get(1), Value::Int(10));
        assert_eq!(t.get(2), Value::Int(10));
    }

    #[test]
    fn take_string_column_rebuilds_dictionary() {
        let c = Column::from_str_values("s", vec![Some("a"), Some("b"), Some("c")]);
        let t = c.take(&[2]);
        assert_eq!(t.dictionary(), &["c".to_string()]);
        assert_eq!(t.get(0), Value::from("c"));
    }

    #[test]
    fn statistics() {
        let c = Column::from_f64("x", vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(c.mean(), Some(2.0));
        assert_eq!(c.min_max(), Some((1.0, 3.0)));
        let s = Column::from_str_values("s", vec![Some("a")]);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn distinct_numeric() {
        let c = Column::from_i64("x", vec![Some(1), Some(1), Some(2), None]);
        assert_eq!(c.distinct().len(), 2);
    }

    #[test]
    fn try_get_bounds() {
        let c = Column::from_i64("x", vec![Some(1)]);
        assert!(c.try_get(0).is_ok());
        assert!(c.try_get(1).is_err());
    }

    #[test]
    fn empty_columns() {
        for ty in [
            ColumnType::Int,
            ColumnType::Float,
            ColumnType::Str,
            ColumnType::Bool,
        ] {
            let c = Column::empty("e", ty);
            assert!(c.is_empty());
            assert_eq!(c.column_type(), ty);
        }
    }
}
