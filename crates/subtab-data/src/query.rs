//! Selection–projection (SP) queries with sorting and grouping.
//!
//! These are the exploratory operations the paper assumes an analyst issues
//! during an EDA session: *select* rows by simple predicates, *project*
//! columns, *sort*, and *group-by* with simple aggregates. A [`Query`] bundles
//! them and executes against a [`Table`], producing a new [`Table`].

use crate::column::Column;
use crate::error::DataError;
use crate::expr::QueryExpr;
use crate::table::Table;
use crate::value::Value;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Comparison operator of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompareOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// A single row-selection predicate over one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Compare the column value with a constant.
    Compare {
        /// Column the predicate applies to.
        column: String,
        /// Comparison operator.
        op: CompareOp,
        /// Constant to compare against.
        value: Value,
    },
    /// The column value is null.
    IsNull {
        /// Column the predicate applies to.
        column: String,
    },
    /// The column value is not null.
    NotNull {
        /// Column the predicate applies to.
        column: String,
    },
    /// The column value is one of the given constants.
    InSet {
        /// Column the predicate applies to.
        column: String,
        /// Allowed values.
        values: Vec<Value>,
    },
    /// The column value lies in `[low, high)` (numeric only).
    Between {
        /// Column the predicate applies to.
        column: String,
        /// Inclusive lower bound.
        low: f64,
        /// Exclusive upper bound.
        high: f64,
    },
}

impl Predicate {
    /// Equality predicate.
    pub fn eq(column: &str, value: Value) -> Self {
        Predicate::Compare {
            column: column.to_string(),
            op: CompareOp::Eq,
            value,
        }
    }

    /// Inequality predicate.
    pub fn ne(column: &str, value: Value) -> Self {
        Predicate::Compare {
            column: column.to_string(),
            op: CompareOp::Ne,
            value,
        }
    }

    /// Strictly-less-than predicate.
    pub fn lt(column: &str, value: Value) -> Self {
        Predicate::Compare {
            column: column.to_string(),
            op: CompareOp::Lt,
            value,
        }
    }

    /// Strictly-greater-than predicate.
    pub fn gt(column: &str, value: Value) -> Self {
        Predicate::Compare {
            column: column.to_string(),
            op: CompareOp::Gt,
            value,
        }
    }

    /// Half-open numeric range predicate.
    pub fn between(column: &str, low: f64, high: f64) -> Self {
        Predicate::Between {
            column: column.to_string(),
            low,
            high,
        }
    }

    /// Null-test predicate.
    pub fn is_null(column: &str) -> Self {
        Predicate::IsNull {
            column: column.to_string(),
        }
    }

    /// Not-null predicate.
    pub fn not_null(column: &str) -> Self {
        Predicate::NotNull {
            column: column.to_string(),
        }
    }

    /// Membership predicate.
    pub fn in_set(column: &str, values: Vec<Value>) -> Self {
        Predicate::InSet {
            column: column.to_string(),
            values,
        }
    }

    /// Name of the column this predicate touches.
    pub fn column(&self) -> &str {
        match self {
            Predicate::Compare { column, .. }
            | Predicate::IsNull { column }
            | Predicate::NotNull { column }
            | Predicate::InSet { column, .. }
            | Predicate::Between { column, .. } => column,
        }
    }

    /// The constant values referenced by the predicate (used by the
    /// EDA-session study to check whether a query fragment appears in a
    /// previously shown sub-table).
    pub fn referenced_values(&self) -> Vec<Value> {
        match self {
            Predicate::Compare { value, .. } => vec![value.clone()],
            Predicate::InSet { values, .. } => values.clone(),
            Predicate::Between { low, high, .. } => {
                vec![Value::Float(*low), Value::Float(*high)]
            }
            _ => Vec::new(),
        }
    }

    /// The canonical spelling of the predicate: constant values are
    /// normalised (numeric types collapse onto `Float` where exactly
    /// representable, `-0.0` becomes `0.0`, NaNs share one bit pattern) and
    /// `InSet` value lists are sorted and deduplicated. The canonical
    /// predicate matches exactly the rows the original does — predicate
    /// evaluation compares numerics by value ([`Value::loose_eq`]) — so two
    /// predicates with equal [`Predicate::encode_canonical`] strings are
    /// interchangeable.
    pub fn canonical(&self) -> Predicate {
        match self {
            Predicate::Compare { column, op, value } => Predicate::Compare {
                column: column.clone(),
                op: *op,
                value: canonical_value(value),
            },
            Predicate::InSet { column, values } => {
                let mut values: Vec<Value> = values.iter().map(canonical_value).collect();
                values.sort_by(|a, b| a.total_cmp(b));
                values.dedup_by(|a, b| a.loose_eq(b));
                Predicate::InSet {
                    column: column.clone(),
                    values,
                }
            }
            Predicate::Between { column, low, high } => Predicate::Between {
                column: column.clone(),
                low: canonical_f64(*low),
                high: canonical_f64(*high),
            },
            Predicate::IsNull { .. } | Predicate::NotNull { .. } => self.clone(),
        }
    }

    /// An unambiguous, type-tagged textual encoding of the canonical form of
    /// this predicate. Two predicates encode identically iff they select the
    /// same rows by construction (same column, operator and normalised
    /// constants); the encoding is what [`Query::selection_key`] sorts,
    /// deduplicates and hashes predicates by.
    pub fn encode_canonical(&self) -> String {
        let mut out = String::new();
        let canonical = self.canonical();
        encode_str(canonical.column(), &mut out);
        match &canonical {
            Predicate::Compare { op, value, .. } => {
                out.push_str(match op {
                    CompareOp::Eq => "=",
                    CompareOp::Ne => "!=",
                    CompareOp::Lt => "<",
                    CompareOp::Le => "<=",
                    CompareOp::Gt => ">",
                    CompareOp::Ge => ">=",
                });
                encode_value(value, &mut out);
            }
            Predicate::IsNull { .. } => out.push_str("is-null"),
            Predicate::NotNull { .. } => out.push_str("not-null"),
            Predicate::InSet { values, .. } => {
                out.push_str("in");
                for v in values {
                    encode_value(v, &mut out);
                }
            }
            Predicate::Between { low, high, .. } => {
                out.push_str("between");
                encode_value(&Value::Float(*low), &mut out);
                encode_value(&Value::Float(*high), &mut out);
            }
        }
        out
    }

    /// Evaluates the predicate for row `row` of `table`.
    pub fn matches(&self, table: &Table, row: usize) -> Result<bool> {
        let col = table
            .column(self.column())
            .ok_or_else(|| DataError::UnknownColumn(self.column().to_string()))?;
        let v = col.try_get(row)?;
        Ok(self.matches_value(&v))
    }

    /// Evaluates the predicate against an already-fetched cell value. This
    /// is the column-resolution-free kernel of [`Predicate::matches`]: the
    /// compiled bitmap path in `subtab-core` resolves the column once per
    /// leaf and streams the column's values through this.
    pub fn matches_value(&self, v: &Value) -> bool {
        match self {
            Predicate::IsNull { .. } => v.is_null(),
            Predicate::NotNull { .. } => !v.is_null(),
            Predicate::InSet { values, .. } => !v.is_null() && values.iter().any(|x| x.loose_eq(v)),
            Predicate::Between { low, high, .. } => match v.as_f64() {
                Some(x) => x >= *low && x < *high,
                None => false,
            },
            Predicate::Compare { op, value, .. } => {
                if v.is_null() || value.is_null() {
                    // Three-valued-logic style: comparisons with null never match,
                    // except Ne against a non-null constant which also does not
                    // match (consistent with SQL semantics).
                    false
                } else {
                    let ord = v.total_cmp(value);
                    match op {
                        CompareOp::Eq => v.loose_eq(value),
                        CompareOp::Ne => !v.loose_eq(value),
                        CompareOp::Lt => ord == std::cmp::Ordering::Less,
                        CompareOp::Le => ord != std::cmp::Ordering::Greater,
                        CompareOp::Gt => ord == std::cmp::Ordering::Greater,
                        CompareOp::Ge => ord != std::cmp::Ordering::Less,
                    }
                }
            }
        }
    }
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SortOrder {
    /// Ascending (nulls last).
    Ascending,
    /// Descending (nulls last).
    Descending,
}

/// A sort key: column plus direction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortSpec {
    /// Column to sort by.
    pub column: String,
    /// Direction.
    pub order: SortOrder,
}

/// Aggregate functions supported by group-by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// Number of rows in the group.
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Mean of a numeric column.
    Mean,
    /// Minimum of a numeric column.
    Min,
    /// Maximum of a numeric column.
    Max,
}

/// A group-by clause: grouping keys plus one aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupBy {
    /// Columns to group on.
    pub keys: Vec<String>,
    /// Aggregate function.
    pub agg: AggFunc,
    /// Column the aggregate is computed over (ignored for `Count`).
    pub agg_column: Option<String>,
}

/// A selection–projection query with optional sorting, grouping and limit.
///
/// Row selection is a [`QueryExpr`] tree (`AND`/`OR`/`NOT` over
/// single-column predicates); the historical flat conjunction is the
/// special case `And([p1, p2, ...])`, which the [`Query::filter`] builder
/// still produces. Queries can also be written in a SQL-ish text form —
/// see [`Query::parse`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Boolean row-selection expression (default `And([])` = match all).
    pub expr: QueryExpr,
    /// Columns to project onto (`None` = all columns).
    pub projection: Option<Vec<String>>,
    /// Sort keys applied after selection.
    pub sort: Vec<SortSpec>,
    /// Optional group-by (applied after selection, before projection).
    pub group_by: Option<GroupBy>,
    /// Optional row limit applied last.
    pub limit: Option<usize>,
}

impl Query {
    /// Creates an empty query (matches all rows, keeps all columns).
    pub fn new() -> Self {
        Query::default()
    }

    /// Creates a query selecting rows by the given expression tree.
    pub fn expr(expr: QueryExpr) -> Self {
        Query {
            expr,
            ..Query::default()
        }
    }

    /// ANDs another expression onto the selection (the n-ary builder form:
    /// an existing top-level `And` gains a child, anything else is wrapped).
    pub fn and_expr(mut self, e: QueryExpr) -> Self {
        self.expr = match self.expr {
            QueryExpr::And(mut children) => {
                children.push(e);
                QueryExpr::And(children)
            }
            other => QueryExpr::And(vec![other, e]),
        };
        self
    }

    /// Adds a predicate, ANDed with the existing selection.
    ///
    /// Deprecated-but-working shim from the flat-conjunction era: each
    /// `filter(p)` maps onto `and_expr(QueryExpr::leaf(p))`, so
    /// `Query::new().filter(a).filter(b)` builds the tree
    /// `And([Leaf(a), Leaf(b)])` — exactly the queries the old
    /// `Vec<Predicate>` API could express. New code should build the tree
    /// directly via [`Query::expr`] / [`Query::and_expr`].
    pub fn filter(self, p: Predicate) -> Self {
        self.and_expr(QueryExpr::leaf(p))
    }

    /// Whether the query has any row-selection expression (i.e. is not the
    /// raw match-all `TRUE`).
    pub fn is_filtered(&self) -> bool {
        !self.expr.is_match_all()
    }

    /// The leaf predicates of the selection expression, in tree order —
    /// the tree-era replacement for iterating the old flat predicate list
    /// (used by the EDA-session fragment study).
    pub fn leaf_predicates(&self) -> Vec<&Predicate> {
        self.expr.leaves()
    }

    /// Sets the projection columns.
    pub fn select(mut self, columns: &[&str]) -> Self {
        self.projection = Some(columns.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Adds a sort key.
    pub fn sort_by(mut self, column: &str, order: SortOrder) -> Self {
        self.sort.push(SortSpec {
            column: column.to_string(),
            order,
        });
        self
    }

    /// Sets a group-by clause.
    pub fn group(mut self, keys: &[&str], agg: AggFunc, agg_column: Option<&str>) -> Self {
        self.group_by = Some(GroupBy {
            keys: keys.iter().map(|s| s.to_string()).collect(),
            agg,
            agg_column: agg_column.map(|s| s.to_string()),
        });
        self
    }

    /// Sets a row limit.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Indices of the base-table rows that satisfy the selection
    /// expression, ascending.
    pub fn matching_rows(&self, table: &Table) -> Result<Vec<usize>> {
        let mut out = Vec::new();
        for r in 0..table.num_rows() {
            if self.expr.matches(table, r)? {
                out.push(r);
            }
        }
        Ok(out)
    }

    /// Indices of the base-table rows a *sub-table selection* over this
    /// query's result may draw from, in ascending row order: the rows
    /// matching all predicates, truncated to [`Query::limit`] after applying
    /// the sort keys (a `LIMIT` keeps the first `n` rows of the *sorted*
    /// result, so which rows survive depends on the sort). `limit: Some(0)`
    /// therefore yields an empty set. Group-by is intentionally ignored —
    /// an aggregated result has no base-table rows to select from, so
    /// selection falls back to the rows feeding the aggregation.
    pub fn selection_rows(&self, table: &Table) -> Result<Vec<usize>> {
        let rows = self.matching_rows(table)?;
        self.restrict_selection_rows(table, rows)
    }

    /// The sort-aware limit tail of [`Query::selection_rows`], applied to
    /// an externally computed ascending matching-row set. This is the seam
    /// the compiled bitmap engine in `subtab-core` plugs into: it produces
    /// the matching rows from per-leaf `RowBitmap`s and hands them here so
    /// limit/sort semantics stay in one place.
    pub fn restrict_selection_rows(
        &self,
        table: &Table,
        mut rows: Vec<usize>,
    ) -> Result<Vec<usize>> {
        if let Some(n) = self.limit {
            if n < rows.len() {
                if !self.sort.is_empty() {
                    validate_sort_columns(table, &self.sort)?;
                    sort_row_indices(table, &self.sort, &mut rows);
                }
                rows.truncate(n);
                // Selection treats the result as a row *set*; ascending order
                // keeps the downstream vector gathers deterministic.
                rows.sort_unstable();
            }
        }
        Ok(rows)
    }

    /// The canonical form of the query under *selection semantics*: the
    /// expression tree is canonicalised ([`QueryExpr::canonical`] — NOT
    /// pushed down, commutative children sorted and deduplicated, leaf
    /// constants normalised) and the projection is sorted and deduplicated.
    /// The canonical query selects exactly the same sub-table as the
    /// original (the selection re-orders columns into schema order), but
    /// its projection *display* order is not preserved — use it for cache
    /// keys and equivalence checks, not for rendering query results.
    pub fn canonical(&self) -> Query {
        let projection = self.projection.as_ref().map(|proj| {
            let mut proj = proj.clone();
            proj.sort_unstable();
            proj.dedup();
            proj
        });
        Query {
            expr: self.expr.canonical(),
            projection,
            sort: self.sort.clone(),
            group_by: self.group_by.clone(),
            limit: self.limit,
        }
    }

    /// An unambiguous textual key identifying this query's *selection
    /// equivalence class*: two queries get the same key iff they restrict a
    /// sub-table selection to the same candidate rows and columns. Built
    /// from the canonical expression encoding
    /// ([`QueryExpr::encode_canonical`] — commuted spellings, double
    /// negations and `IN`-vs-`OR`-of-`=` variants all share one key) and
    /// the canonical projection; the sort keys participate only when a
    /// limit makes them selection-relevant (without a limit, sorting never
    /// changes *which* rows are selected from), and group-by is excluded
    /// because selection ignores it (see [`Query::selection_rows`]). This
    /// is the string exploration-session caches key sub-table results by.
    pub fn selection_key(&self) -> String {
        let mut out = String::new();
        out.push_str("where");
        out.push(FIELD_SEP);
        out.push_str(&self.expr.encode_canonical());
        out.push(FIELD_SEP);
        out.push_str("select");
        match &self.projection {
            None => {
                out.push(FIELD_SEP);
                out.push('*');
            }
            Some(proj) => {
                let mut proj = proj.clone();
                proj.sort_unstable();
                proj.dedup();
                for c in &proj {
                    out.push(FIELD_SEP);
                    encode_str(c, &mut out);
                }
            }
        }
        if let Some(n) = self.limit {
            out.push(FIELD_SEP);
            out.push_str("limit");
            out.push_str(&n.to_string());
            for s in &self.sort {
                out.push(FIELD_SEP);
                out.push_str(match s.order {
                    SortOrder::Ascending => "asc",
                    SortOrder::Descending => "desc",
                });
                encode_str(&s.column, &mut out);
            }
        }
        out
    }

    /// All column names mentioned anywhere in the query (predicates,
    /// projection, sort, group-by). Used by the EDA simulation study.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = Vec::new();
        let mut push = |c: &str| {
            if !cols.iter().any(|x| x == c) {
                cols.push(c.to_string());
            }
        };
        for p in self.expr.leaves() {
            push(p.column());
        }
        if let Some(proj) = &self.projection {
            for c in proj {
                push(c);
            }
        }
        for s in &self.sort {
            push(&s.column);
        }
        if let Some(g) = &self.group_by {
            for k in &g.keys {
                push(k);
            }
            if let Some(c) = &g.agg_column {
                push(c);
            }
        }
        cols
    }

    /// Constant values referenced by the query's predicates.
    pub fn referenced_values(&self) -> Vec<Value> {
        self.expr
            .leaves()
            .into_iter()
            .flat_map(|p| p.referenced_values())
            .collect()
    }

    /// Executes the query against `table`, producing a new table.
    pub fn execute(&self, table: &Table) -> Result<Table> {
        // 1. Selection.
        let rows = self.matching_rows(table)?;
        let mut result = table.take(&rows)?;

        // 2. Group-by (replaces the row set with one row per group).
        if let Some(g) = &self.group_by {
            result = execute_group_by(&result, g)?;
        }

        // 3. Sorting.
        if !self.sort.is_empty() {
            result = sort_table(&result, &self.sort)?;
        }

        // 4. Projection.
        if let Some(proj) = &self.projection {
            if self.group_by.is_none() {
                let cols: Vec<&str> = proj.iter().map(String::as_str).collect();
                result = result.project(&cols)?;
            }
        }

        // 5. Limit.
        if let Some(n) = self.limit {
            result = result.head(n);
        }
        Ok(result)
    }
}

/// Separator between fields of the canonical query encodings. Cannot appear
/// inside encoded strings — those are length-prefixed — so the encoding is
/// injective.
const FIELD_SEP: char = '\u{1}';

/// A canonical `f64`: `-0.0` collapses onto `0.0` and every NaN shares one
/// bit pattern, so numerically equal constants encode identically.
fn canonical_f64(v: f64) -> f64 {
    if v == 0.0 {
        0.0
    } else if v.is_nan() {
        f64::NAN
    } else {
        v
    }
}

/// The canonical spelling of a predicate constant: numeric types collapse
/// onto `Float` when the value is exactly representable (predicate
/// evaluation compares numerics by value, so `Int(1)`, `Float(1.0)` and
/// `Bool(true)` select identical rows), integers beyond 2^53 stay `Int`.
pub(crate) fn canonical_value(v: &Value) -> Value {
    match v {
        Value::Null => Value::Null,
        Value::Bool(b) => Value::Float(if *b { 1.0 } else { 0.0 }),
        Value::Int(i) => {
            let f = *i as f64;
            // Exactness check in i128 so the saturating f64→i64 cast cannot
            // report i64::MAX as representable.
            if f as i128 == *i as i128 {
                Value::Float(canonical_f64(f))
            } else {
                Value::Int(*i)
            }
        }
        Value::Float(f) => Value::Float(canonical_f64(*f)),
        Value::Str(s) => Value::Str(s.clone()),
    }
}

/// Appends a length-prefixed string (no escaping needed — the prefix makes
/// the encoding unambiguous even if the string contains separators).
pub(crate) fn encode_str(s: &str, out: &mut String) {
    out.push_str(&s.len().to_string());
    out.push(':');
    out.push_str(s);
}

/// Appends a type-tagged value encoding; floats encode by bit pattern (the
/// value must already be canonical).
fn encode_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push('n'),
        Value::Int(i) => {
            out.push('i');
            out.push_str(&i.to_string());
        }
        Value::Float(f) => {
            out.push('f');
            out.push_str(&f.to_bits().to_string());
        }
        Value::Bool(b) => {
            out.push('b');
            out.push(if *b { '1' } else { '0' });
        }
        Value::Str(s) => {
            out.push('s');
            encode_str(s, out);
        }
    }
}

fn validate_sort_columns(table: &Table, specs: &[SortSpec]) -> Result<()> {
    for s in specs {
        if table.column(&s.column).is_none() {
            return Err(DataError::UnknownColumn(s.column.clone()));
        }
    }
    Ok(())
}

/// Sorts row indices by the sort keys; the columns must have been validated.
fn sort_row_indices(table: &Table, specs: &[SortSpec], indices: &mut [usize]) {
    indices.sort_by(|&a, &b| {
        for s in specs {
            let Some(col) = table.column(&s.column) else {
                continue; // validated by the caller; never taken
            };
            let (va, vb) = (col.get(a), col.get(b));
            // Nulls sort last irrespective of direction.
            let ord = match (va.is_null(), vb.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => match s.order {
                    SortOrder::Ascending => va.total_cmp(&vb),
                    SortOrder::Descending => va.total_cmp(&vb).reverse(),
                },
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

fn sort_table(table: &Table, specs: &[SortSpec]) -> Result<Table> {
    validate_sort_columns(table, specs)?;
    let mut indices: Vec<usize> = (0..table.num_rows()).collect();
    sort_row_indices(table, specs, &mut indices);
    table.take(&indices)
}

fn execute_group_by(table: &Table, g: &GroupBy) -> Result<Table> {
    for k in &g.keys {
        if table.column(k).is_none() {
            return Err(DataError::UnknownColumn(k.clone()));
        }
    }
    let agg_col = match (&g.agg, &g.agg_column) {
        (AggFunc::Count, _) => None,
        (_, Some(c)) => {
            if table.column(c).is_none() {
                return Err(DataError::UnknownColumn(c.clone()));
            }
            Some(c.clone())
        }
        (_, None) => {
            return Err(DataError::InvalidOperation(
                "group-by aggregate other than count requires an aggregate column".into(),
            ))
        }
    };

    // Group rows by the rendered key tuple (deterministic, handles nulls).
    let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    for r in 0..table.num_rows() {
        let key_vals: Vec<Value> = g
            .keys
            .iter()
            .map(|k| table.column(k).expect("validated").get(r))
            .collect();
        let key_str = key_vals
            .iter()
            .map(Value::render)
            .collect::<Vec<_>>()
            .join("\u{1}");
        match index.get(&key_str) {
            Some(&gi) => groups[gi].1.push(r),
            None => {
                index.insert(key_str, groups.len());
                groups.push((key_vals, vec![r]));
            }
        }
    }

    // Build result columns: one per key, plus the aggregate column.
    let mut key_columns: Vec<Vec<Value>> = vec![Vec::with_capacity(groups.len()); g.keys.len()];
    let mut agg_values: Vec<Option<f64>> = Vec::with_capacity(groups.len());
    for (key_vals, rows) in &groups {
        for (i, v) in key_vals.iter().enumerate() {
            key_columns[i].push(v.clone());
        }
        let agg = match g.agg {
            AggFunc::Count => Some(rows.len() as f64),
            _ => {
                let col = table
                    .column(agg_col.as_deref().expect("validated"))
                    .expect("validated");
                let vals: Vec<f64> = rows.iter().filter_map(|&r| col.get_f64(r)).collect();
                if vals.is_empty() {
                    None
                } else {
                    Some(match g.agg {
                        AggFunc::Sum => vals.iter().sum(),
                        AggFunc::Mean => vals.iter().sum::<f64>() / vals.len() as f64,
                        AggFunc::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
                        AggFunc::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                        AggFunc::Count => unreachable!(),
                    })
                }
            }
        };
        agg_values.push(agg);
    }

    let mut columns: Vec<Column> = Vec::with_capacity(g.keys.len() + 1);
    for (i, key) in g.keys.iter().enumerate() {
        let source = table.column(key).expect("validated");
        let mut col = Column::empty(key.clone(), source.column_type());
        for v in &key_columns[i] {
            col.push(v.clone())?;
        }
        columns.push(col);
    }
    let agg_name = match (&g.agg, &agg_col) {
        (AggFunc::Count, _) => "count".to_string(),
        (AggFunc::Sum, Some(c)) => format!("sum_{c}"),
        (AggFunc::Mean, Some(c)) => format!("mean_{c}"),
        (AggFunc::Min, Some(c)) => format!("min_{c}"),
        (AggFunc::Max, Some(c)) => format!("max_{c}"),
        _ => "agg".to_string(),
    };
    columns.push(Column::from_f64(agg_name, agg_values));
    Table::from_columns(columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn table() -> Table {
        Table::builder()
            .column_str(
                "airline",
                vec![Some("AA"), Some("DL"), Some("AA"), Some("UA"), Some("DL")],
            )
            .column_f64(
                "distance",
                vec![Some(100.0), Some(2500.0), Some(700.0), None, Some(900.0)],
            )
            .column_i64(
                "cancelled",
                vec![Some(0), Some(0), Some(1), Some(1), Some(0)],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn filter_eq_and_projection() {
        let t = table();
        let q = Query::new()
            .filter(Predicate::eq("airline", Value::from("AA")))
            .select(&["airline", "cancelled"]);
        let r = q.execute(&t).unwrap();
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.num_columns(), 2);
    }

    #[test]
    fn filter_numeric_comparisons() {
        let t = table();
        let gt = Query::new().filter(Predicate::gt("distance", Value::from(800.0)));
        assert_eq!(gt.execute(&t).unwrap().num_rows(), 2);
        let lt = Query::new().filter(Predicate::lt("distance", Value::from(800.0)));
        assert_eq!(lt.execute(&t).unwrap().num_rows(), 2);
        let between = Query::new().filter(Predicate::between("distance", 100.0, 900.0));
        assert_eq!(between.execute(&t).unwrap().num_rows(), 2);
    }

    #[test]
    fn null_handling_in_predicates() {
        let t = table();
        let isnull = Query::new().filter(Predicate::is_null("distance"));
        assert_eq!(isnull.execute(&t).unwrap().num_rows(), 1);
        let notnull = Query::new().filter(Predicate::not_null("distance"));
        assert_eq!(notnull.execute(&t).unwrap().num_rows(), 4);
        // Comparisons never match nulls.
        let gt = Query::new().filter(Predicate::gt("distance", Value::from(-1.0)));
        assert_eq!(gt.execute(&t).unwrap().num_rows(), 4);
        let ne = Query::new().filter(Predicate::ne("distance", Value::from(100.0)));
        assert_eq!(ne.execute(&t).unwrap().num_rows(), 3);
    }

    #[test]
    fn in_set_predicate() {
        let t = table();
        let q = Query::new().filter(Predicate::in_set(
            "airline",
            vec![Value::from("DL"), Value::from("UA")],
        ));
        assert_eq!(q.execute(&t).unwrap().num_rows(), 3);
    }

    #[test]
    fn conjunctive_predicates() {
        let t = table();
        let q = Query::new()
            .filter(Predicate::eq("airline", Value::from("DL")))
            .filter(Predicate::eq("cancelled", Value::from(0i64)));
        assert_eq!(q.execute(&t).unwrap().num_rows(), 2);
    }

    #[test]
    fn sorting_asc_desc_nulls_last() {
        let t = table();
        let asc = Query::new()
            .sort_by("distance", SortOrder::Ascending)
            .execute(&t)
            .unwrap();
        assert_eq!(asc.value(0, "distance").unwrap(), Value::Float(100.0));
        assert!(asc.value(4, "distance").unwrap().is_null());
        let desc = Query::new()
            .sort_by("distance", SortOrder::Descending)
            .execute(&t)
            .unwrap();
        assert_eq!(desc.value(0, "distance").unwrap(), Value::Float(2500.0));
        let err = Query::new()
            .sort_by("missing", SortOrder::Ascending)
            .execute(&t);
        assert!(err.is_err());
    }

    #[test]
    fn group_by_count_and_mean() {
        let t = table();
        let count = Query::new()
            .group(&["airline"], AggFunc::Count, None)
            .sort_by("count", SortOrder::Descending)
            .execute(&t)
            .unwrap();
        assert_eq!(count.num_rows(), 3);
        assert_eq!(count.column_names(), vec!["airline", "count"]);
        assert_eq!(count.value(0, "count").unwrap(), Value::Float(2.0));

        let mean = Query::new()
            .group(&["cancelled"], AggFunc::Mean, Some("distance"))
            .execute(&t)
            .unwrap();
        assert_eq!(mean.num_rows(), 2);
        assert!(mean.column("mean_distance").is_some());
    }

    #[test]
    fn group_by_requires_agg_column_for_non_count() {
        let t = table();
        let err = Query::new()
            .group(&["airline"], AggFunc::Sum, None)
            .execute(&t);
        assert!(err.is_err());
    }

    #[test]
    fn group_by_sum_min_max() {
        let t = table();
        let sum = Query::new()
            .group(&["airline"], AggFunc::Sum, Some("distance"))
            .sort_by("airline", SortOrder::Ascending)
            .execute(&t)
            .unwrap();
        // AA: 100 + 700 = 800
        assert_eq!(sum.value(0, "sum_distance").unwrap(), Value::Float(800.0));
        let min = Query::new()
            .group(&["airline"], AggFunc::Min, Some("distance"))
            .sort_by("airline", SortOrder::Ascending)
            .execute(&t)
            .unwrap();
        assert_eq!(min.value(0, "min_distance").unwrap(), Value::Float(100.0));
        let max = Query::new()
            .group(&["airline"], AggFunc::Max, Some("distance"))
            .sort_by("airline", SortOrder::Ascending)
            .execute(&t)
            .unwrap();
        assert_eq!(max.value(0, "max_distance").unwrap(), Value::Float(700.0));
    }

    #[test]
    fn limit_and_empty_query() {
        let t = table();
        let all = Query::new().execute(&t).unwrap();
        assert_eq!(all.num_rows(), t.num_rows());
        let limited = Query::new().limit(2).execute(&t).unwrap();
        assert_eq!(limited.num_rows(), 2);
    }

    #[test]
    fn referenced_columns_and_values() {
        let q = Query::new()
            .filter(Predicate::eq("airline", Value::from("AA")))
            .filter(Predicate::between("distance", 0.0, 500.0))
            .select(&["cancelled"])
            .sort_by("distance", SortOrder::Ascending)
            .group(&["airline"], AggFunc::Count, None);
        let cols = q.referenced_columns();
        assert!(cols.contains(&"airline".to_string()));
        assert!(cols.contains(&"distance".to_string()));
        assert!(cols.contains(&"cancelled".to_string()));
        // No duplicates.
        assert_eq!(
            cols.len(),
            cols.iter().collect::<std::collections::HashSet<_>>().len()
        );
        let vals = q.referenced_values();
        assert!(vals.contains(&Value::from("AA")));
    }

    #[test]
    fn unknown_column_in_predicate_errors() {
        let t = table();
        let q = Query::new().filter(Predicate::eq("nope", Value::from(1i64)));
        assert!(q.execute(&t).is_err());
    }

    #[test]
    fn canonical_is_order_insensitive_for_conjunctions() {
        let a = Query::new()
            .filter(Predicate::eq("airline", Value::from("DL")))
            .filter(Predicate::gt("distance", Value::from(100.0)))
            .select(&["distance", "airline"]);
        let b = Query::new()
            .filter(Predicate::gt("distance", Value::from(100.0)))
            .filter(Predicate::eq("airline", Value::from("DL")))
            .select(&["airline", "distance"]);
        assert_ne!(a, b, "raw queries differ in order");
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.selection_key(), b.selection_key());
        // Duplicate predicates collapse.
        let c = b
            .clone()
            .filter(Predicate::eq("airline", Value::from("DL")));
        assert_eq!(c.canonical(), b.canonical());
        assert_eq!(c.selection_key(), b.selection_key());
    }

    #[test]
    fn canonical_normalises_numeric_spellings_and_in_sets() {
        let a = Query::new().filter(Predicate::eq("cancelled", Value::Int(1)));
        let b = Query::new().filter(Predicate::eq("cancelled", Value::Float(1.0)));
        let c = Query::new().filter(Predicate::eq("cancelled", Value::Bool(true)));
        assert_eq!(a.selection_key(), b.selection_key());
        assert_eq!(a.selection_key(), c.selection_key());
        // -0.0 and 0.0 select the same rows.
        let z0 = Query::new().filter(Predicate::eq("distance", Value::Float(0.0)));
        let z1 = Query::new().filter(Predicate::eq("distance", Value::Float(-0.0)));
        assert_eq!(z0.selection_key(), z1.selection_key());
        // InSet ordering and duplicates are normalised away.
        let s0 = Query::new().filter(Predicate::in_set(
            "airline",
            vec![Value::from("DL"), Value::from("AA"), Value::from("DL")],
        ));
        let s1 = Query::new().filter(Predicate::in_set(
            "airline",
            vec![Value::from("AA"), Value::from("DL")],
        ));
        assert_eq!(s0.selection_key(), s1.selection_key());
        // A huge integer not representable as f64 keeps its exact identity.
        let h0 = Query::new().filter(Predicate::eq("cancelled", Value::Int(i64::MAX)));
        let h1 = Query::new().filter(Predicate::eq("cancelled", Value::Int(i64::MAX - 1)));
        assert_ne!(h0.selection_key(), h1.selection_key());
    }

    #[test]
    fn selection_keys_distinguish_different_queries() {
        let base = Query::new().filter(Predicate::eq("airline", Value::from("DL")));
        let other = Query::new().filter(Predicate::eq("airline", Value::from("AA")));
        assert_ne!(base.selection_key(), other.selection_key());
        let projected = base.clone().select(&["airline"]);
        assert_ne!(base.selection_key(), projected.selection_key());
        let limited = base.clone().limit(3);
        assert_ne!(base.selection_key(), limited.selection_key());
        // Sorting matters only under a limit.
        let sorted = base.clone().sort_by("distance", SortOrder::Descending);
        assert_eq!(base.selection_key(), sorted.selection_key());
        let sorted_limited = sorted.limit(3);
        let plain_limited = base.limit(3);
        assert_ne!(
            sorted_limited.selection_key(),
            plain_limited.selection_key()
        );
        // Str("1") and Int(1) are different predicates (loose_eq never
        // crosses the string/numeric divide).
        let s = Query::new().filter(Predicate::eq("airline", Value::from("1")));
        let i = Query::new().filter(Predicate::eq("airline", Value::Int(1)));
        assert_ne!(s.selection_key(), i.selection_key());
    }

    #[test]
    fn tree_canonicalization_unifies_selection_keys() {
        let a = Predicate::eq("airline", Value::from("AA"));
        let b = Predicate::gt("distance", Value::Float(500.0));
        // a AND b ≡ b AND a.
        let ab = Query::expr(QueryExpr::and(vec![
            QueryExpr::leaf(a.clone()),
            QueryExpr::leaf(b.clone()),
        ]));
        let ba = Query::expr(QueryExpr::and(vec![
            QueryExpr::leaf(b.clone()),
            QueryExpr::leaf(a.clone()),
        ]));
        assert_eq!(ab.selection_key(), ba.selection_key());
        // NOT (NOT p) ≡ p.
        let p = Query::expr(QueryExpr::leaf(a.clone()));
        let nnp = Query::expr(QueryExpr::leaf(a.clone()).negated().negated());
        assert_eq!(p.selection_key(), nnp.selection_key());
        // x IN (1, 2) ≡ x = 1 OR x = 2.
        let in_set = Query::expr(QueryExpr::leaf(Predicate::in_set(
            "cancelled",
            vec![Value::Int(1), Value::Int(2)],
        )));
        let or_eq = Query::expr(QueryExpr::or(vec![
            QueryExpr::leaf(Predicate::eq("cancelled", Value::Int(1))),
            QueryExpr::leaf(Predicate::eq("cancelled", Value::Int(2))),
        ]));
        assert_eq!(in_set.selection_key(), or_eq.selection_key());
        // Distinct trees stay distinct: AND vs OR of the same children, and
        // a negation of one.
        let or_q = Query::expr(QueryExpr::or(vec![
            QueryExpr::leaf(a.clone()),
            QueryExpr::leaf(b.clone()),
        ]));
        assert_ne!(ab.selection_key(), or_q.selection_key());
        let not_ab =
            Query::expr(QueryExpr::and(vec![QueryExpr::leaf(a), QueryExpr::leaf(b)]).negated());
        assert_ne!(ab.selection_key(), not_ab.selection_key());
    }

    #[test]
    fn parsed_commuted_spellings_share_selection_keys() {
        let q1: Query = "distance > 500 AND (airline = 'AA' OR NOT cancelled IN (1, 2)) LIMIT 20"
            .parse()
            .unwrap();
        let q2: Query =
            "(NOT (cancelled = 1 OR cancelled = 2) OR airline = 'AA') AND distance > 500 LIMIT 20"
                .parse()
                .unwrap();
        assert_eq!(q1.selection_key(), q2.selection_key());
        // A different limit keeps the keys apart.
        let q3: Query = "distance > 500 AND (airline = 'AA' OR NOT cancelled IN (1, 2)) LIMIT 21"
            .parse()
            .unwrap();
        assert_ne!(q1.selection_key(), q3.selection_key());
    }

    #[test]
    fn selection_rows_respect_sort_and_limit() {
        let t = table();
        // No limit: all matching rows in ascending order, sort irrelevant.
        let q = Query::new().sort_by("distance", SortOrder::Descending);
        assert_eq!(q.selection_rows(&t).unwrap(), vec![0, 1, 2, 3, 4]);
        // Limit without sort keeps the first rows in table order.
        let q = Query::new().limit(2);
        assert_eq!(q.selection_rows(&t).unwrap(), vec![0, 1]);
        // Limit with sort keeps the top of the *sorted* result: the two
        // longest distances are rows 1 (2500) and 4 (900).
        let q = Query::new()
            .sort_by("distance", SortOrder::Descending)
            .limit(2);
        assert_eq!(q.selection_rows(&t).unwrap(), vec![1, 4]);
        // limit 0 yields the empty set.
        let q = Query::new().limit(0);
        assert_eq!(q.selection_rows(&t).unwrap(), Vec::<usize>::new());
        // Unknown sort column under a limit is a typed error, not a panic.
        let q = Query::new()
            .sort_by("missing", SortOrder::Ascending)
            .limit(1);
        assert!(matches!(
            q.selection_rows(&t),
            Err(DataError::UnknownColumn(_))
        ));
    }

    #[test]
    fn selection_rows_agree_with_execute() {
        let t = table();
        let q = Query::new()
            .filter(Predicate::not_null("distance"))
            .sort_by("distance", SortOrder::Ascending)
            .limit(3);
        let rows = q.selection_rows(&t).unwrap();
        let executed = q.execute(&t).unwrap();
        assert_eq!(rows.len(), executed.num_rows());
        // Same multiset of distances (selection_rows returns base-table
        // indices in ascending index order, execute keeps sort order).
        let mut from_rows: Vec<String> = rows
            .iter()
            .map(|&r| t.value(r, "distance").unwrap().render())
            .collect();
        let mut from_exec: Vec<String> = (0..executed.num_rows())
            .map(|r| executed.value(r, "distance").unwrap().render())
            .collect();
        from_rows.sort();
        from_exec.sort();
        assert_eq!(from_rows, from_exec);
    }
}
