//! The [`Table`] type: an ordered collection of equally-long columns.

use crate::column::Column;
use crate::error::DataError;
use crate::schema::{Field, Schema};
use crate::value::Value;
use crate::Result;
use std::fmt;

/// An in-memory relational table with typed, null-aware columns.
///
/// This is the substrate the SubTab algorithm operates on: the raw input
/// table, intermediate query results, and the selected sub-tables are all
/// `Table`s.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
}

impl Table {
    /// Starts building a table column-by-column.
    pub fn builder() -> TableBuilder {
        TableBuilder::default()
    }

    /// Creates a table from pre-built columns.
    ///
    /// All columns must have the same length and unique names.
    pub fn from_columns(columns: Vec<Column>) -> Result<Self> {
        let num_rows = columns.first().map_or(0, Column::len);
        for c in &columns {
            if c.len() != num_rows {
                return Err(DataError::LengthMismatch {
                    expected: num_rows,
                    actual: c.len(),
                });
            }
        }
        let fields = columns
            .iter()
            .map(|c| Field::new(c.name(), c.column_type()))
            .collect();
        let schema = Schema::new(fields)?;
        Ok(Table {
            schema,
            columns,
            num_rows,
        })
    }

    /// Creates an empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.name.clone(), f.ty))
            .collect();
        Table {
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// All columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Column by position.
    pub fn column_at(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Column names in schema order.
    pub fn column_names(&self) -> Vec<&str> {
        self.schema.names()
    }

    /// Value of the cell at (`row`, `column name`).
    pub fn value(&self, row: usize, column: &str) -> Result<Value> {
        let col = self
            .column(column)
            .ok_or_else(|| DataError::UnknownColumn(column.to_string()))?;
        col.try_get(row)
    }

    /// A full row as a vector of values in schema order.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.num_rows {
            return Err(DataError::RowOutOfBounds {
                index: row,
                len: self.num_rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.get(row)).collect())
    }

    /// Reserves capacity for at least `additional` more rows in every
    /// column — value planes, validity bitmaps and (for string columns) the
    /// dictionary index. Batch appenders ([`Table::push_row`] loops, CSV
    /// ingestion, the dataset generators) call this once up front so the
    /// append loop never reallocates mid-plane.
    pub fn reserve_rows(&mut self, additional: usize) {
        for col in &mut self.columns {
            col.reserve(additional);
        }
    }

    /// Appends a row given as values in schema order.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(DataError::LengthMismatch {
                expected: self.columns.len(),
                actual: values.len(),
            });
        }
        // Validate all pushes up-front on clones of nothing: we push one by
        // one and roll back on failure to keep columns equal-length.
        for (i, (col, v)) in self.columns.iter_mut().zip(values).enumerate() {
            if let Err(e) = col.push(v) {
                // Roll back the columns already extended.
                for col in self.columns.iter_mut().take(i) {
                    truncate_column(col, self.num_rows);
                }
                return Err(e);
            }
        }
        self.num_rows += 1;
        Ok(())
    }

    /// Projects the table onto the named columns (order preserved as given).
    pub fn project(&self, columns: &[&str]) -> Result<Table> {
        let mut cols = Vec::with_capacity(columns.len());
        for &name in columns {
            let c = self
                .column(name)
                .ok_or_else(|| DataError::UnknownColumn(name.to_string()))?;
            cols.push(c.clone());
        }
        Table::from_columns(cols)
    }

    /// Returns a new table containing the rows at `indices`, in that order.
    pub fn take(&self, indices: &[usize]) -> Result<Table> {
        for &i in indices {
            if i >= self.num_rows {
                return Err(DataError::RowOutOfBounds {
                    index: i,
                    len: self.num_rows,
                });
            }
        }
        let cols = self.columns.iter().map(|c| c.take(indices)).collect();
        Table::from_columns(cols)
    }

    /// First `n` rows (fewer if the table is shorter). Mirrors `head()` in
    /// Pandas, the default display the paper's introduction criticises.
    pub fn head(&self, n: usize) -> Table {
        let indices: Vec<usize> = (0..self.num_rows.min(n)).collect();
        self.take(&indices).expect("indices in range")
    }

    /// Sub-table given by explicit row indices and column names — the
    /// fundamental operation of the paper (Definition 3.1).
    pub fn sub_table(&self, row_indices: &[usize], columns: &[&str]) -> Result<Table> {
        self.take(row_indices)?.project(columns)
    }

    /// Fraction of cells that are null.
    pub fn null_fraction(&self) -> f64 {
        let total = self.num_rows * self.columns.len();
        if total == 0 {
            return 0.0;
        }
        let nulls: usize = self.columns.iter().map(Column::null_count).sum();
        nulls as f64 / total as f64
    }

    /// Renders the table as a compact ASCII grid (used by examples and the
    /// experiment harness).
    pub fn render(&self, max_rows: usize) -> String {
        let mut widths: Vec<usize> = self.schema.names().iter().map(|n| n.len()).collect();
        let shown = self.num_rows.min(max_rows);
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
        for r in 0..shown {
            let row: Vec<String> = self.columns.iter().map(|c| c.get(r).render()).collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        for (i, name) in self.schema.names().iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", name, width = widths[i]));
        }
        out.push('\n');
        for row in cells {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            out.push('\n');
        }
        if self.num_rows > shown {
            out.push_str(&format!("... ({} more rows)\n", self.num_rows - shown));
        }
        out
    }
}

fn truncate_column(col: &mut Column, len: usize) {
    // Column does not expose truncate directly; rebuild via take. This path
    // only runs on a failed push_row, so it is not performance-sensitive.
    let idx: Vec<usize> = (0..len).collect();
    *col = col.take(&idx);
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(20))
    }
}

/// Incremental, column-oriented builder for [`Table`].
#[derive(Debug, Default)]
pub struct TableBuilder {
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Adds an integer column.
    pub fn column_i64(mut self, name: &str, values: Vec<Option<i64>>) -> Self {
        self.columns.push(Column::from_i64(name, values));
        self
    }

    /// Adds a float column.
    pub fn column_f64(mut self, name: &str, values: Vec<Option<f64>>) -> Self {
        self.columns.push(Column::from_f64(name, values));
        self
    }

    /// Adds a string column.
    pub fn column_str(mut self, name: &str, values: Vec<Option<&str>>) -> Self {
        self.columns.push(Column::from_str_values(name, values));
        self
    }

    /// Adds a string column from owned strings.
    pub fn column_string(mut self, name: &str, values: Vec<Option<String>>) -> Self {
        self.columns.push(Column::from_str_values(name, values));
        self
    }

    /// Adds a boolean column.
    pub fn column_bool(mut self, name: &str, values: Vec<Option<bool>>) -> Self {
        self.columns.push(Column::from_bool(name, values));
        self
    }

    /// Adds a pre-built column.
    pub fn column(mut self, column: Column) -> Self {
        self.columns.push(column);
        self
    }

    /// Finalises the table, validating lengths and name uniqueness.
    pub fn build(self) -> Result<Table> {
        Table::from_columns(self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn flights_like() -> Table {
        Table::builder()
            .column_f64(
                "distance",
                vec![Some(100.0), Some(2500.0), Some(700.0), None],
            )
            .column_str(
                "airline",
                vec![Some("AA"), Some("DL"), Some("AA"), Some("UA")],
            )
            .column_i64("cancelled", vec![Some(0), Some(0), Some(1), Some(1)])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_and_shape() {
        let t = flights_like();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.column_names(), vec!["distance", "airline", "cancelled"]);
        assert_eq!(t.schema().field("cancelled").unwrap().ty, ColumnType::Int);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let err = Table::builder()
            .column_i64("a", vec![Some(1), Some(2)])
            .column_i64("b", vec![Some(1)])
            .build()
            .unwrap_err();
        assert!(matches!(err, DataError::LengthMismatch { .. }));
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Table::builder()
            .column_i64("a", vec![Some(1)])
            .column_f64("a", vec![Some(1.0)])
            .build()
            .unwrap_err();
        assert!(matches!(err, DataError::DuplicateColumn(_)));
    }

    #[test]
    fn cell_and_row_access() {
        let t = flights_like();
        assert_eq!(t.value(1, "airline").unwrap(), Value::from("DL"));
        assert!(t.value(3, "distance").unwrap().is_null());
        assert!(t.value(0, "nope").is_err());
        assert!(t.value(10, "airline").is_err());
        let row = t.row(2).unwrap();
        assert_eq!(row.len(), 3);
        assert_eq!(row[2], Value::Int(1));
        assert!(t.row(99).is_err());
    }

    #[test]
    fn reserve_rows_is_transparent_to_appends() {
        let mut reserved = flights_like();
        let mut plain = flights_like();
        reserved.reserve_rows(1000);
        for t in [&mut reserved, &mut plain] {
            for i in 0..50 {
                t.push_row(vec![
                    Value::from(i as f64),
                    Value::from(if i % 7 == 0 { "WN" } else { "AA" }),
                    Value::from((i % 2) as i64),
                ])
                .unwrap();
            }
        }
        assert_eq!(reserved.num_rows(), plain.num_rows());
        for r in 0..reserved.num_rows() {
            assert_eq!(reserved.row(r).unwrap(), plain.row(r).unwrap());
        }
    }

    #[test]
    fn push_row_and_rollback() {
        let mut t = flights_like();
        t.push_row(vec![
            Value::from(50.0),
            Value::from("WN"),
            Value::from(0i64),
        ])
        .unwrap();
        assert_eq!(t.num_rows(), 5);
        // Wrong arity
        assert!(t.push_row(vec![Value::from(1.0)]).is_err());
        // Wrong type in the last column: earlier columns must be rolled back.
        let err = t.push_row(vec![
            Value::from(1.0),
            Value::from("XX"),
            Value::from("not an int"),
        ]);
        assert!(err.is_err());
        assert_eq!(t.num_rows(), 5);
        for c in t.columns() {
            assert_eq!(c.len(), 5);
        }
    }

    #[test]
    fn projection_and_take() {
        let t = flights_like();
        let p = t.project(&["cancelled", "airline"]).unwrap();
        assert_eq!(p.column_names(), vec!["cancelled", "airline"]);
        assert_eq!(p.num_rows(), 4);
        assert!(t.project(&["missing"]).is_err());

        let s = t.take(&[3, 0]).unwrap();
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.value(0, "airline").unwrap(), Value::from("UA"));
        assert!(t.take(&[9]).is_err());
    }

    #[test]
    fn sub_table_is_rows_then_columns() {
        let t = flights_like();
        let s = t.sub_table(&[0, 2], &["airline", "cancelled"]).unwrap();
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.num_columns(), 2);
        assert_eq!(s.value(1, "cancelled").unwrap(), Value::Int(1));
    }

    #[test]
    fn head_and_null_fraction() {
        let t = flights_like();
        assert_eq!(t.head(2).num_rows(), 2);
        assert_eq!(t.head(100).num_rows(), 4);
        let expected = 1.0 / 12.0;
        assert!((t.null_fraction() - expected).abs() < 1e-12);
    }

    #[test]
    fn render_contains_headers_and_values() {
        let t = flights_like();
        let s = t.render(2);
        assert!(s.contains("airline"));
        assert!(s.contains("DL"));
        assert!(s.contains("more rows"));
        assert!(!format!("{t}").is_empty());
    }

    #[test]
    fn empty_table_has_schema_but_no_rows() {
        let schema = Schema::new(vec![
            Field::new("x", ColumnType::Int),
            Field::new("y", ColumnType::Str),
        ])
        .unwrap();
        let t = Table::empty(schema);
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.null_fraction(), 0.0);
    }
}
