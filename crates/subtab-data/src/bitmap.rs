//! Fixed-width `u64` bitmaps shared across the workspace.
//!
//! [`Bitmap`] started life as the vertical-mining row bitmap in
//! `subtab-rules` (where it is still re-exported as `RowBitmap`); it now also
//! backs the *validity plane* of every [`crate::Column`]: bit `i` is set iff
//! row `i` holds a real (non-null) value. Both uses share the same word-wide
//! kernels — intersection, union, complement, popcount — so predicate
//! compilation can AND a leaf's match bitmap with a column's validity bitmap
//! directly, and `IS NULL` is just the complement of validity.
//!
//! Bits past the logical width in the trailing word are kept at zero by every
//! constructor and by [`Bitmap::negate_assign`], so [`Bitmap::count`] is
//! always exact.

/// A bitmap over row positions (dense, 64 rows per word).
///
/// Bit `i` corresponds to the `i`-th row of the scope — the `i`-th row of a
/// table/column for validity and predicate bitmaps, the `i`-th row of a
/// mining partition for vertical rule mining.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
}

impl Bitmap {
    /// An all-zero bitmap over `bits` rows.
    pub fn zeros(bits: usize) -> Self {
        Bitmap {
            words: vec![0u64; bits.div_ceil(64)],
        }
    }

    /// An all-one bitmap over `bits` rows; bits past `bits` in the trailing
    /// word stay zero, so [`Bitmap::count`] and complements stay exact.
    pub fn ones(bits: usize) -> Self {
        let mut bm = Bitmap {
            words: vec![u64::MAX; bits.div_ceil(64)],
        };
        bm.mask_tail(bits);
        bm
    }

    /// An empty bitmap with word capacity reserved for `bits` rows — the
    /// append-friendly constructor for column builders that know the final
    /// row count up front.
    pub fn with_capacity(bits: usize) -> Self {
        Bitmap {
            words: Vec::with_capacity(bits.div_ceil(64)),
        }
    }

    /// Reserves capacity for a scope of at least `bits` rows.
    pub fn reserve(&mut self, bits: usize) {
        let words = bits.div_ceil(64);
        if words > self.words.len() {
            self.words.reserve(words - self.words.len());
        }
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Appends bit `index` (the next row of a growing column), extending the
    /// word vector as needed. `index` must be the current logical width —
    /// appends are strictly sequential, mirroring `Vec::push` on the value
    /// plane.
    pub fn push_bit(&mut self, index: usize, bit: bool) {
        let w = index / 64;
        if w >= self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1u64 << (index % 64);
        }
    }

    /// Whether bit `i` is set.
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits (support count / non-null count).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Popcount of `self AND other` without materialising the intersection.
    pub fn and_count(&self, other: &Bitmap) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Overwrites `self` with `other`'s bits (same scope width).
    pub fn copy_from(&mut self, other: &Bitmap) {
        self.words.copy_from_slice(&other.words);
    }

    /// In-place intersection `self &= other`.
    pub fn and_assign(&mut self, other: &Bitmap) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union `self |= other`.
    pub fn or_assign(&mut self, other: &Bitmap) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place complement over a scope of `bits` rows: flips every bit and
    /// re-zeroes the slack bits of the trailing word (the scope width is not
    /// stored, so the caller provides it — predicate compilation tracks the
    /// table's row count).
    pub fn negate_assign(&mut self, bits: usize) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail(bits);
    }

    /// The positions of all set bits, ascending.
    pub fn indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count());
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push(wi * 64 + bit);
                w &= w - 1;
            }
        }
        out
    }

    /// Zeroes the bits of the trailing word at positions `>= bits`.
    fn mask_tail(&mut self, bits: usize) {
        let slack = bits % 64;
        if slack != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << slack) - 1;
            }
        }
    }

    /// The backing words, 64 bits per word, row `i` at word `i / 64` bit
    /// `i % 64` — the interchange format of the SIMD plane-scan kernels.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Builds a bitmap over `bits` rows directly from backing words (the
    /// output of a word-at-a-time scan kernel). `words` must hold exactly
    /// `ceil(bits / 64)` entries; slack bits in the trailing word are
    /// zeroed, preserving the exact-count invariant.
    pub fn from_words(words: Vec<u64>, bits: usize) -> Self {
        assert_eq!(words.len(), bits.div_ceil(64));
        let mut bm = Bitmap { words };
        bm.mask_tail(bits);
        bm
    }

    /// Materialises `self AND other` together with its popcount.
    pub fn and_with_count(&self, other: &Bitmap) -> (Bitmap, usize) {
        let mut count = 0usize;
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| {
                let w = a & b;
                count += w.count_ones() as usize;
                w
            })
            .collect();
        (Bitmap { words }, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_count_and_intersection_are_exact() {
        // Hand-checked: bits {0, 3, 64, 120} vs {3, 64, 119}.
        let mut a = Bitmap::zeros(130);
        let mut b = Bitmap::zeros(130);
        for i in [0usize, 3, 64, 120] {
            a.set(i);
        }
        for i in [3usize, 64, 119] {
            b.set(i);
        }
        assert_eq!(a.count(), 4);
        assert_eq!(b.count(), 3);
        assert!(a.get(64) && !a.get(65));
        assert_eq!(a.and_count(&b), 2, "intersection is {{3, 64}}");
        let (ab, count) = a.and_with_count(&b);
        assert_eq!(count, 2);
        assert_eq!(ab.count(), 2);
        assert!(ab.get(3) && ab.get(64) && !ab.get(0) && !ab.get(119));
    }

    #[test]
    fn union_complement_and_indices_are_exact() {
        // 130 bits crosses the u64 word boundary with 2 slack trailing bits.
        let mut a = Bitmap::zeros(130);
        let mut b = Bitmap::zeros(130);
        for i in [0usize, 3, 64, 120] {
            a.set(i);
        }
        for i in [3usize, 64, 119, 129] {
            b.set(i);
        }
        let mut u = a.clone();
        u.or_assign(&b);
        assert_eq!(u.count(), 6, "union is {{0, 3, 64, 119, 120, 129}}");
        assert_eq!(u.indices(), vec![0, 3, 64, 119, 120, 129]);
        // Complement stays inside the 130-bit scope: no phantom slack bits.
        let mut na = a.clone();
        na.negate_assign(130);
        assert_eq!(na.count(), 130 - 4);
        assert!(!na.get(0) && na.get(1) && !na.get(120) && na.get(129));
        // Double complement round-trips.
        na.negate_assign(130);
        assert_eq!(na, a);
        // All-ones masks its trailing word too.
        let ones = Bitmap::ones(130);
        assert_eq!(ones.count(), 130);
        assert_eq!(ones.indices().len(), 130);
        let mut empty = Bitmap::ones(130);
        empty.negate_assign(130);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty, Bitmap::zeros(130));
        // Exact-multiple scope has no slack word to mask.
        assert_eq!(Bitmap::ones(128).count(), 128);
    }

    #[test]
    fn push_bit_grows_one_word_at_a_time() {
        let mut bm = Bitmap::with_capacity(130);
        for i in 0..130 {
            bm.push_bit(i, i % 3 == 0);
        }
        assert_eq!(bm.count(), (0..130).filter(|i| i % 3 == 0).count());
        for i in 0..130 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        // Appending across the word boundary matches the set() path exactly.
        let mut reference = Bitmap::zeros(130);
        for i in (0..130).filter(|i| i % 3 == 0) {
            reference.set(i);
        }
        assert_eq!(bm, reference);
    }

    #[test]
    fn push_bit_word_boundary_edges() {
        // Exactly 64 bits: one word, no slack.
        let mut bm = Bitmap::with_capacity(0);
        for i in 0..64 {
            bm.push_bit(i, true);
        }
        assert_eq!(bm, Bitmap::ones(64));
        // Bit 64 starts the second word.
        bm.push_bit(64, true);
        assert_eq!(bm.count(), 65);
        assert!(bm.get(64));
        assert_eq!(bm, Bitmap::ones(65));
    }

    #[test]
    fn word_round_trip_masks_slack_bits() {
        let mut bm = Bitmap::zeros(130);
        for i in [0usize, 63, 64, 129] {
            bm.set(i);
        }
        let words = bm.as_words().to_vec();
        assert_eq!(words.len(), 3);
        assert_eq!(Bitmap::from_words(words.clone(), 130), bm);
        // Slack bits handed in by a kernel are cleared on construction.
        let mut dirty = words;
        dirty[2] |= !0u64 << 2;
        assert_eq!(Bitmap::from_words(dirty, 130), bm);
    }

    #[test]
    fn all_zero_and_all_one_extremes() {
        for bits in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert_eq!(Bitmap::zeros(bits).count(), 0, "zeros({bits})");
            assert_eq!(Bitmap::ones(bits).count(), bits, "ones({bits})");
        }
        // reserve is a no-op on already-large bitmaps and never shrinks.
        let mut bm = Bitmap::zeros(128);
        bm.reserve(64);
        assert_eq!(bm.count(), 0);
        bm.reserve(1024);
        assert_eq!(bm, Bitmap::zeros(128));
    }
}
