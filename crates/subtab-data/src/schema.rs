//! Relational schema: column names and types.

use crate::error::DataError;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats (continuous data).
    Float,
    /// Strings (categorical/textual data).
    Str,
    /// Booleans.
    Bool,
}

impl ColumnType {
    /// Whether the type is numeric (continuous or integral).
    pub fn is_numeric(self) -> bool {
        matches!(self, ColumnType::Int | ColumnType::Float | ColumnType::Bool)
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Str => "str",
            ColumnType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A named, typed column descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name (unique within a schema).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Field {
    /// Creates a new field.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered collection of [`Field`]s with fast name lookup.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl Schema {
    /// Creates a schema from an ordered list of fields.
    ///
    /// Returns an error if two fields share a name.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut index = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if index.insert(f.name.clone(), i).is_some() {
                return Err(DataError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields, index })
    }

    /// The ordered fields of the schema.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Field by position.
    pub fn field_at(&self, idx: usize) -> Option<&Field> {
        self.fields.get(idx)
    }

    /// Column names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Returns a new schema containing only the named columns, in the given
    /// order.
    pub fn project(&self, columns: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(columns.len());
        for &name in columns {
            let f = self
                .field(name)
                .ok_or_else(|| DataError::UnknownColumn(name.to_string()))?;
            fields.push(f.clone());
        }
        Schema::new(fields)
    }

    /// Rebuilds the internal name→index map (used after deserialisation).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("a", ColumnType::Int),
            Field::new("b", ColumnType::Float),
            Field::new("c", ColumnType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.field("c").unwrap().ty, ColumnType::Str);
        assert_eq!(s.field_at(0).unwrap().name, "a");
        assert_eq!(s.names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Field::new("x", ColumnType::Int),
            Field::new("x", ColumnType::Float),
        ])
        .unwrap_err();
        assert_eq!(err, DataError::DuplicateColumn("x".into()));
    }

    #[test]
    fn projection_preserves_order_given() {
        let s = sample();
        let p = s.project(&["c", "a"]).unwrap();
        assert_eq!(p.names(), vec!["c", "a"]);
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn numeric_types() {
        assert!(ColumnType::Int.is_numeric());
        assert!(ColumnType::Float.is_numeric());
        assert!(ColumnType::Bool.is_numeric());
        assert!(!ColumnType::Str.is_numeric());
    }

    #[test]
    fn display_names() {
        assert_eq!(ColumnType::Float.to_string(), "float");
        assert_eq!(ColumnType::Str.to_string(), "str");
    }
}
