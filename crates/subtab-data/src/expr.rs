//! Boolean predicate trees over [`Predicate`] leaves.
//!
//! [`QueryExpr`] is the selection surface of a [`crate::Query`]: an
//! `AND`/`OR`/`NOT` tree whose leaves are the existing single-column
//! predicates (`=`, `!=`, `<`, `<=`, `>`, `>=`, `BETWEEN`, `IN`, `IS NULL`).
//! The empty conjunction `And([])` is the *match-all* expression (`TRUE`,
//! the default), the empty disjunction `Or([])` matches nothing (`FALSE`).
//!
//! Evaluation is two-valued, exactly like [`Predicate::matches`]: a
//! comparison against `NULL` is `false`, and `NOT` is plain boolean
//! negation of that two-valued result. Consequently `NOT x = 1` is *not*
//! the same expression as `x != 1` — both `x = 1` and `x != 1` are false on
//! a `NULL` row, so the negation matches the `NULL` rows while `x != 1`
//! does not. Canonicalization respects this: only exact complements
//! (`IS NULL` ↔ `IS NOT NULL`, De Morgan over `AND`/`OR`) are rewritten
//! under `NOT`; a negated comparison stays a [`QueryExpr::Not`] node.
//!
//! [`QueryExpr::canonical`] reduces every expression to a normal form so
//! that equivalent-by-construction trees — commuted children, double
//! negation, duplicated conjuncts, `x IN (1, 2)` versus
//! `x = 1 OR x = 2` — share one [`QueryExpr::encode_canonical`] string,
//! which is what keeps the server's result-cache keys injective per
//! selection equivalence class.

use crate::query::{canonical_value, encode_str, CompareOp, Predicate};
use crate::table::Table;
use crate::value::Value;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A boolean expression tree over single-column predicates.
///
/// See the [module docs](self) for semantics and the canonical form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryExpr {
    /// A single-column predicate.
    Leaf(Predicate),
    /// Conjunction of all children; `And([])` matches every row (`TRUE`).
    And(Vec<QueryExpr>),
    /// Disjunction of the children; `Or([])` matches no row (`FALSE`).
    Or(Vec<QueryExpr>),
    /// Two-valued negation of the child.
    Not(Box<QueryExpr>),
}

impl Default for QueryExpr {
    /// The match-all expression `TRUE`.
    fn default() -> Self {
        QueryExpr::And(Vec::new())
    }
}

/// The two n-ary node kinds, for the shared normalisation code.
#[derive(Clone, Copy, PartialEq, Eq)]
enum NaryKind {
    And,
    Or,
}

impl QueryExpr {
    /// Wraps a predicate as a leaf expression.
    pub fn leaf(p: Predicate) -> Self {
        QueryExpr::Leaf(p)
    }

    /// Conjunction of `children` (empty = `TRUE`).
    pub fn and(children: Vec<QueryExpr>) -> Self {
        QueryExpr::And(children)
    }

    /// Disjunction of `children` (empty = `FALSE`).
    pub fn or(children: Vec<QueryExpr>) -> Self {
        QueryExpr::Or(children)
    }

    /// The negation of this expression.
    pub fn negated(self) -> Self {
        QueryExpr::Not(Box::new(self))
    }

    /// Whether this is the raw match-all expression `And([])` (`TRUE`).
    /// Purely structural — `NOT FALSE` is equivalent but not `TRUE`-shaped;
    /// use [`QueryExpr::canonical`] for equivalence.
    pub fn is_match_all(&self) -> bool {
        matches!(self, QueryExpr::And(v) if v.is_empty())
    }

    /// Evaluates the expression for row `row` of `table`, two-valued
    /// (see the [module docs](self)). Short-circuits `AND`/`OR`, so a
    /// child that would error (e.g. an unknown column) after the result
    /// is already decided is never evaluated.
    pub fn matches(&self, table: &Table, row: usize) -> Result<bool> {
        match self {
            QueryExpr::Leaf(p) => p.matches(table, row),
            QueryExpr::And(children) => {
                for c in children {
                    if !c.matches(table, row)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            QueryExpr::Or(children) => {
                for c in children {
                    if c.matches(table, row)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            QueryExpr::Not(child) => Ok(!child.matches(table, row)?),
        }
    }

    /// Calls `f` on every leaf predicate, in tree (left-to-right) order.
    pub fn for_each_leaf<'a, F: FnMut(&'a Predicate)>(&'a self, f: &mut F) {
        match self {
            QueryExpr::Leaf(p) => f(p),
            QueryExpr::And(children) | QueryExpr::Or(children) => {
                for c in children {
                    c.for_each_leaf(f);
                }
            }
            QueryExpr::Not(child) => child.for_each_leaf(f),
        }
    }

    /// All leaf predicates, in tree order.
    pub fn leaves(&self) -> Vec<&Predicate> {
        let mut out = Vec::new();
        self.for_each_leaf(&mut |p| out.push(p));
        out
    }

    /// The canonical form: the unique representative of this expression's
    /// equivalence class under the rewrites below. Two expressions that are
    /// equal up to these rewrites canonicalise to structurally identical
    /// trees (and hence identical [`QueryExpr::encode_canonical`] strings):
    ///
    /// * `NOT` is pushed down: double negation cancels, De Morgan turns
    ///   `NOT (a AND b)` into `NOT a OR NOT b` (sound under two-valued
    ///   evaluation), `NOT x IS NULL` becomes `x IS NOT NULL` and vice
    ///   versa. Negated comparisons keep their `NOT` (see module docs).
    /// * Same-kind children are flattened, constants are absorbed
    ///   (`a AND FALSE` → `FALSE`, `a OR TRUE` → `TRUE`, identity elements
    ///   drop out), single-child nodes collapse.
    /// * Within an `OR`, equality tests and `IN` sets over the same column
    ///   merge into one `IN` set, so `x IN (1, 2)` ≡ `x = 1 OR x = 2`;
    ///   one-element `IN` sets become `=`, empty `IN` sets are `FALSE`.
    /// * Leaf constants are canonicalised ([`Predicate::canonical`]) and
    ///   children are sorted and deduplicated by their injective encoding,
    ///   making `AND`/`OR` commutative and idempotent.
    ///
    /// The canonical expression matches exactly the rows the original does.
    pub fn canonical(&self) -> QueryExpr {
        canon(self, false)
    }

    /// An unambiguous textual encoding of the canonical form. Node tags
    /// (`L`/`N`/`A`/`O`), child counts and length-prefixed leaf encodings
    /// ([`Predicate::encode_canonical`]) make the encoding injective on
    /// canonical trees: two expressions encode identically iff they
    /// canonicalise to the same tree. [`crate::Query::selection_key`]
    /// embeds this string, so server caches treat the whole equivalence
    /// class as one entry.
    pub fn encode_canonical(&self) -> String {
        let mut out = String::new();
        self.canonical().encode_into(&mut out);
        out
    }

    /// Appends the injective structural encoding of `self` (assumed
    /// canonical) to `out`.
    fn encode_into(&self, out: &mut String) {
        match self {
            QueryExpr::Leaf(p) => {
                out.push('L');
                encode_str(&p.encode_canonical(), out);
            }
            QueryExpr::Not(child) => {
                out.push('N');
                child.encode_into(out);
            }
            QueryExpr::And(children) | QueryExpr::Or(children) => {
                out.push(if matches!(self, QueryExpr::And(_)) {
                    'A'
                } else {
                    'O'
                });
                out.push_str(&children.len().to_string());
                out.push(':');
                for c in children {
                    c.encode_into(out);
                }
            }
        }
    }
}

/// Recursive canonicalisation; `negated` tracks an odd number of enclosing
/// `NOT`s (pushed down instead of materialised).
fn canon(expr: &QueryExpr, negated: bool) -> QueryExpr {
    match expr {
        QueryExpr::Not(child) => canon(child, !negated),
        QueryExpr::And(children) => {
            // De Morgan under negation: NOT (a AND b) = NOT a OR NOT b.
            let kind = if negated { NaryKind::Or } else { NaryKind::And };
            normalize_nary(kind, children.iter().map(|c| canon(c, negated)).collect())
        }
        QueryExpr::Or(children) => {
            let kind = if negated { NaryKind::And } else { NaryKind::Or };
            normalize_nary(kind, children.iter().map(|c| canon(c, negated)).collect())
        }
        QueryExpr::Leaf(p) => canon_leaf(p, negated),
    }
}

/// Canonicalises one leaf, folding the pending negation into it where an
/// exact two-valued complement exists.
fn canon_leaf(p: &Predicate, negated: bool) -> QueryExpr {
    let mut p = p.canonical();
    if let Predicate::InSet { column, mut values } = p {
        match values.len() {
            // `x IN ()` matches nothing.
            0 => {
                return if negated {
                    QueryExpr::And(Vec::new())
                } else {
                    QueryExpr::Or(Vec::new())
                }
            }
            // `x IN (v)` is exactly `x = v` (both false on NULL).
            1 => {
                p = Predicate::Compare {
                    column,
                    op: CompareOp::Eq,
                    value: values.pop().expect("one value"),
                }
            }
            _ => p = Predicate::InSet { column, values },
        }
    }
    if negated {
        match p {
            // The only leaf-level exact complements under two-valued
            // evaluation; a negated comparison keeps its NOT node.
            Predicate::IsNull { column } => QueryExpr::Leaf(Predicate::NotNull { column }),
            Predicate::NotNull { column } => QueryExpr::Leaf(Predicate::IsNull { column }),
            // `NOT x IN (v1, …, vn)` is exactly `NOT x = v1 AND … AND
            // NOT x = vn` (every conjunct is false on NULL, like the set
            // test) — the De Morgan dual of the OR-level equality merge, so
            // the negated set and the negated disjunction share one tree.
            Predicate::InSet { column, values } => normalize_nary(
                NaryKind::And,
                values
                    .into_iter()
                    .map(|value| {
                        QueryExpr::Not(Box::new(QueryExpr::Leaf(Predicate::Compare {
                            column: column.clone(),
                            op: CompareOp::Eq,
                            value,
                        })))
                    })
                    .collect(),
            ),
            other => QueryExpr::Not(Box::new(QueryExpr::Leaf(other))),
        }
    } else {
        QueryExpr::Leaf(p)
    }
}

/// Flattens, absorbs constants, merges `OR`-level equality leaves, sorts and
/// deduplicates children, and collapses trivial nodes. `children` must
/// already be canonical.
fn normalize_nary(kind: NaryKind, children: Vec<QueryExpr>) -> QueryExpr {
    // Flatten same-kind children (this also drops same-kind identity
    // constants: an empty And flattens into an And as zero children).
    let mut flat: Vec<QueryExpr> = Vec::with_capacity(children.len());
    for c in children {
        match (kind, c) {
            (NaryKind::And, QueryExpr::And(gc)) | (NaryKind::Or, QueryExpr::Or(gc)) => {
                flat.extend(gc);
            }
            (_, c) => flat.push(c),
        }
    }
    // Absorbing constant of the opposite kind: AND with a FALSE child is
    // FALSE, OR with a TRUE child is TRUE.
    let absorbed = match kind {
        NaryKind::And => flat
            .iter()
            .any(|c| matches!(c, QueryExpr::Or(v) if v.is_empty())),
        NaryKind::Or => flat
            .iter()
            .any(|c| matches!(c, QueryExpr::And(v) if v.is_empty())),
    };
    if absorbed {
        return match kind {
            NaryKind::And => QueryExpr::Or(Vec::new()),
            NaryKind::Or => QueryExpr::And(Vec::new()),
        };
    }
    if kind == NaryKind::Or {
        flat = merge_or_equalities(flat);
    }
    // Commutativity + idempotence: sort and dedup by injective encoding.
    let mut tagged: Vec<(String, QueryExpr)> = flat
        .into_iter()
        .map(|c| {
            let mut enc = String::new();
            c.encode_into(&mut enc);
            (enc, c)
        })
        .collect();
    tagged.sort_by(|a, b| a.0.cmp(&b.0));
    tagged.dedup_by(|a, b| a.0 == b.0);
    let mut flat: Vec<QueryExpr> = tagged.into_iter().map(|(_, c)| c).collect();
    if flat.len() == 1 {
        return flat.pop().expect("one child");
    }
    match kind {
        NaryKind::And => QueryExpr::And(flat),
        NaryKind::Or => QueryExpr::Or(flat),
    }
}

/// Merges the `=`/`IN` leaves of an `OR`'s children into one `IN` set per
/// column (`x = 1 OR x IN (2, 3)` → `x IN (1, 2, 3)`), the rewrite that
/// makes `x IN (1, 2)` and `x = 1 OR x = 2` share a canonical form. Exact:
/// both predicate forms are false on `NULL` and compare by
/// [`Value::loose_eq`].
fn merge_or_equalities(children: Vec<QueryExpr>) -> Vec<QueryExpr> {
    let mut rest: Vec<QueryExpr> = Vec::with_capacity(children.len());
    let mut merged: Vec<(String, Vec<Value>)> = Vec::new();
    let add =
        |column: String, values: Vec<Value>, merged: &mut Vec<(String, Vec<Value>)>| match merged
            .iter_mut()
            .find(|(c, _)| *c == column)
        {
            Some((_, vs)) => vs.extend(values),
            None => merged.push((column, values)),
        };
    for c in children {
        match c {
            QueryExpr::Leaf(Predicate::Compare {
                column,
                op: CompareOp::Eq,
                value,
            }) => add(column, vec![value], &mut merged),
            QueryExpr::Leaf(Predicate::InSet { column, values }) => {
                add(column, values, &mut merged);
            }
            other => rest.push(other),
        }
    }
    for (column, values) in merged {
        let mut values: Vec<Value> = values.iter().map(canonical_value).collect();
        values.sort_by(Value::total_cmp);
        values.dedup_by(|a, b| a.loose_eq(b));
        rest.push(QueryExpr::Leaf(if values.len() == 1 {
            Predicate::Compare {
                column,
                op: CompareOp::Eq,
                value: values.pop().expect("one value"),
            }
        } else {
            Predicate::InSet { column, values }
        }));
    }
    rest
}

// ---------------------------------------------------------------------------
// Text form (the printer half of the SQL-ish surface; the parser lives in
// `crate::parser`).
// ---------------------------------------------------------------------------

/// Precedence levels of the text form: `OR` binds loosest, then `AND`, then
/// `NOT`; leaves and parenthesised groups are primary.
fn precedence(expr: &QueryExpr) -> u8 {
    match expr {
        QueryExpr::Or(v) if !v.is_empty() => 0,
        QueryExpr::And(v) if !v.is_empty() => 1,
        QueryExpr::Not(_) => 2,
        // Leaves and the TRUE/FALSE constants are primary.
        _ => 3,
    }
}

/// Writes `expr`, parenthesised if its precedence is below `min`.
fn fmt_prec(expr: &QueryExpr, min: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let prec = precedence(expr);
    if prec < min {
        write!(f, "(")?;
    }
    match expr {
        QueryExpr::Leaf(p) => write!(f, "{p}")?,
        QueryExpr::And(children) => {
            if children.is_empty() {
                write!(f, "TRUE")?;
            } else {
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    fmt_prec(c, 2, f)?;
                }
            }
        }
        QueryExpr::Or(children) => {
            if children.is_empty() {
                write!(f, "FALSE")?;
            } else {
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    fmt_prec(c, 1, f)?;
                }
            }
        }
        QueryExpr::Not(child) => {
            write!(f, "NOT ")?;
            fmt_prec(child, 2, f)?;
        }
    }
    if prec < min {
        write!(f, ")")?;
    }
    Ok(())
}

impl fmt::Display for QueryExpr {
    /// Prints the expression in the SQL-ish text form accepted by
    /// [`QueryExpr::parse`](QueryExpr::parse). Round-trips up to
    /// equivalence: reparsing the printed text yields an expression with
    /// the same [`QueryExpr::encode_canonical`] string (non-finite float
    /// literals have no text form and do not round-trip).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_prec(self, 0, f)
    }
}

/// Writes a column name, double-quoting it when it is not a plain
/// identifier or collides with a keyword.
pub(crate) fn fmt_ident(name: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let plain = !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !crate::parser::is_reserved_word(name);
    if plain {
        write!(f, "{name}")
    } else {
        write!(f, "\"{}\"", name.replace('"', "\"\""))
    }
}

/// Writes a constant in literal syntax (strings single-quoted with `''`
/// escaping, numbers via their shortest round-trip decimal form).
fn fmt_literal(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Null => write!(f, "NULL"),
        Value::Bool(true) => write!(f, "TRUE"),
        Value::Bool(false) => write!(f, "FALSE"),
        Value::Int(i) => write!(f, "{i}"),
        Value::Float(x) => write!(f, "{x}"),
        Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
    }
}

impl fmt::Display for Predicate {
    /// Prints the predicate in the SQL-ish text form (see
    /// [`QueryExpr`]'s `Display`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ident(self.column(), f)?;
        match self {
            Predicate::Compare { op, value, .. } => {
                let op = match op {
                    CompareOp::Eq => "=",
                    CompareOp::Ne => "!=",
                    CompareOp::Lt => "<",
                    CompareOp::Le => "<=",
                    CompareOp::Gt => ">",
                    CompareOp::Ge => ">=",
                };
                write!(f, " {op} ")?;
                fmt_literal(value, f)
            }
            Predicate::IsNull { .. } => write!(f, " IS NULL"),
            Predicate::NotNull { .. } => write!(f, " IS NOT NULL"),
            Predicate::InSet { values, .. } => {
                write!(f, " IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    fmt_literal(v, f)?;
                }
                write!(f, ")")
            }
            Predicate::Between { low, high, .. } => write!(f, " BETWEEN {low} AND {high}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::builder()
            .column_str("city", vec![Some("NYC"), Some("LA"), None, Some("NYC")])
            .column_f64("age", vec![Some(25.0), Some(40.0), Some(31.0), None])
            .build()
            .unwrap()
    }

    fn rows_matching(e: &QueryExpr, t: &Table) -> Vec<usize> {
        (0..t.num_rows())
            .filter(|&r| e.matches(t, r).unwrap())
            .collect()
    }

    #[test]
    fn and_or_not_evaluate_two_valued() {
        let t = table();
        let nyc = QueryExpr::leaf(Predicate::eq("city", Value::from("NYC")));
        let old = QueryExpr::leaf(Predicate::gt("age", Value::from(30.0)));
        assert_eq!(rows_matching(&QueryExpr::and(vec![]), &t), vec![0, 1, 2, 3]);
        assert_eq!(
            rows_matching(&QueryExpr::or(vec![]), &t),
            Vec::<usize>::new()
        );
        assert_eq!(
            rows_matching(&QueryExpr::and(vec![nyc.clone(), old.clone()]), &t),
            Vec::<usize>::new()
        );
        assert_eq!(
            rows_matching(&QueryExpr::or(vec![nyc.clone(), old.clone()]), &t),
            vec![0, 1, 2, 3]
        );
        // NOT matches the NULL rows a comparison skips: city = 'NYC' is
        // false on the NULL row, so its negation includes it.
        assert_eq!(rows_matching(&nyc.clone().negated(), &t), vec![1, 2]);
        // ... which is why NOT (city = 'NYC') differs from city != 'NYC'.
        let ne = QueryExpr::leaf(Predicate::ne("city", Value::from("NYC")));
        assert_eq!(rows_matching(&ne, &t), vec![1]);
    }

    #[test]
    fn short_circuit_skips_errors_like_the_flat_path() {
        let t = table();
        let no_rows = QueryExpr::leaf(Predicate::eq("city", Value::from("ZZZ")));
        let bad = QueryExpr::leaf(Predicate::eq("no_such", Value::from(1i64)));
        // AND short-circuits before touching the unknown column.
        let e = QueryExpr::and(vec![no_rows, bad.clone()]);
        assert!(!e.matches(&t, 0).unwrap());
        // Without a short circuit the error surfaces.
        assert!(bad.matches(&t, 0).is_err());
    }

    #[test]
    fn commuted_children_share_a_canonical_encoding() {
        let a = QueryExpr::leaf(Predicate::eq("city", Value::from("NYC")));
        let b = QueryExpr::leaf(Predicate::gt("age", Value::from(30.0)));
        let ab = QueryExpr::and(vec![a.clone(), b.clone()]);
        let ba = QueryExpr::and(vec![b.clone(), a.clone()]);
        assert_eq!(ab.encode_canonical(), ba.encode_canonical());
        let or_ab = QueryExpr::or(vec![a.clone(), b.clone()]);
        let or_ba = QueryExpr::or(vec![b, a]);
        assert_eq!(or_ab.encode_canonical(), or_ba.encode_canonical());
        assert_ne!(ab.encode_canonical(), or_ab.encode_canonical());
    }

    #[test]
    fn double_negation_cancels_and_de_morgan_applies() {
        let p = QueryExpr::leaf(Predicate::lt("age", Value::from(30.0)));
        assert_eq!(
            p.clone().negated().negated().encode_canonical(),
            p.encode_canonical()
        );
        let q = QueryExpr::leaf(Predicate::eq("city", Value::from("LA")));
        let not_and = QueryExpr::and(vec![p.clone(), q.clone()]).negated();
        let or_nots = QueryExpr::or(vec![p.negated(), q.negated()]);
        assert_eq!(not_and.encode_canonical(), or_nots.encode_canonical());
    }

    #[test]
    fn null_tests_complement_under_not() {
        let is_null = QueryExpr::leaf(Predicate::is_null("age"));
        let not_null = QueryExpr::leaf(Predicate::not_null("age"));
        assert_eq!(
            is_null.clone().negated().encode_canonical(),
            not_null.encode_canonical()
        );
        assert_eq!(
            not_null.negated().encode_canonical(),
            is_null.encode_canonical()
        );
        // A negated comparison is NOT rewritten to its mirrored operator.
        let eq = QueryExpr::leaf(Predicate::eq("age", Value::from(1i64)));
        let ne = QueryExpr::leaf(Predicate::ne("age", Value::from(1i64)));
        assert_ne!(eq.negated().encode_canonical(), ne.encode_canonical());
    }

    #[test]
    fn in_set_equals_or_of_equalities() {
        let in_set = QueryExpr::leaf(Predicate::in_set("age", vec![Value::Int(1), Value::Int(2)]));
        let or_eq = QueryExpr::or(vec![
            QueryExpr::leaf(Predicate::eq("age", Value::Float(2.0))),
            QueryExpr::leaf(Predicate::eq("age", Value::Int(1))),
        ]);
        assert_eq!(in_set.encode_canonical(), or_eq.encode_canonical());
        // Single-element IN collapses onto equality; the empty IN is FALSE.
        let single = QueryExpr::leaf(Predicate::in_set("age", vec![Value::Int(7)]));
        let eq = QueryExpr::leaf(Predicate::eq("age", Value::Int(7)));
        assert_eq!(single.encode_canonical(), eq.encode_canonical());
        let empty = QueryExpr::leaf(Predicate::in_set("age", vec![]));
        assert_eq!(empty.canonical(), QueryExpr::Or(Vec::new()));
        assert_eq!(empty.negated().canonical(), QueryExpr::And(Vec::new()));
    }

    #[test]
    fn constants_absorb_and_identities_drop() {
        let p = QueryExpr::leaf(Predicate::eq("city", Value::from("NYC")));
        let t = QueryExpr::and(vec![]);
        let f = QueryExpr::or(vec![]);
        assert_eq!(
            QueryExpr::and(vec![p.clone(), f.clone()]).canonical(),
            QueryExpr::Or(Vec::new())
        );
        assert_eq!(
            QueryExpr::or(vec![p.clone(), t.clone()]).canonical(),
            QueryExpr::And(Vec::new())
        );
        assert_eq!(
            QueryExpr::and(vec![p.clone(), t]).encode_canonical(),
            p.encode_canonical()
        );
        assert_eq!(
            QueryExpr::or(vec![p.clone(), f]).encode_canonical(),
            p.encode_canonical()
        );
        // Duplicate children collapse; singletons unwrap.
        assert_eq!(
            QueryExpr::and(vec![p.clone(), p.clone()]).encode_canonical(),
            p.encode_canonical()
        );
    }

    #[test]
    fn distinct_trees_keep_distinct_encodings() {
        // Length-prefixing keeps concatenation ambiguity out: two single
        // predicates whose raw spellings concatenate identically still
        // differ. "ab" = 'c' vs "a" = 'bc'-ish shapes.
        let a = QueryExpr::leaf(Predicate::eq("ab", Value::from("c")));
        let b = QueryExpr::leaf(Predicate::eq("a", Value::from("bc")));
        assert_ne!(a.encode_canonical(), b.encode_canonical());
        // Nesting shape matters: a AND (b OR c) vs (a AND b) OR c.
        let pa = QueryExpr::leaf(Predicate::eq("x", Value::Int(1)));
        let pb = QueryExpr::leaf(Predicate::eq("y", Value::Int(2)));
        let pc = QueryExpr::leaf(Predicate::eq("z", Value::Int(3)));
        let and_or = QueryExpr::and(vec![
            pa.clone(),
            QueryExpr::or(vec![pb.clone(), pc.clone()]),
        ]);
        let or_and = QueryExpr::or(vec![QueryExpr::and(vec![pa, pb]), pc]);
        assert_ne!(and_or.encode_canonical(), or_and.encode_canonical());
    }

    #[test]
    fn canonicalisation_preserves_matched_rows() {
        let t = table();
        let exprs = vec![
            QueryExpr::leaf(Predicate::eq("city", Value::from("NYC")))
                .negated()
                .negated(),
            QueryExpr::and(vec![
                QueryExpr::leaf(Predicate::gt("age", Value::from(20.0))),
                QueryExpr::leaf(Predicate::is_null("city")).negated(),
            ])
            .negated(),
            QueryExpr::or(vec![
                QueryExpr::leaf(Predicate::eq("city", Value::from("NYC"))),
                QueryExpr::leaf(Predicate::eq("city", Value::from("LA"))),
                QueryExpr::leaf(Predicate::in_set("city", vec![Value::from("LA")])),
            ]),
            QueryExpr::and(vec![QueryExpr::or(vec![])]).negated(),
        ];
        for e in exprs {
            let c = e.canonical();
            assert_eq!(rows_matching(&e, &t), rows_matching(&c, &t), "{e}");
            // Canonicalisation is idempotent.
            assert_eq!(c.canonical(), c);
        }
    }

    #[test]
    fn display_uses_precedence_parens() {
        let a = QueryExpr::leaf(Predicate::gt("age", Value::from(30.0)));
        let b = QueryExpr::leaf(Predicate::eq("city", Value::from("NYC")));
        let c = QueryExpr::leaf(Predicate::is_null("age"));
        let e = QueryExpr::and(vec![a.clone(), QueryExpr::or(vec![b.clone(), c.clone()])]);
        assert_eq!(e.to_string(), "age > 30 AND (city = 'NYC' OR age IS NULL)");
        let e = QueryExpr::or(vec![QueryExpr::and(vec![a.clone(), b.clone()]), c]);
        assert_eq!(
            e.to_string(),
            "age > 30 AND city = 'NYC' OR age IS NULL",
            "AND binds tighter than OR, no parens needed"
        );
        let e = QueryExpr::and(vec![a, b]).negated();
        assert_eq!(e.to_string(), "NOT (age > 30 AND city = 'NYC')");
        assert_eq!(QueryExpr::and(vec![]).to_string(), "TRUE");
        assert_eq!(QueryExpr::or(vec![]).to_string(), "FALSE");
    }

    #[test]
    fn display_quotes_awkward_identifiers_and_strings() {
        let e = QueryExpr::leaf(Predicate::eq("select", Value::from("it's")));
        assert_eq!(e.to_string(), "\"select\" = 'it''s'");
        let e = QueryExpr::leaf(Predicate::eq("two words", Value::Null));
        assert_eq!(e.to_string(), "\"two words\" = NULL");
        let e = QueryExpr::leaf(Predicate::in_set("x", vec![]));
        assert_eq!(e.to_string(), "x IN ()");
        let e = QueryExpr::leaf(Predicate::between("age", 1.5, 64.0));
        assert_eq!(e.to_string(), "age BETWEEN 1.5 AND 64");
    }
}
