//! Criterion benchmarks wrapping the building blocks behind each paper
//! artefact. One benchmark group per table/figure (plus ablations), so that
//! `cargo bench` regenerates timing series for everything the evaluation
//! reports. The quality numbers themselves are produced by the `experiments`
//! binary; these benches track how long each reproduced pipeline takes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use subtab_bench::experiments::{
    common::{run_nc, run_ran, run_subtab, ExperimentContext},
    phases, quality, simulation, slow_baselines, tuning, user_study,
};
use subtab_bench::ExperimentScale;
use subtab_core::{SelectionParams, SubTab};
use subtab_datasets::DatasetKind;

fn configure(c: &mut Criterion) -> Criterion {
    let _ = c;
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
}

/// Table 1 / Figure 5: the simulated user study end to end.
fn bench_user_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_user_study");
    group.sample_size(10);
    group.bench_function("simulated_user_study_quick", |b| {
        b.iter(|| black_box(user_study::run(ExperimentScale::Quick)))
    });
    group.finish();
}

/// Figure 6: session replay with fragment capture.
fn bench_session_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure6_session_replay");
    group.sample_size(10);
    group.bench_function("simulation_quick", |b| {
        b.iter(|| black_box(simulation::run(ExperimentScale::Quick)))
    });
    group.finish();
}

/// Figure 7: slow-baseline comparison.
fn bench_slow_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7_slow_baselines");
    group.sample_size(10);
    group.bench_function("slow_baselines_quick", |b| {
        b.iter(|| black_box(slow_baselines::run(ExperimentScale::Quick)))
    });
    group.finish();
}

/// Figure 8: per-method quality metrics (selection + scoring only; the
/// context is built once outside the timed loop).
fn bench_quality_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure8_quality");
    group.sample_size(10);
    for kind in [DatasetKind::Cyber, DatasetKind::Spotify] {
        let ctx = ExperimentContext::build(kind, ExperimentScale::Quick, 5);
        group.bench_with_input(
            BenchmarkId::new("subtab_select_and_score", kind.label()),
            &ctx,
            |b, ctx| b.iter(|| black_box(run_subtab(ctx, 10, 10, &[]))),
        );
        group.bench_with_input(
            BenchmarkId::new("ran_select_and_score", kind.label()),
            &ctx,
            |b, ctx| b.iter(|| black_box(run_ran(ctx, 10, 10, &[], ExperimentScale::Quick, 3))),
        );
        group.bench_with_input(
            BenchmarkId::new("nc_select_and_score", kind.label()),
            &ctx,
            |b, ctx| b.iter(|| black_box(run_nc(ctx, 10, 10, &[], 3))),
        );
    }
    group.bench_function("full_figure8_quick", |b| {
        b.iter(|| {
            black_box(quality::run_on(
                &[DatasetKind::Cyber],
                ExperimentScale::Quick,
            ))
        })
    });
    group.finish();
}

/// Figure 9: the two phases, benchmarked separately per dataset.
fn bench_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure9_phases");
    group.sample_size(10);
    for kind in [
        DatasetKind::Cyber,
        DatasetKind::Spotify,
        DatasetKind::CreditCard,
    ] {
        let dataset = kind.build(ExperimentScale::Quick.dataset_size(), 31);
        group.bench_with_input(
            BenchmarkId::new("preprocess", kind.label()),
            &dataset.table,
            |b, table| {
                b.iter(|| {
                    black_box(
                        SubTab::preprocess(table.clone(), ExperimentScale::Quick.subtab_config())
                            .expect("preprocess"),
                    )
                })
            },
        );
        let subtab = SubTab::preprocess(
            dataset.table.clone(),
            ExperimentScale::Quick.subtab_config(),
        )
        .expect("preprocess");
        group.bench_with_input(
            BenchmarkId::new("centroid_selection", kind.label()),
            &subtab,
            |b, subtab| {
                b.iter(|| {
                    black_box(
                        subtab
                            .select(&SelectionParams::new(10, 10))
                            .expect("select"),
                    )
                })
            },
        );
    }
    group.bench_function("full_figure9_quick", |b| {
        b.iter(|| {
            black_box(phases::run_on(
                &[DatasetKind::Cyber],
                ExperimentScale::Quick,
            ))
        })
    });
    group.finish();
}

/// Figure 10: rule mining + re-evaluation under varying parameters.
fn bench_parameter_tuning(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure10_tuning");
    group.sample_size(10);
    group.bench_function("tuning_quick", |b| {
        b.iter(|| black_box(tuning::run(ExperimentScale::Quick)))
    });
    group.finish();
}

/// Ablations: binning strategy is the most interesting knob to track over
/// time, so it gets its own measured series.
fn bench_ablation_binning(c: &mut Criterion) {
    use subtab_binning::{Binner, BinningConfig, BinningStrategy};
    let mut group = c.benchmark_group("ablation_binning");
    group.sample_size(10);
    let dataset = DatasetKind::CreditCard.build(ExperimentScale::Quick.dataset_size(), 3);
    for strategy in [
        BinningStrategy::Kde,
        BinningStrategy::Quantile,
        BinningStrategy::EqualWidth,
    ] {
        group.bench_with_input(
            BenchmarkId::new("fit_apply", format!("{strategy:?}")),
            &dataset.table,
            |b, table| {
                b.iter(|| {
                    let binner =
                        Binner::fit(table, &BinningConfig::default().strategy(strategy)).unwrap();
                    black_box(binner.apply(table).unwrap())
                })
            },
        );
    }
    group.finish();
}

/// Rule engine: bitmap vs Apriori mining and indexed vs linear
/// highlighting (the load-path costs gated by the `rules` experiment).
fn bench_rule_engine(c: &mut Criterion) {
    use subtab_binning::Binner;
    use subtab_core::{highlight_rules, highlight_rules_linear};
    use subtab_datasets::benchmark_target_column;
    use subtab_rules::{MiningConfig, RuleMiner};
    let mut group = c.benchmark_group("rule_engine");
    group.sample_size(10);
    let dataset = DatasetKind::Cyber.build(ExperimentScale::Quick.dataset_size(), 31);
    let binner = Binner::fit(
        &dataset.table,
        &ExperimentScale::Quick.subtab_config().binning,
    )
    .expect("binning fits");
    let binned = binner.apply(&dataset.table).expect("binning applies");
    let target = binned
        .column_index(&benchmark_target_column(&dataset.table))
        .expect("target column exists");
    let miner = RuleMiner::new(MiningConfig::default());
    group.bench_function("mine_bitmap", |b| b.iter(|| black_box(miner.mine(&binned))));
    group.bench_function("mine_apriori", |b| {
        b.iter(|| black_box(miner.mine_apriori(&binned)))
    });
    let rules = miner.mine_with_targets(&binned, &[target]);
    let cols: Vec<String> = binned.column_names().to_vec();
    let rows: Vec<usize> = (0..binned.num_rows().min(256)).collect();
    group.bench_function("highlight_indexed", |b| {
        b.iter(|| black_box(highlight_rules(&binned, &rules, &rows, &cols)))
    });
    group.bench_function("highlight_linear", |b| {
        b.iter(|| black_box(highlight_rules_linear(&binned, &rules, &rows, &cols)))
    });
    group.finish();
}

/// Shared SIMD kernel layer: each runtime-dispatched kernel against its
/// pinned scalar twin, on synthetic planes big enough to dwarf dispatch
/// overhead. Tracks the speedups the `select-kernel-*` / `compile-leaf-*`
/// bench-gate modes assert end to end.
fn bench_kernels(c: &mut Criterion) {
    use subtab_kernels::{
        nearest_centroid_scalar, scan_codes, scan_f64, CentroidScan, CmpOp, NumericScan,
    };
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);

    let dim = 32usize;
    let k = 10usize;
    let n = 4096usize;
    let points: Vec<f32> = (0..n * dim).map(|i| (i % 97) as f32 * 0.125).collect();
    let centroids: Vec<f32> = points[..k * dim].to_vec();
    let scan = CentroidScan::new(&centroids, dim, true);
    group.bench_function("nearest_centroid_simd", |b| {
        b.iter(|| {
            for p in points.chunks_exact(dim) {
                black_box(scan.nearest(p));
            }
        })
    });
    group.bench_function("nearest_centroid_scalar", |b| {
        b.iter(|| {
            for p in points.chunks_exact(dim) {
                black_box(nearest_centroid_scalar(p, &centroids, dim));
            }
        })
    });

    let plane: Vec<f64> = (0..65_536).map(|i| (i % 1009) as f64 * 0.5).collect();
    let range = NumericScan::Cmp {
        op: CmpOp::Lt,
        constant: 250.0,
    };
    group.bench_function("scan_f64_lt", |b| {
        b.iter(|| black_box(scan_f64(black_box(&plane), &range)))
    });
    let codes: Vec<u32> = (0..65_536).map(|i| (i % 7) as u32).collect();
    let table = [false, true, false, false, true, false, false];
    group.bench_function("scan_codes", |b| {
        b.iter(|| black_box(scan_codes(black_box(&codes), &table)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = configure(&mut Criterion::default());
    targets =
        bench_user_study,
        bench_session_replay,
        bench_slow_baselines,
        bench_quality_metrics,
        bench_phases,
        bench_parameter_tuning,
        bench_ablation_binning,
        bench_rule_engine,
        bench_kernels
}
criterion_main!(benches);
