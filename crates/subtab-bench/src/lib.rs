//! # subtab-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! SubTab paper's evaluation (Section 6) on the synthetic stand-in datasets.
//!
//! Each experiment lives in its own module under [`experiments`] and exposes
//! a `run(...)` function returning a plain-data report that the
//! `experiments` binary prints in the same rows/series layout as the paper:
//!
//! | module | paper artefact |
//! |---|---|
//! | [`experiments::user_study`] | Table 1 + Figure 5 (simulated-analyst oracle) |
//! | [`experiments::simulation`] | Figure 6 — captured next-query fragments vs sub-table width |
//! | [`experiments::slow_baselines`] | Figure 7 — quality & time vs MAB / Greedy / EmbDI-style |
//! | [`experiments::quality`] | Figure 8 — diversity / coverage / combined per dataset |
//! | [`experiments::phases`] | Figure 9 — pre-processing vs selection running time |
//! | [`experiments::tuning`] | Figure 10 — sensitivity to #bins, support, confidence |
//! | [`experiments::ablation`] | design-choice ablations called out in DESIGN.md |
//!
//! Run everything with:
//!
//! ```bash
//! cargo run --release -p subtab-bench --bin experiments -- all
//! ```
//!
//! Criterion micro-benchmarks wrapping the same code paths live in
//! `benches/paper_experiments.rs`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;

pub use experiments::common::{ExperimentScale, MethodRun};
