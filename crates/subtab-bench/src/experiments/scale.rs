//! The `--scale large` tier benchmark: per-stage wall time **and resident
//! memory** of the full pipeline — dataset pre-processing, query-scoped
//! selection, rule mining and the serving layer — on the four 100k/1M-row
//! stress shapes of `subtab_datasets::scale`, emitting machine-readable
//! JSON (`BENCH_scale.json`) for the CI bench-regression gate.
//!
//! The six zoo stand-ins cap out at a few thousand rows, so none of the
//! other gates notice when the columnar core starts copying planes or a
//! stage goes accidentally quadratic. This experiment runs every stage at
//! 100 000 rows (the CI quick sub-tier) or 1 000 000 rows (`--scale paper`,
//! the local acceptance tier) and records, per `(shape, stage)` pair, the
//! best-of-reps wall time plus the process resident set sampled right
//! after the stage — the number that actually pages a laptop. Three extra
//! modes ride along: the embed-stage preprocess twins
//! (`scale-preprocess-legacy` vs `scale-preprocess-stream`, the
//! materialized corpus against the streaming builder with pruning,
//! subsampling and f16 storage on) and the CSV spill → reserved-capacity
//! ingest path (`scale-ingest-csv`) that feeds the 1M tier.
//!
//! Wall times are gated like every other bench: normalised to a fixed
//! reference mode (`scale-ref-rowscan`, a per-row `Value`-API scan that exercises
//! none of the optimised columnar paths) so CI-runner generations cancel
//! out, with a >25% relative regression failing the gate. Resident memory
//! is machine-independent at a pinned row count, so it is gated on the
//! *absolute* ratio against the baseline with a deliberately generous 2×
//! threshold (allocator and fragmentation noise stay well under that; a
//! forgotten plane copy does not).

use crate::experiments::common::{format_table, ExperimentScale};
use crate::experiments::preprocess_scaling::check_gated_modes;
use std::sync::Arc;
use std::time::Instant;
use subtab_binning::Binner;
use subtab_core::{SelectionParams, SubTab, SubTabConfig};
use subtab_data::csv::{read_csv_file, write_csv_file};
use subtab_data::{Query, Table};
use subtab_datasets::{generate, scale_spec, ScaleShape, ScaleTier};
use subtab_embed::{train_embedding, train_embedding_materialized, EmbeddingConfig, Quantization};
use subtab_rules::{MiningConfig, RuleMiner};
use subtab_server::{ExplorationServer, Request, ServerConfig};

/// Wall time and resident memory of one `(shape, stage)` pair.
#[derive(Debug, Clone)]
pub struct ScaleStageResult {
    /// Mode label, `scale-<shape>-<stage>` (also the CI gate's match key).
    pub mode: String,
    /// Best-of-`reps` wall time, in ms.
    pub wall_ms: f64,
    /// Resident set size (`VmRSS`) sampled after the stage's last
    /// repetition, in bytes; 0 where `/proc` is unavailable.
    pub rss_bytes: u64,
}

/// The scale-tier report: every stage of every stress shape.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Rows per generated dataset (pinned by the tier, so resident-memory
    /// numbers are comparable across machines).
    pub rows: usize,
    /// Human label of the row count (`100k`, `1m`, or the literal count
    /// for ad-hoc sizes).
    pub tier: String,
    /// One entry per mode, reference first.
    pub results: Vec<ScaleStageResult>,
}

/// The gate's normalisation reference: a per-row `Value`-API scan over the
/// wide shape. It touches every cell through the row-wise shim — a fixed
/// workload that bypasses the columnar fast paths under test — so the
/// ratio of any stage to it cancels raw machine speed.
const REF_MODE: &str = "scale-ref-rowscan";

/// Pipeline stages timed per shape, in execution order.
const STAGES: [&str; 4] = ["preprocess", "select", "mine", "serve"];

/// Resident-memory gate threshold: fail when a mode's resident bytes
/// exceed the baseline's by more than this factor.
const RSS_FACTOR: f64 = 2.0;

/// Modes beyond the `(shape, stage)` grid: the two embed-stage preprocess
/// twins on the high-cardinality shape (the materialized-corpus legacy
/// path against the streaming builder with pruning, subsampling and f16
/// storage on) and the CSV spill-to-disk → reserved-capacity ingest path
/// the 1M tier loads through.
const EXTRA_MODES: [&str; 3] = [
    "scale-preprocess-legacy",
    "scale-preprocess-stream",
    "scale-ingest-csv",
];

/// Absolute resident ceiling for the embed-stage twins
/// (`scale-preprocess-*`) at the pinned 100k CI tier. Row count fixes the
/// working set, so unlike wall time this is machine-independent: blowing
/// it means the embed stage re-grew a materialized corpus or a
/// full-vocabulary weight matrix, regardless of what the baseline
/// recorded.
const EMBED_RSS_CEILING_100K: u64 = 1024 * 1024 * 1024;

/// The selection query and its serve-stage refinement for a shape, phrased
/// against the planted archetypes so every query keeps enough matching
/// rows for a `k × l` selection at any tier.
fn shape_queries(shape: ScaleShape) -> (&'static str, &'static str) {
    match shape {
        ScaleShape::Wide => ("cat_00 = 'alpha' AND metric_00 > 500", "metric_01 < 900"),
        ScaleShape::HighCardinality => {
            ("status_class = '5xx' AND latency_ms > 1000", "retries > 1")
        }
        ScaleShape::SparseNulls => ("purchase_total IS NULL AND churned = 1", "seats > 10"),
        ScaleShape::Timestamps => ("job_kind = 'backup' AND hour_of_day = 3", "exit_code = 0"),
    }
}

/// Runs the scale benchmark: the 100k tier under `--quick` (the CI
/// sub-tier), the 1M tier at paper scale (the local acceptance run).
pub fn run(scale: ExperimentScale) -> ScaleReport {
    match scale {
        ExperimentScale::Quick => run_on(ScaleTier::Rows100k.num_rows(), 2),
        ExperimentScale::Paper => run_on(ScaleTier::Rows1M.num_rows(), 1),
    }
}

/// Runs the benchmark at an explicit row count with `reps` repetitions per
/// stage (best-of wall time is reported, damping scheduler noise).
pub fn run_on(rows: usize, reps: usize) -> ScaleReport {
    let reps = reps.max(1);
    let tier = match rows {
        r if r == ScaleTier::Rows100k.num_rows() => ScaleTier::Rows100k.label().to_string(),
        r if r == ScaleTier::Rows1M.num_rows() => ScaleTier::Rows1M.label().to_string(),
        r => r.to_string(),
    };
    let mut results =
        Vec::with_capacity(1 + ScaleShape::ALL.len() * STAGES.len() + EXTRA_MODES.len());

    // Reference scan first: the wide shape has the most columns, so the
    // row-wise shim pays the full fan-out cost the columnar paths avoid.
    let ref_table = generate(&scale_spec(ScaleShape::Wide, rows), 97).table;
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(rowscan_checksum(&ref_table));
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    results.push(ScaleStageResult {
        mode: REF_MODE.to_string(),
        wall_ms: best_ms,
        rss_bytes: resident_bytes(),
    });
    drop(ref_table);

    for shape in ScaleShape::ALL {
        results.extend(run_shape(shape, rows, reps));
    }
    results.extend(run_extra_modes(rows, reps));
    ScaleReport {
        rows,
        tier,
        results,
    }
}

/// Times the four pipeline stages on one shape.
fn run_shape(shape: ScaleShape, rows: usize, reps: usize) -> Vec<ScaleStageResult> {
    let dataset = generate(&scale_spec(shape, rows), 97);
    let config = SubTabConfig::fast();
    let (base, refine) = shape_queries(shape);
    let query: Query = base.parse().expect("benchmark query parses");
    let params = SelectionParams::new(8, 4);
    let label = |stage: &str| format!("scale-{}-{}", shape.label(), stage);
    let mut out = Vec::with_capacity(STAGES.len());

    // Stage 1: pre-processing (bin + corpus + embedding, the load path).
    let mut best_ms = f64::INFINITY;
    let mut subtab: Option<SubTab> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let s = SubTab::preprocess(dataset.table.clone(), config.clone())
            .expect("pre-processing succeeds on generated data");
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        subtab = Some(s);
    }
    let subtab = Arc::new(subtab.expect("reps >= 1"));
    out.push(ScaleStageResult {
        mode: label("preprocess"),
        wall_ms: best_ms,
        rss_bytes: resident_bytes(),
    });

    // Stage 2: one query-scoped selection (the interactive display path).
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let view = subtab
            .select_for_query(&query, &params)
            .expect("selection succeeds");
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(view.sub_table.num_rows(), params.k);
    }
    out.push(ScaleStageResult {
        mode: label("select"),
        wall_ms: best_ms,
        rss_bytes: resident_bytes(),
    });

    // Stage 3: whole-table rule mining over the binned planes.
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let rules = RuleMiner::new(MiningConfig::default()).mine(subtab.preprocessed().binned());
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(rules.rules.len());
    }
    out.push(ScaleStageResult {
        mode: label("mine"),
        wall_ms: best_ms,
        rss_bytes: resident_bytes(),
    });

    // Stage 4: the serving layer — a session running a three-step
    // refinement chain of text queries (parse, per-session leaf-bitmap
    // cache, result cache on the repeated spelling).
    let chain = [
        base.to_string(),
        format!("{base} AND {refine}"),
        base.to_string(),
    ];
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let server = ExplorationServer::from_subtab(Arc::clone(&subtab), ServerConfig::default());
        let start = Instant::now();
        let session = server.open_session();
        for q in &chain {
            let outcome = server
                .execute(
                    session,
                    Request::SelectText {
                        query: q.clone(),
                        params: params.clone(),
                    },
                )
                .expect("served selection succeeds");
            std::hint::black_box(outcome.cache_hit);
        }
        server.close_session(session).expect("session closes");
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    out.push(ScaleStageResult {
        mode: label("serve"),
        wall_ms: best_ms,
        rss_bytes: resident_bytes(),
    });
    out
}

/// Times the [`EXTRA_MODES`]: both embed-stage preprocess twins on the
/// high-cardinality shape (the shape whose vocabulary stresses corpus
/// construction hardest) and the CSV spill → reserved-capacity ingest
/// path.
fn run_extra_modes(rows: usize, reps: usize) -> Vec<ScaleStageResult> {
    let mut out = Vec::with_capacity(EXTRA_MODES.len());
    let dataset = generate(&scale_spec(ScaleShape::HighCardinality, rows), 97);
    let config = SubTabConfig::fast();
    let binner = Binner::fit(&dataset.table, &config.binning).expect("binner fits generated data");
    let binned = binner.apply(&dataset.table).expect("binning succeeds");

    // Legacy twin: materialized sentence corpus, full vocabulary, dense
    // f32 weights — the pre-streaming pipeline, kept as the perf anchor.
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let model = train_embedding_materialized(&binned, &config.embedding);
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(model.len());
    }
    out.push(ScaleStageResult {
        mode: "scale-preprocess-legacy".to_string(),
        wall_ms: best_ms,
        rss_bytes: resident_bytes(),
    });

    // Streaming path with the scale knobs on: pairs built straight from
    // the code planes, rare bins pruned, frequent bins subsampled, and
    // the trained matrix stored as f16.
    let stream_config = EmbeddingConfig {
        min_count: 2,
        subsample_t: 1e-3,
        quantize: Quantization::F16,
        ..config.embedding.clone()
    };
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let model = train_embedding(&binned, &stream_config);
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(model.len());
    }
    out.push(ScaleStageResult {
        mode: "scale-preprocess-stream".to_string(),
        wall_ms: best_ms,
        rss_bytes: resident_bytes(),
    });
    drop(binned);

    // CSV spill + ingest: the 1M tier is generated once, spilled to disk
    // (untimed — that is generator territory) and loaded back through the
    // reader plus the reserved-capacity append path.
    let path = std::env::temp_dir().join(format!(
        "subtab-scale-ingest-{}-{rows}.csv",
        std::process::id()
    ));
    write_csv_file(&dataset.table, &path).expect("csv spill succeeds");
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let spilled = read_csv_file(&path).expect("csv ingest succeeds");
        let mut ingested = Table::empty(spilled.schema().clone());
        ingested.reserve_rows(spilled.num_rows());
        for row in 0..spilled.num_rows() {
            ingested
                .push_row(spilled.row(row).expect("row in range"))
                .expect("spilled row round-trips");
        }
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(ingested.num_rows(), dataset.table.num_rows());
    }
    let _ = std::fs::remove_file(&path);
    out.push(ScaleStageResult {
        mode: "scale-ingest-csv".to_string(),
        wall_ms: best_ms,
        rss_bytes: resident_bytes(),
    });
    out
}

/// The reference workload: every cell of every row through the row-wise
/// `Value` shim, folded into a checksum the optimiser cannot discard.
fn rowscan_checksum(table: &Table) -> f64 {
    let mut acc = 0.0f64;
    for row in 0..table.num_rows() {
        for col in table.columns() {
            match col.get_f64(row) {
                Some(x) => acc += x,
                None => acc += col.get(row).is_null() as u8 as f64,
            }
        }
    }
    acc
}

/// Resident set size of the current process in bytes: `VmRSS` from
/// `/proc/self/status` on Linux, 0 elsewhere (the gate skips zero sides).
pub fn resident_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Renders the report as an aligned text table.
pub fn render(report: &ScaleReport) -> String {
    let rows: Vec<Vec<String>> = report
        .results
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                format!("{:.3}", r.wall_ms),
                format!("{:.1}", r.rss_bytes as f64 / (1024.0 * 1024.0)),
            ]
        })
        .collect();
    format!(
        "Scale tier ({} rows per shape, tier {}): wall time and resident memory per pipeline \
         stage on the four stress shapes\n{}",
        report.rows,
        report.tier,
        format_table(&["mode", "wall-ms", "rss-MiB"], &rows)
    )
}

/// Serialises the report as `BENCH_scale.json` (one result per line — the
/// shape `preprocess_scaling::parse_results` expects, so the wall gate
/// shares the fleet-wide parser; `rss_bytes` rides along on each line for
/// the resident-memory gate).
pub fn to_json(report: &ScaleReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"scale\",\n");
    out.push_str(&format!("  \"rows\": {},\n", report.rows));
    out.push_str(&format!("  \"tier\": \"{}\",\n", report.tier));
    out.push_str("  \"results\": [\n");
    for (i, r) in report.results.iter().enumerate() {
        let comma = if i + 1 < report.results.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"wall_ms\": {:.3}, \"rss_bytes\": {}}}{}\n",
            r.mode, r.wall_ms, r.rss_bytes, comma
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Extracts `(mode, rss_bytes)` pairs from a `BENCH_scale.json`; lines
/// without an `rss_bytes` field (other experiments sharing the parser
/// shape) are skipped rather than rejected.
pub fn parse_rss(json: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim();
        if !line.contains("\"mode\"") || !line.contains("\"rss_bytes\"") {
            continue;
        }
        let mode = line
            .split("\"mode\": \"")
            .nth(1)
            .and_then(|rest| rest.split('"').next());
        let rss = line.split("\"rss_bytes\": ").nth(1).and_then(|rest| {
            rest.split([',', '}'])
                .next()
                .and_then(|v| v.trim().parse::<u64>().ok())
        });
        if let (Some(mode), Some(rss)) = (mode, rss) {
            out.push((mode.to_string(), rss));
        }
    }
    out
}

/// Compares a fresh report against the checked-in
/// `BENCH_scale_baseline.json`: wall times through the shared normalised
/// gate (reference `scale-ref-rowscan`, fractional `threshold`), resident
/// memory through an absolute 2× ratio check (skipped when either
/// side reports 0 — non-Linux captures). At the pinned 100k tier the
/// embed-stage twins are additionally held under the absolute
/// `EMBED_RSS_CEILING_100K`, baseline or not.
pub fn check_against_baseline(
    report: &ScaleReport,
    baseline_json: &str,
    threshold: f64,
) -> Result<Vec<String>, Vec<String>> {
    let gated: Vec<(String, f64)> = report
        .results
        .iter()
        .map(|r| (r.mode.clone(), r.wall_ms))
        .collect();
    let (mut lines, mut regressions) =
        match check_gated_modes(&gated, baseline_json, REF_MODE, threshold) {
            Ok(lines) => (lines, Vec::new()),
            Err(regs) => (Vec::new(), regs),
        };
    let baseline_rss = parse_rss(baseline_json);
    for r in &report.results {
        let Some(&(_, base)) = baseline_rss.iter().find(|(m, _)| m == &r.mode) else {
            continue;
        };
        if r.rss_bytes == 0 || base == 0 {
            lines.push(format!("{}: rss not captured on one side", r.mode));
            continue;
        }
        let ratio = r.rss_bytes as f64 / base as f64;
        let line = format!(
            "{}: {:.1} MiB resident vs baseline {:.1} MiB ({:+.1}%)",
            r.mode,
            r.rss_bytes as f64 / (1024.0 * 1024.0),
            base as f64 / (1024.0 * 1024.0),
            (ratio - 1.0) * 100.0
        );
        if ratio > RSS_FACTOR {
            regressions.push(format!(
                "REGRESSION {line} exceeds {RSS_FACTOR:.0}x resident-memory budget"
            ));
        } else {
            lines.push(line);
        }
    }
    if report.rows == ScaleTier::Rows100k.num_rows() {
        for r in &report.results {
            if !r.mode.starts_with("scale-preprocess-") || r.rss_bytes == 0 {
                continue;
            }
            if r.rss_bytes > EMBED_RSS_CEILING_100K {
                regressions.push(format!(
                    "REGRESSION {}: {:.1} MiB resident exceeds the {:.0} MiB embed-stage \
                     ceiling at the 100k tier",
                    r.mode,
                    r.rss_bytes as f64 / (1024.0 * 1024.0),
                    EMBED_RSS_CEILING_100K as f64 / (1024.0 * 1024.0)
                ));
            }
        }
    }
    if regressions.is_empty() {
        Ok(lines)
    } else {
        Err(regressions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::preprocess_scaling::parse_results;
    use std::sync::OnceLock;

    /// The full tiers are release-binary territory; the tests pin the
    /// machinery at a debug-friendly row count and share one report.
    fn tiny_report() -> &'static ScaleReport {
        static REPORT: OnceLock<ScaleReport> = OnceLock::new();
        REPORT.get_or_init(|| run_on(1_200, 1))
    }

    #[test]
    fn report_covers_every_shape_and_stage() {
        let report = tiny_report();
        assert_eq!(report.rows, 1_200);
        assert_eq!(report.tier, "1200");
        assert_eq!(
            report.results.len(),
            1 + ScaleShape::ALL.len() * STAGES.len() + EXTRA_MODES.len()
        );
        assert_eq!(report.results[0].mode, REF_MODE);
        for shape in ScaleShape::ALL {
            for stage in STAGES {
                let mode = format!("scale-{}-{}", shape.label(), stage);
                assert!(
                    report.results.iter().any(|r| r.mode == mode),
                    "missing {mode}"
                );
            }
        }
        for mode in EXTRA_MODES {
            assert!(
                report.results.iter().any(|r| r.mode == mode),
                "missing {mode}"
            );
        }
        assert!(report.results.iter().all(|r| r.wall_ms > 0.0));
        let rendered = render(report);
        assert!(rendered.contains("rss-MiB"));
        assert!(rendered.contains(REF_MODE));
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn resident_memory_is_captured_on_linux() {
        assert!(resident_bytes() > 0);
        let report = tiny_report();
        assert!(report.results.iter().all(|r| r.rss_bytes > 0));
    }

    #[test]
    fn json_round_trips_through_both_parsers() {
        let report = tiny_report();
        let json = to_json(report);
        let walls = parse_results(&json).unwrap();
        let rss = parse_rss(&json);
        assert_eq!(walls.len(), report.results.len());
        assert_eq!(rss.len(), report.results.len());
        for (r, ((pmode, pwall), (rmode, rbytes))) in
            report.results.iter().zip(walls.iter().zip(&rss))
        {
            assert_eq!(&r.mode, pmode);
            assert_eq!(&r.mode, rmode);
            assert!((r.wall_ms - pwall).abs() < 0.01);
            assert_eq!(r.rss_bytes, *rbytes);
        }
    }

    #[test]
    fn gate_passes_against_itself_and_catches_wall_regressions() {
        let report = tiny_report();
        let json = to_json(report);
        assert!(check_against_baseline(report, &json, 0.25).is_ok());
        // A uniformly faster machine is not a regression — the rowscan
        // reference cancels it.
        let mut faster = report.clone();
        for r in &mut faster.results {
            r.wall_ms /= 10.0;
        }
        assert!(check_against_baseline(report, &to_json(&faster), 0.25).is_ok());
        // A baseline whose stages are 10x faster relative to the unchanged
        // reference: every non-reference mode regresses.
        let mut fast = report.clone();
        for r in &mut fast.results {
            if r.mode != REF_MODE {
                r.wall_ms /= 10.0;
            }
        }
        let err = check_against_baseline(report, &to_json(&fast), 0.25).unwrap_err();
        assert_eq!(err.len(), report.results.len() - 1);
        assert!(err[0].contains("REGRESSION"));
        assert!(check_against_baseline(report, "not json", 0.25).is_err());
    }

    #[test]
    fn gate_catches_resident_memory_blowups() {
        let report = tiny_report();
        if report.results[0].rss_bytes == 0 {
            // Non-Linux capture: the rss gate self-disables.
            return;
        }
        // A baseline captured with a third of the resident footprint: every
        // mode blows the 2x budget even though wall times are identical.
        let mut lean = report.clone();
        for r in &mut lean.results {
            r.rss_bytes /= 3;
        }
        let err = check_against_baseline(report, &to_json(&lean), 0.25).unwrap_err();
        assert_eq!(err.len(), report.results.len());
        assert!(err[0].contains("resident-memory budget"));
    }

    #[test]
    fn gate_enforces_the_embed_stage_ceiling_at_the_ci_tier() {
        let report = tiny_report();
        if report.results[0].rss_bytes == 0 {
            // Non-Linux capture: the rss gate self-disables.
            return;
        }
        // Re-badge the tiny run as the pinned CI tier: tiny footprints sit
        // far under the ceiling, so against itself the gate still passes.
        let mut pinned = report.clone();
        pinned.rows = ScaleTier::Rows100k.num_rows();
        assert!(check_against_baseline(&pinned, &to_json(&pinned), 0.25).is_ok());
        // Blow both embed twins past the ceiling. The crafted baseline
        // records the same bytes, so the relative 2x gate stays quiet and
        // only the absolute ceiling can fire.
        for r in &mut pinned.results {
            if r.mode.starts_with("scale-preprocess-") {
                r.rss_bytes = EMBED_RSS_CEILING_100K + 1;
            }
        }
        let err = check_against_baseline(&pinned, &to_json(&pinned), 0.25).unwrap_err();
        assert_eq!(err.len(), 2);
        assert!(err.iter().all(|e| e.contains("embed-stage ceiling")));
        // At any other row count the same report passes: the ceiling is
        // meaningless without the pinned working set.
        pinned.rows = 1_200;
        assert!(check_against_baseline(&pinned, &to_json(&pinned), 0.25).is_ok());
    }

    #[test]
    fn every_shape_query_parses_and_selects() {
        for shape in ScaleShape::ALL {
            let (base, refine) = shape_queries(shape);
            let _: Query = base.parse().expect("base query parses");
            let _: Query = format!("{base} AND {refine}")
                .parse()
                .expect("refined query parses");
        }
    }
}
