//! Query-time selection scaling: times `select` / `select_for_query` through
//! the token-ID engine against the preserved string-keyed reference path and
//! emits machine-readable JSON (`BENCH_query.json`) for the CI
//! bench-regression gate.
//!
//! Pre-processing (binning, corpus, SGNS) is paid once outside the timed
//! region — this experiment measures what the paper calls the *interactive*
//! cost: the per-display sub-table selection that runs for the table itself
//! and for every exploratory query issued over it.

use crate::experiments::common::{format_table, ExperimentScale};
use crate::experiments::preprocess_scaling::check_gated_modes;
use std::time::Instant;
use subtab_cluster::{assign_points, assign_points_scalar};
use subtab_core::select::{select_sub_table, select_sub_table_strkey};
use subtab_core::{leaf_bitmap, leaf_bitmap_scalar, PreprocessedTable, SelectionParams};
use subtab_data::Predicate;
use subtab_datasets::{
    benchmark_ast_query, benchmark_deep_nest_query, benchmark_filter_query,
    benchmark_projected_query, DatasetKind,
};

/// Wall time of one selection mode.
#[derive(Debug, Clone)]
pub struct QueryModeResult {
    /// Mode label (also the key the CI gate matches baselines by).
    pub mode: String,
    /// Worker threads used for the vector gathers and k-means assignment.
    pub threads: usize,
    /// Best-of-`reps` wall time of one selection, in ms.
    pub wall_ms: f64,
}

/// The query-time scaling report for one dataset.
#[derive(Debug, Clone)]
pub struct QueryScalingReport {
    /// Dataset label (FL by default — the paper's biggest stand-in).
    pub dataset: String,
    /// Rows of the generated table.
    pub rows: usize,
    /// Columns of the generated table.
    pub cols: usize,
    /// Rows matched by the benchmark queries (both share the filter).
    pub query_rows: usize,
    /// One entry per selection mode.
    pub results: Vec<QueryModeResult>,
    /// Filter-query wall ratio strkey-1t / tokenid-1t — the headline
    /// single-core speedup of the token-ID engine on `select_for_query`
    /// over the full schema width.
    pub speedup_tokenid_vs_strkey: f64,
    /// Same ratio for the selection–projection query (half the columns
    /// projected; clustering makes up a larger share, so the ratio is
    /// smaller).
    pub proj_speedup_tokenid_vs_strkey: f64,
    /// Whole-table wall ratio strkey-1t / tokenid-1t (the token-ID side is
    /// the steady-state cached path a live session actually runs).
    pub table_speedup_tokenid_vs_strkey: f64,
    /// Raw k-means assignment-step wall ratio scalar / SIMD — the headline
    /// speedup of the shared kernel layer's centroid scan.
    pub kernel_assign_speedup: f64,
    /// Compiled-leaf plane-scan wall ratio scalar / SIMD over the benchmark
    /// queries' predicates.
    pub compile_leaf_speedup: f64,
}

/// Label of the string-keyed query comparator (the gate's normalisation
/// reference, like `seed-legacy-1t` for the preprocess experiment).
const STRKEY_QUERY_MODE: &str = "query-strkey-1t";

/// Which selection each benchmark mode runs.
#[derive(Clone, Copy)]
enum Workload {
    /// `select_for_query` with a selection-only query (full schema width).
    FilterQuery,
    /// `select_for_query` with a selection–projection query (half the
    /// columns).
    ProjQuery,
    /// `select_for_query` with the depth-3 nested AST query (same row set
    /// as the flat filter, evaluated through the compiled bitmap engine).
    AstQuery,
    /// `select_for_query` with the deeply nested (> 10 levels) AST query.
    DeepNestQuery,
    /// Whole-table `select`.
    WholeTable,
    /// The raw k-means assignment step over the cached row-vector plane:
    /// the runtime-dispatched SIMD centroid scan (`scalar = false`) or its
    /// pinned scalar twin (`scalar = true`), repeated
    /// [`KERNEL_INNER_ITERS`] times so the wall time is measurable at
    /// quick scale.
    KernelAssign {
        /// Time the pinned scalar twin instead of the SIMD scan.
        scalar: bool,
    },
    /// The raw compiled-leaf plane scans of every predicate the benchmark
    /// queries reference: kernel `leaf_bitmap` vs `leaf_bitmap_scalar`,
    /// repeated [`KERNEL_INNER_ITERS`] times.
    CompileLeaf {
        /// Time the pinned scalar twin instead of the SIMD scan.
        scalar: bool,
    },
}

/// Inner repetitions of the raw kernel workloads inside one timed region —
/// a single assignment or leaf scan at quick scale completes in
/// microseconds, below timer noise.
const KERNEL_INNER_ITERS: usize = 24;

/// The selection modes: `(label, threads, strkey, workload)`.
///
/// `query-*` modes time `select_for_query` (row/column vectors recomputed
/// per call on both engines — the honest apples-to-apples comparison);
/// `select-*` modes time the whole-table `select`, where the token-ID engine
/// reuses the Arc-cached flat row matrix (primed before timing) while the
/// string-keyed comparator re-gathers every vector, which is what the
/// selection would cost without the precomputed plane.
const MODES: &[(&str, usize, bool, Workload)] = &[
    (STRKEY_QUERY_MODE, 1, true, Workload::FilterQuery),
    ("query-tokenid-1t", 1, false, Workload::FilterQuery),
    ("query-tokenid-4t", 4, false, Workload::FilterQuery),
    ("query-proj-strkey-1t", 1, true, Workload::ProjQuery),
    ("query-proj-tokenid-1t", 1, false, Workload::ProjQuery),
    ("query-ast-1t", 1, false, Workload::AstQuery),
    ("query-ast-deep-nest-1t", 1, false, Workload::DeepNestQuery),
    ("select-strkey-1t", 1, true, Workload::WholeTable),
    ("select-tokenid-1t", 1, false, Workload::WholeTable),
    (
        "select-kernel-simd-1t",
        1,
        false,
        Workload::KernelAssign { scalar: false },
    ),
    (
        "select-kernel-scalar-1t",
        1,
        false,
        Workload::KernelAssign { scalar: true },
    ),
    (
        "compile-leaf-simd-1t",
        1,
        false,
        Workload::CompileLeaf { scalar: false },
    ),
    (
        "compile-leaf-scalar-1t",
        1,
        false,
        Workload::CompileLeaf { scalar: true },
    ),
];

/// Runs the scaling benchmark on the Flights stand-in (the paper's largest).
pub fn run(scale: ExperimentScale) -> QueryScalingReport {
    run_on(DatasetKind::Flights, scale, 7)
}

/// Runs the benchmark on an explicit dataset with `reps` repetitions per
/// mode (best-of wall time is reported, damping scheduler noise).
pub fn run_on(kind: DatasetKind, scale: ExperimentScale, reps: usize) -> QueryScalingReport {
    let dataset = kind.build(scale.dataset_size(), 31);
    let config = scale.subtab_config();
    let pre = PreprocessedTable::new(dataset.table, &config).expect("pre-processing");
    // The canonical benchmark queries shared with the token-ID equivalence
    // suite (both live in `subtab_datasets::queries`, so the bench and the
    // tests can never drift onto different query shapes).
    let filter_q = benchmark_filter_query(pre.table());
    let proj_q = benchmark_projected_query(pre.table());
    let ast_q = benchmark_ast_query(pre.table());
    let deep_q = benchmark_deep_nest_query(pre.table());
    let query_rows = filter_q
        .matching_rows(pre.table())
        .expect("benchmark query evaluates")
        .len();
    // The paper's default 10 × 10 selection.
    let params = SelectionParams::default();
    // Prime the whole-table row-vector cache so `select-tokenid-1t` measures
    // the steady-state interactive cost, not the one-off cache fill. The
    // same cached plane doubles as the point set of the raw kernel modes,
    // with the first rows seeding the paper's default k = 10 centroids.
    let points = pre.full_row_vectors();
    let dim = points.dim().max(1);
    let k = 10.min(points.num_rows()).max(1);
    let centroids: Vec<f32> = points.data()[..k * dim].to_vec();
    let mut assign_buf = vec![0usize; points.num_rows()];
    let mut dist_buf = vec![0.0f32; points.num_rows()];
    let leaves: Vec<&Predicate> = [&filter_q, &proj_q, &ast_q, &deep_q]
        .into_iter()
        .flat_map(|q| q.leaf_predicates())
        .collect();

    let mut results = Vec::new();
    for &(mode, threads, strkey, workload) in MODES {
        let mut best_ms = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            match workload {
                Workload::KernelAssign { scalar } => {
                    for _ in 0..KERNEL_INNER_ITERS {
                        if scalar {
                            assign_points_scalar(
                                points.view(),
                                &centroids,
                                dim,
                                &mut assign_buf,
                                &mut dist_buf,
                                threads,
                            );
                        } else {
                            assign_points(
                                points.view(),
                                &centroids,
                                dim,
                                &mut assign_buf,
                                &mut dist_buf,
                                threads,
                                true,
                            );
                        }
                    }
                    assert!(assign_buf.iter().all(|&a| a < k));
                }
                Workload::CompileLeaf { scalar } => {
                    for _ in 0..KERNEL_INNER_ITERS {
                        for p in &leaves {
                            let bitmap = if scalar {
                                leaf_bitmap_scalar(pre.table(), p)
                            } else {
                                leaf_bitmap(pre.table(), p)
                            }
                            .expect("leaf compiles");
                            std::hint::black_box(bitmap.count());
                        }
                    }
                }
                _ => {
                    let q = match workload {
                        Workload::FilterQuery => Some(&filter_q),
                        Workload::ProjQuery => Some(&proj_q),
                        Workload::AstQuery => Some(&ast_q),
                        Workload::DeepNestQuery => Some(&deep_q),
                        _ => None,
                    };
                    let r = if strkey {
                        select_sub_table_strkey(&pre, q, &params, config.seed, threads)
                    } else {
                        select_sub_table(&pre, q, &params, config.seed, threads)
                    }
                    .expect("selection succeeds");
                    assert!(!r.row_indices.is_empty());
                }
            }
            best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        }
        results.push(QueryModeResult {
            mode: mode.to_string(),
            threads,
            wall_ms: best_ms,
        });
    }
    let wall = |m: &str| {
        results
            .iter()
            .find(|r| r.mode == m)
            .map(|r| r.wall_ms)
            .expect("mode present")
    };
    QueryScalingReport {
        dataset: kind.label().to_string(),
        rows: pre.table().num_rows(),
        cols: pre.table().num_columns(),
        query_rows,
        speedup_tokenid_vs_strkey: wall(STRKEY_QUERY_MODE) / wall("query-tokenid-1t").max(1e-9),
        proj_speedup_tokenid_vs_strkey: wall("query-proj-strkey-1t")
            / wall("query-proj-tokenid-1t").max(1e-9),
        table_speedup_tokenid_vs_strkey: wall("select-strkey-1t")
            / wall("select-tokenid-1t").max(1e-9),
        kernel_assign_speedup: wall("select-kernel-scalar-1t")
            / wall("select-kernel-simd-1t").max(1e-9),
        compile_leaf_speedup: wall("compile-leaf-scalar-1t")
            / wall("compile-leaf-simd-1t").max(1e-9),
        results,
    }
}

/// Renders the report as an aligned text table.
pub fn render(report: &QueryScalingReport) -> String {
    let rows: Vec<Vec<String>> = report
        .results
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                r.threads.to_string(),
                format!("{:.3}", r.wall_ms),
            ]
        })
        .collect();
    format!(
        "Query-time selection on {} ({} rows × {} cols, query matches {} rows): \
         token-ID engine {:.2}x over the string-keyed path on select_for_query \
         ({:.2}x with a half-schema projection, {:.2}x on whole-table select); \
         SIMD kernels {:.2}x on the k-means assignment step, {:.2}x on \
         compiled-leaf plane scans\n{}",
        report.dataset,
        report.rows,
        report.cols,
        report.query_rows,
        report.speedup_tokenid_vs_strkey,
        report.proj_speedup_tokenid_vs_strkey,
        report.table_speedup_tokenid_vs_strkey,
        report.kernel_assign_speedup,
        report.compile_leaf_speedup,
        format_table(&["mode", "threads", "wall-ms"], &rows)
    )
}

/// Serialises the report as `BENCH_query.json` (one result per line — the
/// shape `preprocess_scaling::parse_results` expects, so both experiments'
/// gates share one parser and one baseline file).
pub fn to_json(report: &QueryScalingReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"query_scaling\",\n");
    out.push_str(&format!("  \"dataset\": \"{}\",\n", report.dataset));
    out.push_str(&format!("  \"rows\": {},\n", report.rows));
    out.push_str(&format!("  \"cols\": {},\n", report.cols));
    out.push_str(&format!("  \"query_rows\": {},\n", report.query_rows));
    out.push_str("  \"results\": [\n");
    for (i, r) in report.results.iter().enumerate() {
        let comma = if i + 1 < report.results.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}}}{}\n",
            r.mode, r.threads, r.wall_ms, comma
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup_tokenid_vs_strkey\": {:.3},\n",
        report.speedup_tokenid_vs_strkey
    ));
    out.push_str(&format!(
        "  \"proj_speedup_tokenid_vs_strkey\": {:.3},\n",
        report.proj_speedup_tokenid_vs_strkey
    ));
    out.push_str(&format!(
        "  \"table_speedup_tokenid_vs_strkey\": {:.3},\n",
        report.table_speedup_tokenid_vs_strkey
    ));
    out.push_str(&format!(
        "  \"kernel_assign_speedup\": {:.3},\n",
        report.kernel_assign_speedup
    ));
    out.push_str(&format!(
        "  \"compile_leaf_speedup\": {:.3}\n",
        report.compile_leaf_speedup
    ));
    out.push_str("}\n");
    out
}

/// Compares a fresh report against a checked-in baseline JSON (the same
/// file the preprocess gate reads — baseline entries for other experiments'
/// modes are ignored). Wall times are normalised to `query-strkey-1t` of
/// their own capture, cancelling raw machine speed exactly like the
/// preprocess gate's seed-legacy normalisation.
pub fn check_against_baseline(
    report: &QueryScalingReport,
    baseline_json: &str,
    threshold: f64,
) -> Result<Vec<String>, Vec<String>> {
    let gated: Vec<(String, f64)> = report
        .results
        .iter()
        .map(|r| (r.mode.clone(), r.wall_ms))
        .collect();
    check_gated_modes(&gated, baseline_json, STRKEY_QUERY_MODE, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::preprocess_scaling::parse_results;
    use std::sync::OnceLock;

    /// The benchmark is slow under the debug test profile, so every test
    /// shares one report.
    fn tiny_report() -> &'static QueryScalingReport {
        static REPORT: OnceLock<QueryScalingReport> = OnceLock::new();
        REPORT.get_or_init(|| run_on(DatasetKind::Spotify, ExperimentScale::Quick, 1))
    }

    #[test]
    fn report_covers_every_mode_with_positive_times() {
        let report = tiny_report();
        assert_eq!(report.results.len(), MODES.len());
        assert!(report.results.iter().all(|r| r.wall_ms > 0.0));
        assert!(report.speedup_tokenid_vs_strkey > 0.0);
        assert!(report.proj_speedup_tokenid_vs_strkey > 0.0);
        assert!(report.table_speedup_tokenid_vs_strkey > 0.0);
        assert!(report.kernel_assign_speedup > 0.0);
        assert!(report.compile_leaf_speedup > 0.0);
        assert!(report.query_rows > 0, "benchmark query must match rows");
        let rendered = render(report);
        assert!(rendered.contains("wall-ms"));
        assert!(rendered.contains(STRKEY_QUERY_MODE));
        for kernel_mode in [
            "select-kernel-simd-1t",
            "select-kernel-scalar-1t",
            "compile-leaf-simd-1t",
            "compile-leaf-scalar-1t",
        ] {
            assert!(
                report.results.iter().any(|r| r.mode == kernel_mode),
                "kernel mode {kernel_mode} missing"
            );
        }
    }

    #[test]
    fn json_round_trips_through_the_shared_parser() {
        let report = tiny_report();
        let json = to_json(report);
        let parsed = parse_results(&json).unwrap();
        assert_eq!(parsed.len(), report.results.len());
        for (r, (pmode, pwall)) in report.results.iter().zip(&parsed) {
            assert_eq!(&r.mode, pmode);
            assert!((r.wall_ms - pwall).abs() < 0.01);
        }
    }

    #[test]
    fn gate_passes_against_itself_and_catches_regressions() {
        let report = tiny_report();
        let json = to_json(report);
        assert!(check_against_baseline(report, &json, 0.25).is_ok());
        // A uniformly faster machine is not a regression — normalisation
        // cancels it.
        let mut faster = report.clone();
        for r in &mut faster.results {
            r.wall_ms /= 10.0;
        }
        assert!(check_against_baseline(report, &to_json(&faster), 0.25).is_ok());
        // A baseline whose token-ID modes are 10x faster relative to the
        // unchanged strkey comparator: every non-reference mode regresses.
        let mut fast = report.clone();
        for r in &mut fast.results {
            if r.mode != STRKEY_QUERY_MODE {
                r.wall_ms /= 10.0;
            }
        }
        let err = check_against_baseline(report, &to_json(&fast), 0.25).unwrap_err();
        assert_eq!(err.len(), report.results.len() - 1);
        assert!(err[0].contains("REGRESSION"));
        assert!(check_against_baseline(report, "not json", 0.25).is_err());
    }

    #[test]
    fn benchmark_queries_are_selective_but_nonempty() {
        let dataset = DatasetKind::Cyber.build(subtab_datasets::DatasetSize::Tiny, 5);
        let fq = benchmark_filter_query(&dataset.table);
        let matched = fq.matching_rows(&dataset.table).unwrap();
        assert!(!matched.is_empty());
        assert!(matched.len() <= dataset.table.num_rows());
        assert!(fq.projection.is_none());
        let pq = benchmark_projected_query(&dataset.table);
        assert_eq!(pq.matching_rows(&dataset.table).unwrap(), matched);
        assert!(pq.projection.is_some());
    }
}
