//! Pre-processing hot-path scaling: times `SubTab::preprocess` under each
//! execution mode of the sharded SGNS trainer and emits machine-readable
//! JSON (`BENCH_preprocess.json`) for the CI bench-regression gate.
//!
//! The JSON is intentionally one `results` object per line so the baseline
//! checker can parse it without a JSON dependency; keep
//! [`to_json`] and [`parse_results`] in sync.

use crate::experiments::common::{format_table, ExperimentScale};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use subtab_binning::Binner;
use subtab_core::SubTab;
use subtab_datasets::DatasetKind;
use subtab_embed::corpus::CorpusOptions;
use subtab_embed::{build_corpus, CellEmbedding, Corpus, EmbeddingConfig};

/// Wall time of one trainer mode.
#[derive(Debug, Clone)]
pub struct ScalingResult {
    /// Mode label (also the key the CI gate matches baselines by).
    pub mode: String,
    /// Worker threads used.
    pub threads: usize,
    /// Best-of-`reps` wall time of the full pre-processing phase, in ms.
    pub wall_ms: f64,
    /// Best-of-`reps` wall time of SGNS training alone (binning and corpus
    /// construction excluded), in ms — the hot path the sharded trainer
    /// parallelises.
    pub train_ms: f64,
}

/// Wall time of `Binner::fit` under one evaluator mode.
#[derive(Debug, Clone)]
pub struct BinningResult {
    /// Mode label (also the key the CI gate matches baselines by).
    pub mode: String,
    /// Worker threads used for the per-column fan-out.
    pub threads: usize,
    /// Best-of-`reps` wall time of `Binner::fit`, in ms.
    pub wall_ms: f64,
}

/// The scaling report for one dataset.
#[derive(Debug, Clone)]
pub struct PreprocessScalingReport {
    /// Dataset label (FL by default — the paper's biggest stand-in).
    pub dataset: String,
    /// Rows of the generated table.
    pub rows: usize,
    /// Embedding dimensionality used.
    pub dim: usize,
    /// One entry per trainer mode.
    pub results: Vec<ScalingResult>,
    /// One entry per `Binner::fit` evaluator mode (exact dense reference vs
    /// the windowed truncated-kernel evaluator, single- and multi-threaded).
    pub binning: Vec<BinningResult>,
    /// Training-wall ratio seed-legacy / fastest-threaded — the headline
    /// number for the hot path this trainer parallelises.
    pub speedup_threaded_vs_seed: f64,
    /// Full-preprocess wall ratio seed-legacy / fastest-threaded (includes
    /// the binning fit and corpus construction every mode shares).
    pub preprocess_speedup_threaded_vs_seed: f64,
    /// `Binner::fit` wall ratio exact-1t / fastest windowed mode — the
    /// headline number for the windowed KDE evaluator.
    pub binning_speedup_windowed_vs_exact: f64,
}

/// The modes the benchmark exercises: the preserved seed implementation
/// (the comparator the speedup is quoted against), the bit-exact reference,
/// the fast single-thread kernels, and the two 4-thread modes.
const MODES: &[(&str, usize, bool)] = &[
    (SEED_MODE, 1, true),
    ("reference-1t", 1, true),
    ("fast-1t", 1, false),
    ("deterministic-4t", 4, true),
    ("hogwild-4t", 4, false),
];

/// Label of the seed-legacy comparator mode.
const SEED_MODE: &str = "seed-legacy-1t";

/// The `Binner::fit` evaluator modes: `(label, threads, exact)`. The exact
/// mode evaluates the dense O(grid × samples) reference (infinite cutoff);
/// the windowed modes use the default truncated-kernel evaluator, alone and
/// with the per-column fan-out.
const BINNING_MODES: &[(&str, usize, bool)] = &[
    (BINNING_EXACT_MODE, 1, true),
    ("binning-windowed-1t", 1, false),
    ("binning-windowed-4t", 4, false),
];

/// Label of the exact-reference binning comparator mode.
const BINNING_EXACT_MODE: &str = "binning-exact-1t";

/// The pre-refactor SGNS trainer, preserved verbatim (nested loops, a heap
/// allocation per pair, exact-`exp` sigmoid, cumulative-table sampling and
/// the original approximate pair count) so the benchmark keeps measuring
/// speedups against the true seed single-thread path rather than against an
/// already-optimised reference.
fn train_seed_legacy(corpus: &Corpus, config: &EmbeddingConfig) -> CellEmbedding {
    fn sigmoid(x: f32) -> f32 {
        1.0 / (1.0 + (-x).exp())
    }
    fn i_slice(m: &[f32], idx: u32, dim: usize) -> &[f32] {
        let start = idx as usize * dim;
        &m[start..start + dim]
    }
    fn m_slice(m: &mut [f32], idx: u32, dim: usize) -> &mut [f32] {
        let start = idx as usize * dim;
        &mut m[start..start + dim]
    }
    let vocab_size = corpus.vocab.len();
    let dim = config.dim.max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    if vocab_size == 0 {
        return CellEmbedding::new(dim, Vec::new(), Vec::new());
    }
    let mut w_in: Vec<f32> = (0..vocab_size * dim)
        .map(|_| (rng.gen::<f32>() - 0.5) / dim as f32)
        .collect();
    let mut w_out: Vec<f32> = vec![0.0; vocab_size * dim];
    let count: usize = corpus
        .sentences
        .iter()
        .map(|s| {
            let len = s.len();
            match config.window {
                Some(w) => len * (2 * w).min(len.saturating_sub(1)),
                None => len * len.saturating_sub(1),
            }
        })
        .sum();
    let total_pairs = count * config.epochs.max(1);
    let mut processed = 0usize;
    let lr0 = config.learning_rate;
    let mut grad_in = vec![0.0f32; dim];
    for _epoch in 0..config.epochs.max(1) {
        for sentence in &corpus.sentences {
            let len = sentence.len();
            for (i, &center) in sentence.iter().enumerate() {
                let (lo, hi) = match config.window {
                    Some(w) => (i.saturating_sub(w), (i + w + 1).min(len)),
                    None => (0, len),
                };
                for (j, &context) in sentence.iter().enumerate().take(hi).skip(lo) {
                    if j == i {
                        continue;
                    }
                    let lr = lr0 * (1.0 - processed as f32 / (total_pairs as f32 + 1.0)).max(0.1);
                    processed += 1;
                    grad_in.iter_mut().for_each(|g| *g = 0.0);
                    let center_vec = i_slice(&w_in, center, dim).to_vec();
                    for neg in 0..=config.negative_samples {
                        let (target, label) = if neg == 0 {
                            (context, 1.0f32)
                        } else {
                            (corpus.vocab.sample_negative(&mut rng), 0.0f32)
                        };
                        if label == 0.0 && target == context {
                            continue;
                        }
                        let out = m_slice(&mut w_out, target, dim);
                        let dot: f32 = center_vec.iter().zip(out.iter()).map(|(a, b)| a * b).sum();
                        let pred = sigmoid(dot);
                        let g = (label - pred) * lr;
                        for d in 0..dim {
                            grad_in[d] += g * out[d];
                            out[d] += g * center_vec[d];
                        }
                    }
                    let center_slice = m_slice(&mut w_in, center, dim);
                    for d in 0..dim {
                        center_slice[d] += grad_in[d];
                    }
                }
            }
        }
    }
    let tokens = corpus.vocab.tokens().to_vec();
    let vectors: Vec<Vec<f32>> = (0..vocab_size)
        .map(|i| i_slice(&w_in, i as u32, dim).to_vec())
        .collect();
    CellEmbedding::new(dim, tokens, vectors)
}

/// Builds the corpus exactly as `SubTab::preprocess` does, for the
/// train-only timings.
fn corpus_for(table: &subtab_data::Table, config: &subtab_core::SubTabConfig) -> Corpus {
    let binner = Binner::fit(table, &config.binning).expect("fit");
    let binned = binner.apply(table).expect("apply");
    let e = &config.embedding;
    build_corpus(
        &binned,
        &CorpusOptions {
            max_sentences: e.max_sentences,
            max_column_sentence_len: e.max_column_sentence_len,
            include_column_sentences: e.include_column_sentences,
            seed: e.seed,
        },
    )
}

/// Runs the seed-legacy pre-processing pipeline end to end (fit + apply +
/// corpus + legacy trainer), mirroring what `SubTab::preprocess` composes.
fn seed_legacy_preprocess(table: &subtab_data::Table, config: &subtab_core::SubTabConfig) {
    let corpus = corpus_for(table, config);
    let emb = train_seed_legacy(&corpus, &config.embedding);
    assert!(emb.is_empty() == corpus.vocab.is_empty());
}

/// Runs the scaling benchmark on the Flights stand-in (the paper's largest).
pub fn run(scale: ExperimentScale) -> PreprocessScalingReport {
    run_on(DatasetKind::Flights, scale, 5)
}

/// Runs the benchmark on an explicit dataset with `reps` repetitions per
/// mode (best-of wall time is reported, damping scheduler noise).
pub fn run_on(kind: DatasetKind, scale: ExperimentScale, reps: usize) -> PreprocessScalingReport {
    let dataset = kind.build(scale.dataset_size(), 31);
    let base = scale.subtab_config();
    // The corpus every mode trains on, built once for the train-only
    // timings (all modes share identical binning + corpus work).
    let corpus = corpus_for(&dataset.table, &base);
    let mut results = Vec::new();
    for &(mode, threads, deterministic) in MODES {
        let config = base
            .clone()
            .with_threads(threads)
            .with_deterministic(deterministic);
        let mut best_ms = f64::INFINITY;
        let mut best_train_ms = f64::INFINITY;
        for _ in 0..reps.max(1) {
            // Clone outside the timed region (and only where it is
            // consumed): the seed-legacy comparator borrows the table, so
            // timing the clone would skew every other mode against it.
            let table = (mode != SEED_MODE).then(|| dataset.table.clone());
            let start = Instant::now();
            match table {
                None => seed_legacy_preprocess(&dataset.table, &config),
                Some(table) => {
                    let subtab = SubTab::preprocess(table, config.clone()).expect("pre-processing");
                    assert!(!subtab.preprocessed().embedding().is_empty());
                }
            }
            best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);

            let start = Instant::now();
            let emb = if mode == SEED_MODE {
                train_seed_legacy(&corpus, &config.embedding)
            } else {
                subtab_embed::sgns::train_on_corpus(&corpus, &config.embedding)
            };
            best_train_ms = best_train_ms.min(start.elapsed().as_secs_f64() * 1e3);
            assert!(!emb.is_empty());
        }
        results.push(ScalingResult {
            mode: mode.to_string(),
            threads,
            wall_ms: best_ms,
            train_ms: best_train_ms,
        });
    }
    // --- Binning evaluator modes: time `Binner::fit` alone, the next
    //     fixed cost of preprocess after SGNS training.
    let mut binning = Vec::new();
    for &(mode, threads, exact) in BINNING_MODES {
        let mut cfg = base.binning.clone().threads(threads);
        if exact {
            cfg = cfg.kde_cutoff(f64::INFINITY);
        }
        let mut best_ms = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let binner = Binner::fit(&dataset.table, &cfg).expect("binning fit");
            best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
            assert_eq!(binner.columns().len(), dataset.table.num_columns());
        }
        binning.push(BinningResult {
            mode: mode.to_string(),
            threads,
            wall_ms: best_ms,
        });
    }
    let seed_wall = results[0].wall_ms;
    let seed_train = results[0].train_ms;
    let threaded = |f: fn(&ScalingResult) -> f64| {
        results
            .iter()
            .filter(|r| r.threads > 1)
            .map(f)
            .fold(f64::INFINITY, f64::min)
    };
    let binning_exact = binning[0].wall_ms;
    let binning_windowed = binning
        .iter()
        .filter(|r| r.mode != BINNING_EXACT_MODE)
        .map(|r| r.wall_ms)
        .fold(f64::INFINITY, f64::min);
    PreprocessScalingReport {
        dataset: kind.label().to_string(),
        rows: dataset.table.num_rows(),
        dim: base.embedding.dim,
        speedup_threaded_vs_seed: seed_train / threaded(|r| r.train_ms).max(1e-9),
        preprocess_speedup_threaded_vs_seed: seed_wall / threaded(|r| r.wall_ms).max(1e-9),
        binning_speedup_windowed_vs_exact: binning_exact / binning_windowed.max(1e-9),
        results,
        binning,
    }
}

/// Renders the report as an aligned text table.
pub fn render(report: &PreprocessScalingReport) -> String {
    let rows: Vec<Vec<String>> = report
        .results
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                r.threads.to_string(),
                format!("{:.2}", r.wall_ms),
                format!("{:.2}", r.train_ms),
            ]
        })
        .collect();
    let binning_rows: Vec<Vec<String>> = report
        .binning
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                r.threads.to_string(),
                format!("{:.2}", r.wall_ms),
            ]
        })
        .collect();
    format!(
        "Preprocess scaling on {} ({} rows, dim {}): threaded SGNS speedup {:.2}x \
         over the seed path ({:.2}x on the full preprocess incl. shared binning)\n{}\
         Binner::fit: windowed KDE speedup {:.2}x over the exact dense evaluator\n{}",
        report.dataset,
        report.rows,
        report.dim,
        report.speedup_threaded_vs_seed,
        report.preprocess_speedup_threaded_vs_seed,
        format_table(&["mode", "threads", "wall-ms", "train-ms"], &rows),
        report.binning_speedup_windowed_vs_exact,
        format_table(&["mode", "threads", "wall-ms"], &binning_rows)
    )
}

/// Serialises the report as `BENCH_preprocess.json` (one result per line —
/// the shape [`parse_results`] expects).
pub fn to_json(report: &PreprocessScalingReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"preprocess_scaling\",\n");
    out.push_str(&format!("  \"dataset\": \"{}\",\n", report.dataset));
    out.push_str(&format!("  \"rows\": {},\n", report.rows));
    out.push_str(&format!("  \"dim\": {},\n", report.dim));
    out.push_str("  \"results\": [\n");
    for (i, r) in report.results.iter().enumerate() {
        let comma = if i + 1 < report.results.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}, \"train_ms\": {:.3}}}{}\n",
            r.mode, r.threads, r.wall_ms, r.train_ms, comma
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"binning\": [\n");
    for (i, r) in report.binning.iter().enumerate() {
        let comma = if i + 1 < report.binning.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}}}{}\n",
            r.mode, r.threads, r.wall_ms, comma
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup_threaded_vs_seed\": {:.3},\n",
        report.speedup_threaded_vs_seed
    ));
    out.push_str(&format!(
        "  \"preprocess_speedup_threaded_vs_seed\": {:.3},\n",
        report.preprocess_speedup_threaded_vs_seed
    ));
    out.push_str(&format!(
        "  \"binning_speedup_windowed_vs_exact\": {:.3}\n",
        report.binning_speedup_windowed_vs_exact
    ));
    out.push_str("}\n");
    out
}

/// Extracts `(mode, wall_ms)` pairs from the one-object-per-line JSON that
/// [`to_json`] writes. Tolerates unknown surrounding lines; a malformed
/// result line is an error rather than a silently dropped measurement.
pub fn parse_results(json: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim();
        if !line.contains("\"mode\"") {
            continue;
        }
        let mode = line
            .split("\"mode\": \"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .ok_or_else(|| format!("malformed result line: {line}"))?;
        let wall = line
            .split("\"wall_ms\": ")
            .nth(1)
            .and_then(|rest| {
                rest.split([',', '}'])
                    .next()
                    .and_then(|v| v.trim().parse::<f64>().ok())
            })
            .ok_or_else(|| format!("malformed wall_ms in: {line}"))?;
        out.push((mode.to_string(), wall));
    }
    if out.is_empty() {
        return Err("no results found in baseline JSON".into());
    }
    Ok(out)
}

/// Compares a fresh report against a checked-in baseline JSON. Returns the
/// human-readable comparison lines, or the list of regressions if any mode
/// got more than `threshold` (fractional, e.g. 0.25) slower. Trainer modes
/// and `Binner::fit` evaluator modes are both gated, matched by label.
///
/// Wall times are normalised to the `seed-legacy-1t` mode of their *own*
/// capture before comparison: the legacy trainer is a fixed algorithm that
/// runs in the same process on the same data, so the ratio cancels out raw
/// machine speed (CI runner generations vary by far more than the gate's
/// threshold) while still catching any trainer-mode regression relative to
/// it. If either side lacks the seed mode, absolute wall times are
/// compared instead.
pub fn check_against_baseline(
    report: &PreprocessScalingReport,
    baseline_json: &str,
    threshold: f64,
) -> Result<Vec<String>, Vec<String>> {
    let gated: Vec<(String, f64)> = report
        .results
        .iter()
        .map(|r| (r.mode.clone(), r.wall_ms))
        .chain(report.binning.iter().map(|r| (r.mode.clone(), r.wall_ms)))
        .collect();
    check_gated_modes(&gated, baseline_json, SEED_MODE, threshold)
}

/// The mode-by-mode regression check shared by every bench gate (preprocess
/// and query experiments): compares `(mode, wall_ms)` pairs against a
/// baseline JSON, normalising both sides to `reference_mode` of their own
/// capture when present (see [`check_against_baseline`] for why). Baseline
/// entries for modes absent from `gated` — e.g. another experiment's modes
/// sharing the baseline file — are ignored.
pub fn check_gated_modes(
    gated: &[(String, f64)],
    baseline_json: &str,
    reference_mode: &str,
    threshold: f64,
) -> Result<Vec<String>, Vec<String>> {
    let baseline = match parse_results(baseline_json) {
        Ok(b) => b,
        Err(e) => return Err(vec![e]),
    };
    let seed_base = baseline
        .iter()
        .find(|(m, _)| m == reference_mode)
        .map(|&(_, ms)| ms);
    let seed_cur = gated
        .iter()
        .find(|(m, _)| m == reference_mode)
        .map(|&(_, ms)| ms);
    let normalise = seed_base.is_some() && seed_cur.is_some();
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for &(ref mode, wall_ms) in gated {
        if normalise && mode == reference_mode {
            lines.push(format!(
                "{}: {:.2} ms (normalisation reference)",
                mode, wall_ms
            ));
            continue;
        }
        let Some((_, base_ms)) = baseline.iter().find(|(m, _)| m == mode) else {
            lines.push(format!("{}: {:.2} ms (no baseline)", mode, wall_ms));
            continue;
        };
        let (cur, base, unit) = if normalise {
            (
                wall_ms / seed_cur.unwrap().max(1e-9),
                base_ms / seed_base.unwrap().max(1e-9),
                format!("x {reference_mode}"),
            )
        } else {
            (wall_ms, *base_ms, "ms".to_string())
        };
        let ratio = cur / base.max(1e-9);
        let line = format!(
            "{}: {:.3} {} vs baseline {:.3} {} ({:+.1}%)",
            mode,
            cur,
            unit,
            base,
            unit,
            (ratio - 1.0) * 100.0
        );
        if ratio > 1.0 + threshold {
            regressions.push(format!(
                "REGRESSION {line} exceeds {:.0}%",
                threshold * 100.0
            ));
        } else {
            lines.push(line);
        }
    }
    if regressions.is_empty() {
        Ok(lines)
    } else {
        Err(regressions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The benchmark is slow under the debug test profile, so every test
    /// shares one report.
    fn tiny_report() -> &'static PreprocessScalingReport {
        static REPORT: OnceLock<PreprocessScalingReport> = OnceLock::new();
        REPORT.get_or_init(|| run_on(DatasetKind::Spotify, ExperimentScale::Quick, 1))
    }

    #[test]
    fn report_covers_every_mode_with_positive_times() {
        let report = tiny_report();
        assert_eq!(report.results.len(), MODES.len());
        assert!(report.results.iter().all(|r| r.wall_ms > 0.0));
        assert!(report.results.iter().all(|r| r.train_ms > 0.0));
        assert!(report.speedup_threaded_vs_seed > 0.0);
        assert!(report.preprocess_speedup_threaded_vs_seed > 0.0);
        assert_eq!(report.binning.len(), BINNING_MODES.len());
        assert!(report.binning.iter().all(|r| r.wall_ms > 0.0));
        assert!(report.binning_speedup_windowed_vs_exact > 0.0);
        let rendered = render(report);
        assert!(rendered.contains("wall-ms"));
        assert!(rendered.contains(BINNING_EXACT_MODE));
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let report = tiny_report();
        let json = to_json(report);
        let parsed = parse_results(&json).unwrap();
        // Trainer modes first, then the binning evaluator modes: the gate
        // sees both.
        assert_eq!(parsed.len(), report.results.len() + report.binning.len());
        let expected = report
            .results
            .iter()
            .map(|r| (r.mode.clone(), r.wall_ms))
            .chain(report.binning.iter().map(|r| (r.mode.clone(), r.wall_ms)));
        for ((mode, wall), (pmode, pwall)) in expected.zip(&parsed) {
            assert_eq!(&mode, pmode);
            assert!((wall - pwall).abs() < 0.01);
        }
    }

    #[test]
    fn gate_passes_against_itself_and_catches_regressions() {
        let report = tiny_report();
        let json = to_json(report);
        // Identical baseline: never a regression.
        assert!(check_against_baseline(report, &json, 0.25).is_ok());
        // A uniformly faster machine (every mode 10x quicker, seed-legacy
        // included) is NOT a regression — normalisation cancels it.
        let mut faster_machine = report.clone();
        for r in &mut faster_machine.results {
            r.wall_ms /= 10.0;
        }
        for r in &mut faster_machine.binning {
            r.wall_ms /= 10.0;
        }
        assert!(check_against_baseline(report, &to_json(&faster_machine), 0.25).is_ok());
        // A baseline whose *trainer and binning modes* are 10x faster
        // relative to the unchanged seed-legacy comparator: every non-seed
        // mode regresses.
        let mut fast = report.clone();
        for r in &mut fast.results {
            if r.mode != SEED_MODE {
                r.wall_ms /= 10.0;
            }
        }
        for r in &mut fast.binning {
            r.wall_ms /= 10.0;
        }
        let err = check_against_baseline(report, &to_json(&fast), 0.25).unwrap_err();
        assert_eq!(
            err.len(),
            report.results.len() + report.binning.len() - 1,
            "every gated mode except the normalisation reference regresses"
        );
        assert!(err[0].contains("REGRESSION"));
        // Garbage baseline is an error, not a silent pass.
        assert!(check_against_baseline(report, "not json", 0.25).is_err());
    }
}
