//! Figure 9: running time of SubTab's two phases (pre-processing vs centroid
//! selection) per dataset, demonstrating that the expensive work happens once
//! and query-time selection stays interactive.

use crate::experiments::common::{format_table, ExperimentScale};
use std::time::{Duration, Instant};
use subtab_core::{SelectionParams, SubTab};
use subtab_data::{Predicate, Query, Value};
use subtab_datasets::DatasetKind;

/// Phase timings for one dataset.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Dataset label.
    pub dataset: String,
    /// Number of rows of the generated stand-in.
    pub rows: usize,
    /// Pre-processing time (binning + corpus + embedding).
    pub preprocess: Duration,
    /// Average centroid-selection time over the full table and a few queries.
    pub selection: Duration,
}

/// The Figure 9 report.
#[derive(Debug, Clone)]
pub struct PhasesReport {
    /// One row per dataset (FL, CC, SP, CY).
    pub rows: Vec<PhaseRow>,
}

/// Runs the phase-timing experiment on the four datasets of Figure 9.
pub fn run(scale: ExperimentScale) -> PhasesReport {
    run_on(
        &[
            DatasetKind::Flights,
            DatasetKind::CreditCard,
            DatasetKind::Spotify,
            DatasetKind::Cyber,
        ],
        scale,
    )
}

/// Runs the experiment on an explicit dataset list.
pub fn run_on(datasets: &[DatasetKind], scale: ExperimentScale) -> PhasesReport {
    let params = SelectionParams::new(10, 10);
    let mut rows = Vec::new();
    for &kind in datasets {
        let dataset = kind.build(scale.dataset_size(), 31);
        let start = Instant::now();
        let subtab = SubTab::preprocess(dataset.table.clone(), scale.subtab_config())
            .expect("pre-processing");
        let preprocess = start.elapsed();

        // Selection over the full table plus a few representative queries,
        // averaged — this is what happens repeatedly during an EDA session.
        let mut selections: Vec<Duration> = Vec::new();
        let start = Instant::now();
        let _ = subtab.select(&params).expect("selection");
        selections.push(start.elapsed());
        for query in sample_queries(kind) {
            let start = Instant::now();
            // Queries matching no rows yield the empty sub-table, which
            // still exercises (and times) the query-time path.
            let _ = subtab
                .select_for_query(&query, &params)
                .expect("selection never fails on a valid query");
            selections.push(start.elapsed());
        }
        let avg = selections.iter().sum::<Duration>() / selections.len() as u32;
        rows.push(PhaseRow {
            dataset: kind.label().to_string(),
            rows: dataset.table.num_rows(),
            preprocess,
            selection: avg,
        });
    }
    PhasesReport { rows }
}

/// A couple of dataset-appropriate SP queries used to average the selection
/// phase (mirrors "we have tested the computation time for various sub-table
/// sizes / query results").
fn sample_queries(kind: DatasetKind) -> Vec<Query> {
    match kind {
        DatasetKind::Flights => vec![
            Query::new().filter(Predicate::eq("CANCELLED", Value::Int(1))),
            Query::new().filter(Predicate::between("DISTANCE", 1000.0, 3000.0)),
        ],
        DatasetKind::CreditCard => vec![
            Query::new().filter(Predicate::eq("Class", Value::Int(1))),
            Query::new().filter(Predicate::between("Amount", 100.0, 2000.0)),
        ],
        DatasetKind::Spotify => vec![
            Query::new().filter(Predicate::eq("genre", Value::from("pop"))),
            Query::new().filter(Predicate::between("danceability", 0.5, 1.0)),
        ],
        DatasetKind::Cyber => vec![
            Query::new().filter(Predicate::eq("flagged", Value::Int(1))),
            Query::new().filter(Predicate::eq("protocol", Value::from("tcp"))),
        ],
        _ => Vec::new(),
    }
}

/// Renders the report in the layout of Figure 9.
pub fn render(report: &PhasesReport) -> String {
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{} ({} rows)", r.dataset, r.rows),
                format!("{:.2?}", r.preprocess),
                format!("{:.2?}", r.selection),
            ]
        })
        .collect();
    format!(
        "Figure 9: average running time of SubTab's phases\n{}",
        format_table(&["dataset", "pre-processing", "centroid selection"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_timed_for_each_dataset() {
        let report = run_on(
            &[DatasetKind::Cyber, DatasetKind::Spotify],
            ExperimentScale::Quick,
        );
        assert_eq!(report.rows.len(), 2);
        for r in &report.rows {
            assert!(r.preprocess > Duration::ZERO);
            assert!(r.selection > Duration::ZERO);
        }
        assert!(render(&report).contains("pre-processing"));
    }

    #[test]
    fn selection_is_cheaper_than_preprocessing() {
        // The whole point of the two-phase design (Figure 9): per-display
        // selection costs a fraction of the one-off pre-processing.
        let report = run_on(&[DatasetKind::Spotify], ExperimentScale::Quick);
        let row = &report.rows[0];
        assert!(
            row.selection < row.preprocess,
            "selection {:?} should be cheaper than pre-processing {:?}",
            row.selection,
            row.preprocess
        );
    }
}
