//! Load-time rule-engine scaling: times association-rule mining through the
//! vertical bitmap engine against the preserved Apriori reference twin, and
//! per-row rule highlighting through the column-mask index against the
//! linear scan, emitting machine-readable JSON (`BENCH_rules.json`) for the
//! CI bench-regression gate.
//!
//! Rule mining runs once per loaded table (and once per target-column
//! choice) in the paper's architecture, feeding both the quality metrics
//! and the UI's per-row highlights; highlighting runs on every displayed
//! sub-table. Both are load-path costs the token-ID query engine of PR 4
//! does not cover, which is why they get their own gate.

use crate::experiments::common::{format_table, ExperimentScale};
use crate::experiments::preprocess_scaling::check_gated_modes;
use std::time::Instant;
use subtab_binning::Binner;
use subtab_core::{highlight_rules, highlight_rules_linear};
use subtab_datasets::{benchmark_target_column, DatasetKind};
use subtab_rules::{MiningConfig, RuleMiner};

/// Wall time of one rule-engine mode.
#[derive(Debug, Clone)]
pub struct RulesModeResult {
    /// Mode label (also the key the CI gate matches baselines by).
    pub mode: String,
    /// Worker threads used by the bitmap engine.
    pub threads: usize,
    /// Best-of-`reps` wall time, in ms.
    pub wall_ms: f64,
}

/// The rule-engine scaling report for one dataset.
#[derive(Debug, Clone)]
pub struct RulesScalingReport {
    /// Dataset label (FL by default — the paper's biggest stand-in).
    pub dataset: String,
    /// Rows of the generated table.
    pub rows: usize,
    /// Columns of the generated table.
    pub cols: usize,
    /// Rules mined by one whole-table run (both engines mine the identical
    /// set — the equivalence suite pins that).
    pub num_rules: usize,
    /// Rules pooled by the target-partitioned run.
    pub num_target_rules: usize,
    /// Rows highlighted per highlight-mode invocation.
    pub highlight_rows: usize,
    /// One entry per mode.
    pub results: Vec<RulesModeResult>,
    /// Whole-table mining wall ratio apriori-1t / bitmap-1t — the headline
    /// single-core speedup of the vertical engine.
    pub speedup_bitmap_vs_apriori: f64,
    /// The same ratio for the target-partitioned run (smaller: the pooled
    /// post-processing is shared by both engines).
    pub target_speedup_bitmap_vs_apriori: f64,
    /// Highlight wall ratio linear-1t / indexed-1t.
    pub highlight_speedup_indexed_vs_linear: f64,
}

/// Label of the Apriori reference comparator (the gate's normalisation
/// reference, like `seed-legacy-1t` for the preprocess experiment).
const APRIORI_MODE: &str = "rules-apriori-1t";

/// Which rule-engine stage a benchmark mode runs.
#[derive(Clone, Copy)]
enum Workload {
    /// Whole-table mining with the Apriori twin.
    MineApriori,
    /// Whole-table mining with the bitmap engine.
    MineBitmap,
    /// Target-partitioned mining with the Apriori twin.
    TargetApriori,
    /// Target-partitioned mining with the bitmap engine.
    TargetBitmap,
    /// Per-row highlighting via the preserved linear scan.
    HighlightLinear,
    /// Per-row highlighting via the column-mask index.
    HighlightIndexed,
}

/// The benchmark modes: `(label, threads, workload)`. The headline
/// `rules-*` modes time whole-table mining — the pure engine-vs-engine
/// comparison; `rules-target-*` modes time the Section 6.1 per-target-bin
/// run, whose pooled post-processing (global support recompute, dedup,
/// deterministic sort) is shared by both engines and therefore dilutes the
/// ratio; highlight modes time one full-selection highlight pass over the
/// probe rows with the target-mined rules.
const MODES: &[(&str, usize, Workload)] = &[
    (APRIORI_MODE, 1, Workload::MineApriori),
    ("rules-bitmap-1t", 1, Workload::MineBitmap),
    ("rules-bitmap-4t", 4, Workload::MineBitmap),
    ("rules-target-apriori-1t", 1, Workload::TargetApriori),
    ("rules-target-bitmap-1t", 1, Workload::TargetBitmap),
    ("highlight-linear-1t", 1, Workload::HighlightLinear),
    ("highlight-indexed-1t", 1, Workload::HighlightIndexed),
];

/// Runs the scaling benchmark on the Flights stand-in (the paper's largest).
pub fn run(scale: ExperimentScale) -> RulesScalingReport {
    run_on(DatasetKind::Flights, scale, 3)
}

/// Runs the benchmark on an explicit dataset with `reps` repetitions per
/// mode (best-of wall time is reported, damping scheduler noise).
pub fn run_on(kind: DatasetKind, scale: ExperimentScale, reps: usize) -> RulesScalingReport {
    let dataset = kind.build(scale.dataset_size(), 31);
    let config = scale.subtab_config();
    let binner = Binner::fit(&dataset.table, &config.binning).expect("binning fits");
    let binned = binner.apply(&dataset.table).expect("binning applies");
    let target = benchmark_target_column(&dataset.table);
    let target_idx = binned.column_index(&target).expect("target column exists");
    let mining = MiningConfig::default();

    // Rules for the highlight modes and the mode sanity asserts, mined once
    // (engine choice does not matter — outputs are pinned identical).
    let plain_rules = RuleMiner::new(mining.clone()).mine(&binned);
    let rules = RuleMiner::new(mining.clone()).mine_with_targets(&binned, &[target_idx]);
    let all_columns: Vec<String> = binned.column_names().to_vec();
    let probe_rows: Vec<usize> = (0..binned.num_rows().min(512)).collect();

    let mut results = Vec::new();
    for &(mode, threads, workload) in MODES {
        let mut best_ms = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            match workload {
                Workload::MineApriori => {
                    let r = RuleMiner::new(mining.clone()).mine_apriori(&binned);
                    assert_eq!(r.len(), plain_rules.len());
                }
                Workload::MineBitmap => {
                    let r = RuleMiner::new(mining.clone().with_threads(threads)).mine(&binned);
                    assert_eq!(r.len(), plain_rules.len());
                }
                Workload::TargetApriori => {
                    let r = RuleMiner::new(mining.clone())
                        .mine_with_targets_apriori(&binned, &[target_idx]);
                    assert_eq!(r.len(), rules.len());
                }
                Workload::TargetBitmap => {
                    let r = RuleMiner::new(mining.clone().with_threads(threads))
                        .mine_with_targets(&binned, &[target_idx]);
                    assert_eq!(r.len(), rules.len());
                }
                Workload::HighlightLinear => {
                    assert_highlights(highlight_rules_linear(
                        &binned,
                        &rules,
                        &probe_rows,
                        &all_columns,
                    ));
                }
                Workload::HighlightIndexed => {
                    assert_highlights(highlight_rules(&binned, &rules, &probe_rows, &all_columns));
                }
            }
            best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        }
        results.push(RulesModeResult {
            mode: mode.to_string(),
            threads,
            wall_ms: best_ms,
        });
    }
    let wall = |m: &str| {
        results
            .iter()
            .find(|r| r.mode == m)
            .map(|r| r.wall_ms)
            .expect("mode present")
    };
    RulesScalingReport {
        dataset: kind.label().to_string(),
        rows: binned.num_rows(),
        cols: binned.num_columns(),
        num_rules: plain_rules.len(),
        num_target_rules: rules.len(),
        highlight_rows: probe_rows.len(),
        speedup_bitmap_vs_apriori: wall(APRIORI_MODE) / wall("rules-bitmap-1t").max(1e-9),
        target_speedup_bitmap_vs_apriori: wall("rules-target-apriori-1t")
            / wall("rules-target-bitmap-1t").max(1e-9),
        highlight_speedup_indexed_vs_linear: wall("highlight-linear-1t")
            / wall("highlight-indexed-1t").max(1e-9),
        results,
    }
}

fn assert_highlights(h: Vec<Option<subtab_core::RuleHighlight>>) {
    assert!(
        h.iter().any(Option::is_some),
        "planted data must produce at least one highlight"
    );
}

/// Renders the report as an aligned text table.
pub fn render(report: &RulesScalingReport) -> String {
    let rows: Vec<Vec<String>> = report
        .results
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                r.threads.to_string(),
                format!("{:.3}", r.wall_ms),
            ]
        })
        .collect();
    format!(
        "Rule engine on {} ({} rows × {} cols, {} rules / {} target-pooled, {} highlighted rows): \
         bitmap miner {:.2}x over the Apriori twin single-core ({:.2}x on the target-partitioned \
         run incl. shared pooling), highlight index {:.2}x over the linear scan\n{}",
        report.dataset,
        report.rows,
        report.cols,
        report.num_rules,
        report.num_target_rules,
        report.highlight_rows,
        report.speedup_bitmap_vs_apriori,
        report.target_speedup_bitmap_vs_apriori,
        report.highlight_speedup_indexed_vs_linear,
        format_table(&["mode", "threads", "wall-ms"], &rows)
    )
}

/// Serialises the report as `BENCH_rules.json` (one result per line — the
/// shape `preprocess_scaling::parse_results` expects, so every gate shares
/// one parser).
pub fn to_json(report: &RulesScalingReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"rules_scaling\",\n");
    out.push_str(&format!("  \"dataset\": \"{}\",\n", report.dataset));
    out.push_str(&format!("  \"rows\": {},\n", report.rows));
    out.push_str(&format!("  \"cols\": {},\n", report.cols));
    out.push_str(&format!("  \"num_rules\": {},\n", report.num_rules));
    out.push_str(&format!(
        "  \"num_target_rules\": {},\n",
        report.num_target_rules
    ));
    out.push_str(&format!(
        "  \"highlight_rows\": {},\n",
        report.highlight_rows
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in report.results.iter().enumerate() {
        let comma = if i + 1 < report.results.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}}}{}\n",
            r.mode, r.threads, r.wall_ms, comma
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup_bitmap_vs_apriori\": {:.3},\n",
        report.speedup_bitmap_vs_apriori
    ));
    out.push_str(&format!(
        "  \"target_speedup_bitmap_vs_apriori\": {:.3},\n",
        report.target_speedup_bitmap_vs_apriori
    ));
    out.push_str(&format!(
        "  \"highlight_speedup_indexed_vs_linear\": {:.3}\n",
        report.highlight_speedup_indexed_vs_linear
    ));
    out.push_str("}\n");
    out
}

/// Compares a fresh report against the checked-in
/// `ci/BENCH_rules_baseline.json`. Wall times are normalised to
/// `rules-apriori-1t` of their own capture, cancelling raw machine speed
/// exactly like the preprocess gate's seed-legacy normalisation — the
/// Apriori twin is a fixed algorithm running in the same process on the
/// same data.
pub fn check_against_baseline(
    report: &RulesScalingReport,
    baseline_json: &str,
    threshold: f64,
) -> Result<Vec<String>, Vec<String>> {
    let gated: Vec<(String, f64)> = report
        .results
        .iter()
        .map(|r| (r.mode.clone(), r.wall_ms))
        .collect();
    check_gated_modes(&gated, baseline_json, APRIORI_MODE, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::preprocess_scaling::parse_results;
    use std::sync::OnceLock;

    /// The benchmark is slow under the debug test profile, so every test
    /// shares one report.
    fn tiny_report() -> &'static RulesScalingReport {
        static REPORT: OnceLock<RulesScalingReport> = OnceLock::new();
        REPORT.get_or_init(|| run_on(DatasetKind::Spotify, ExperimentScale::Quick, 1))
    }

    #[test]
    fn report_covers_every_mode_with_positive_times() {
        let report = tiny_report();
        assert_eq!(report.results.len(), MODES.len());
        assert!(report.results.iter().all(|r| r.wall_ms > 0.0));
        assert!(report.speedup_bitmap_vs_apriori > 0.0);
        assert!(report.target_speedup_bitmap_vs_apriori > 0.0);
        assert!(report.highlight_speedup_indexed_vs_linear > 0.0);
        assert!(report.num_rules > 0, "planted data must produce rules");
        assert!(report.num_target_rules > 0);
        assert!(report.highlight_rows > 0);
        let rendered = render(report);
        assert!(rendered.contains("wall-ms"));
        assert!(rendered.contains(APRIORI_MODE));
    }

    #[test]
    fn json_round_trips_through_the_shared_parser() {
        let report = tiny_report();
        let json = to_json(report);
        let parsed = parse_results(&json).unwrap();
        assert_eq!(parsed.len(), report.results.len());
        for (r, (pmode, pwall)) in report.results.iter().zip(&parsed) {
            assert_eq!(&r.mode, pmode);
            assert!((r.wall_ms - pwall).abs() < 0.01);
        }
    }

    #[test]
    fn gate_passes_against_itself_and_catches_regressions() {
        let report = tiny_report();
        let json = to_json(report);
        assert!(check_against_baseline(report, &json, 0.25).is_ok());
        // A uniformly faster machine is not a regression — normalisation
        // cancels it.
        let mut faster = report.clone();
        for r in &mut faster.results {
            r.wall_ms /= 10.0;
        }
        assert!(check_against_baseline(report, &to_json(&faster), 0.25).is_ok());
        // A baseline whose engine modes are 10x faster relative to the
        // unchanged Apriori comparator: every non-reference mode regresses.
        let mut fast = report.clone();
        for r in &mut fast.results {
            if r.mode != APRIORI_MODE {
                r.wall_ms /= 10.0;
            }
        }
        let err = check_against_baseline(report, &to_json(&fast), 0.25).unwrap_err();
        assert_eq!(err.len(), report.results.len() - 1);
        assert!(err[0].contains("REGRESSION"));
        assert!(check_against_baseline(report, "not json", 0.25).is_err());
    }

    #[test]
    fn mining_modes_time_identical_rule_sets() {
        // The assert inside the timed loop already pins rule counts; this
        // re-checks the full equality contract once at test scale.
        let dataset = DatasetKind::Cyber.build(subtab_datasets::DatasetSize::Tiny, 31);
        let binner = Binner::fit(
            &dataset.table,
            &ExperimentScale::Quick.subtab_config().binning,
        )
        .unwrap();
        let binned = binner.apply(&dataset.table).unwrap();
        let t = binned
            .column_index(&benchmark_target_column(&dataset.table))
            .unwrap();
        let miner = RuleMiner::new(MiningConfig::default());
        let apriori = miner.mine_with_targets_apriori(&binned, &[t]);
        let bitmap = miner.mine_with_targets(&binned, &[t]);
        assert_eq!(apriori.rules, bitmap.rules);
    }

    #[test]
    fn highlight_modes_agree_on_real_selections() {
        let dataset = DatasetKind::Cyber.build(subtab_datasets::DatasetSize::Tiny, 31);
        let binner = Binner::fit(
            &dataset.table,
            &ExperimentScale::Quick.subtab_config().binning,
        )
        .unwrap();
        let binned = binner.apply(&dataset.table).unwrap();
        let t = binned
            .column_index(&benchmark_target_column(&dataset.table))
            .unwrap();
        let rules = RuleMiner::new(MiningConfig::default()).mine_with_targets(&binned, &[t]);
        let cols: Vec<String> = binned.column_names().to_vec();
        let rows: Vec<usize> = (0..binned.num_rows().min(64)).collect();
        let indexed = highlight_rules(&binned, &rules, &rows, &cols);
        let linear = highlight_rules_linear(&binned, &rules, &rows, &cols);
        assert_eq!(indexed, linear);
    }
}
