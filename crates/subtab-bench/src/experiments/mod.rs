//! One module per reproduced table / figure, plus shared helpers.

pub mod ablation;
pub mod common;
pub mod phases;
pub mod preprocess_scaling;
pub mod quality;
pub mod query_scaling;
pub mod rules_mining;
pub mod scale;
pub mod server_load;
pub mod simulation;
pub mod slow_baselines;
pub mod tuning;
pub mod user_study;
