//! Serving-layer load benchmark: a closed-loop generator replays EDA
//! session traces against an [`ExplorationServer`] and reports throughput
//! and tail latency per serving mode, plus the cached-hit speedup of the
//! session cache. Emits machine-readable JSON (`BENCH_server.json`) in the
//! shape of the shared CI bench-regression gate.
//!
//! Modes (all replay the identical trace corpus):
//!
//! * `serve-direct-1t` — sequential direct facade calls, no server, no
//!   cache: the pre-serving baseline and the gate's normalisation
//!   reference.
//! * `serve-cold-1w` — one simulated user against a 1-worker server with
//!   caching disabled: isolates the dispatch/queue overhead per request.
//! * `serve-cold-4w` — 4 users against a 4-worker server, caches disabled:
//!   concurrent scaling of the raw execution path.
//! * `serve-warm-4w` — 4 users against a 4-worker server with warmed
//!   caches: the steady state of a long-running service, where repeated
//!   displays are answered from the LRU cache.

use crate::experiments::common::format_table;
use crate::experiments::common::ExperimentScale;
use crate::experiments::preprocess_scaling::check_gated_modes;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Instant;
use subtab_core::{SelectionParams, SubTab};
use subtab_data::Query;
use subtab_datasets::{generate_server_traces, DatasetKind, SessionConfig};
use subtab_server::{ExplorationServer, Request, ServerConfig};

/// Label of the direct-call reference mode (the gate normalises every
/// capture to it, cancelling raw machine speed).
const DIRECT_MODE: &str = "serve-direct-1t";

/// Measurements of one serving mode over the full trace corpus.
#[derive(Debug, Clone)]
pub struct ServerModeResult {
    /// Mode label (the key the CI gate matches baselines by).
    pub mode: String,
    /// Simulated concurrent users driving the closed loop.
    pub users: usize,
    /// Server worker threads (`0` = direct calls, no server).
    pub workers: usize,
    /// Best-of-reps wall time of one full corpus replay, in ms.
    pub wall_ms: f64,
    /// Requests per second of the best replay.
    pub throughput_rps: f64,
    /// Median per-request latency of the best replay, in ms.
    pub p50_ms: f64,
    /// 99th-percentile per-request latency of the best replay, in ms.
    pub p99_ms: f64,
}

/// The serving-layer load report.
#[derive(Debug, Clone)]
pub struct ServerLoadReport {
    /// Dataset label.
    pub dataset: String,
    /// Rows of the generated table.
    pub rows: usize,
    /// Session traces in the corpus.
    pub sessions: usize,
    /// Select requests per full corpus replay.
    pub requests: usize,
    /// One entry per serving mode.
    pub results: Vec<ServerModeResult>,
    /// Mean cold select wall over mean cached-hit wall for one repeated
    /// query — the headline benefit of the session cache. The serving
    /// layer's acceptance floor is 10x.
    pub cached_speedup: f64,
}

/// Per-request latencies of one replay, merged across user threads.
struct Replay {
    wall_ms: f64,
    latencies_ms: Vec<f64>,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Runs the load benchmark on the cyber stand-in (the dataset the paper's
/// session corpus was recorded over).
pub fn run(scale: ExperimentScale) -> ServerLoadReport {
    let (num_sessions, reps) = match scale {
        ExperimentScale::Quick => (16, 3),
        ExperimentScale::Paper => (48, 3),
    };
    run_on(DatasetKind::Cyber, scale, num_sessions, reps)
}

/// Runs the benchmark on an explicit dataset with `num_sessions` traces and
/// `reps` replays per mode (best-of wall time is reported).
pub fn run_on(
    kind: DatasetKind,
    scale: ExperimentScale,
    num_sessions: usize,
    reps: usize,
) -> ServerLoadReport {
    let dataset = kind.build(scale.dataset_size(), 31);
    let traces = generate_server_traces(
        &dataset,
        &SessionConfig {
            num_sessions,
            min_queries: 3,
            max_queries: 6,
            seed: 47,
        },
    );
    let params = SelectionParams::default();
    // One preprocessing run shared (via `Arc`) by the direct reference and
    // every server mode.
    let subtab =
        Arc::new(SubTab::preprocess(dataset.table, scale.subtab_config()).expect("pre-processing"));
    let rows = subtab.table().num_rows();
    let requests: usize = traces.iter().map(|t| t.queries.len()).sum();
    // Prime the whole-table row-vector cache: every mode starts from the
    // same steady preprocessed state.
    subtab.preprocessed().full_row_vectors();

    let mut results = Vec::new();

    // Reference: the same corpus, sequential direct calls.
    results.push(run_mode(DIRECT_MODE, 1, 0, reps, || {
        replay_direct(&subtab, &traces, &params)
    }));

    let mut served = |mode: &str, users: usize, workers: usize, warm: bool, caches: usize| {
        let server = ExplorationServer::from_subtab(
            Arc::clone(&subtab),
            ServerConfig {
                workers,
                heavy_slots: 1,
                select_cache_capacity: caches,
                rules_cache_capacity: 4,
            },
        );
        if warm {
            // One untimed replay fills the cache.
            replay_served(&server, &traces, &params, 1);
        }
        let result = run_mode(mode, users, workers, reps, || {
            replay_served(&server, &traces, &params, users)
        });
        results.push(result);
    };

    served("serve-cold-1w", 1, 1, false, 0);
    served("serve-cold-4w", 4, 4, false, 0);
    served("serve-warm-4w", 4, 4, true, 1024);

    let cached_speedup = measure_cached_speedup(&subtab, &traces, &params);

    ServerLoadReport {
        dataset: kind.label().to_string(),
        rows,
        sessions: traces.len(),
        requests,
        results,
        cached_speedup,
    }
}

fn run_mode(
    mode: &str,
    users: usize,
    workers: usize,
    reps: usize,
    mut replay: impl FnMut() -> Replay,
) -> ServerModeResult {
    let mut best: Option<Replay> = None;
    for _ in 0..reps.max(1) {
        let r = replay();
        if best.as_ref().is_none_or(|b| r.wall_ms < b.wall_ms) {
            best = Some(r);
        }
    }
    let best = best.expect("at least one replay");
    let mut sorted = best.latencies_ms.clone();
    sorted.sort_by(f64::total_cmp);
    ServerModeResult {
        mode: mode.to_string(),
        users,
        workers,
        wall_ms: best.wall_ms,
        throughput_rps: sorted.len() as f64 / (best.wall_ms / 1e3).max(1e-9),
        p50_ms: percentile(&sorted, 0.50),
        p99_ms: percentile(&sorted, 0.99),
    }
}

fn replay_direct(
    subtab: &SubTab,
    traces: &[subtab_datasets::Session],
    params: &SelectionParams,
) -> Replay {
    let start = Instant::now();
    let mut latencies = Vec::new();
    for trace in traces {
        for query in &trace.queries {
            let t = Instant::now();
            let r = subtab
                .select_for_query(query, params)
                .expect("trace queries are valid");
            latencies.push(t.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(r.row_indices.len());
        }
    }
    Replay {
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        latencies_ms: latencies,
    }
}

/// Closed-loop replay: `users` threads each work through a disjoint share
/// of the trace corpus, one blocking request at a time.
fn replay_served(
    server: &ExplorationServer,
    traces: &[subtab_datasets::Session],
    params: &SelectionParams,
    users: usize,
) -> Replay {
    let users = users.max(1);
    let all = Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for u in 0..users {
            let all = &all;
            scope.spawn(move || {
                let mut latencies = Vec::new();
                let session = server.open_session();
                for trace in traces.iter().skip(u).step_by(users) {
                    for query in &trace.queries {
                        let t = Instant::now();
                        let outcome = server
                            .execute(
                                session,
                                Request::Select {
                                    query: Some(query.clone()),
                                    params: params.clone(),
                                },
                            )
                            .expect("trace queries are valid");
                        latencies.push(t.elapsed().as_secs_f64() * 1e3);
                        std::hint::black_box(outcome.cache_hit);
                    }
                }
                let _ = server.close_session(session);
                all.lock().expect("latency lock").extend(latencies);
            });
        }
    });
    Replay {
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        latencies_ms: all.into_inner().expect("latency lock"),
    }
}

/// Mean cold select wall over mean cached-hit wall for the corpus's
/// whole-table query (the most common display of every session).
fn measure_cached_speedup(
    subtab: &Arc<SubTab>,
    traces: &[subtab_datasets::Session],
    params: &SelectionParams,
) -> f64 {
    let query = traces
        .first()
        .and_then(|t| t.queries.first())
        .cloned()
        .unwrap_or_else(Query::new);
    const COLD_REPS: usize = 5;
    const HIT_REPS: usize = 200;
    let start = Instant::now();
    for _ in 0..COLD_REPS {
        std::hint::black_box(
            subtab
                .select_for_query(&query, params)
                .expect("query valid")
                .row_indices
                .len(),
        );
    }
    let cold_ms = start.elapsed().as_secs_f64() * 1e3 / COLD_REPS as f64;

    let server = ExplorationServer::from_subtab(
        Arc::clone(subtab),
        ServerConfig {
            workers: 1,
            heavy_slots: 1,
            select_cache_capacity: 16,
            rules_cache_capacity: 1,
        },
    );
    let session = server.open_session();
    let request = Request::Select {
        query: Some(query),
        params: params.clone(),
    };
    // Fill the cache, then time pure hits.
    server
        .execute(session, request.clone())
        .expect("cache fill");
    let start = Instant::now();
    for _ in 0..HIT_REPS {
        let outcome = server
            .execute(session, request.clone())
            .expect("cached select");
        debug_assert!(outcome.cache_hit);
        std::hint::black_box(outcome.cache_hit);
    }
    let hit_ms = start.elapsed().as_secs_f64() * 1e3 / HIT_REPS as f64;
    cold_ms / hit_ms.max(1e-9)
}

/// Renders the report as an aligned text table.
pub fn render(report: &ServerLoadReport) -> String {
    let rows: Vec<Vec<String>> = report
        .results
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                r.users.to_string(),
                r.workers.to_string(),
                format!("{:.3}", r.wall_ms),
                format!("{:.0}", r.throughput_rps),
                format!("{:.3}", r.p50_ms),
                format!("{:.3}", r.p99_ms),
            ]
        })
        .collect();
    format!(
        "Serving-layer load on {} ({} rows, {} sessions, {} selects per replay): \
         cached hits {:.0}x faster than cold selects\n{}",
        report.dataset,
        report.rows,
        report.sessions,
        report.requests,
        report.cached_speedup,
        format_table(
            &["mode", "users", "workers", "wall-ms", "req/s", "p50-ms", "p99-ms"],
            &rows
        )
    )
}

/// Serialises the report as `BENCH_server.json` (one result per line — the
/// shape `preprocess_scaling::parse_results` expects, so this gate shares
/// the fleet's parser).
pub fn to_json(report: &ServerLoadReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"server_load\",\n");
    out.push_str(&format!("  \"dataset\": \"{}\",\n", report.dataset));
    out.push_str(&format!("  \"rows\": {},\n", report.rows));
    out.push_str(&format!("  \"sessions\": {},\n", report.sessions));
    out.push_str(&format!("  \"requests\": {},\n", report.requests));
    out.push_str("  \"results\": [\n");
    for (i, r) in report.results.iter().enumerate() {
        let comma = if i + 1 < report.results.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"users\": {}, \"workers\": {}, \"wall_ms\": {:.3}, \
             \"throughput_rps\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}{}\n",
            r.mode, r.users, r.workers, r.wall_ms, r.throughput_rps, r.p50_ms, r.p99_ms, comma
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"cached_speedup\": {:.1}\n",
        report.cached_speedup
    ));
    out.push_str("}\n");
    out
}

/// Compares a fresh report against a checked-in baseline JSON. Wall times
/// are normalised to `serve-direct-1t` of their own capture, cancelling raw
/// machine speed like the other gates; additionally the cache-acceptance
/// floor (cached hits at least 10x faster than cold selects) must hold.
pub fn check_against_baseline(
    report: &ServerLoadReport,
    baseline_json: &str,
    threshold: f64,
) -> Result<Vec<String>, Vec<String>> {
    let gated: Vec<(String, f64)> = report
        .results
        .iter()
        .map(|r| (r.mode.clone(), r.wall_ms))
        .collect();
    let mut lines = check_gated_modes(&gated, baseline_json, DIRECT_MODE, threshold)?;
    if report.cached_speedup < 10.0 {
        return Err(vec![format!(
            "REGRESSION cached_speedup: {:.1}x < the 10x acceptance floor",
            report.cached_speedup
        )]);
    }
    lines.push(format!(
        "cached_speedup {:.0}x (floor 10x)",
        report.cached_speedup
    ));
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::preprocess_scaling::parse_results;
    use std::sync::OnceLock;

    fn tiny_report() -> &'static ServerLoadReport {
        static REPORT: OnceLock<ServerLoadReport> = OnceLock::new();
        REPORT.get_or_init(|| run_on(DatasetKind::Cyber, ExperimentScale::Quick, 3, 1))
    }

    #[test]
    fn report_covers_every_mode_with_latency_stats() {
        let report = tiny_report();
        assert_eq!(report.results.len(), 4);
        for r in &report.results {
            assert!(r.wall_ms > 0.0, "{} wall must be positive", r.mode);
            assert!(r.throughput_rps > 0.0);
            assert!(r.p50_ms > 0.0);
            assert!(r.p99_ms >= r.p50_ms, "{}: p99 below p50", r.mode);
        }
        assert!(report.requests > 0);
        assert!(
            report.cached_speedup >= 10.0,
            "cached hits must be at least 10x faster than cold selects, got {:.1}x",
            report.cached_speedup
        );
        let rendered = render(report);
        assert!(rendered.contains("p99-ms"));
        assert!(rendered.contains(DIRECT_MODE));
    }

    #[test]
    fn json_round_trips_through_the_shared_parser() {
        let report = tiny_report();
        let json = to_json(report);
        let parsed = parse_results(&json).unwrap();
        assert_eq!(parsed.len(), report.results.len());
        for (r, (pmode, pwall)) in report.results.iter().zip(&parsed) {
            assert_eq!(&r.mode, pmode);
            assert!((r.wall_ms - pwall).abs() < 0.01);
        }
    }

    #[test]
    fn gate_passes_against_itself_and_catches_regressions() {
        let report = tiny_report();
        let json = to_json(report);
        assert!(check_against_baseline(report, &json, 0.25).is_ok());
        // Uniform machine-speed changes cancel under normalisation.
        let mut faster = report.clone();
        for r in &mut faster.results {
            r.wall_ms /= 8.0;
        }
        assert!(check_against_baseline(report, &to_json(&faster), 0.25).is_ok());
        // A baseline whose serving modes are much faster relative to the
        // direct reference flags every serving mode.
        let mut fast = report.clone();
        for r in &mut fast.results {
            if r.mode != DIRECT_MODE {
                r.wall_ms /= 10.0;
            }
        }
        let err = check_against_baseline(report, &to_json(&fast), 0.25).unwrap_err();
        assert_eq!(err.len(), report.results.len() - 1);
        assert!(err[0].contains("REGRESSION"));
        // Losing the cache benefit fails the acceptance floor outright.
        let mut slow_cache = report.clone();
        slow_cache.cached_speedup = 2.0;
        let err = check_against_baseline(&slow_cache, &json, 0.25).unwrap_err();
        assert!(err[0].contains("acceptance floor"));
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert!((percentile(&sorted, 0.5) - 50.0).abs() <= 1.0);
        assert!(percentile(&[], 0.5) == 0.0);
    }
}
