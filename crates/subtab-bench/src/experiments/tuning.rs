//! Figure 10: sensitivity of the cell-coverage evaluation to the rule-mining
//! parameters — number of bins (10a), support threshold (10b) and confidence
//! threshold (10c).
//!
//! As in the paper, the *sub-tables themselves do not change* across settings
//! (none of the selection algorithms consume the rules); only the rule set
//! they are evaluated against changes.

use crate::experiments::common::{
    format_table, run_nc, run_ran, run_subtab, target_indices, ExperimentContext, ExperimentScale,
};
use subtab_binning::BinningConfig;
use subtab_datasets::DatasetKind;
use subtab_metrics::Evaluator;
use subtab_rules::{MiningConfig, RuleMiner};

/// One parameter sweep: the varied value and the coverage of each method.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The value of the varied parameter.
    pub value: f64,
    /// (method, cell coverage) pairs.
    pub coverage: Vec<(String, f64)>,
}

/// One panel of Figure 10.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Parameter name ("# bins", "support", "confidence").
    pub parameter: String,
    /// The sweep points.
    pub points: Vec<SweepPoint>,
}

/// The full Figure 10 report.
#[derive(Debug, Clone)]
pub struct TuningReport {
    /// The three panels.
    pub sweeps: Vec<Sweep>,
}

/// Runs all three parameter sweeps, averaging over the FL and SP datasets as
/// in the paper.
pub fn run(scale: ExperimentScale) -> TuningReport {
    let datasets = match scale {
        ExperimentScale::Quick => vec![DatasetKind::Spotify],
        ExperimentScale::Paper => vec![DatasetKind::Flights, DatasetKind::Spotify],
    };
    let mut sweeps = Vec::new();

    // (a) number of bins: the binning (and hence the binned table and rule
    // set) is re-fit per setting; the selections are re-evaluated against it.
    let bin_counts = [5usize, 7, 10];
    let mut bin_points = Vec::new();
    for &bins in &bin_counts {
        let coverage = average_coverage_with(&datasets, scale, |_| MiningConfig::default(), bins);
        bin_points.push(SweepPoint {
            value: bins as f64,
            coverage,
        });
    }
    sweeps.push(Sweep {
        parameter: "# bins".into(),
        points: bin_points,
    });

    // (b) support threshold.
    let supports = [0.1f64, 0.2, 0.3];
    let mut support_points = Vec::new();
    for &s in &supports {
        let coverage = average_coverage_with(
            &datasets,
            scale,
            |_| MiningConfig {
                min_support: s,
                ..Default::default()
            },
            5,
        );
        support_points.push(SweepPoint { value: s, coverage });
    }
    sweeps.push(Sweep {
        parameter: "support".into(),
        points: support_points,
    });

    // (c) confidence threshold.
    let confidences = [0.5f64, 0.6, 0.7, 0.8];
    let mut confidence_points = Vec::new();
    for &c in &confidences {
        let coverage = average_coverage_with(
            &datasets,
            scale,
            |_| MiningConfig {
                min_confidence: c,
                ..Default::default()
            },
            5,
        );
        confidence_points.push(SweepPoint { value: c, coverage });
    }
    sweeps.push(Sweep {
        parameter: "confidence".into(),
        points: confidence_points,
    });

    TuningReport { sweeps }
}

/// Average cell coverage of SubTab / RAN / NC over the given datasets, with
/// the rule set mined under `mining(kind)` on a table binned with `bins`
/// bins per column.
fn average_coverage_with(
    datasets: &[DatasetKind],
    scale: ExperimentScale,
    mining: impl Fn(DatasetKind) -> MiningConfig,
    bins: usize,
) -> Vec<(String, f64)> {
    let (k, l) = (10usize, 10usize);
    let mut sums: Vec<(String, f64)> = vec![
        ("SubTab".into(), 0.0),
        ("RAN".into(), 0.0),
        ("NC".into(), 0.0),
    ];
    for &kind in datasets {
        // Build the selections once with the standard context…
        let ctx = ExperimentContext::build_with_mining(kind, scale, 5, &mining(kind));
        let target = crate::experiments::user_study::default_target(kind);
        let tidx = target_indices(ctx.table(), &[target]);
        let subtab_sel = run_subtab(&ctx, k, l, &[target]).selection;
        let ran_sel = run_ran(&ctx, k, l, &tidx, scale, 23).selection;
        let nc_sel = run_nc(&ctx, k, l, &tidx, 23).selection;

        // …then evaluate them against a rule set mined on the re-binned table.
        let evaluator = if bins == ctx.subtab.config().binning.num_bins {
            ctx.evaluator.clone()
        } else {
            let binning = BinningConfig {
                num_bins: bins,
                ..ctx.subtab.config().binning.clone()
            };
            let mut cfg = scale.subtab_config();
            cfg.binning = binning;
            // Re-bin only (cheap); reuse the mining config.
            let binner =
                subtab_binning::Binner::fit(ctx.table(), &cfg.binning).expect("binning fits");
            let binned = binner.apply(ctx.table()).expect("binning applies");
            let rules = RuleMiner::new(mining(kind)).mine(&binned);
            Evaluator::new(binned, &rules, 0.5)
        };
        for (slot, sel) in sums.iter_mut().zip([&subtab_sel, &ran_sel, &nc_sel]) {
            slot.1 += evaluator.score(&sel.rows, &sel.cols).cell_coverage;
        }
    }
    for slot in &mut sums {
        slot.1 /= datasets.len() as f64;
    }
    sums
}

/// Renders the three panels.
pub fn render(report: &TuningReport) -> String {
    let mut out = String::from("Figure 10: cell coverage under varying rule-mining parameters\n");
    for sweep in &report.sweeps {
        let methods: Vec<String> = sweep
            .points
            .first()
            .map(|p| p.coverage.iter().map(|(m, _)| m.clone()).collect())
            .unwrap_or_default();
        let header: Vec<String> = std::iter::once(sweep.parameter.clone())
            .chain(methods.iter().cloned())
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = sweep
            .points
            .iter()
            .map(|p| {
                std::iter::once(format!("{}", p.value))
                    .chain(p.coverage.iter().map(|(_, c)| format!("{c:.3}")))
                    .collect()
            })
            .collect();
        out.push_str(&format!(
            "\n(Figure 10 — varying {})\n{}",
            sweep.parameter,
            format_table(&header_refs, &rows)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_sweeps_have_points_for_all_methods() {
        let report = run(ExperimentScale::Quick);
        assert_eq!(report.sweeps.len(), 3);
        assert_eq!(report.sweeps[0].points.len(), 3);
        assert_eq!(report.sweeps[1].points.len(), 3);
        assert_eq!(report.sweeps[2].points.len(), 4);
        for sweep in &report.sweeps {
            for p in &sweep.points {
                assert_eq!(p.coverage.len(), 3);
                for (_, c) in &p.coverage {
                    assert!((0.0..=1.0).contains(c));
                }
            }
        }
        assert!(render(&report).contains("confidence"));
    }
}
