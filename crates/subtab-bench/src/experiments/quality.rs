//! Figure 8: diversity, cell coverage and combined score of SubTab, RAN and
//! NC on the FL, SP and CY datasets.

use crate::experiments::common::{
    format_table, run_nc, run_ran, run_subtab, ExperimentContext, ExperimentScale, MethodRun,
};
use subtab_datasets::DatasetKind;

/// The three metric values of one method on one dataset.
#[derive(Debug, Clone)]
pub struct QualityCell {
    /// Dataset label ("FL", "SP", "CY").
    pub dataset: String,
    /// Method label.
    pub method: String,
    /// Diversity.
    pub diversity: f64,
    /// Cell coverage.
    pub cell_coverage: f64,
    /// Combined score (α = 0.5).
    pub combined: f64,
}

/// The full Figure 8 report.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// One cell per (dataset, method).
    pub cells: Vec<QualityCell>,
}

impl QualityReport {
    /// Looks up one cell.
    pub fn get(&self, dataset: &str, method: &str) -> Option<&QualityCell> {
        self.cells
            .iter()
            .find(|c| c.dataset == dataset && c.method == method)
    }
}

/// Runs the Figure 8 comparison.
pub fn run(scale: ExperimentScale) -> QualityReport {
    run_on(
        &[
            DatasetKind::Flights,
            DatasetKind::Spotify,
            DatasetKind::Cyber,
        ],
        scale,
    )
}

/// Runs the comparison on an explicit dataset list (used by the benches).
pub fn run_on(datasets: &[DatasetKind], scale: ExperimentScale) -> QualityReport {
    let (k, l) = (10usize, 10usize);
    let mut cells = Vec::new();
    for &kind in datasets {
        let ctx = ExperimentContext::build(kind, scale, 5);
        let runs: Vec<MethodRun> = vec![
            run_subtab(&ctx, k, l, &[]),
            run_ran(&ctx, k, l, &[], scale, 19),
            run_nc(&ctx, k, l, &[], 19),
        ];
        for run in runs {
            cells.push(QualityCell {
                dataset: kind.label().to_string(),
                method: run.method,
                diversity: run.score.diversity,
                cell_coverage: run.score.cell_coverage,
                combined: run.score.combined,
            });
        }
    }
    QualityReport { cells }
}

/// Renders the report as the three panels of Figure 8.
pub fn render(report: &QualityReport) -> String {
    let mut out = String::from("Figure 8: quality metrics per dataset and method\n");
    let mut datasets: Vec<String> = report.cells.iter().map(|c| c.dataset.clone()).collect();
    datasets.dedup();
    for ds in datasets {
        let rows: Vec<Vec<String>> = report
            .cells
            .iter()
            .filter(|c| c.dataset == ds)
            .map(|c| {
                vec![
                    c.method.clone(),
                    format!("{:.3}", c.diversity),
                    format!("{:.3}", c.cell_coverage),
                    format!("{:.3}", c.combined),
                ]
            })
            .collect();
        out.push_str(&format!(
            "\n({ds})\n{}",
            format_table(&["method", "diversity", "cell coverage", "combined"], &rows)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_nine_cells_with_values_in_range() {
        let report = run_on(&[DatasetKind::Cyber], ExperimentScale::Quick);
        assert_eq!(report.cells.len(), 3);
        for c in &report.cells {
            assert!((0.0..=1.0).contains(&c.diversity));
            assert!((0.0..=1.0).contains(&c.cell_coverage));
            assert!((0.0..=1.0).contains(&c.combined));
        }
        assert!(report.get("CY", "SubTab").is_some());
        assert!(render(&report).contains("cell coverage"));
    }

    #[test]
    fn subtab_beats_nc_on_combined_score_on_planted_cyber_data() {
        let report = run_on(&[DatasetKind::Cyber], ExperimentScale::Quick);
        let subtab = report.get("CY", "SubTab").unwrap().combined;
        let nc = report.get("CY", "NC").unwrap().combined;
        // The headline claim of the paper at small scale; allow a small
        // tolerance for the Quick configuration.
        assert!(
            subtab >= nc - 0.05,
            "SubTab {subtab} should not trail NC {nc} materially"
        );
    }
}
