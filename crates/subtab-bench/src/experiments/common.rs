//! Shared machinery: building evaluators, running each method, formatting.

use std::time::{Duration, Instant};
use subtab_baselines::{naive_clustering_select, random_select, RandomConfig, Selection};
use subtab_core::{SelectionParams, SubTab, SubTabConfig};
use subtab_data::Table;
use subtab_datasets::{DatasetKind, DatasetSize, PlantedDataset};
use subtab_metrics::{Evaluator, SubTableScore};
use subtab_rules::{MiningConfig, RuleMiner, RuleSet};

/// How large the experiment datasets are and how generous the baselines'
/// budgets are. `Quick` keeps every experiment under a few seconds (used by
/// the Criterion benches and the test suite); `Paper` is the scale used by
/// the `experiments` binary for the numbers recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Tiny datasets, minimal budgets.
    Quick,
    /// Scaled-down paper setting (the default of the `experiments` binary).
    Paper,
}

impl ExperimentScale {
    /// The dataset size to generate at this scale.
    pub fn dataset_size(self) -> DatasetSize {
        match self {
            ExperimentScale::Quick => DatasetSize::Tiny,
            ExperimentScale::Paper => DatasetSize::Small,
        }
    }

    /// Wall-clock budget given to the RAN baseline (the paper gives 1 min).
    pub fn ran_budget(self) -> Duration {
        match self {
            ExperimentScale::Quick => Duration::from_millis(150),
            ExperimentScale::Paper => Duration::from_secs(5),
        }
    }

    /// Iteration cap for the RAN baseline.
    ///
    /// The paper gives RAN one minute on the full-size datasets; because a
    /// single combined-score evaluation there scans millions of rows, that
    /// budget amounts to at most a few hundred random draws. On our
    /// scaled-down tables each evaluation is orders of magnitude cheaper, so
    /// the draw count — not the wall-clock — is what must be kept
    /// proportional for a faithful comparison.
    pub fn ran_iterations(self) -> usize {
        match self {
            ExperimentScale::Quick => 60,
            ExperimentScale::Paper => 250,
        }
    }

    /// Iteration budget for the MAB baseline.
    pub fn mab_iterations(self) -> usize {
        match self {
            ExperimentScale::Quick => 60,
            ExperimentScale::Paper => 1_500,
        }
    }

    /// Number of column subsets visited by the semi-greedy baseline.
    pub fn greedy_subsets(self) -> usize {
        match self {
            ExperimentScale::Quick => 3,
            ExperimentScale::Paper => 8,
        }
    }

    /// SubTab configuration at this scale.
    pub fn subtab_config(self) -> SubTabConfig {
        match self {
            ExperimentScale::Quick => SubTabConfig::fast(),
            ExperimentScale::Paper => SubTabConfig::default(),
        }
    }
}

/// Everything needed to evaluate selections over one dataset.
pub struct ExperimentContext {
    /// The generated dataset (table + planted structure).
    pub dataset: PlantedDataset,
    /// The pre-processed SubTab model for the dataset's table.
    pub subtab: SubTab,
    /// Rules mined with the paper's default parameters.
    pub rules: RuleSet,
    /// Evaluator with α = 0.5.
    pub evaluator: Evaluator,
    /// Wall-clock time of the pre-processing phase.
    pub preprocess_time: Duration,
}

impl ExperimentContext {
    /// Builds the context for one dataset at one scale.
    pub fn build(kind: DatasetKind, scale: ExperimentScale, seed: u64) -> Self {
        Self::build_with_mining(kind, scale, seed, &MiningConfig::default())
    }

    /// Builds the context with a custom rule-mining configuration (used by the
    /// parameter-tuning experiment).
    pub fn build_with_mining(
        kind: DatasetKind,
        scale: ExperimentScale,
        seed: u64,
        mining: &MiningConfig,
    ) -> Self {
        let dataset = kind.build(scale.dataset_size(), seed);
        let start = Instant::now();
        let subtab = SubTab::preprocess(dataset.table.clone(), scale.subtab_config())
            .expect("pre-processing succeeds on generated data");
        let preprocess_time = start.elapsed();
        let binned = subtab.preprocessed().binned().clone();
        let rules = RuleMiner::new(mining.clone()).mine(&binned);
        let evaluator = Evaluator::new(binned, &rules, 0.5);
        ExperimentContext {
            dataset,
            subtab,
            rules,
            evaluator,
            preprocess_time,
        }
    }

    /// The dataset's table.
    pub fn table(&self) -> &Table {
        &self.dataset.table
    }

    /// Scores a selection with the paper's metrics (α = 0.5).
    pub fn score(&self, selection: &Selection) -> SubTableScore {
        self.evaluator.score(&selection.rows, &selection.cols)
    }
}

/// The outcome of running one method once: its selection, score and time.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// Method label as used in the paper ("SubTab", "RAN", "NC", …).
    pub method: String,
    /// The selected sub-table.
    pub selection: Selection,
    /// Quality under the combined metric.
    pub score: SubTableScore,
    /// Wall-clock time of the selection (excluding shared pre-processing
    /// unless noted by the experiment).
    pub time: Duration,
}

/// Runs SubTab's centroid selection and converts the result to a [`Selection`].
pub fn run_subtab(ctx: &ExperimentContext, k: usize, l: usize, targets: &[&str]) -> MethodRun {
    let start = Instant::now();
    let params = SelectionParams::new(k, l).with_targets(targets);
    let view = ctx.subtab.select(&params).expect("selection succeeds");
    let time = start.elapsed();
    let cols = view.column_indices(ctx.table());
    let selection = Selection::new(view.row_indices.clone(), cols);
    MethodRun {
        method: "SubTab".into(),
        score: ctx.score(&selection),
        selection,
        time,
    }
}

/// Runs the time-budgeted random baseline.
pub fn run_ran(
    ctx: &ExperimentContext,
    k: usize,
    l: usize,
    targets: &[usize],
    scale: ExperimentScale,
    seed: u64,
) -> MethodRun {
    let start = Instant::now();
    let selection = random_select(
        &ctx.evaluator,
        k,
        l,
        targets,
        &RandomConfig {
            time_budget: scale.ran_budget(),
            max_iterations: scale.ran_iterations(),
            seed,
        },
    );
    MethodRun {
        method: "RAN".into(),
        score: ctx.score(&selection),
        selection,
        time: start.elapsed(),
    }
}

/// Runs the naive-clustering baseline.
pub fn run_nc(
    ctx: &ExperimentContext,
    k: usize,
    l: usize,
    targets: &[usize],
    seed: u64,
) -> MethodRun {
    let start = Instant::now();
    let selection = naive_clustering_select(ctx.table(), k, l, targets, seed);
    MethodRun {
        method: "NC".into(),
        score: ctx.score(&selection),
        selection,
        time: start.elapsed(),
    }
}

/// Column indices of the named target columns.
pub fn target_indices(table: &Table, targets: &[&str]) -> Vec<usize> {
    targets
        .iter()
        .filter_map(|t| table.schema().index_of(t))
        .collect()
}

/// Formats a header + rows as an aligned text table for the binary's output.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        out.push_str(&format!("{:<width$}  ", h, width = widths[i]));
    }
    out.push('\n');
    for (i, _) in header.iter().enumerate() {
        out.push_str(&format!("{}  ", "-".repeat(widths[i])));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_and_methods_run() {
        let ctx = ExperimentContext::build(DatasetKind::Cyber, ExperimentScale::Quick, 1);
        // Rules may be few at tiny scale; the context must still build.
        assert!(ctx.table().num_rows() > 0);
        let st = run_subtab(&ctx, 6, 5, &[]);
        assert_eq!(st.selection.rows.len(), 6);
        assert_eq!(st.selection.cols.len(), 5);
        let ran = run_ran(&ctx, 6, 5, &[], ExperimentScale::Quick, 2);
        assert_eq!(ran.selection.rows.len(), 6);
        let nc = run_nc(&ctx, 6, 5, &[], 3);
        assert_eq!(nc.selection.cols.len(), 5);
        for run in [&st, &ran, &nc] {
            assert!((0.0..=1.0).contains(&run.score.combined));
        }
    }

    #[test]
    fn format_table_aligns_columns() {
        let s = format_table(
            &["method", "score"],
            &[
                vec!["SubTab".into(), "0.61".into()],
                vec!["RAN".into(), "0.5".into()],
            ],
        );
        assert!(s.contains("method"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn target_indices_lookup() {
        let ctx = ExperimentContext::build(DatasetKind::Cyber, ExperimentScale::Quick, 1);
        let idx = target_indices(ctx.table(), &["flagged", "does-not-exist"]);
        assert_eq!(idx.len(), 1);
    }
}
