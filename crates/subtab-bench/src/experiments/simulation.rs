//! Figure 6: the simulation-based study — % of next-query fragments captured
//! by the previous query's sub-table, as the sub-table width varies from 3 to
//! 7 columns, over replayed EDA sessions on the cyber-security dataset.

use crate::experiments::common::{ExperimentContext, ExperimentScale};
use subtab_baselines::{naive_clustering_select, random_select, RandomConfig, Selection};
use subtab_core::SelectionParams;
use subtab_data::{Query, Table};
use subtab_datasets::{generate_sessions, DatasetKind, Session, SessionConfig};

/// One series of Figure 6: captured-fragment percentage per width.
#[derive(Debug, Clone)]
pub struct SimulationSeries {
    /// Method label.
    pub method: String,
    /// (width, % of captured fragments) pairs for widths 3..=7.
    pub points: Vec<(usize, f64)>,
}

/// The full Figure 6 report.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// One series per method.
    pub series: Vec<SimulationSeries>,
    /// Number of (query, next-query) pairs evaluated.
    pub pairs: usize,
}

/// Runs the simulation-based study on the CY dataset.
pub fn run(scale: ExperimentScale) -> SimulationReport {
    let ctx = ExperimentContext::build(DatasetKind::Cyber, scale, 7);
    let sessions = generate_sessions(
        &ctx.dataset,
        &SessionConfig {
            num_sessions: match scale {
                ExperimentScale::Quick => 12,
                ExperimentScale::Paper => 122,
            },
            min_queries: 3,
            max_queries: 6,
            seed: 23,
        },
    );
    let widths: Vec<usize> = (3..=7).collect();
    let k = 10usize;

    let mut series: Vec<SimulationSeries> = ["SubTab", "RAN", "NC"]
        .iter()
        .map(|m| SimulationSeries {
            method: m.to_string(),
            points: Vec::new(),
        })
        .collect();
    let mut pair_count = 0usize;

    for &width in &widths {
        let mut captured = [0usize; 3];
        let mut total = [0usize; 3];
        for session in &sessions {
            for pair in consecutive_pairs(session) {
                let (query, next) = pair;
                let result_rows = match query.matching_rows(ctx.table()) {
                    Ok(rows) if !rows.is_empty() => rows,
                    _ => continue,
                };
                if width == widths[0] {
                    pair_count += 1;
                }
                // SubTab.
                if let Ok(view) = ctx
                    .subtab
                    .select_for_query(query, &SelectionParams::new(k, width))
                {
                    let cols = view.column_indices(ctx.table());
                    let sel = Selection::new(view.row_indices.clone(), cols);
                    let (c, t) = fragments_captured(ctx.table(), &sel, next);
                    captured[0] += c;
                    total[0] += t;
                }
                // RAN over the query result: random rows from the result.
                let ran = random_from_result(&ctx, &result_rows, k, width, 11 + width as u64);
                let (c, t) = fragments_captured(ctx.table(), &ran, next);
                captured[1] += c;
                total[1] += t;
                // NC over the query result table (indices mapped back).
                let nc = nc_from_result(ctx.table(), &result_rows, k, width, 13 + width as u64);
                let (c, t) = fragments_captured(ctx.table(), &nc, next);
                captured[2] += c;
                total[2] += t;
            }
        }
        for (i, s) in series.iter_mut().enumerate() {
            let pct = if total[i] == 0 {
                0.0
            } else {
                100.0 * captured[i] as f64 / total[i] as f64
            };
            s.points.push((width, pct));
        }
    }
    SimulationReport {
        series,
        pairs: pair_count,
    }
}

fn consecutive_pairs(session: &Session) -> impl Iterator<Item = (&Query, &Query)> {
    session.queries.windows(2).map(|w| (&w[0], &w[1]))
}

fn random_from_result(
    ctx: &ExperimentContext,
    result_rows: &[usize],
    k: usize,
    width: usize,
    seed: u64,
) -> Selection {
    // The RAN baseline in the sessions study gets a short budget per query.
    let sel = random_select(
        &ctx.evaluator,
        k,
        width,
        &[],
        &RandomConfig {
            time_budget: std::time::Duration::from_millis(20),
            max_iterations: 10,
            seed,
        },
    );
    // Restrict its rows to the query result (random rows of the result).
    let rows: Vec<usize> = result_rows.iter().copied().take(k).collect();
    Selection::new(rows, sel.cols)
}

fn nc_from_result(
    table: &Table,
    result_rows: &[usize],
    k: usize,
    width: usize,
    seed: u64,
) -> Selection {
    let result = table.take(result_rows).expect("rows valid");
    let local = naive_clustering_select(&result, k, width, &[], seed);
    let rows = local.rows.iter().map(|&r| result_rows[r]).collect();
    Selection::new(rows, local.cols)
}

/// Counts the fragments of `next` that appear in the displayed sub-table.
///
/// Fragments are (a) every referenced column — captured when the column is
/// among the sub-table's columns — and (b) every selection term (column,
/// value/range) — captured when the column is displayed and some displayed
/// row satisfies the term.
pub fn fragments_captured(table: &Table, selection: &Selection, next: &Query) -> (usize, usize) {
    let selected_names: Vec<String> = selection
        .cols
        .iter()
        .filter_map(|&c| table.schema().field_at(c).map(|f| f.name.clone()))
        .collect();
    let mut captured = 0usize;
    let mut total = 0usize;

    for col in next.referenced_columns() {
        total += 1;
        if selected_names.contains(&col) {
            captured += 1;
        }
    }
    for pred in next.leaf_predicates() {
        total += 1;
        let col = pred.column().to_string();
        if !selected_names.contains(&col) {
            continue;
        }
        let hit = selection
            .rows
            .iter()
            .any(|&r| pred.matches(table, r).unwrap_or(false));
        // `IS NULL`-style predicates and equality terms are value fragments;
        // they count as captured only when a displayed row exhibits them.
        if hit {
            captured += 1;
        }
    }
    (captured, total)
}

/// Renders the report as the Figure 6 series.
pub fn render(report: &SimulationReport) -> String {
    let widths: Vec<usize> = report
        .series
        .first()
        .map(|s| s.points.iter().map(|&(w, _)| w).collect())
        .unwrap_or_default();
    let header: Vec<String> = std::iter::once("method".to_string())
        .chain(widths.iter().map(|w| format!("width={w}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = report
        .series
        .iter()
        .map(|s| {
            std::iter::once(s.method.clone())
                .chain(s.points.iter().map(|&(_, pct)| format!("{pct:.1}%")))
                .collect()
        })
        .collect();
    format!(
        "Figure 6 (CY, {} query pairs): % of captured next-query fragments\n{}",
        report.pairs,
        crate::experiments::common::format_table(&header_refs, &rows)
    )
}

/// Convenience used by tests: the captured percentage of one method at one
/// width.
pub fn percentage(report: &SimulationReport, method: &str, width: usize) -> Option<f64> {
    report
        .series
        .iter()
        .find(|s| s.method == method)?
        .points
        .iter()
        .find(|&&(w, _)| w == width)
        .map(|&(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_produces_three_series_over_five_widths() {
        let report = run(ExperimentScale::Quick);
        assert_eq!(report.series.len(), 3);
        assert!(report.pairs > 0);
        for s in &report.series {
            assert_eq!(s.points.len(), 5);
            for &(w, pct) in &s.points {
                assert!((3..=7).contains(&w));
                assert!((0.0..=100.0).contains(&pct));
            }
        }
        assert!(render(&report).contains("width=3"));
    }

    #[test]
    fn wider_subtables_capture_at_least_as_much_for_subtab() {
        let report = run(ExperimentScale::Quick);
        let narrow = percentage(&report, "SubTab", 3).unwrap();
        let wide = percentage(&report, "SubTab", 7).unwrap();
        // The paper observes the percentage growing with width; allow small
        // noise at Quick scale.
        assert!(wide + 10.0 >= narrow, "wide {wide} vs narrow {narrow}");
    }
}
