//! Figure 7: quality score and total running time of SubTab against the
//! slow baselines (MAB, budgeted Greedy, EmbDI-style graph embedding) on the
//! flights dataset.
//!
//! The paper runs the slow baselines for minutes to days on a server; here
//! their budgets are scaled down together with the dataset (DESIGN.md,
//! substitution 7), and times are reported both absolutely and as multiples
//! of SubTab's own end-to-end time, which is the unit Figure 7 uses.

use crate::experiments::common::{format_table, run_subtab, ExperimentContext, ExperimentScale};
use std::time::{Duration, Instant};
use subtab_baselines::{
    graph_embedding_select, greedy_select, mab_select, GraphEmbedConfig, GreedyConfig, MabConfig,
};
use subtab_datasets::DatasetKind;
use subtab_embed::EmbeddingConfig;

/// One bar pair of Figure 7: a method's combined score and total time.
#[derive(Debug, Clone)]
pub struct SlowBaselineRow {
    /// Method label.
    pub method: String,
    /// Combined quality score.
    pub combined: f64,
    /// Total running time (including method-specific pre-processing).
    pub time: Duration,
    /// Time expressed as a multiple of SubTab's total time.
    pub time_vs_subtab: f64,
}

/// The Figure 7 report.
#[derive(Debug, Clone)]
pub struct SlowBaselineReport {
    /// One row per method (SubTab first).
    pub rows: Vec<SlowBaselineRow>,
}

impl SlowBaselineReport {
    /// Looks up one method's row.
    pub fn get(&self, method: &str) -> Option<&SlowBaselineRow> {
        self.rows.iter().find(|r| r.method == method)
    }
}

/// Runs the Figure 7 comparison on the FL dataset.
pub fn run(scale: ExperimentScale) -> SlowBaselineReport {
    // The paper runs this comparison on FL and lets Greedy run for 48 hours;
    // greedy row selection is O(k·n) coverage evaluations per column subset,
    // which is exactly why it is impractical. To keep the harness runnable we
    // use the CY stand-in (the smallest dataset) at both scales and scale the
    // subset/iteration budgets instead — the comparison of interest
    // (quality per unit time) is unchanged.
    let kind = DatasetKind::Cyber;
    let _ = scale;
    let (k, l) = (10usize, 10usize);
    let ctx = ExperimentContext::build(kind, scale, 3);

    let mut rows = Vec::new();

    // SubTab: pre-processing + selection is its total cost.
    let st = run_subtab(&ctx, k, l, &[]);
    let subtab_total = ctx.preprocess_time + st.time;
    rows.push(SlowBaselineRow {
        method: "SubTab".into(),
        combined: st.score.combined,
        time: subtab_total,
        time_vs_subtab: 1.0,
    });

    // MAB.
    let start = Instant::now();
    let mab = mab_select(
        &ctx.evaluator,
        k,
        l,
        &[],
        &MabConfig {
            iterations: scale.mab_iterations(),
            ..Default::default()
        },
    );
    let mab_time = start.elapsed();
    rows.push(SlowBaselineRow {
        method: "MAB".into(),
        combined: ctx.score(&mab).combined,
        time: mab_time,
        time_vs_subtab: ratio(mab_time, subtab_total),
    });

    // Semi-greedy Algorithm 1 under a column-subset budget.
    let start = Instant::now();
    let greedy = greedy_select(
        &ctx.evaluator,
        k,
        l,
        &[],
        &GreedyConfig::semi_greedy(scale.greedy_subsets(), 5),
    );
    let greedy_time = start.elapsed();
    rows.push(SlowBaselineRow {
        method: "Greedy".into(),
        combined: ctx.score(&greedy).combined,
        time: greedy_time,
        time_vs_subtab: ratio(greedy_time, subtab_total),
    });

    // EmbDI-style graph embedding (its own, slower pre-processing).
    let start = Instant::now();
    let ge_config = GraphEmbedConfig {
        walks_per_node: match scale {
            ExperimentScale::Quick => 3,
            ExperimentScale::Paper => 8,
        },
        walk_length: 20,
        embedding: EmbeddingConfig {
            dim: 32,
            epochs: 2,
            window: Some(5),
            ..Default::default()
        },
        seed: 7,
    };
    let ge = graph_embedding_select(ctx.subtab.preprocessed().binned(), k, l, &[], &ge_config);
    let ge_time = start.elapsed();
    rows.push(SlowBaselineRow {
        method: "EmbDI".into(),
        combined: ctx.score(&ge).combined,
        time: ge_time,
        time_vs_subtab: ratio(ge_time, subtab_total),
    });

    SlowBaselineReport { rows }
}

fn ratio(a: Duration, b: Duration) -> f64 {
    a.as_secs_f64() / b.as_secs_f64().max(1e-9)
}

/// Renders the report in the layout of Figure 7.
pub fn render(report: &SlowBaselineReport) -> String {
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                format!("{:.3}", r.combined),
                format!("{:.2?}", r.time),
                format!("{:.1}x", r.time_vs_subtab),
            ]
        })
        .collect();
    format!(
        "Figure 7: quality score and total running time (slow baselines)\n{}",
        format_table(
            &["method", "quality score", "total time", "time (x SubTab)"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_methods_report_scores_and_times() {
        let report = run(ExperimentScale::Quick);
        assert_eq!(report.rows.len(), 4);
        for r in &report.rows {
            assert!(
                (0.0..=1.0).contains(&r.combined),
                "{}: {}",
                r.method,
                r.combined
            );
            assert!(r.time_vs_subtab > 0.0);
        }
        assert!(report.get("SubTab").is_some());
        assert!(report.get("EmbDI").is_some());
        assert!(render(&report).contains("x SubTab"));
    }
}
