//! Table 1 + Figure 5: the user study, reproduced with a simulated analyst.
//!
//! The paper's live study (15 participants, SP / FL / BL datasets, one method
//! per participant group) cannot be reproduced offline, so we substitute a
//! deterministic *insight-discovery oracle* (DESIGN.md, substitution 6):
//!
//! * for every planted archetype, the simulated analyst reports an insight
//!   when the displayed sub-table shows at least two rows of that archetype
//!   and at least two of its defining columns — i.e. the pattern is actually
//!   visible in the display;
//! * additionally, the analyst reports a *spurious* insight for every pair of
//!   displayed columns whose values coincide on most displayed rows without
//!   being part of a planted pattern — the "random, false correlations" the
//!   paper observed users deriving from RAN/NC sub-tables;
//! * an insight is *correct* when the corresponding pattern holds in the full
//!   table with confidence ≥ 0.6 (archetype insights always do by
//!   construction; spurious ones usually do not).
//!
//! Table 1's three rows (avg. correct insights, % of users with no insights,
//! total insights) and Figure 5's four ratings are then computed per method,
//! averaging over simulated users (= seeds) and the three datasets.

use crate::experiments::common::{
    run_nc, run_ran, run_subtab, target_indices, ExperimentContext, ExperimentScale,
};
use subtab_baselines::Selection;
use subtab_datasets::{DatasetKind, PlantedDataset};

/// The Table-1 numbers for one method.
#[derive(Debug, Clone, PartialEq)]
pub struct UserStudyRow {
    /// Method label.
    pub method: String,
    /// Average number of correct insights per user per dataset.
    pub correct_insights: f64,
    /// Fraction of correct insights among all reported insights.
    pub correct_ratio: f64,
    /// Fraction of simulated users who derived no insight at all.
    pub users_with_no_insights: f64,
    /// Average total number of insights per user per dataset.
    pub total_insights: f64,
    /// Figure 5 ratings (Q1 satisfaction, Q2 usefulness, Q3 column quality,
    /// Q4 row quality), each in 1..=5.
    pub ratings: [f64; 4],
}

/// Result of the whole experiment.
#[derive(Debug, Clone)]
pub struct UserStudyReport {
    /// One row per method (SubTab, RAN, NC).
    pub rows: Vec<UserStudyRow>,
}

/// Insights the oracle derives from one displayed sub-table.
#[derive(Debug, Default, Clone, Copy)]
struct InsightCounts {
    correct: usize,
    incorrect: usize,
}

/// Runs the simulated user study.
pub fn run(scale: ExperimentScale) -> UserStudyReport {
    let datasets = [
        DatasetKind::Spotify,
        DatasetKind::Flights,
        DatasetKind::BankLoans,
    ];
    let users_per_method = match scale {
        ExperimentScale::Quick => 2,
        ExperimentScale::Paper => 5,
    };
    let (k, l) = (10usize, 10usize);

    let mut rows = Vec::new();
    for method in ["SubTab", "RAN", "NC"] {
        let mut correct_sum = 0.0;
        let mut total_sum = 0.0;
        let mut no_insight_users = 0usize;
        let mut user_count = 0usize;
        let mut rating_sum = [0.0f64; 4];
        for kind in datasets {
            for user in 0..users_per_method {
                let seed = 100 + user as u64;
                let ctx = ExperimentContext::build(kind, scale, seed);
                let target = default_target(kind);
                let targets_idx = target_indices(ctx.table(), &[target]);
                let selection = match method {
                    "SubTab" => run_subtab(&ctx, k, l, &[target]).selection,
                    "RAN" => run_ran(&ctx, k, l, &targets_idx, scale, seed).selection,
                    _ => run_nc(&ctx, k, l, &targets_idx, seed).selection,
                };
                let insights = oracle_insights(&ctx.dataset, &selection);
                let total = insights.correct + insights.incorrect;
                correct_sum += insights.correct as f64;
                total_sum += total as f64;
                if total == 0 {
                    no_insight_users += 1;
                }
                user_count += 1;

                let score = ctx.score(&selection);
                let col_quality = archetype_column_fraction(&ctx.dataset, &selection);
                let row_quality = archetype_row_fraction(&ctx.dataset, &selection);
                rating_sum[0] += 1.0 + 4.0 * score.combined;
                rating_sum[1] += 1.0 + 4.0 * score.cell_coverage.max(score.combined * 0.8);
                rating_sum[2] += 1.0 + 4.0 * col_quality;
                rating_sum[3] += 1.0 + 4.0 * row_quality;
            }
        }
        let n = user_count as f64;
        rows.push(UserStudyRow {
            method: method.to_string(),
            correct_insights: correct_sum / n,
            correct_ratio: if total_sum > 0.0 {
                correct_sum / total_sum
            } else {
                0.0
            },
            users_with_no_insights: no_insight_users as f64 / n,
            total_insights: total_sum / n,
            ratings: rating_sum.map(|r| r / n),
        });
    }
    UserStudyReport { rows }
}

/// The analysis-task target column of each dataset (the paper gives each
/// dataset an exploration task, e.g. "what makes songs popular").
pub fn default_target(kind: DatasetKind) -> &'static str {
    match kind {
        DatasetKind::Flights => "CANCELLED",
        DatasetKind::Spotify => "popularity",
        DatasetKind::BankLoans => "loan_status",
        DatasetKind::Cyber => "flagged",
        DatasetKind::CreditCard => "Class",
        DatasetKind::UsFunds => "risk_rating",
    }
}

/// The oracle described in the module docs.
fn oracle_insights(dataset: &PlantedDataset, selection: &Selection) -> InsightCounts {
    let mut counts = InsightCounts::default();
    let table = &dataset.table;
    let selected_names: Vec<&str> = selection
        .cols
        .iter()
        .filter_map(|&c| table.schema().field_at(c).map(|f| f.name.as_str()))
        .collect();

    // Archetype insights: pattern visible => insight; always correct because
    // planted rules hold with high confidence.
    for (ai, arch) in dataset.archetypes.iter().enumerate() {
        let rows_of_arch = selection
            .rows
            .iter()
            .filter(|&&r| dataset.row_archetype[r] == Some(ai))
            .count();
        let visible_cols = arch
            .columns()
            .iter()
            .filter(|c| selected_names.contains(c))
            .count();
        if rows_of_arch >= 2 && visible_cols >= 2 {
            if dataset.archetype_confidence(ai) >= 0.6 {
                counts.correct += 1;
            } else {
                counts.incorrect += 1;
            }
        }
    }

    // Spurious insights: pairs of displayed categorical-ish columns that look
    // perfectly correlated in the displayed rows but are not planted.
    let planted_pairs: Vec<(String, String)> = dataset
        .archetypes
        .iter()
        .flat_map(|a| {
            let cols = a.columns();
            let mut pairs = Vec::new();
            for i in 0..cols.len() {
                for j in (i + 1)..cols.len() {
                    pairs.push((cols[i].to_string(), cols[j].to_string()));
                }
            }
            pairs
        })
        .collect();
    for i in 0..selection.cols.len() {
        for j in (i + 1)..selection.cols.len() {
            let (ci, cj) = (selection.cols[i], selection.cols[j]);
            let (ni, nj) = (
                table.schema().field_at(ci).expect("valid").name.clone(),
                table.schema().field_at(cj).expect("valid").name.clone(),
            );
            if planted_pairs
                .iter()
                .any(|(a, b)| (a == &ni && b == &nj) || (a == &nj && b == &ni))
            {
                continue;
            }
            // "Looks correlated" in the display: the displayed value pairs
            // repeat (at most 2 distinct combinations over >= 4 rows).
            if selection.rows.len() < 4 {
                continue;
            }
            let combos: std::collections::HashSet<String> = selection
                .rows
                .iter()
                .map(|&r| {
                    format!(
                        "{}|{}",
                        table.value(r, &ni).map(|v| v.render()).unwrap_or_default(),
                        table.value(r, &nj).map(|v| v.render()).unwrap_or_default()
                    )
                })
                .collect();
            if combos.len() <= 2 {
                // The user "discovers" a dependency between ni and nj. Check
                // whether it actually holds in the full table (it rarely does
                // for unplanted pairs): confidence of the majority combo.
                let mut combo_counts: std::collections::HashMap<String, usize> =
                    std::collections::HashMap::new();
                for r in 0..table.num_rows() {
                    let key = format!(
                        "{}|{}",
                        table.value(r, &ni).map(|v| v.render()).unwrap_or_default(),
                        table.value(r, &nj).map(|v| v.render()).unwrap_or_default()
                    );
                    *combo_counts.entry(key).or_insert(0) += 1;
                }
                let max = combo_counts.values().copied().max().unwrap_or(0);
                if (max as f64) / (table.num_rows().max(1) as f64) >= 0.6 {
                    counts.correct += 1;
                } else {
                    counts.incorrect += 1;
                }
            }
        }
    }
    counts
}

/// Fraction of archetype-defining columns included in the selection,
/// averaged over archetypes (Figure 5, Q3 proxy).
fn archetype_column_fraction(dataset: &PlantedDataset, selection: &Selection) -> f64 {
    let table = &dataset.table;
    let selected_names: Vec<&str> = selection
        .cols
        .iter()
        .filter_map(|&c| table.schema().field_at(c).map(|f| f.name.as_str()))
        .collect();
    if dataset.archetypes.is_empty() {
        return 0.0;
    }
    dataset
        .archetypes
        .iter()
        .map(|a| {
            let cols = a.columns();
            let hit = cols.iter().filter(|c| selected_names.contains(c)).count();
            hit as f64 / cols.len().max(1) as f64
        })
        .sum::<f64>()
        / dataset.archetypes.len() as f64
}

/// Fraction of archetypes represented by at least one selected row
/// (Figure 5, Q4 proxy).
fn archetype_row_fraction(dataset: &PlantedDataset, selection: &Selection) -> f64 {
    if dataset.archetypes.is_empty() {
        return 0.0;
    }
    let mut represented = vec![false; dataset.archetypes.len()];
    for &r in &selection.rows {
        if let Some(ai) = dataset.row_archetype[r] {
            represented[ai] = true;
        }
    }
    represented.iter().filter(|&&x| x).count() as f64 / dataset.archetypes.len() as f64
}

/// Renders the report in the layout of Table 1.
pub fn render(report: &UserStudyReport) -> String {
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                format!(
                    "{:.1} ({:.0}%)",
                    r.correct_insights,
                    r.correct_ratio * 100.0
                ),
                format!("{:.0}%", r.users_with_no_insights * 100.0),
                format!("{:.1}", r.total_insights),
            ]
        })
        .collect();
    let table1 = crate::experiments::common::format_table(
        &[
            "method",
            "# correct insights",
            "% users w/o insights",
            "# total insights",
        ],
        &rows,
    );
    let fig5_rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                format!("{:.2}", r.ratings[0]),
                format!("{:.2}", r.ratings[1]),
                format!("{:.2}", r.ratings[2]),
                format!("{:.2}", r.ratings[3]),
            ]
        })
        .collect();
    let fig5 = crate::experiments::common::format_table(
        &[
            "method",
            "Q1 satisfaction",
            "Q2 usefulness",
            "Q3 columns",
            "Q4 rows",
        ],
        &fig5_rows,
    );
    format!(
        "Table 1 (simulated user study)\n{table1}\nFigure 5 (questionnaire proxies, 1-5)\n{fig5}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_produces_all_methods_and_sane_numbers() {
        let report = run(ExperimentScale::Quick);
        assert_eq!(report.rows.len(), 3);
        for row in &report.rows {
            assert!(row.correct_insights >= 0.0);
            assert!(row.total_insights >= row.correct_insights);
            assert!((0.0..=1.0).contains(&row.users_with_no_insights));
            for r in row.ratings {
                assert!((1.0..=5.0).contains(&r), "rating {r} out of range");
            }
        }
        let render = render(&report);
        assert!(render.contains("SubTab"));
        assert!(render.contains("Q1"));
    }

    #[test]
    fn subtab_surfaces_mostly_correct_insights() {
        // At Quick scale (few hundred rows) all methods expose the strongly
        // planted patterns, so the paper's SubTab-vs-baseline gap is not
        // asserted here (see EXPERIMENTS.md); what must always hold is that
        // SubTab's displays lead the oracle to true patterns, not spurious
        // correlations.
        let report = run(ExperimentScale::Quick);
        let subtab = report
            .rows
            .iter()
            .find(|r| r.method == "SubTab")
            .expect("SubTab row present");
        assert!(subtab.correct_insights >= 1.0);
        assert!(
            subtab.correct_ratio >= 0.5,
            "ratio {}",
            subtab.correct_ratio
        );
        assert_eq!(subtab.users_with_no_insights, 0.0);
    }
}
