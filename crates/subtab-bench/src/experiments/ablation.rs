//! Ablations of SubTab's own design choices (the list called out at the end
//! of DESIGN.md): binning strategy, corpus composition, embedding size and
//! the α trade-off of the combined score.

use crate::experiments::common::{format_table, ExperimentScale};
use subtab_binning::{BinningConfig, BinningStrategy};
use subtab_core::{SelectionParams, SubTab, SubTabConfig};
use subtab_datasets::DatasetKind;
use subtab_embed::EmbeddingConfig;
use subtab_metrics::Evaluator;
use subtab_rules::{MiningConfig, RuleMiner};

/// One ablation row: a configuration label and the resulting metrics.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which knob was varied and to what.
    pub variant: String,
    /// Cell coverage of the selected sub-table.
    pub cell_coverage: f64,
    /// Diversity of the selected sub-table.
    pub diversity: f64,
    /// Combined score (α = 0.5).
    pub combined: f64,
}

/// The ablation report.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// All ablation rows, grouped by the knob name prefix.
    pub rows: Vec<AblationRow>,
}

/// Runs the ablations on the Spotify stand-in (mid-sized, mixed types).
pub fn run(scale: ExperimentScale) -> AblationReport {
    let kind = DatasetKind::Spotify;
    let dataset = kind.build(scale.dataset_size(), 13);
    let (k, l) = (10usize, 10usize);

    // A single reference rule set evaluates every variant.
    let reference_binner =
        subtab_binning::Binner::fit(&dataset.table, &BinningConfig::default()).expect("binning");
    let reference_binned = reference_binner.apply(&dataset.table).expect("binning");
    let rules = RuleMiner::new(MiningConfig::default()).mine(&reference_binned);
    let evaluator = Evaluator::new(reference_binned, &rules, 0.5);

    let mut rows = Vec::new();
    let mut eval_variant = |label: String, config: SubTabConfig| {
        let subtab =
            SubTab::preprocess(dataset.table.clone(), config).expect("pre-processing succeeds");
        let view = subtab
            .select(&SelectionParams::new(k, l))
            .expect("selection succeeds");
        let cols = view.column_indices(&dataset.table);
        let score = evaluator.score(&view.row_indices, &cols);
        rows.push(AblationRow {
            variant: label,
            cell_coverage: score.cell_coverage,
            diversity: score.diversity,
            combined: score.combined,
        });
    };

    // Binning strategy.
    for strategy in [
        BinningStrategy::Kde,
        BinningStrategy::Quantile,
        BinningStrategy::EqualWidth,
    ] {
        let mut cfg = scale.subtab_config();
        cfg.binning = BinningConfig::default().strategy(strategy);
        eval_variant(format!("binning = {strategy:?}"), cfg);
    }

    // Corpus composition: with vs without column sentences.
    for include in [true, false] {
        let mut cfg = scale.subtab_config();
        cfg.embedding.include_column_sentences = include;
        eval_variant(
            format!(
                "corpus = {}",
                if include {
                    "rows + columns"
                } else {
                    "rows only"
                }
            ),
            cfg,
        );
    }

    // Embedding dimensionality.
    for dim in [8usize, 32, 64] {
        let mut cfg = scale.subtab_config();
        cfg.embedding = EmbeddingConfig {
            dim,
            ..cfg.embedding
        };
        eval_variant(format!("embedding dim = {dim}"), cfg);
    }

    // α sweep of the combined score (evaluation-side only: the selection is
    // fixed, the trade-off changes).
    let base =
        SubTab::preprocess(dataset.table.clone(), scale.subtab_config()).expect("pre-processing");
    let view = base.select(&SelectionParams::new(k, l)).expect("selection");
    let cols = view.column_indices(&dataset.table);
    for alpha in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
        let eval_alpha = Evaluator::new(evaluator.binned().clone(), &rules, alpha);
        let score = eval_alpha.score(&view.row_indices, &cols);
        rows.push(AblationRow {
            variant: format!("alpha = {alpha}"),
            cell_coverage: score.cell_coverage,
            diversity: score.diversity,
            combined: score.combined,
        });
    }

    AblationReport { rows }
}

/// Renders the ablation table.
pub fn render(report: &AblationReport) -> String {
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{:.3}", r.cell_coverage),
                format!("{:.3}", r.diversity),
                format!("{:.3}", r.combined),
            ]
        })
        .collect();
    format!(
        "Ablations (SP dataset, 10x10 sub-tables)\n{}",
        format_table(
            &["variant", "cell coverage", "diversity", "combined"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_covers_every_knob() {
        let report = run(ExperimentScale::Quick);
        let variants: Vec<&str> = report.rows.iter().map(|r| r.variant.as_str()).collect();
        assert!(variants.iter().any(|v| v.starts_with("binning")));
        assert!(variants.iter().any(|v| v.starts_with("corpus")));
        assert!(variants.iter().any(|v| v.starts_with("embedding dim")));
        assert!(variants.iter().any(|v| v.starts_with("alpha")));
        for r in &report.rows {
            assert!((0.0..=1.0).contains(&r.combined));
        }
        assert!(render(&report).contains("variant"));
    }

    #[test]
    fn alpha_extremes_match_their_single_metric() {
        let report = run(ExperimentScale::Quick);
        let alpha0 = report
            .rows
            .iter()
            .find(|r| r.variant == "alpha = 0")
            .expect("alpha 0 present");
        assert!((alpha0.combined - alpha0.diversity).abs() < 1e-9);
        let alpha1 = report
            .rows
            .iter()
            .find(|r| r.variant == "alpha = 1")
            .expect("alpha 1 present");
        assert!((alpha1.combined - alpha1.cell_coverage).abs() < 1e-9);
    }
}
