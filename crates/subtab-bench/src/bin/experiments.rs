//! The experiment runner: regenerates every table and figure of the paper's
//! evaluation on the synthetic stand-in datasets.
//!
//! ```bash
//! cargo run --release -p subtab-bench --bin experiments -- all
//! cargo run --release -p subtab-bench --bin experiments -- figure8 figure9
//! cargo run --release -p subtab-bench --bin experiments -- --quick table1
//! ```

use subtab_bench::experiments::{
    ablation, phases, preprocess_scaling, quality, query_scaling, rules_mining, scale as scale_exp,
    server_load, simulation, slow_baselines, tuning, user_study,
};
use subtab_bench::ExperimentScale;

const USAGE: &str = "\
usage: experiments [--quick] [--json PATH] [--baseline PATH] <experiment>...

experiments:
  table1      Table 1  — simulated user study (insight discovery)
  figure5     Figure 5 — questionnaire-rating proxies
  figure6     Figure 6 — captured next-query fragments vs sub-table width
  figure7     Figure 7 — quality & time vs MAB / Greedy / EmbDI-style
  figure8     Figure 8 — diversity / cell coverage / combined per dataset
  figure9     Figure 9 — pre-processing vs centroid-selection time
  figure10    Figure 10 — sensitivity to #bins / support / confidence
  ablation    design-choice ablations (binning, corpus, dim, alpha)
  preprocess  pre-processing hot-path scaling per trainer mode (CI gate)
  query       query-time selection scaling per engine mode (CI gate)
  rules       rule-engine scaling: bitmap vs Apriori mining, highlight index (CI gate)
  server      serving-layer load: session replay throughput + tail latency (CI gate)
  scale       100k/1M-row tier: per-stage wall time + resident memory on the stress shapes (CI gate)
  all         everything above except `preprocess`, `query`, `rules`, `server` and `scale`

flags:
  --quick           tiny datasets and small budgets (seconds instead of minutes);
                    for `scale`, the 100k sub-tier instead of 1M rows
  --json PATH       (preprocess | query | rules | server | scale) write the machine-readable report to PATH
  --baseline PATH   (preprocess | query | rules | server | scale) compare against a baseline JSON; exit 1
                    on a >25% wall-time regression in any mode (scale also gates resident memory)";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut args: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" | "--baseline" => {
                let Some(value) = it.next() else {
                    eprintln!("{a} requires a path argument\n\n{USAGE}");
                    std::process::exit(2);
                };
                if a == "--json" {
                    json_path = Some(value);
                } else {
                    baseline_path = Some(value);
                }
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other:?}\n\n{USAGE}");
                std::process::exit(2);
            }
            _ => args.push(a),
        }
    }
    let scale = if quick {
        ExperimentScale::Quick
    } else {
        ExperimentScale::Paper
    };
    let mut requested: Vec<String> = args;
    if requested.iter().any(|a| a == "all") {
        requested = vec![
            "table1".into(),
            "figure6".into(),
            "figure7".into(),
            "figure8".into(),
            "figure9".into(),
            "figure10".into(),
            "ablation".into(),
        ];
    }
    if requested.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let gated_requested = requested
        .iter()
        .filter(|r| {
            *r == "preprocess" || *r == "query" || *r == "rules" || *r == "server" || *r == "scale"
        })
        .count();
    if (json_path.is_some() || baseline_path.is_some()) && gated_requested != 1 {
        eprintln!(
            "--json/--baseline apply to exactly one of the `preprocess` / `query` / `rules` / \
             `server` / `scale` experiments per invocation (note: `all` includes none of them)\n\n\
             {USAGE}"
        );
        std::process::exit(2);
    }

    for experiment in requested {
        let start = std::time::Instant::now();
        println!("\n=============================================================");
        match experiment.as_str() {
            "table1" | "figure5" => {
                let report = user_study::run(scale);
                println!("{}", user_study::render(&report));
            }
            "figure6" => {
                let report = simulation::run(scale);
                println!("{}", simulation::render(&report));
            }
            "figure7" => {
                let report = slow_baselines::run(scale);
                println!("{}", slow_baselines::render(&report));
            }
            "figure8" => {
                let report = quality::run(scale);
                println!("{}", quality::render(&report));
            }
            "figure9" => {
                let report = phases::run(scale);
                println!("{}", phases::render(&report));
            }
            "figure10" => {
                let report = tuning::run(scale);
                println!("{}", tuning::render(&report));
            }
            "ablation" => {
                let report = ablation::run(scale);
                println!("{}", ablation::render(&report));
            }
            "preprocess" => {
                let report = preprocess_scaling::run(scale);
                println!("{}", preprocess_scaling::render(&report));
                write_and_gate(
                    json_path.as_deref(),
                    baseline_path.as_deref(),
                    &preprocess_scaling::to_json(&report),
                    |baseline| preprocess_scaling::check_against_baseline(&report, baseline, 0.25),
                );
            }
            "query" => {
                let report = query_scaling::run(scale);
                println!("{}", query_scaling::render(&report));
                write_and_gate(
                    json_path.as_deref(),
                    baseline_path.as_deref(),
                    &query_scaling::to_json(&report),
                    |baseline| query_scaling::check_against_baseline(&report, baseline, 0.25),
                );
            }
            "rules" => {
                let report = rules_mining::run(scale);
                println!("{}", rules_mining::render(&report));
                write_and_gate(
                    json_path.as_deref(),
                    baseline_path.as_deref(),
                    &rules_mining::to_json(&report),
                    |baseline| rules_mining::check_against_baseline(&report, baseline, 0.25),
                );
            }
            "scale" => {
                let report = scale_exp::run(scale);
                println!("{}", scale_exp::render(&report));
                write_and_gate(
                    json_path.as_deref(),
                    baseline_path.as_deref(),
                    &scale_exp::to_json(&report),
                    |baseline| scale_exp::check_against_baseline(&report, baseline, 0.25),
                );
            }
            "server" => {
                let report = server_load::run(scale);
                println!("{}", server_load::render(&report));
                write_and_gate(
                    json_path.as_deref(),
                    baseline_path.as_deref(),
                    &server_load::to_json(&report),
                    |baseline| server_load::check_against_baseline(&report, baseline, 0.25),
                );
            }
            other => {
                eprintln!("unknown experiment {other:?}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
        println!("[{experiment} finished in {:.2?}]", start.elapsed());
    }
}

/// Shared `--json` / `--baseline` handling of the gated experiments: writes
/// the machine-readable report and exits 1 when the gate reports a
/// regression.
fn write_and_gate(
    json_path: Option<&str>,
    baseline_path: Option<&str>,
    json: &str,
    gate: impl FnOnce(&str) -> Result<Vec<String>, Vec<String>>,
) {
    if let Some(path) = json_path {
        std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("[wrote {path}]");
    }
    if let Some(path) = baseline_path {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("reading baseline {path}: {e}"));
        match gate(&baseline) {
            Ok(lines) => {
                println!("bench gate vs {path}: OK");
                for l in lines {
                    println!("  {l}");
                }
            }
            Err(regressions) => {
                eprintln!("bench gate vs {path}: FAILED");
                for r in regressions {
                    eprintln!("  {r}");
                }
                std::process::exit(1);
            }
        }
    }
}
