//! The experiment runner: regenerates every table and figure of the paper's
//! evaluation on the synthetic stand-in datasets.
//!
//! ```bash
//! cargo run --release -p subtab-bench --bin experiments -- all
//! cargo run --release -p subtab-bench --bin experiments -- figure8 figure9
//! cargo run --release -p subtab-bench --bin experiments -- --quick table1
//! ```

use subtab_bench::experiments::{
    ablation, phases, quality, simulation, slow_baselines, tuning, user_study,
};
use subtab_bench::ExperimentScale;

const USAGE: &str = "\
usage: experiments [--quick] <experiment>...

experiments:
  table1     Table 1  — simulated user study (insight discovery)
  figure5    Figure 5 — questionnaire-rating proxies
  figure6    Figure 6 — captured next-query fragments vs sub-table width
  figure7    Figure 7 — quality & time vs MAB / Greedy / EmbDI-style
  figure8    Figure 8 — diversity / cell coverage / combined per dataset
  figure9    Figure 9 — pre-processing vs centroid-selection time
  figure10   Figure 10 — sensitivity to #bins / support / confidence
  ablation   design-choice ablations (binning, corpus, dim, alpha)
  all        everything above

flags:
  --quick    tiny datasets and small budgets (seconds instead of minutes)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick {
        ExperimentScale::Quick
    } else {
        ExperimentScale::Paper
    };
    let mut requested: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if requested.iter().any(|a| a == "all") {
        requested = vec![
            "table1".into(),
            "figure6".into(),
            "figure7".into(),
            "figure8".into(),
            "figure9".into(),
            "figure10".into(),
            "ablation".into(),
        ];
    }
    if requested.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    for experiment in requested {
        let start = std::time::Instant::now();
        println!("\n=============================================================");
        match experiment.as_str() {
            "table1" | "figure5" => {
                let report = user_study::run(scale);
                println!("{}", user_study::render(&report));
            }
            "figure6" => {
                let report = simulation::run(scale);
                println!("{}", simulation::render(&report));
            }
            "figure7" => {
                let report = slow_baselines::run(scale);
                println!("{}", slow_baselines::render(&report));
            }
            "figure8" => {
                let report = quality::run(scale);
                println!("{}", quality::render(&report));
            }
            "figure9" => {
                let report = phases::run(scale);
                println!("{}", phases::render(&report));
            }
            "figure10" => {
                let report = tuning::run(scale);
                println!("{}", tuning::render(&report));
            }
            "ablation" => {
                let report = ablation::run(scale);
                println!("{}", ablation::render(&report));
            }
            other => {
                eprintln!("unknown experiment {other:?}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
        println!("[{experiment} finished in {:.2?}]", start.elapsed());
    }
}
