//! Per-row association-rule highlighting (the optional UI extension of the
//! paper, shown in Figures 1–3: in each displayed row, the cells that
//! participate in one covered rule are coloured).
//!
//! Highlighting is an indexed probe over integer item ids: rules are
//! bucketed by their column mask, so a row only ever tests rules whose
//! columns are all currently selected, and each test is a merge of the
//! rule's sorted item-id slice against the row's own (column-ordered)
//! item-id list — no string comparison, no per-rule column materialisation.
//! The pre-refactor linear scan is preserved as
//! [`highlight_rules_linear`], the reference twin the index is pinned
//! against.

use std::collections::HashMap;
use subtab_binning::BinnedTable;
use subtab_rules::{ColumnMask, ItemId, RuleSet};

/// A rule highlighted for one sub-table row.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleHighlight {
    /// Index of the rule within the [`RuleSet`] it was probed from — the
    /// stable id a UI can use to deduplicate, colour or look the rule up
    /// without re-parsing the description.
    pub rule_index: usize,
    /// Columns participating in the rule (cells to colour).
    pub columns: Vec<String>,
    /// Human-readable rendering of the rule.
    pub description: String,
}

/// Rules bucketed by column mask, ready to be probed for any selection.
///
/// Build once per rule set (one pass over the rules); probing a selection
/// touches only the buckets whose mask is a subset of the selected columns.
#[derive(Debug)]
pub struct HighlightIndex<'r> {
    rules: &'r RuleSet,
    /// One bucket per distinct column mask, with the indices of its rules
    /// ascending.
    buckets: Vec<(ColumnMask, Vec<usize>)>,
}

impl<'r> HighlightIndex<'r> {
    /// Buckets the rules of `rules` by their column masks.
    pub fn build(rules: &'r RuleSet) -> Self {
        let mut by_mask: HashMap<&ColumnMask, Vec<usize>> = HashMap::new();
        for (i, rule) in rules.iter().enumerate() {
            by_mask.entry(&rule.column_mask).or_default().push(i);
        }
        let mut buckets: Vec<(ColumnMask, Vec<usize>)> = by_mask
            .into_iter()
            .map(|(mask, idxs)| (mask.clone(), idxs))
            .collect();
        // Deterministic bucket order (probe output is order-independent,
        // but determinism keeps Debug output and iteration stable).
        buckets.sort_by(|a, b| a.1[0].cmp(&b.1[0]));
        HighlightIndex { rules, buckets }
    }

    /// Number of distinct column-mask buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// For every probed row, picks at most one rule to highlight: among the
    /// rules whose columns are all in `selected_columns` and which hold for
    /// the row, the largest one (most cells highlighted), ties broken by
    /// support, then by rule index. This mirrors the paper's "to avoid
    /// visual clutter we only highlight one rule per row".
    pub fn probe(
        &self,
        binned_full: &BinnedTable,
        row_indices: &[usize],
        selected_columns: &[String],
    ) -> Vec<Option<RuleHighlight>> {
        let interner = self.rules.interner();
        let selected = ColumnMask::from_columns(
            selected_columns
                .iter()
                .filter_map(|c| binned_full.column_index(c)),
        );
        // Candidate rules: every rule in a bucket whose mask is a subset of
        // the selection, ordered best-first — the probe stops at the first
        // candidate that holds for the row. Best-first is (size desc,
        // support desc, index asc), which picks exactly the rule the linear
        // reference twin picks.
        let mut candidates: Vec<usize> = self
            .buckets
            .iter()
            .filter(|(mask, _)| mask.is_subset_of(&selected))
            .flat_map(|(_, idxs)| idxs.iter().copied())
            .collect();
        candidates.sort_by(|&a, &b| {
            let (ra, rb) = (&self.rules.rules[a], &self.rules.rules[b]);
            // Rank by distinct-column count (what the UI colours), exactly
            // like the linear twin's `rule.columns().len()`.
            rb.column_mask
                .len()
                .cmp(&ra.column_mask.len())
                .then_with(|| rb.support.total_cmp(&ra.support))
                .then_with(|| a.cmp(&b))
        });
        if candidates.is_empty() {
            // No eligible rule (possibly an empty set with an empty
            // interner) — nothing to probe, nothing to decode.
            return vec![None; row_indices.len()];
        }
        // Rendered highlights are cached per rule: a rule highlighted on
        // many rows is decoded to strings once.
        let mut rendered: HashMap<usize, RuleHighlight> = HashMap::new();
        let num_cols = binned_full.num_columns();
        let mut row_ids: Vec<ItemId> = vec![0; num_cols];
        row_indices
            .iter()
            .map(|&row| {
                // The row's own item-id list, indexed by column (ids are
                // column-major, so this is also ascending by id).
                for (c, slot) in row_ids.iter_mut().enumerate() {
                    *slot = interner.row_item_id(binned_full, row, c);
                }
                let hit = candidates.iter().find(|&&i| {
                    // A rule holds iff each of its ids equals the row's id
                    // at that id's column — one item per column makes the
                    // jump direct, no per-candidate decoding needed.
                    self.rules.rules[i]
                        .item_ids()
                        .all(|id| row_ids[interner.column_of(id)] == id)
                })?;
                let i = *hit;
                Some(
                    rendered
                        .entry(i)
                        .or_insert_with(|| {
                            let rule = &self.rules.rules[i];
                            RuleHighlight {
                                rule_index: i,
                                columns: rule
                                    .columns()
                                    .iter()
                                    .map(|&c| binned_full.column_names()[c].clone())
                                    .collect(),
                                description: rule.render(interner),
                            }
                        })
                        .clone(),
                )
            })
            .collect()
    }
}

/// Indexed per-row highlighting: builds a [`HighlightIndex`] and probes the
/// given rows. See [`HighlightIndex::probe`] for the selection semantics.
pub fn highlight_rules(
    binned_full: &BinnedTable,
    rules: &RuleSet,
    row_indices: &[usize],
    selected_columns: &[String],
) -> Vec<Option<RuleHighlight>> {
    HighlightIndex::build(rules).probe(binned_full, row_indices, selected_columns)
}

/// The pre-refactor linear scan, preserved as the reference twin: for every
/// row, every rule of the set is tested (column containment and per-item
/// match), keeping the largest holding rule with support as the
/// tie-breaker. Output is pinned identical to [`highlight_rules`]; the
/// `rules` benchmark quotes the index's speedup against this path.
pub fn highlight_rules_linear(
    binned_full: &BinnedTable,
    rules: &RuleSet,
    row_indices: &[usize],
    selected_columns: &[String],
) -> Vec<Option<RuleHighlight>> {
    let interner = rules.interner();
    let selected_idx: Vec<usize> = selected_columns
        .iter()
        .filter_map(|c| binned_full.column_index(c))
        .collect();
    row_indices
        .iter()
        .map(|&row| {
            let mut best: Option<(usize, usize)> = None;
            for (i, rule) in rules.iter().enumerate() {
                let cols = rule.columns();
                if !cols.iter().all(|c| selected_idx.contains(c)) {
                    continue;
                }
                if !rule.holds_for_row(interner, binned_full, row) {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((b, size)) => {
                        cols.len() > size
                            || (cols.len() == size && rule.support > rules.rules[b].support)
                    }
                };
                if better {
                    best = Some((i, cols.len()));
                }
            }
            best.map(|(i, _)| {
                let rule = &rules.rules[i];
                RuleHighlight {
                    rule_index: i,
                    columns: rule
                        .columns()
                        .iter()
                        .map(|&c| binned_full.column_names()[c].clone())
                        .collect(),
                    description: rule.render(interner),
                }
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;
    use subtab_rules::{MiningConfig, RuleMiner};

    fn setup() -> (BinnedTable, RuleSet) {
        let t = Table::builder()
            .column_i64(
                "cancelled",
                vec![Some(1), Some(1), Some(1), Some(0), Some(0), Some(0)],
            )
            .column_str(
                "dep",
                vec![None, None, None, Some("m"), Some("m"), Some("e")],
            )
            .column_i64(
                "year",
                vec![
                    Some(2015),
                    Some(2015),
                    Some(2015),
                    Some(2015),
                    Some(2016),
                    Some(2015),
                ],
            )
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let binned = binner.apply(&t).unwrap();
        let rules = RuleMiner::new(MiningConfig {
            min_rule_size: 2,
            min_support: 0.2,
            ..Default::default()
        })
        .mine(&binned);
        (binned, rules)
    }

    #[test]
    fn highlights_one_rule_per_matching_row() {
        let (binned, rules) = setup();
        let cols: Vec<String> = binned.column_names().to_vec();
        let highlights = highlight_rules(&binned, &rules, &[0, 3], &cols);
        assert_eq!(highlights.len(), 2);
        // Row 0 is a cancelled row with NaN dep — a planted pattern, so a
        // highlight must exist and mention at least two columns.
        let h0 = highlights[0].as_ref().expect("row 0 should be highlighted");
        assert!(h0.columns.len() >= 2);
        assert!(h0.description.contains('→'));
        assert!(h0.rule_index < rules.len());
    }

    #[test]
    fn no_highlight_when_rule_columns_are_not_selected() {
        let (binned, rules) = setup();
        // Only one column selected: no rule of size >= 2 fits.
        let highlights = highlight_rules(&binned, &rules, &[0], &["cancelled".to_string()]);
        assert!(highlights[0].is_none());
    }

    #[test]
    fn empty_rules_give_no_highlights() {
        let (binned, _) = setup();
        let cols: Vec<String> = binned.column_names().to_vec();
        let highlights = highlight_rules(&binned, &RuleSet::default(), &[0, 1], &cols);
        assert!(highlights.iter().all(Option::is_none));
    }

    #[test]
    fn indexed_probe_matches_the_linear_twin() {
        let (binned, rules) = setup();
        let all_cols: Vec<String> = binned.column_names().to_vec();
        let all_rows: Vec<usize> = (0..binned.num_rows()).collect();
        let selections: Vec<Vec<String>> = vec![
            all_cols.clone(),
            all_cols[..2].to_vec(),
            vec![all_cols[0].clone(), all_cols[2].clone()],
            vec![],
        ];
        for cols in &selections {
            let indexed = highlight_rules(&binned, &rules, &all_rows, cols);
            let linear = highlight_rules_linear(&binned, &rules, &all_rows, cols);
            assert_eq!(indexed, linear, "selection {cols:?}");
        }
    }

    #[test]
    fn buckets_group_rules_with_identical_masks() {
        let (_, rules) = setup();
        let index = HighlightIndex::build(&rules);
        assert!(index.num_buckets() >= 1);
        assert!(index.num_buckets() <= rules.len());
    }
}
