//! Per-row association-rule highlighting (the optional UI extension of the
//! paper, shown in Figures 1–3: in each displayed row, the cells that
//! participate in one covered rule are coloured).

use subtab_binning::BinnedTable;
use subtab_rules::RuleSet;

/// A rule highlighted for one sub-table row.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleHighlight {
    /// Columns participating in the rule (cells to colour).
    pub columns: Vec<String>,
    /// Human-readable rendering of the rule.
    pub description: String,
}

/// For every selected row, picks at most one rule to highlight: among the
/// rules whose columns are all selected and which hold for the row, the
/// largest one (most cells highlighted), ties broken by support. This mirrors
/// the paper's "to avoid visual clutter we only highlight one rule per row".
pub fn highlight_rules(
    binned_full: &BinnedTable,
    rules: &RuleSet,
    row_indices: &[usize],
    selected_columns: &[String],
) -> Vec<Option<RuleHighlight>> {
    let selected_idx: Vec<usize> = selected_columns
        .iter()
        .filter_map(|c| binned_full.column_index(c))
        .collect();
    row_indices
        .iter()
        .map(|&row| {
            let mut best: Option<(&subtab_rules::AssociationRule, usize)> = None;
            for rule in rules.iter() {
                let cols = rule.columns();
                if !cols.iter().all(|c| selected_idx.contains(c)) {
                    continue;
                }
                if !rule.holds_for_row(binned_full, row) {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((b, size)) => {
                        cols.len() > size || (cols.len() == size && rule.support > b.support)
                    }
                };
                if better {
                    best = Some((rule, cols.len()));
                }
            }
            best.map(|(rule, _)| RuleHighlight {
                columns: rule
                    .columns()
                    .iter()
                    .map(|&c| binned_full.column_names()[c].clone())
                    .collect(),
                description: rule.render(binned_full),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;
    use subtab_rules::{MiningConfig, RuleMiner};

    fn setup() -> (BinnedTable, RuleSet) {
        let t = Table::builder()
            .column_i64(
                "cancelled",
                vec![Some(1), Some(1), Some(1), Some(0), Some(0), Some(0)],
            )
            .column_str(
                "dep",
                vec![None, None, None, Some("m"), Some("m"), Some("e")],
            )
            .column_i64(
                "year",
                vec![
                    Some(2015),
                    Some(2015),
                    Some(2015),
                    Some(2015),
                    Some(2016),
                    Some(2015),
                ],
            )
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let binned = binner.apply(&t).unwrap();
        let rules = RuleMiner::new(MiningConfig {
            min_rule_size: 2,
            min_support: 0.2,
            ..Default::default()
        })
        .mine(&binned);
        (binned, rules)
    }

    #[test]
    fn highlights_one_rule_per_matching_row() {
        let (binned, rules) = setup();
        let cols: Vec<String> = binned.column_names().to_vec();
        let highlights = highlight_rules(&binned, &rules, &[0, 3], &cols);
        assert_eq!(highlights.len(), 2);
        // Row 0 is a cancelled row with NaN dep — a planted pattern, so a
        // highlight must exist and mention at least two columns.
        let h0 = highlights[0].as_ref().expect("row 0 should be highlighted");
        assert!(h0.columns.len() >= 2);
        assert!(h0.description.contains('→'));
    }

    #[test]
    fn no_highlight_when_rule_columns_are_not_selected() {
        let (binned, rules) = setup();
        // Only one column selected: no rule of size >= 2 fits.
        let highlights = highlight_rules(&binned, &rules, &[0], &["cancelled".to_string()]);
        assert!(highlights[0].is_none());
    }

    #[test]
    fn empty_rules_give_no_highlights() {
        let (binned, _) = setup();
        let cols: Vec<String> = binned.column_names().to_vec();
        let highlights = highlight_rules(&binned, &RuleSet::default(), &[0, 1], &cols);
        assert!(highlights.iter().all(Option::is_none));
    }
}
