//! The pre-processing phase: normalise, bin, embed (Algorithm 2, lines 1–4).

use crate::config::SubTabConfig;
use crate::Result;
use std::sync::{Arc, RwLock};
use subtab_binning::{BinnedTable, Binner};
use subtab_cluster::Matrix;
use subtab_data::Table;
use subtab_embed::{train_embedding, CellEmbedding, TokenPlane};

/// The output of SubTab's pre-processing phase for one table.
///
/// Pre-processing is executed once, when the table is loaded; every
/// subsequent sub-table selection (for the table itself or for query results
/// over it) reuses the fitted [`Binner`], the binned table, the trained
/// [`CellEmbedding`] and the precomputed [`TokenPlane`] of per-cell
/// embedding-row ids, which is what makes query-time selection interactive
/// (Figure 9 of the paper): after this constructor returns, no selection
/// ever formats or hashes a token string again.
#[derive(Debug)]
pub struct PreprocessedTable {
    table: Table,
    binner: Binner,
    binned: BinnedTable,
    embedding: CellEmbedding,
    /// Dense `num_rows × num_cols` matrix of embedding-row ids (sentinel for
    /// unembedded bins) — the integer plane every query-time gather indexes.
    plane: TokenPlane,
    /// Worker threads used by the cached full-table row-vector computation
    /// (from [`SubTabConfig::threads`] at preprocess time).
    threads: usize,
    /// Lazily computed row vectors of the *full* table over all columns,
    /// shared by selections that operate on the whole table. One flat
    /// row-major matrix behind an `Arc`, so handing the cache to a selection
    /// is a pointer bump, not an O(rows × dim) deep clone.
    full_row_vectors: RwLock<Option<Arc<Matrix>>>,
}

impl PreprocessedTable {
    /// Runs the pre-processing phase on `table`.
    pub fn new(table: Table, config: &SubTabConfig) -> Result<Self> {
        let binner = Binner::fit(&table, &config.binning)?;
        let binned = binner.apply(&table)?;
        let embedding = train_embedding(&binned, &config.embedding);
        let plane = embedding.token_plane(&binned);
        Ok(PreprocessedTable {
            table,
            binner,
            binned,
            embedding,
            plane,
            threads: config.threads,
            full_row_vectors: RwLock::new(None),
        })
    }

    /// The original table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The fitted binning function.
    pub fn binner(&self) -> &Binner {
        &self.binner
    }

    /// The binned view of the full table.
    pub fn binned(&self) -> &BinnedTable {
        &self.binned
    }

    /// The trained cell embedding.
    pub fn embedding(&self) -> &CellEmbedding {
        &self.embedding
    }

    /// The precomputed token-id plane of the full table.
    pub fn plane(&self) -> &TokenPlane {
        &self.plane
    }

    /// Row vectors of the full table over all columns as one flat row-major
    /// `num_rows × dim` matrix, computed on first use and cached. Returns a
    /// shared handle — cloning it is O(1), so every whole-table selection
    /// reuses the same backing storage instead of deep-cloning
    /// O(rows × dim) floats out of the lock.
    pub fn full_row_vectors(&self) -> Arc<Matrix> {
        if let Some(v) = self
            .full_row_vectors
            .read()
            .expect("lock poisoned")
            .as_ref()
        {
            return Arc::clone(v);
        }
        // Double-checked locking: take the write lock *before* computing and
        // re-check, so two threads racing past the read miss cannot both pay
        // for the O(rows × cols × dim) gather — the loser blocks here and
        // finds the winner's matrix.
        let mut slot = self.full_row_vectors.write().expect("lock poisoned");
        if let Some(v) = slot.as_ref() {
            return Arc::clone(v);
        }
        let cols: Vec<usize> = (0..self.binned.num_columns()).collect();
        let rows: Vec<usize> = (0..self.binned.num_rows()).collect();
        let flat = self
            .embedding
            .row_vectors(&self.plane, &rows, &cols, self.threads);
        let vectors = Arc::new(Matrix::new(flat, self.embedding.dim()));
        *slot = Some(Arc::clone(&vectors));
        vectors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SubTabConfig;

    fn table(rows: usize) -> Table {
        Table::builder()
            .column_f64(
                "distance",
                (0..rows)
                    .map(|i| Some(if i % 2 == 0 { 100.0 } else { 2500.0 } + i as f64))
                    .collect(),
            )
            .column_str(
                "airline",
                (0..rows)
                    .map(|i| Some(if i % 2 == 0 { "WN" } else { "DL" }))
                    .collect(),
            )
            .column_i64(
                "cancelled",
                (0..rows).map(|i| Some(i64::from(i % 5 == 0))).collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn preprocess_builds_all_artifacts() {
        let pre = PreprocessedTable::new(table(60), &SubTabConfig::fast()).unwrap();
        assert_eq!(pre.table().num_rows(), 60);
        assert_eq!(pre.binned().num_rows(), 60);
        assert_eq!(pre.binned().num_columns(), 3);
        assert!(!pre.embedding().is_empty());
        assert!(pre.binner().column("distance").is_some());
        assert_eq!(pre.plane().num_rows(), 60);
        assert_eq!(pre.plane().num_cols(), 3);
    }

    #[test]
    fn full_row_vectors_are_cached_and_consistent() {
        let pre = PreprocessedTable::new(table(30), &SubTabConfig::fast()).unwrap();
        let a = pre.full_row_vectors();
        let b = pre.full_row_vectors();
        assert_eq!(a.num_rows(), 30);
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a, &b), "second call must reuse the cache");
        assert_eq!(a.dim(), pre.embedding().dim());
        // The cached matrix matches the per-row gather.
        let cols: Vec<usize> = (0..3).collect();
        for r in 0..30 {
            assert_eq!(
                a.row(r),
                pre.embedding().row_vector(pre.plane(), r, &cols).as_slice()
            );
        }
    }

    #[test]
    fn concurrent_first_use_computes_one_shared_matrix() {
        let pre = PreprocessedTable::new(table(40), &SubTabConfig::fast()).unwrap();
        let handles: Vec<Arc<Matrix>> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| pre.full_row_vectors()))
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        for h in &handles[1..] {
            assert!(
                Arc::ptr_eq(&handles[0], h),
                "every racer must share one allocation"
            );
        }
    }

    #[test]
    fn empty_table_preprocesses_without_panicking() {
        let t = Table::builder()
            .column_i64("x", Vec::new())
            .build()
            .unwrap();
        let pre = PreprocessedTable::new(t, &SubTabConfig::fast()).unwrap();
        assert_eq!(pre.full_row_vectors().num_rows(), 0);
        assert_eq!(pre.embedding().len(), 0);
    }
}
