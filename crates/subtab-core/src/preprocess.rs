//! The pre-processing phase: normalise, bin, embed (Algorithm 2, lines 1–4).

use crate::config::SubTabConfig;
use crate::Result;
use std::sync::{Arc, RwLock};
use subtab_binning::{BinnedTable, Binner};
use subtab_data::Table;
use subtab_embed::{train_embedding, CellEmbedding};

/// The output of SubTab's pre-processing phase for one table.
///
/// Pre-processing is executed once, when the table is loaded; every
/// subsequent sub-table selection (for the table itself or for query results
/// over it) reuses the fitted [`Binner`], the binned table and the trained
/// [`CellEmbedding`], which is what makes query-time selection interactive
/// (Figure 9 of the paper).
#[derive(Debug)]
pub struct PreprocessedTable {
    table: Table,
    binner: Binner,
    binned: BinnedTable,
    embedding: CellEmbedding,
    /// Lazily computed row vectors of the *full* table over all columns,
    /// shared by selections that operate on the whole table. `Arc`-shared so
    /// handing the cache to a selection is a pointer bump, not an
    /// O(rows × dim) deep clone.
    full_row_vectors: RwLock<Option<Arc<Vec<Vec<f32>>>>>,
}

impl PreprocessedTable {
    /// Runs the pre-processing phase on `table`.
    pub fn new(table: Table, config: &SubTabConfig) -> Result<Self> {
        let binner = Binner::fit(&table, &config.binning)?;
        let binned = binner.apply(&table)?;
        let embedding = train_embedding(&binned, &config.embedding);
        Ok(PreprocessedTable {
            table,
            binner,
            binned,
            embedding,
            full_row_vectors: RwLock::new(None),
        })
    }

    /// The original table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The fitted binning function.
    pub fn binner(&self) -> &Binner {
        &self.binner
    }

    /// The binned view of the full table.
    pub fn binned(&self) -> &BinnedTable {
        &self.binned
    }

    /// The trained cell embedding.
    pub fn embedding(&self) -> &CellEmbedding {
        &self.embedding
    }

    /// Row vectors of the full table over all columns, computed on first use
    /// and cached. Returns a shared handle — cloning it is O(1), so every
    /// whole-table selection reuses the same backing storage instead of
    /// deep-cloning O(rows × dim) floats out of the lock.
    pub fn full_row_vectors(&self) -> Arc<Vec<Vec<f32>>> {
        if let Some(v) = self
            .full_row_vectors
            .read()
            .expect("lock poisoned")
            .as_ref()
        {
            return Arc::clone(v);
        }
        let cols: Vec<usize> = (0..self.binned.num_columns()).collect();
        let vectors: Arc<Vec<Vec<f32>>> = Arc::new(
            (0..self.binned.num_rows())
                .map(|r| self.embedding.row_vector(&self.binned, r, &cols))
                .collect(),
        );
        let mut slot = self.full_row_vectors.write().expect("lock poisoned");
        // Another thread may have raced us here; keep whichever landed first
        // so every caller shares one allocation.
        Arc::clone(slot.get_or_insert(vectors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SubTabConfig;

    fn table(rows: usize) -> Table {
        Table::builder()
            .column_f64(
                "distance",
                (0..rows)
                    .map(|i| Some(if i % 2 == 0 { 100.0 } else { 2500.0 } + i as f64))
                    .collect(),
            )
            .column_str(
                "airline",
                (0..rows)
                    .map(|i| Some(if i % 2 == 0 { "WN" } else { "DL" }))
                    .collect(),
            )
            .column_i64(
                "cancelled",
                (0..rows).map(|i| Some(i64::from(i % 5 == 0))).collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn preprocess_builds_all_artifacts() {
        let pre = PreprocessedTable::new(table(60), &SubTabConfig::fast()).unwrap();
        assert_eq!(pre.table().num_rows(), 60);
        assert_eq!(pre.binned().num_rows(), 60);
        assert_eq!(pre.binned().num_columns(), 3);
        assert!(!pre.embedding().is_empty());
        assert!(pre.binner().column("distance").is_some());
    }

    #[test]
    fn full_row_vectors_are_cached_and_consistent() {
        let pre = PreprocessedTable::new(table(30), &SubTabConfig::fast()).unwrap();
        let a = pre.full_row_vectors();
        let b = pre.full_row_vectors();
        assert_eq!(a.len(), 30);
        assert_eq!(a, b);
        assert_eq!(a[0].len(), pre.embedding().dim());
    }

    #[test]
    fn empty_table_preprocesses_without_panicking() {
        let t = Table::builder()
            .column_i64("x", Vec::new())
            .build()
            .unwrap();
        let pre = PreprocessedTable::new(t, &SubTabConfig::fast()).unwrap();
        assert_eq!(pre.full_row_vectors().len(), 0);
        assert_eq!(pre.embedding().len(), 0);
    }
}
