//! # subtab-core
//!
//! The SubTab algorithm — embedding-based selection of small, informative
//! sub-tables for data exploration (Algorithm 2 of the paper).
//!
//! The algorithm has two phases, mirroring the paper's system architecture
//! (Figure 1):
//!
//! 1. **Pre-processing** ([`PreprocessedTable`]) — run once when a table is
//!    loaded: normalise and bin the columns, build the tabular-sentence
//!    corpus, and train the cell embedding.
//! 2. **Centroid-based selection** ([`SubTab::select`],
//!    [`SubTab::select_for_query`]) — run for every display, including every
//!    selection–projection query the analyst issues: average cell vectors
//!    into row vectors and column vectors, k-means them, and take the rows
//!    and columns nearest to the centroids. Target columns, when given, are
//!    always included and excluded from the column clustering.
//!
//! The result is a [`SubTableResult`]: an actual `k × l` sub-table of the
//! input (rows of the table projected onto a column subset), the selected
//! indices, and — optionally — one highlighted association rule per row for
//! the UI described in the paper.
//!
//! ```
//! use subtab_core::{SubTab, SubTabConfig, SelectionParams};
//! use subtab_data::Table;
//!
//! let table = Table::builder()
//!     .column_f64("distance", (0..200).map(|i| Some(if i % 2 == 0 { 100.0 } else { 2500.0 } + i as f64)).collect())
//!     .column_str("airline", (0..200).map(|i| Some(if i % 2 == 0 { "WN" } else { "DL" })).collect())
//!     .column_i64("cancelled", (0..200).map(|i| Some(i64::from(i % 10 == 0))).collect())
//!     .build()
//!     .unwrap();
//! let subtab = SubTab::preprocess(table, SubTabConfig::fast()).unwrap();
//! let result = subtab
//!     .select(&SelectionParams::new(5, 2).with_targets(&["cancelled"]))
//!     .unwrap();
//! assert_eq!(result.sub_table.num_rows(), 5);
//! assert_eq!(result.sub_table.num_columns(), 2);
//! assert!(result.columns.contains(&"cancelled".to_string()));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod compile;
pub mod config;
pub mod error;
pub mod highlight;
pub mod preprocess;
pub mod result;
pub mod select;
pub mod subtab;

pub use compile::{
    compiled_selection_rows, compiled_selection_rows_cached, leaf_bitmap, leaf_bitmap_scalar,
    query_bitmap, query_bitmap_cached, LeafBitmapCache,
};
pub use config::{SelectionParams, SubTabConfig};
pub use error::CoreError;
/// The error type of the query surface, under the paper's name for the
/// system. Alias of [`CoreError`].
pub use error::CoreError as SubTabError;
pub use highlight::{highlight_rules, highlight_rules_linear, HighlightIndex, RuleHighlight};
pub use preprocess::PreprocessedTable;
pub use result::SubTableResult;
pub use select::{select_sub_table, select_sub_table_cached, select_sub_table_strkey};
pub use subtab::SubTab;

/// Result alias for SubTab operations.
pub type Result<T> = std::result::Result<T, CoreError>;
