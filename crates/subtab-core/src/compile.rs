//! Compiling a [`QueryExpr`] tree onto the bitmap engine.
//!
//! The brute-force reference path ([`Query::selection_rows`]) walks every
//! row and re-evaluates the whole expression tree per row, resolving each
//! leaf's column by name on every visit. The compiled path here lowers the
//! tree once instead: every leaf predicate becomes one [`RowBitmap`] over
//! the table's rows, and the `AND`/`OR`/`NOT` structure of the tree is
//! folded with the word-parallel bitmap operations the rule miner already
//! uses (`subtab-rules::bitmap`).
//!
//! Leaves scan the column's *typed value plane* directly (the flat
//! `&[f64]`/`&[i64]`/code buffers of the columnar storage) and then AND the
//! column's validity bitmap — null slots hold sentinels, so a predicate may
//! spuriously match them during the scan and the validity AND clears those
//! bits in one word-parallel pass. Null tests never scan at all: `IS NOT
//! NULL` *is* the validity bitmap and `IS NULL` is its complement.
//! Dictionary-encoded string columns evaluate the predicate once per
//! *distinct* value and then scan the code plane, so no string is cloned or
//! compared per row.
//!
//! `AND` chains short-circuit: children are evaluated cheapest-first
//! (already-cached leaves, then validity-only null tests, then dictionary
//! scans, then full numeric scans, then composite subtrees) and once the
//! accumulator has no bits left the remaining children are skipped — `AND`
//! is commutative over bitmaps, so the result is bit-identical to the
//! in-order fold. Every leaf's column is validated up front, in tree order,
//! so an unknown column is still always reported (and the *same* column is
//! reported) even when the leaf's bitmap is never materialised.
//!
//! Semantics are pinned to the per-row reference: predicates are two-valued
//! (`NULL` comparisons are false, see [`Predicate::matches_value`]), so
//! `NOT` is an exact bitmap complement over the table's row scope. The one
//! deliberate difference is error strictness — the short-circuiting per-row
//! walk may skip a branch that references an unknown column, while
//! compilation always validates every leaf and therefore always reports it.
//! The equivalence suite in `tests/expr_equivalence.rs` asserts
//! bit-identical row sets on every planted dataset.

use crate::Result;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use subtab_data::{ColumnType, CompareOp, DataError, Predicate, Query, QueryExpr, Table, Value};
use subtab_kernels::{
    scan_bools_masked, scan_codes_masked, scan_f64_masked, scan_i64_masked, CmpOp, NumericScan,
};
use subtab_rules::RowBitmap;

/// A cache of compiled leaf bitmaps, keyed by the leaf's canonical
/// encoding ([`Predicate::encode_canonical`]).
///
/// One cache is only ever valid for one table (the bitmaps are row-indexed
/// over it); the exploration server keeps one per session so repeated
/// query refinements — the paper's exploration loop, where each query adds
/// or tweaks one predicate — recompile only the changed leaf. Thread-safe:
/// lookups take a mutex, the bitmaps themselves are shared via `Arc`.
#[derive(Debug, Default)]
pub struct LeafBitmapCache {
    map: Mutex<HashMap<String, Arc<RowBitmap>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LeafBitmapCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached leaf bitmaps.
    pub fn len(&self) -> usize {
        self.map.lock().expect("leaf cache lock poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of leaf compilations answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of leaf compilations that had to scan the column.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Whether a bitmap for `key` is present (no hit/miss accounting).
    fn peek(&self, key: &str) -> bool {
        self.map
            .lock()
            .expect("leaf cache lock poisoned")
            .contains_key(key)
    }

    fn lookup(&self, key: &str) -> Option<Arc<RowBitmap>> {
        let found = self
            .map
            .lock()
            .expect("leaf cache lock poisoned")
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, key: String, bm: RowBitmap) {
        self.map
            .lock()
            .expect("leaf cache lock poisoned")
            .insert(key, Arc::new(bm));
    }
}

/// Compiles `expr` into the bitmap of matching rows over `table`.
///
/// The result has exactly [`Table::num_rows`] addressable bits; bit `r` is
/// set iff [`QueryExpr::matches`] returns `true` for row `r`.
pub fn query_bitmap(table: &Table, expr: &QueryExpr) -> Result<RowBitmap> {
    validate_columns(table, expr)?;
    compile_expr(table, expr, None)
}

/// Like [`query_bitmap`], but consulting (and filling) a per-session
/// [`LeafBitmapCache`] so leaves shared with earlier queries are not
/// recompiled. Bit-identical to [`query_bitmap`] on the same table.
pub fn query_bitmap_cached(
    table: &Table,
    expr: &QueryExpr,
    cache: &LeafBitmapCache,
) -> Result<RowBitmap> {
    validate_columns(table, expr)?;
    compile_expr(table, expr, Some(cache))
}

/// Resolves every leaf's column in tree (DFS) order, so the compiled path
/// reports exactly the column the uncompiled in-order fold would have
/// reported first — regardless of any cost-based reordering or
/// short-circuit skipping downstream.
fn validate_columns(table: &Table, expr: &QueryExpr) -> Result<()> {
    match expr {
        QueryExpr::Leaf(p) => {
            resolve_column(table, p)?;
            Ok(())
        }
        QueryExpr::And(children) | QueryExpr::Or(children) => {
            children.iter().try_for_each(|c| validate_columns(table, c))
        }
        QueryExpr::Not(inner) => validate_columns(table, inner),
    }
}

fn resolve_column<'t>(table: &'t Table, p: &Predicate) -> Result<&'t subtab_data::Column> {
    table
        .column(p.column())
        .ok_or_else(|| crate::CoreError::Data(DataError::UnknownColumn(p.column().to_string())))
}

/// Static evaluation-cost rank of an `AND` child, ascending.
///
/// Cached leaves are free (rank 0) and null tests are validity-plane clones
/// (rank 1). Uncached scanning leaves start from a per-column-type base —
/// dictionary scans touch one `u32` per row and pay one predicate
/// evaluation per *distinct* value, so their base grows with the
/// log₂-cardinality of the dictionary; bool planes are a two-outcome table;
/// float planes scan one `f64` compare per row; int planes additionally
/// widen each chunk — minus a bonus of up to 4 for mostly-null columns
/// (their result bitmaps are sparser, so evaluating them earlier empties
/// the `AND` accumulator sooner and skips more expensive siblings).
/// Composite subtrees go last so an emptied accumulator can skip whole
/// branches.
fn and_cost_rank(table: &Table, cache: Option<&LeafBitmapCache>, expr: &QueryExpr) -> u8 {
    match expr {
        QueryExpr::Leaf(p) => {
            if cache.is_some_and(|c| c.peek(&p.encode_canonical())) {
                return 0;
            }
            if matches!(p, Predicate::IsNull { .. } | Predicate::NotNull { .. }) {
                return 1;
            }
            let Some(col) = table.column(p.column()) else {
                // Unresolvable columns are rejected by validation before any
                // ranking can matter; keep a deterministic middle rank.
                return 32;
            };
            let base = match col.column_type() {
                ColumnType::Str => {
                    let card = col.code_view().map_or(0, |v| v.dict.len());
                    // log₂ tier of the dictionary cardinality, capped so the
                    // widest dictionaries still rank below numeric scans.
                    8 + ((usize::BITS - card.leading_zeros()).min(7) as u8)
                }
                ColumnType::Bool => 16,
                ColumnType::Float => 18,
                ColumnType::Int => 20,
            };
            let n = table.num_rows().max(1);
            let null_bonus = ((col.null_count() * 4) / n) as u8;
            base - null_bonus
        }
        _ => 64,
    }
}

/// The recursive compiler behind [`query_bitmap`] /
/// [`query_bitmap_cached`]. Columns are already validated.
fn compile_expr(
    table: &Table,
    expr: &QueryExpr,
    cache: Option<&LeafBitmapCache>,
) -> Result<RowBitmap> {
    let n = table.num_rows();
    match expr {
        QueryExpr::Leaf(p) => leaf_bitmap_cached(table, p, cache),
        QueryExpr::And(children) => {
            let mut acc = RowBitmap::ones(n);
            if children.is_empty() {
                return Ok(acc);
            }
            // Stable cheapest-first order: ties keep tree order, so the
            // evaluation sequence is deterministic.
            let mut order: Vec<(u8, &QueryExpr)> = children
                .iter()
                .map(|c| (and_cost_rank(table, cache, c), c))
                .collect();
            order.sort_by_key(|&(rank, _)| rank);
            let mut remaining = n;
            for (_, c) in order {
                // AND is commutative over bitmaps: once the accumulator is
                // empty, the remaining children cannot set a bit back, so
                // skipping them is exact.
                if remaining == 0 {
                    break;
                }
                acc.and_assign(&compile_expr(table, c, cache)?);
                remaining = acc.count();
            }
            Ok(acc)
        }
        QueryExpr::Or(children) => {
            let mut acc = RowBitmap::zeros(n);
            for c in children {
                acc.or_assign(&compile_expr(table, c, cache)?);
            }
            Ok(acc)
        }
        QueryExpr::Not(inner) => {
            let mut bm = compile_expr(table, inner, cache)?;
            bm.negate_assign(n);
            Ok(bm)
        }
    }
}

/// Leaf compilation with an optional cache in front of [`leaf_bitmap`].
fn leaf_bitmap_cached(
    table: &Table,
    p: &Predicate,
    cache: Option<&LeafBitmapCache>,
) -> Result<RowBitmap> {
    let Some(cache) = cache else {
        return leaf_bitmap(table, p);
    };
    // Canonical encoding as the key: equivalent spellings of one leaf
    // (loose-equal constants, reordered IN sets) share an entry.
    let key = p.encode_canonical();
    if let Some(bm) = cache.lookup(&key) {
        return Ok((*bm).clone());
    }
    let bm = leaf_bitmap(table, p)?;
    cache.insert(key, bm.clone());
    Ok(bm)
}

/// The bitmap of one leaf predicate, computed plane-wise: null tests read
/// the validity bitmap alone; everything else scans the typed value plane
/// with the SIMD kernels of `subtab-kernels` — emitting bitmap words a
/// vector-width of rows at a time — and ANDs validity in the same pass (no
/// non-null-test predicate matches a NULL row, so clearing sentinel-slot
/// hits word-parallel is exact).
///
/// Bit-identical to [`leaf_bitmap_scalar`] on every ISA tier — the kernels
/// evaluate the exact boolean function `Predicate::matches_value` defines
/// per row; `tests/kernel_equivalence.rs` pins this on the planted
/// datasets.
pub fn leaf_bitmap(table: &Table, p: &Predicate) -> Result<RowBitmap> {
    let col = resolve_column(table, p)?;
    let n = table.num_rows();
    let validity = col.validity();
    match p {
        // IS NOT NULL *is* the validity plane; IS NULL is its complement.
        Predicate::NotNull { .. } => return Ok(validity.clone()),
        Predicate::IsNull { .. } => {
            let mut bm = validity.clone();
            bm.negate_assign(n);
            return Ok(bm);
        }
        _ => {}
    }
    let vwords = validity.as_words();
    let words = if let Some(v) = col.code_view() {
        // Evaluate once per distinct dictionary value, then scan codes.
        let code_matches: Vec<bool> = v
            .dict
            .iter()
            .map(|s| p.matches_value(&Value::Str(s.clone())))
            .collect();
        scan_codes_masked(v.codes, &code_matches, vwords)
    } else if let Some(v) = col.float_view() {
        scan_f64_masked(v.values, &numeric_scan(p), vwords)
    } else if let Some(v) = col.int_view() {
        scan_i64_masked(v.values, &numeric_scan(p), vwords)
    } else if let Some(v) = col.bool_view() {
        // A bool plane has two possible values; evaluating the predicate
        // once per outcome is exact for every predicate kind.
        scan_bools_masked(
            v.values,
            p.matches_value(&Value::Bool(true)),
            p.matches_value(&Value::Bool(false)),
            vwords,
        )
    } else {
        return Ok(RowBitmap::zeros(n));
    };
    Ok(RowBitmap::from_words(words, n))
}

/// The pinned scalar twin of [`leaf_bitmap`]: the original row-at-a-time
/// `matches_value` walk. Kept callable so the equivalence suite and the
/// `compile-leaf-*` bench modes can compare the kernel path against it.
pub fn leaf_bitmap_scalar(table: &Table, p: &Predicate) -> Result<RowBitmap> {
    let col = resolve_column(table, p)?;
    let n = table.num_rows();
    let validity = col.validity();
    match p {
        Predicate::NotNull { .. } => return Ok(validity.clone()),
        Predicate::IsNull { .. } => {
            let mut bm = validity.clone();
            bm.negate_assign(n);
            return Ok(bm);
        }
        _ => {}
    }
    let mut bm = RowBitmap::zeros(n);
    if let Some(v) = col.code_view() {
        let code_matches: Vec<bool> = v
            .dict
            .iter()
            .map(|s| p.matches_value(&Value::Str(s.clone())))
            .collect();
        if !code_matches.is_empty() {
            for (r, &code) in v.codes.iter().enumerate() {
                if code_matches[code as usize] {
                    bm.set(r);
                }
            }
        }
    } else if let Some(v) = col.float_view() {
        for (r, &x) in v.values.iter().enumerate() {
            if p.matches_value(&Value::Float(x)) {
                bm.set(r);
            }
        }
    } else if let Some(v) = col.int_view() {
        for (r, &x) in v.values.iter().enumerate() {
            if p.matches_value(&Value::Int(x)) {
                bm.set(r);
            }
        }
    } else if let Some(v) = col.bool_view() {
        for (r, &x) in v.values.iter().enumerate() {
            if p.matches_value(&Value::Bool(x)) {
                bm.set(r);
            }
        }
    }
    bm.and_assign(validity);
    Ok(bm)
}

/// Lowers a scanning predicate over a *numeric* plane (float or int) onto
/// the kernel crate's [`NumericScan`], replicating `Value` comparison
/// semantics exactly: numeric and bool constants widen to `f64`
/// (`Value::as_f64`), a null constant matches nothing, and a string
/// constant has a row-independent outcome (the total order places every
/// number before every string, and loose equality across the divide is
/// false), which const-folds to a [`NumericScan::Const`].
fn numeric_scan(p: &Predicate) -> NumericScan {
    match p {
        Predicate::Compare { op, value, .. } => {
            if let Some(c) = value.as_f64() {
                let op = match op {
                    CompareOp::Eq => CmpOp::Eq,
                    CompareOp::Ne => CmpOp::Ne,
                    CompareOp::Lt => CmpOp::Lt,
                    CompareOp::Le => CmpOp::Le,
                    CompareOp::Gt => CmpOp::Gt,
                    CompareOp::Ge => CmpOp::Ge,
                };
                NumericScan::Cmp { op, constant: c }
            } else if value.is_null() {
                NumericScan::Const { matches: false }
            } else {
                // String constant vs numeric plane: every number sorts
                // before every string and never loose-equals one.
                NumericScan::Const {
                    matches: matches!(op, CompareOp::Ne | CompareOp::Lt | CompareOp::Le),
                }
            }
        }
        Predicate::Between { low, high, .. } => NumericScan::Between {
            low: *low,
            high: *high,
        },
        Predicate::InSet { values, .. } => NumericScan::InSet {
            // Non-numeric members (strings, nulls) never loose-equal a
            // numeric row value; dropping them is exact.
            values: values.iter().filter_map(Value::as_f64).collect(),
        },
        Predicate::IsNull { .. } | Predicate::NotNull { .. } => {
            unreachable!("null tests are compiled on the validity plane")
        }
    }
}

/// The compiled twin of [`Query::selection_rows`]: the candidate rows a
/// sub-table selection over `query`'s result may draw from, computed by
/// compiling the expression tree to a bitmap and applying the query's
/// sort-aware limit to the set bits.
pub fn compiled_selection_rows(table: &Table, query: &Query) -> Result<Vec<usize>> {
    let rows = query_bitmap(table, &query.expr)?.indices();
    Ok(query.restrict_selection_rows(table, rows)?)
}

/// Like [`compiled_selection_rows`], with a per-session leaf cache.
pub fn compiled_selection_rows_cached(
    table: &Table,
    query: &Query,
    cache: &LeafBitmapCache,
) -> Result<Vec<usize>> {
    let rows = query_bitmap_cached(table, &query.expr, cache)?.indices();
    Ok(query.restrict_selection_rows(table, rows)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreError;
    use subtab_data::SortOrder;

    fn table() -> Table {
        Table::builder()
            .column_str(
                "airline",
                vec![Some("AA"), Some("DL"), None, Some("UA"), Some("DL")],
            )
            .column_f64(
                "distance",
                vec![Some(100.0), Some(2500.0), Some(700.0), None, Some(900.0)],
            )
            .column_i64(
                "cancelled",
                vec![Some(0), Some(0), Some(1), Some(1), Some(0)],
            )
            .build()
            .unwrap()
    }

    const QUERIES: [&str; 13] = [
        "airline = 'DL'",
        "airline != 'DL'",
        "NOT airline = 'DL'",
        "airline IS NULL",
        "airline IS NOT NULL",
        "distance > 500 AND cancelled = 0",
        "distance > 500 OR airline = 'AA'",
        "NOT (distance > 500 OR airline = 'AA')",
        "airline IN ('AA', 'UA') OR (cancelled = 1 AND NOT distance IS NULL)",
        "airline = 'ZZ'",
        "TRUE",
        "FALSE",
        "distance BETWEEN 100 AND 1000",
    ];

    fn rows_of(t: &Table, text: &str) -> Vec<usize> {
        let q: Query = text.parse().unwrap();
        compiled_selection_rows(t, &q).unwrap()
    }

    fn brute_rows_of(t: &Table, text: &str) -> Vec<usize> {
        let q: Query = text.parse().unwrap();
        q.selection_rows(t).unwrap()
    }

    #[test]
    fn compiled_rows_match_the_per_row_reference() {
        let t = table();
        for text in QUERIES {
            assert_eq!(rows_of(&t, text), brute_rows_of(&t, text), "query: {text}");
        }
    }

    #[test]
    fn cached_compilation_is_bit_identical_and_reuses_leaves() {
        let t = table();
        let cache = LeafBitmapCache::new();
        for text in QUERIES {
            let q: Query = text.parse().unwrap();
            let cached = compiled_selection_rows_cached(&t, &q, &cache).unwrap();
            assert_eq!(cached, brute_rows_of(&t, text), "query: {text}");
        }
        let misses_after_first_pass = cache.misses();
        assert!(!cache.is_empty());
        // Replaying the same workload answers every leaf from the cache.
        for text in QUERIES {
            let q: Query = text.parse().unwrap();
            let cached = compiled_selection_rows_cached(&t, &q, &cache).unwrap();
            assert_eq!(cached, rows_of(&t, text), "query: {text}");
        }
        assert_eq!(cache.misses(), misses_after_first_pass, "no new misses");
        assert!(cache.hits() > 0);
        // A *new* composite query made of already-seen leaves adds no
        // entries and compiles entirely from the cache.
        let before = (cache.len(), cache.misses());
        let q: Query = "airline = 'DL' AND distance > 500".parse().unwrap();
        compiled_selection_rows_cached(&t, &q, &cache).unwrap();
        assert_eq!(cache.len(), before.0, "no new leaf entries");
        assert_eq!(cache.misses(), before.1, "both leaves were cache hits");
    }

    #[test]
    fn short_circuit_preserves_and_semantics() {
        let t = table();
        // The first conjunct matches nothing; every evaluation order and
        // skip must still produce the empty set, and the unknown-free
        // remainder must not be required.
        for text in [
            "airline = 'ZZ' AND distance > 0",
            "distance > 0 AND airline = 'ZZ'",
            "FALSE AND airline = 'DL' AND distance > 0",
            "airline = 'ZZ' AND (distance > 0 OR cancelled = 1)",
            "airline IS NULL AND cancelled = 1 AND distance > 0",
        ] {
            assert_eq!(rows_of(&t, text), brute_rows_of(&t, text), "query: {text}");
        }
    }

    #[test]
    fn short_circuit_still_reports_unknown_columns() {
        let t = table();
        // The emptying conjunct comes first, but compilation must still
        // report the unknown column the skipped leaf references.
        let q: Query = "airline = 'ZZ' AND no_such = 1".parse().unwrap();
        assert!(matches!(
            compiled_selection_rows(&t, &q),
            Err(CoreError::Data(DataError::UnknownColumn(c))) if c == "no_such"
        ));
        // And with two unknown columns, the *first in tree order* wins,
        // exactly like the unreordered fold.
        let q: Query = "zzz_late = 1 AND aaa_early = 2".parse().unwrap();
        assert!(matches!(
            compiled_selection_rows(&t, &q),
            Err(CoreError::Data(DataError::UnknownColumn(c))) if c == "zzz_late"
        ));
    }

    #[test]
    fn kernel_leaf_bitmaps_match_the_scalar_twin() {
        let t = table();
        let leaves = [
            "airline = 'DL'",
            "airline != 'DL'",
            "airline IN ('AA', 'UA')",
            "distance > 500",
            "distance <= 700",
            "distance BETWEEN 100 AND 1000",
            "cancelled = 0",
            "cancelled != 1",
            "distance IS NULL",
            "airline IS NOT NULL",
            // Cross-type constants: string vs numeric plane const-folds,
            // numeric vs dictionary plane matches nothing.
            "distance = 'oops'",
            "distance != 'oops'",
            "distance < 'oops'",
            "airline = 5",
        ];
        for text in leaves {
            let q: Query = text.parse().unwrap();
            let QueryExpr::Leaf(p) = &q.expr else {
                panic!("not a leaf: {text}");
            };
            let kernel = leaf_bitmap(&t, p).unwrap();
            let scalar = leaf_bitmap_scalar(&t, p).unwrap();
            assert_eq!(kernel, scalar, "leaf: {text}");
        }
    }

    #[test]
    fn and_cost_rank_orders_leaves_by_refined_cost() {
        // Wide table exercising the rank ingredients: dictionary
        // cardinality and null fraction.
        let n = 300usize;
        let mut builder = Table::builder()
            .column_str(
                "low_card",
                (0..n)
                    .map(|i| Some(if i % 2 == 0 { "a" } else { "b" }))
                    .collect(),
            )
            .column_f64("dense_num", (0..n).map(|i| Some(i as f64)).collect())
            .column_f64(
                "sparse_num",
                (0..n)
                    .map(|i| if i % 10 == 0 { Some(i as f64) } else { None })
                    .collect(),
            )
            .column_i64("ints", (0..n).map(|i| Some(i as i64)).collect());
        let high_card: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
        builder = builder.column_str(
            "high_card",
            high_card.iter().map(|s| Some(s.as_str())).collect(),
        );
        let t = builder.build().unwrap();

        let rank = |text: &str| {
            let q: Query = text.parse().unwrap();
            and_cost_rank(&t, None, &q.expr)
        };
        // Null tests beat every scan.
        assert!(rank("dense_num IS NULL") < rank("low_card = 'a'"));
        // Narrow dictionaries beat wide ones; every dictionary beats a
        // numeric scan.
        assert!(rank("low_card = 'a'") < rank("high_card = 'v7'"));
        assert!(rank("high_card = 'v7'") < rank("dense_num > 10"));
        // Mostly-null planes get a bonus over dense ones of the same type.
        assert!(rank("sparse_num > 10") < rank("dense_num > 10"));
        // Int planes pay the widening surcharge over float planes.
        assert!(rank("dense_num > 10") < rank("ints > 10"));
        // Composite subtrees go last.
        assert!(rank("dense_num > 10") < rank("ints > 10 OR dense_num > 10"));
    }

    #[test]
    fn cheaper_leaf_is_evaluated_first_in_an_and_chain() {
        let t = table();
        // Tree order puts the expensive float scan first, but the dictionary
        // leaf is cheaper and matches nothing, so cheapest-first evaluation
        // must compile ONLY the dictionary leaf and skip the float scan
        // entirely. The leaf cache records exactly what was compiled.
        let cache = LeafBitmapCache::new();
        let q: Query = "distance > 500 AND airline = 'ZZ'".parse().unwrap();
        let rows = compiled_selection_rows_cached(&t, &q, &cache).unwrap();
        assert!(rows.is_empty());
        assert_eq!(
            cache.len(),
            1,
            "only the cheap emptying leaf should have been compiled"
        );
        assert_eq!(cache.misses(), 1);
        // And the compiled entry is the dictionary leaf: re-running it alone
        // is answered from the cache.
        let single: Query = "airline = 'ZZ'".parse().unwrap();
        compiled_selection_rows_cached(&t, &single, &cache).unwrap();
        assert_eq!(cache.misses(), 1, "dictionary leaf was already cached");
        assert!(cache.hits() > 0);
    }

    #[test]
    fn null_tests_compile_to_validity_plane_ops() {
        let t = table();
        let not_null =
            query_bitmap(&t, &"distance IS NOT NULL".parse::<Query>().unwrap().expr).unwrap();
        assert_eq!(
            &not_null,
            t.column("distance").unwrap().validity(),
            "IS NOT NULL is exactly the validity bitmap"
        );
        let is_null = query_bitmap(&t, &"distance IS NULL".parse::<Query>().unwrap().expr).unwrap();
        assert_eq!(is_null.indices(), vec![3]);
        let mut complement = not_null.clone();
        complement.negate_assign(t.num_rows());
        assert_eq!(is_null, complement);
    }

    #[test]
    fn not_complements_over_nulls_exactly() {
        let t = table();
        // Row 2's airline is NULL: `= 'DL'` and `NOT = 'DL'` are both false
        // there under two-valued evaluation, so NOT must *include* the NULL
        // row (complement semantics), matching the reference walk.
        assert_eq!(rows_of(&t, "airline = 'DL'"), vec![1, 4]);
        assert_eq!(rows_of(&t, "NOT airline = 'DL'"), vec![0, 2, 3]);
        // `!=` excludes the NULL row instead: not a complement of `=`.
        assert_eq!(rows_of(&t, "airline != 'DL'"), vec![0, 3]);
    }

    #[test]
    fn limit_and_sort_apply_after_compilation() {
        let t = table();
        let q = Query::expr("cancelled = 0".parse().unwrap())
            .sort_by("distance", SortOrder::Descending)
            .limit(2);
        // cancelled = 0 matches rows {0, 1, 4}; top-2 by distance are 1, 4.
        assert_eq!(compiled_selection_rows(&t, &q).unwrap(), vec![1, 4]);
        assert_eq!(q.selection_rows(&t).unwrap(), vec![1, 4]);
    }

    #[test]
    fn unknown_columns_are_typed_data_errors() {
        let t = table();
        let q: Query = "no_such_column = 1".parse().unwrap();
        assert!(matches!(
            compiled_selection_rows(&t, &q),
            Err(CoreError::Data(DataError::UnknownColumn(c))) if c == "no_such_column"
        ));
    }
}
