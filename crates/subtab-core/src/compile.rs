//! Compiling a [`QueryExpr`] tree onto the bitmap engine.
//!
//! The brute-force reference path ([`Query::selection_rows`]) walks every
//! row and re-evaluates the whole expression tree per row, resolving each
//! leaf's column by name on every visit. The compiled path here lowers the
//! tree once instead: every leaf predicate becomes one [`RowBitmap`] over
//! the table's rows, and the `AND`/`OR`/`NOT` structure of the tree is
//! folded with the word-parallel bitmap operations the rule miner already
//! uses (`subtab-rules::bitmap`). Leaves resolve their column exactly once;
//! dictionary-encoded string columns evaluate the predicate once per
//! *distinct* value and then scan the code plane, so no string is cloned or
//! compared per row.
//!
//! Semantics are pinned to the per-row reference: predicates are two-valued
//! (`NULL` comparisons are false, see [`Predicate::matches_value`]), so
//! `NOT` is an exact bitmap complement over the table's row scope. The one
//! deliberate difference is error strictness — the short-circuiting per-row
//! walk may skip a branch that references an unknown column, while
//! compilation always materialises every leaf and therefore always reports
//! it. The equivalence suite in `tests/expr_equivalence.rs` asserts
//! bit-identical row sets on every planted dataset.

use crate::Result;
use subtab_data::{DataError, Predicate, Query, QueryExpr, Table, Value};
use subtab_rules::RowBitmap;

/// Compiles `expr` into the bitmap of matching rows over `table`.
///
/// The result has exactly [`Table::num_rows`] addressable bits; bit `r` is
/// set iff [`QueryExpr::matches`] returns `true` for row `r`.
pub fn query_bitmap(table: &Table, expr: &QueryExpr) -> Result<RowBitmap> {
    let n = table.num_rows();
    match expr {
        QueryExpr::Leaf(p) => leaf_bitmap(table, p),
        QueryExpr::And(children) => {
            let mut acc = RowBitmap::ones(n);
            for c in children {
                acc.and_assign(&query_bitmap(table, c)?);
            }
            Ok(acc)
        }
        QueryExpr::Or(children) => {
            let mut acc = RowBitmap::zeros(n);
            for c in children {
                acc.or_assign(&query_bitmap(table, c)?);
            }
            Ok(acc)
        }
        QueryExpr::Not(inner) => {
            let mut bm = query_bitmap(table, inner)?;
            bm.negate_assign(n);
            Ok(bm)
        }
    }
}

/// The bitmap of one leaf predicate: the column is resolved by name exactly
/// once, then its values stream through [`Predicate::matches_value`].
/// String columns are dictionary-encoded, so the predicate is evaluated
/// once per dictionary entry and rows are marked from the code plane.
fn leaf_bitmap(table: &Table, p: &Predicate) -> Result<RowBitmap> {
    let col = table
        .column(p.column())
        .ok_or_else(|| crate::CoreError::Data(DataError::UnknownColumn(p.column().to_string())))?;
    let n = table.num_rows();
    let mut bm = RowBitmap::zeros(n);
    let dict = col.dictionary();
    if dict.is_empty() {
        // Numeric/bool storage: `Column::get` builds values without touching
        // the heap.
        for r in 0..n {
            if p.matches_value(&col.get(r)) {
                bm.set(r);
            }
        }
    } else {
        let code_matches: Vec<bool> = dict
            .iter()
            .map(|s| p.matches_value(&Value::Str(s.clone())))
            .collect();
        let null_matches = p.matches_value(&Value::Null);
        for r in 0..n {
            let hit = match col.get_code(r) {
                Some(code) => code_matches[code as usize],
                None => null_matches,
            };
            if hit {
                bm.set(r);
            }
        }
    }
    Ok(bm)
}

/// The compiled twin of [`Query::selection_rows`]: the candidate rows a
/// sub-table selection over `query`'s result may draw from, computed by
/// compiling the expression tree to a bitmap and applying the query's
/// sort-aware limit to the set bits.
pub fn compiled_selection_rows(table: &Table, query: &Query) -> Result<Vec<usize>> {
    let rows = query_bitmap(table, &query.expr)?.indices();
    Ok(query.restrict_selection_rows(table, rows)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreError;
    use subtab_data::SortOrder;

    fn table() -> Table {
        Table::builder()
            .column_str(
                "airline",
                vec![Some("AA"), Some("DL"), None, Some("UA"), Some("DL")],
            )
            .column_f64(
                "distance",
                vec![Some(100.0), Some(2500.0), Some(700.0), None, Some(900.0)],
            )
            .column_i64(
                "cancelled",
                vec![Some(0), Some(0), Some(1), Some(1), Some(0)],
            )
            .build()
            .unwrap()
    }

    fn rows_of(t: &Table, text: &str) -> Vec<usize> {
        let q: Query = text.parse().unwrap();
        compiled_selection_rows(t, &q).unwrap()
    }

    fn brute_rows_of(t: &Table, text: &str) -> Vec<usize> {
        let q: Query = text.parse().unwrap();
        q.selection_rows(t).unwrap()
    }

    #[test]
    fn compiled_rows_match_the_per_row_reference() {
        let t = table();
        for text in [
            "airline = 'DL'",
            "airline != 'DL'",
            "NOT airline = 'DL'",
            "airline IS NULL",
            "airline IS NOT NULL",
            "distance > 500 AND cancelled = 0",
            "distance > 500 OR airline = 'AA'",
            "NOT (distance > 500 OR airline = 'AA')",
            "airline IN ('AA', 'UA') OR (cancelled = 1 AND NOT distance IS NULL)",
            "airline = 'ZZ'",
            "TRUE",
            "FALSE",
            "distance BETWEEN 100 AND 1000",
        ] {
            assert_eq!(rows_of(&t, text), brute_rows_of(&t, text), "query: {text}");
        }
    }

    #[test]
    fn not_complements_over_nulls_exactly() {
        let t = table();
        // Row 2's airline is NULL: `= 'DL'` and `NOT = 'DL'` are both false
        // there under two-valued evaluation, so NOT must *include* the NULL
        // row (complement semantics), matching the reference walk.
        assert_eq!(rows_of(&t, "airline = 'DL'"), vec![1, 4]);
        assert_eq!(rows_of(&t, "NOT airline = 'DL'"), vec![0, 2, 3]);
        // `!=` excludes the NULL row instead: not a complement of `=`.
        assert_eq!(rows_of(&t, "airline != 'DL'"), vec![0, 3]);
    }

    #[test]
    fn limit_and_sort_apply_after_compilation() {
        let t = table();
        let q = Query::expr("cancelled = 0".parse().unwrap())
            .sort_by("distance", SortOrder::Descending)
            .limit(2);
        // cancelled = 0 matches rows {0, 1, 4}; top-2 by distance are 1, 4.
        assert_eq!(compiled_selection_rows(&t, &q).unwrap(), vec![1, 4]);
        assert_eq!(q.selection_rows(&t).unwrap(), vec![1, 4]);
    }

    #[test]
    fn unknown_columns_are_typed_data_errors() {
        let t = table();
        let q: Query = "no_such_column = 1".parse().unwrap();
        assert!(matches!(
            compiled_selection_rows(&t, &q),
            Err(CoreError::Data(DataError::UnknownColumn(c))) if c == "no_such_column"
        ));
    }
}
