//! Error type for the SubTab pipeline.

use std::fmt;

/// Errors produced while pre-processing a table or selecting a sub-table.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The selection parameters were invalid (e.g. `k = 0`, or more target
    /// columns than selected columns).
    InvalidParams(String),
    /// A referenced column does not exist in the table.
    UnknownColumn(String),
    /// An underlying table operation failed.
    Data(subtab_data::DataError),
    /// Binning failed.
    Binning(subtab_binning::BinningError),
    /// The query produced an empty result, so no sub-table can be selected.
    EmptyQueryResult,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParams(msg) => write!(f, "invalid selection parameters: {msg}"),
            CoreError::UnknownColumn(c) => write!(f, "unknown column: {c:?}"),
            CoreError::Data(e) => write!(f, "table error: {e}"),
            CoreError::Binning(e) => write!(f, "binning error: {e}"),
            CoreError::EmptyQueryResult => write!(f, "the query returned no rows"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<subtab_data::DataError> for CoreError {
    fn from(e: subtab_data::DataError) -> Self {
        CoreError::Data(e)
    }
}

impl From<subtab_binning::BinningError> for CoreError {
    fn from(e: subtab_binning::BinningError) -> Self {
        CoreError::Binning(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_conversions() {
        let e = CoreError::InvalidParams("k = 0".into());
        assert!(e.to_string().contains("k = 0"));
        let e: CoreError = subtab_data::DataError::UnknownColumn("x".into()).into();
        assert!(matches!(e, CoreError::Data(_)));
        let e: CoreError = subtab_binning::BinningError::UnknownColumn("y".into()).into();
        assert!(matches!(e, CoreError::Binning(_)));
        assert!(CoreError::EmptyQueryResult.to_string().contains("no rows"));
    }
}
