//! Error type for the SubTab pipeline.

use std::fmt;

/// Errors produced while pre-processing a table or selecting a sub-table.
///
/// Degenerate-but-well-formed requests (a query matching no rows, `k = 0`,
/// `limit: Some(0)`, an empty projection) are *not* errors — they select the
/// empty sub-table. Errors are reserved for requests no table state can
/// satisfy: unknown columns, contradictory parameters, failed table
/// operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The selection parameters were invalid (e.g. more target columns than
    /// selected columns).
    InvalidParams(String),
    /// A referenced column does not exist in the table (or the preprocessed
    /// artefacts drifted from the table's schema).
    UnknownColumn(String),
    /// An underlying table operation failed.
    Data(subtab_data::DataError),
    /// Binning failed.
    Binning(subtab_binning::BinningError),
    /// SQL-ish query text could not be parsed. Kept distinct from
    /// [`CoreError::Data`] so servers can classify it as a client error and
    /// keep it out of result caches.
    QueryParse {
        /// Byte offset into the query text where parsing failed.
        position: usize,
        /// Human-readable explanation.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParams(msg) => write!(f, "invalid selection parameters: {msg}"),
            CoreError::UnknownColumn(c) => write!(f, "unknown column: {c:?}"),
            CoreError::Data(e) => write!(f, "table error: {e}"),
            CoreError::Binning(e) => write!(f, "binning error: {e}"),
            CoreError::QueryParse { position, message } => {
                write!(f, "query parse error at byte {position}: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<subtab_data::DataError> for CoreError {
    fn from(e: subtab_data::DataError) -> Self {
        match e {
            subtab_data::DataError::QueryParse { position, message } => {
                CoreError::QueryParse { position, message }
            }
            other => CoreError::Data(other),
        }
    }
}

impl From<subtab_binning::BinningError> for CoreError {
    fn from(e: subtab_binning::BinningError) -> Self {
        CoreError::Binning(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_conversions() {
        let e = CoreError::InvalidParams("k = 0".into());
        assert!(e.to_string().contains("k = 0"));
        let e: CoreError = subtab_data::DataError::UnknownColumn("x".into()).into();
        assert!(matches!(e, CoreError::Data(_)));
        let e: CoreError = subtab_binning::BinningError::UnknownColumn("y".into()).into();
        assert!(matches!(e, CoreError::Binning(_)));
        // Parse failures cross the crate boundary as the dedicated variant,
        // not as a generic Data error.
        let e: CoreError = subtab_data::DataError::QueryParse {
            position: 4,
            message: "expected `)`".into(),
        }
        .into();
        assert!(
            matches!(&e, CoreError::QueryParse { position: 4, message } if message.contains(')'))
        );
        assert!(e.to_string().contains("byte 4"));
    }
}
