//! Centroid-based sub-table selection (Algorithm 2, lines 5–19).

use crate::config::SelectionParams;
use crate::error::CoreError;
use crate::preprocess::PreprocessedTable;
use crate::result::SubTableResult;
use crate::Result;
use subtab_cluster::{select_k_representatives_threaded, Matrix, MatrixView};
use subtab_data::Query;

/// Selects a sub-table of the full table or of a query result over it.
///
/// `query = None` selects over the whole table (the initial display);
/// `query = Some(q)` first evaluates the selection part of `q` against the
/// table and restricts the candidate columns to `q`'s projection, then runs
/// the same centroid selection over the restricted rows and columns — this is
/// the cheap query-time path of the paper, which reuses the pre-processed
/// binning and embedding.
///
/// The query's predicate tree is compiled onto the bitmap engine
/// ([`crate::compile::query_bitmap`]): one row bitmap per leaf, combined
/// with word-parallel `AND`/`OR`/`NOT` ops, instead of re-walking the tree
/// per row. Row and column vectors are integer-indexed gathers over the
/// preprocessed token-id plane (no string is formatted or hashed at query
/// time), written into flat matrices consumed directly by the clustering.
/// `threads` fans both the vector gathers and the k-means assignment step
/// out across scoped workers (`0` = all available cores); the selection is
/// bit-identical at every thread count.
pub fn select_sub_table(
    pre: &PreprocessedTable,
    query: Option<&Query>,
    params: &SelectionParams,
    seed: u64,
    threads: usize,
) -> Result<SubTableResult> {
    select_sub_table_cached(pre, query, params, seed, threads, None)
}

/// [`select_sub_table`] with an optional per-session
/// [`LeafBitmapCache`](crate::compile::LeafBitmapCache): leaf predicates
/// already compiled by an earlier query against the *same* table are reused
/// instead of rescanned. With `cache = None` this is exactly
/// [`select_sub_table`]; with a cache the selection is still bit-identical,
/// only faster on repeated query refinements.
pub fn select_sub_table_cached(
    pre: &PreprocessedTable,
    query: Option<&Query>,
    params: &SelectionParams,
    seed: u64,
    threads: usize,
    cache: Option<&crate::compile::LeafBitmapCache>,
) -> Result<SubTableResult> {
    let Some(ctx) =
        SelectionContext::prepare(pre, query, params, QueryEngine::CompiledBitmap, cache)?
    else {
        return empty_result(pre);
    };
    let embedding = pre.embedding();
    let plane = pre.plane();

    // Whole-table selections borrow the Arc-cached full row vectors
    // directly (candidate rows are exactly 0..num_rows, in order), so the
    // hot query-free path never copies a single vector.
    let cached;
    let computed;
    let row_vectors: MatrixView = if ctx.whole_table {
        cached = pre.full_row_vectors();
        cached.view()
    } else {
        computed = Matrix::new(
            embedding.row_vectors(plane, &ctx.candidate_rows, &ctx.candidate_columns, threads),
            embedding.dim(),
        );
        computed.view()
    };

    let col_vectors = if ctx.l_free > 0 {
        Matrix::new(
            embedding.column_vectors(plane, &ctx.free_columns, &ctx.candidate_rows, threads),
            embedding.dim(),
        )
    } else {
        Matrix::default()
    };

    finish_selection(pre, &ctx, row_vectors, col_vectors.view(), seed, threads)
}

/// The pre-refactor string-keyed selection path, preserved as the reference
/// implementation: every cell vector is resolved by formatting a
/// `"column=label"` token and hashing it into the embedding's string index,
/// query predicates are evaluated by the per-row tree walk
/// ([`Query::selection_rows`]) rather than compiled bitmaps, and
/// whole-table selections recompute their row vectors rather than using
/// the cache. The equivalence suite asserts [`select_sub_table`] is
/// bit-identical to this on every planted dataset, and the query benchmark
/// quotes its speedup against it.
pub fn select_sub_table_strkey(
    pre: &PreprocessedTable,
    query: Option<&Query>,
    params: &SelectionParams,
    seed: u64,
    threads: usize,
) -> Result<SubTableResult> {
    let Some(ctx) = SelectionContext::prepare(pre, query, params, QueryEngine::PerRow, None)?
    else {
        return empty_result(pre);
    };
    let embedding = pre.embedding();
    let binned = pre.binned();

    let mut row_vectors = Matrix::with_capacity(ctx.candidate_rows.len(), embedding.dim());
    for &r in &ctx.candidate_rows {
        row_vectors.push_row(&embedding.row_vector_strkey(binned, r, &ctx.candidate_columns));
    }
    let mut col_vectors = Matrix::with_capacity(ctx.free_columns.len(), embedding.dim());
    if ctx.l_free > 0 {
        for &c in &ctx.free_columns {
            col_vectors.push_row(&embedding.column_vector_strkey(binned, c, &ctx.candidate_rows));
        }
    }

    finish_selection(
        pre,
        &ctx,
        row_vectors.view(),
        col_vectors.view(),
        seed,
        threads,
    )
}

/// How a selection evaluates its query's predicate tree.
#[derive(Clone, Copy, PartialEq, Eq)]
enum QueryEngine {
    /// Lower the tree onto row bitmaps ([`crate::compile`]); one pass per
    /// leaf, word-parallel combination.
    CompiledBitmap,
    /// The brute-force reference: re-walk the tree for every row.
    PerRow,
}

/// Validated candidate sets shared by both selection engines.
struct SelectionContext {
    candidate_rows: Vec<usize>,
    candidate_columns: Vec<usize>,
    /// Indices of the target columns (`U*`).
    target_idx: Vec<usize>,
    /// Candidate columns that are not targets, in candidate order.
    free_columns: Vec<usize>,
    /// Requested row count clamped to the candidate rows.
    k: usize,
    /// Column-cluster count after reserving room for the targets.
    l_free: usize,
    /// Whether the selection runs over the full table with all columns (the
    /// cached-row-vector fast path).
    whole_table: bool,
}

impl SelectionContext {
    /// Validates the request against the pre-processed state and assembles
    /// the candidate sets. Returns `Ok(None)` for *degenerate* requests —
    /// zero requested rows or columns, a query matching no rows, an empty
    /// projection, a `limit: Some(0)` — which select the empty sub-table
    /// rather than erroring or panicking. Genuinely invalid requests (an
    /// unknown column, more targets than columns) return typed errors; no
    /// user-supplied query can reach a panic in this path.
    fn prepare(
        pre: &PreprocessedTable,
        query: Option<&Query>,
        params: &SelectionParams,
        engine: QueryEngine,
        cache: Option<&crate::compile::LeafBitmapCache>,
    ) -> Result<Option<Self>> {
        if params.target_columns.len() > params.l {
            return Err(CoreError::InvalidParams(format!(
                "{} target columns do not fit into l = {}",
                params.target_columns.len(),
                params.l
            )));
        }
        let table = pre.table();
        let num_columns = table.num_columns();
        // Guard against preprocessed-state drift: the token plane and the
        // binned table are built from this table at preprocess time; if a
        // caller ever pairs a table with artefacts of a different shape,
        // every gather below would index out of bounds. Surface it as a
        // typed error instead.
        if pre.plane().num_rows() != table.num_rows()
            || pre.plane().num_cols() != num_columns
            || pre.binned().num_columns() != num_columns
        {
            return Err(CoreError::UnknownColumn(format!(
                "preprocessed state drifted from the table: table is {}x{}, token plane is {}x{}",
                table.num_rows(),
                num_columns,
                pre.plane().num_rows(),
                pre.plane().num_cols(),
            )));
        }
        // Resolve every referenced column through the schema exactly once;
        // a miss is a typed UnknownColumn error, never an `expect`.
        let target_idx: Vec<usize> = params
            .target_columns
            .iter()
            .map(|t| {
                table
                    .schema()
                    .index_of(t)
                    .ok_or_else(|| CoreError::UnknownColumn(t.clone()))
            })
            .collect::<Result<_>>()?;

        if params.k == 0 || params.l == 0 {
            return Ok(None);
        }

        // Candidate rows: all rows, or the rows a selection over the query
        // result may draw from (predicate tree plus sort-aware limit).
        let candidate_rows: Vec<usize> = match query {
            None => (0..table.num_rows()).collect(),
            Some(q) => match (engine, cache) {
                (QueryEngine::CompiledBitmap, Some(c)) => {
                    crate::compile::compiled_selection_rows_cached(table, q, c)?
                }
                (QueryEngine::CompiledBitmap, None) => {
                    crate::compile::compiled_selection_rows(table, q)?
                }
                (QueryEngine::PerRow, _) => q.selection_rows(table)?,
            },
        };
        if candidate_rows.is_empty() {
            return Ok(None);
        }

        // Candidate columns: the query's projection if present, otherwise
        // all. Membership bookkeeping uses index masks over the schema, so
        // wide-table queries stay linear instead of the old
        // O(|targets| × |cols|) `Vec::contains` scans.
        let mut in_candidates = vec![false; num_columns];
        let candidate_columns: Vec<usize> = match query.and_then(|q| q.projection.as_ref()) {
            Some(proj) => {
                let mut cols = Vec::with_capacity(proj.len());
                for name in proj {
                    let idx = table
                        .schema()
                        .index_of(name)
                        .ok_or_else(|| CoreError::UnknownColumn(name.clone()))?;
                    if !in_candidates[idx] {
                        in_candidates[idx] = true;
                        cols.push(idx);
                    }
                }
                // Target columns are always candidates even if the projection
                // dropped them (the paper requires U* ⊆ U_sub).
                for &idx in &target_idx {
                    if !in_candidates[idx] {
                        in_candidates[idx] = true;
                        cols.push(idx);
                    }
                }
                cols
            }
            None => {
                in_candidates.fill(true);
                (0..num_columns).collect()
            }
        };
        if candidate_columns.is_empty() {
            return Ok(None);
        }

        let k = params.k.min(candidate_rows.len());
        let mut is_target = vec![false; num_columns];
        for &t in &target_idx {
            is_target[t] = true;
        }
        let free_columns: Vec<usize> = candidate_columns
            .iter()
            .copied()
            .filter(|&c| !is_target[c])
            .collect();
        let l_free = params
            .l
            .saturating_sub(target_idx.len())
            .min(free_columns.len());
        let whole_table = query.is_none() && candidate_columns.len() == num_columns;
        Ok(Some(SelectionContext {
            candidate_rows,
            candidate_columns,
            target_idx,
            free_columns,
            k,
            l_free,
            whole_table,
        }))
    }
}

/// The empty `0 × 0` selection every degenerate request resolves to: no
/// rows, no columns, no highlights — never a stale whole-table fallback.
fn empty_result(pre: &PreprocessedTable) -> Result<SubTableResult> {
    Ok(SubTableResult {
        sub_table: pre.table().sub_table(&[], &[])?,
        row_indices: Vec::new(),
        columns: Vec::new(),
        highlights: Vec::new(),
    })
}

/// The clustering + assembly tail shared by both engines: k-means centroid
/// representatives over the row matrix, column clustering into
/// `l − |U*|` clusters over the column matrix, schema-ordered assembly.
fn finish_selection(
    pre: &PreprocessedTable,
    ctx: &SelectionContext,
    row_vectors: MatrixView,
    col_vectors: MatrixView,
    seed: u64,
    threads: usize,
) -> Result<SubTableResult> {
    let table = pre.table();
    let rep_positions = select_k_representatives_threaded(row_vectors, ctx.k, seed, threads);
    let mut row_indices: Vec<usize> = rep_positions
        .iter()
        .map(|&p| ctx.candidate_rows[p])
        .collect();
    row_indices.sort_unstable();

    let mut selected_columns: Vec<usize> = ctx.target_idx.clone();
    if ctx.l_free > 0 {
        let reps = select_k_representatives_threaded(
            col_vectors,
            ctx.l_free,
            seed.wrapping_add(1),
            threads,
        );
        selected_columns.extend(reps.into_iter().map(|p| ctx.free_columns[p]));
    }
    // Preserve the original schema order for display.
    selected_columns.sort_unstable();
    selected_columns.dedup();

    let column_names: Vec<String> = selected_columns
        .iter()
        .map(|&c| {
            table
                .schema()
                .field_at(c)
                .map(|f| f.name.clone())
                .ok_or_else(|| CoreError::UnknownColumn(format!("column index {c} out of schema")))
        })
        .collect::<Result<_>>()?;
    let column_refs: Vec<&str> = column_names.iter().map(String::as_str).collect();
    let sub_table = table.sub_table(&row_indices, &column_refs)?;

    Ok(SubTableResult {
        sub_table,
        row_indices,
        columns: column_names,
        highlights: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SubTabConfig;
    use subtab_data::{Predicate, Table, Value};

    fn preprocessed(rows: usize) -> PreprocessedTable {
        // Two clear row archetypes: short WN flights never cancelled, long DL
        // flights sometimes cancelled with missing dep_time.
        let table = Table::builder()
            .column_f64(
                "distance",
                (0..rows)
                    .map(|i| Some(if i % 2 == 0 { 120.0 } else { 2400.0 } + (i % 7) as f64))
                    .collect(),
            )
            .column_f64(
                "dep_time",
                (0..rows)
                    .map(|i| {
                        if i % 10 == 1 {
                            None
                        } else {
                            Some(900.0 + (i % 13) as f64 * 60.0)
                        }
                    })
                    .collect(),
            )
            .column_str(
                "airline",
                (0..rows)
                    .map(|i| Some(if i % 2 == 0 { "WN" } else { "DL" }))
                    .collect(),
            )
            .column_i64(
                "cancelled",
                (0..rows).map(|i| Some(i64::from(i % 10 == 1))).collect(),
            )
            .build()
            .unwrap();
        PreprocessedTable::new(table, &SubTabConfig::fast()).unwrap()
    }

    #[test]
    fn selects_requested_dimensions() {
        let pre = preprocessed(100);
        let r = select_sub_table(&pre, None, &SelectionParams::new(8, 3), 1, 1).unwrap();
        assert_eq!(r.sub_table.num_rows(), 8);
        assert_eq!(r.sub_table.num_columns(), 3);
        assert_eq!(r.row_indices.len(), 8);
        assert_eq!(r.columns.len(), 3);
        // Selected rows are distinct and valid.
        let mut rows = r.row_indices.clone();
        rows.dedup();
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|&i| i < 100));
    }

    #[test]
    fn target_columns_are_always_included() {
        let pre = preprocessed(80);
        let params = SelectionParams::new(5, 2).with_targets(&["cancelled"]);
        let r = select_sub_table(&pre, None, &params, 3, 1).unwrap();
        assert!(r.columns.contains(&"cancelled".to_string()));
        assert_eq!(r.sub_table.num_columns(), 2);
    }

    #[test]
    fn row_selection_spans_both_archetypes() {
        let pre = preprocessed(100);
        let r = select_sub_table(&pre, None, &SelectionParams::new(6, 4), 5, 1).unwrap();
        // Both short-WN and long-DL rows should be represented among 6
        // centroid representatives.
        let airlines: Vec<String> = r
            .row_indices
            .iter()
            .map(|&i| pre.table().value(i, "airline").unwrap().render())
            .collect();
        assert!(airlines.iter().any(|a| a == "WN"));
        assert!(airlines.iter().any(|a| a == "DL"));
    }

    #[test]
    fn query_restricts_rows_and_columns() {
        let pre = preprocessed(100);
        let q = Query::new()
            .filter(Predicate::eq("airline", Value::from("DL")))
            .select(&["distance", "dep_time", "airline"]);
        let r = select_sub_table(&pre, Some(&q), &SelectionParams::new(4, 2), 2, 1).unwrap();
        assert_eq!(r.sub_table.num_rows(), 4);
        assert!(r.sub_table.num_columns() <= 3);
        for &row in &r.row_indices {
            assert_eq!(
                pre.table().value(row, "airline").unwrap(),
                Value::from("DL")
            );
        }
        for c in &r.columns {
            assert!(["distance", "dep_time", "airline"].contains(&c.as_str()));
        }
    }

    #[test]
    fn query_projection_still_includes_targets() {
        let pre = preprocessed(60);
        let q = Query::new()
            .filter(Predicate::eq("airline", Value::from("WN")))
            .select(&["distance"]);
        let params = SelectionParams::new(3, 2).with_targets(&["cancelled"]);
        let r = select_sub_table(&pre, Some(&q), &params, 0, 1).unwrap();
        assert!(r.columns.contains(&"cancelled".to_string()));
    }

    #[test]
    fn dimensions_larger_than_data_are_clamped() {
        let pre = preprocessed(6);
        let r = select_sub_table(&pre, None, &SelectionParams::new(50, 50), 1, 1).unwrap();
        assert_eq!(r.sub_table.num_rows(), 6);
        assert_eq!(r.sub_table.num_columns(), 4);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let pre = preprocessed(20);
        let too_many_targets = SelectionParams::new(3, 1).with_targets(&["airline", "cancelled"]);
        assert!(matches!(
            select_sub_table(&pre, None, &too_many_targets, 0, 1),
            Err(CoreError::InvalidParams(_))
        ));
        let unknown = SelectionParams::new(3, 2).with_targets(&["nope"]);
        assert!(matches!(
            select_sub_table(&pre, None, &unknown, 0, 1),
            Err(CoreError::UnknownColumn(_))
        ));
    }

    fn assert_empty(r: &SubTableResult) {
        assert_eq!(r.sub_table.num_rows(), 0);
        assert_eq!(r.sub_table.num_columns(), 0);
        assert!(r.row_indices.is_empty());
        assert!(r.columns.is_empty());
        assert!(r.highlights.is_empty());
    }

    #[test]
    fn degenerate_dimensions_select_the_empty_subtable() {
        let pre = preprocessed(20);
        for params in [
            SelectionParams::new(0, 3),
            SelectionParams::new(3, 0),
            SelectionParams::new(0, 0),
        ] {
            let r = select_sub_table(&pre, None, &params, 0, 1).unwrap();
            assert_empty(&r);
            let r = select_sub_table_strkey(&pre, None, &params, 0, 1).unwrap();
            assert_empty(&r);
        }
    }

    #[test]
    fn empty_query_result_selects_the_empty_subtable() {
        let pre = preprocessed(20);
        let q = Query::new().filter(Predicate::eq("airline", Value::from("ZZ")));
        let r = select_sub_table(&pre, Some(&q), &SelectionParams::new(3, 2), 0, 1).unwrap();
        assert_empty(&r);
        let r = select_sub_table_strkey(&pre, Some(&q), &SelectionParams::new(3, 2), 0, 1).unwrap();
        assert_empty(&r);
    }

    #[test]
    fn limit_zero_selects_the_empty_subtable() {
        let pre = preprocessed(20);
        let q = Query::new().limit(0);
        let r = select_sub_table(&pre, Some(&q), &SelectionParams::new(3, 2), 0, 1).unwrap();
        assert_empty(&r);
    }

    #[test]
    fn empty_projection_selects_the_empty_subtable() {
        let pre = preprocessed(20);
        let q = Query::new().select(&[]);
        let r = select_sub_table(&pre, Some(&q), &SelectionParams::new(3, 2), 0, 1).unwrap();
        assert_empty(&r);
    }

    #[test]
    fn query_limit_restricts_the_candidate_rows() {
        let pre = preprocessed(100);
        // Without the limit the DL filter matches 50 rows; with limit 6 the
        // selection may only draw from the first 6 of them (rows 1..=11 odd).
        let q = Query::new()
            .filter(Predicate::eq("airline", Value::from("DL")))
            .limit(6);
        let r = select_sub_table(&pre, Some(&q), &SelectionParams::new(4, 3), 2, 1).unwrap();
        assert_eq!(r.sub_table.num_rows(), 4);
        for &row in &r.row_indices {
            assert!(row <= 11, "row {row} is outside the limited query result");
        }
        // The string-keyed twin agrees bit for bit.
        let s = select_sub_table_strkey(&pre, Some(&q), &SelectionParams::new(4, 3), 2, 1).unwrap();
        assert_eq!(r.row_indices, s.row_indices);
        assert_eq!(r.columns, s.columns);
    }

    #[test]
    fn unknown_projection_column_is_a_typed_error() {
        let pre = preprocessed(20);
        let q = Query::new()
            .filter(Predicate::eq("airline", Value::from("DL")))
            .select(&["distance", "no_such_column"]);
        assert!(matches!(
            select_sub_table(&pre, Some(&q), &SelectionParams::new(3, 2), 0, 1),
            Err(CoreError::UnknownColumn(c)) if c == "no_such_column"
        ));
        // Unknown predicate columns surface as typed data errors.
        let q = Query::new().filter(Predicate::eq("no_such_column", Value::from(1i64)));
        assert!(matches!(
            select_sub_table(&pre, Some(&q), &SelectionParams::new(3, 2), 0, 1),
            Err(CoreError::Data(_))
        ));
    }

    #[test]
    fn selection_is_deterministic_for_a_seed() {
        let pre = preprocessed(80);
        let a = select_sub_table(&pre, None, &SelectionParams::new(5, 3), 11, 1).unwrap();
        let b = select_sub_table(&pre, None, &SelectionParams::new(5, 3), 11, 1).unwrap();
        assert_eq!(a.row_indices, b.row_indices);
        assert_eq!(a.columns, b.columns);
    }

    #[test]
    fn threaded_selection_matches_sequential() {
        // Enough rows that the clustering crosses the parallel threshold.
        let pre = preprocessed(1500);
        let params = SelectionParams::new(7, 3);
        let sequential = select_sub_table(&pre, None, &params, 13, 1).unwrap();
        for threads in [0, 2, 4] {
            let parallel = select_sub_table(&pre, None, &params, 13, threads).unwrap();
            assert_eq!(sequential.row_indices, parallel.row_indices);
            assert_eq!(sequential.columns, parallel.columns);
        }
    }

    #[test]
    fn strkey_reference_path_matches_the_token_id_engine() {
        let pre = preprocessed(120);
        let params = SelectionParams::new(6, 3).with_targets(&["cancelled"]);
        let a = select_sub_table(&pre, None, &params, 9, 1).unwrap();
        let b = select_sub_table_strkey(&pre, None, &params, 9, 1).unwrap();
        assert_eq!(a.row_indices, b.row_indices);
        assert_eq!(a.columns, b.columns);
        let q = Query::new()
            .filter(Predicate::eq("airline", Value::from("DL")))
            .select(&["distance", "airline"]);
        let a = select_sub_table(&pre, Some(&q), &params, 9, 1).unwrap();
        let b = select_sub_table_strkey(&pre, Some(&q), &params, 9, 1).unwrap();
        assert_eq!(a.row_indices, b.row_indices);
        assert_eq!(a.columns, b.columns);
    }
}
