//! Configuration of the SubTab pipeline and of individual selections.

use serde::{Deserialize, Serialize};
use subtab_binning::BinningConfig;
use subtab_embed::EmbeddingConfig;

/// Configuration of the pre-processing phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubTabConfig {
    /// Binning configuration (strategy, number of bins, …).
    pub binning: BinningConfig,
    /// Embedding hyper-parameters (dimension, epochs, corpus cap, …).
    pub embedding: EmbeddingConfig,
    /// Seed for the clustering step of each selection.
    pub seed: u64,
    /// Worker threads for query-time selection (the k-means assignment step
    /// over row/column vectors). `0` uses all available cores; `1` (the
    /// default) runs sequentially. Selections are bit-identical at every
    /// thread count. Usually set together with the binning and embedding
    /// thread counts via [`SubTabConfig::with_threads`].
    pub threads: usize,
}

impl Default for SubTabConfig {
    fn default() -> Self {
        SubTabConfig {
            binning: BinningConfig::default(),
            embedding: EmbeddingConfig::default(),
            seed: 0,
            threads: 1,
        }
    }
}

impl SubTabConfig {
    /// A configuration tuned for speed (smaller embedding, fewer epochs) —
    /// useful for unit tests, examples and interactive experimentation on
    /// small tables. Quality on large tables is better with
    /// [`SubTabConfig::default`].
    pub fn fast() -> Self {
        SubTabConfig {
            binning: BinningConfig::default(),
            embedding: EmbeddingConfig {
                dim: 16,
                epochs: 2,
                window: Some(6),
                ..Default::default()
            },
            seed: 42,
            threads: 1,
        }
    }

    /// Sets the random seed used by clustering (and forwarded to the
    /// embedding when it has no explicit seed override).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.embedding.seed = seed;
        self
    }

    /// Sets the worker-thread count of every parallel stage: the embedding
    /// trainer, the per-column binning fit and the selection-time k-means
    /// assignment (`0` = all available cores, `1` = single-threaded; for
    /// the trainer, `1` selects the bit-exact reference).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self.binning.threads = threads;
        self.embedding.threads = threads;
        self
    }

    /// Sets the embedding trainer's reproducibility mode: `true` keeps
    /// training run-to-run reproducible at any thread count (replica
    /// averaging when parallel), `false` unlocks the fastest kernels
    /// (lock-free Hogwild updates when parallel).
    pub fn with_deterministic(mut self, deterministic: bool) -> Self {
        self.embedding.deterministic = deterministic;
        self
    }
}

/// Parameters of one sub-table selection: the requested dimensions `k × l`
/// and the optional target columns that must appear in the result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionParams {
    /// Number of rows of the sub-table (`k` in the paper; default 10).
    pub k: usize,
    /// Number of columns of the sub-table (`l` in the paper; default 10).
    pub l: usize,
    /// Target columns (`U*`): always included in the selected columns.
    pub target_columns: Vec<String>,
    /// Whether to attach one highlighted association rule per selected row
    /// (requires rules to be supplied at selection time).
    pub highlight: bool,
}

impl Default for SelectionParams {
    fn default() -> Self {
        SelectionParams {
            k: 10,
            l: 10,
            target_columns: Vec::new(),
            highlight: false,
        }
    }
}

impl SelectionParams {
    /// Creates parameters for a `k × l` sub-table.
    pub fn new(k: usize, l: usize) -> Self {
        SelectionParams {
            k,
            l,
            ..Default::default()
        }
    }

    /// Adds target columns.
    pub fn with_targets(mut self, targets: &[&str]) -> Self {
        self.target_columns = targets.iter().map(|s| s.to_string()).collect();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_papers_10_by_10() {
        let p = SelectionParams::default();
        assert_eq!(p.k, 10);
        assert_eq!(p.l, 10);
        assert!(p.target_columns.is_empty());
    }

    #[test]
    fn builders() {
        let p = SelectionParams::new(5, 4).with_targets(&["CANCELLED"]);
        assert_eq!(p.k, 5);
        assert_eq!(p.l, 4);
        assert_eq!(p.target_columns, vec!["CANCELLED".to_string()]);
        let c = SubTabConfig::fast().with_seed(7);
        assert_eq!(c.seed, 7);
        assert_eq!(c.embedding.seed, 7);
        assert!(c.embedding.dim <= SubTabConfig::default().embedding.dim);
    }

    #[test]
    fn with_threads_sets_every_parallel_stage() {
        let c = SubTabConfig::default();
        assert_eq!(c.threads, 1);
        let c = c.with_threads(4);
        assert_eq!(c.threads, 4);
        assert_eq!(c.binning.threads, 4);
        assert_eq!(c.embedding.threads, 4);
    }
}
