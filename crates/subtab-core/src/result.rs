//! The result of a sub-table selection.

use crate::highlight::RuleHighlight;
use subtab_data::Table;

/// A selected sub-table plus the provenance needed to evaluate or display it.
#[derive(Debug, Clone)]
pub struct SubTableResult {
    /// The `k × l` sub-table (actual rows of the source table, projected).
    pub sub_table: Table,
    /// Indices of the selected rows in the *original* table.
    pub row_indices: Vec<usize>,
    /// Names of the selected columns, in display order.
    pub columns: Vec<String>,
    /// Optional highlighted association rule per sub-table row (the paper's
    /// UI colours the cells participating in one rule per row).
    pub highlights: Vec<Option<RuleHighlight>>,
}

impl SubTableResult {
    /// Indices of the selected columns within the original table's schema.
    pub fn column_indices(&self, table: &Table) -> Vec<usize> {
        self.columns
            .iter()
            .filter_map(|c| table.schema().index_of(c))
            .collect()
    }

    /// Renders the sub-table with one optional rule annotation per row —
    /// the textual analogue of the paper's highlighted display (Figure 2).
    pub fn render_with_highlights(&self) -> String {
        let mut out = self.sub_table.render(self.sub_table.num_rows());
        for (i, h) in self.highlights.iter().enumerate() {
            if let Some(h) = h {
                out.push_str(&format!("row {i}: {}\n", h.description));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_data::Table;

    fn result() -> (SubTableResult, Table) {
        let table = Table::builder()
            .column_i64("a", vec![Some(1), Some(2), Some(3)])
            .column_str("b", vec![Some("x"), Some("y"), Some("z")])
            .build()
            .unwrap();
        let sub = table.sub_table(&[0, 2], &["b"]).unwrap();
        (
            SubTableResult {
                sub_table: sub,
                row_indices: vec![0, 2],
                columns: vec!["b".to_string()],
                highlights: vec![
                    Some(RuleHighlight {
                        rule_index: 0,
                        columns: vec!["b".to_string()],
                        description: "b=x → a=1".to_string(),
                    }),
                    None,
                ],
            },
            table,
        )
    }

    #[test]
    fn column_indices_map_back_to_the_source_schema() {
        let (r, t) = result();
        assert_eq!(r.column_indices(&t), vec![1]);
    }

    #[test]
    fn render_includes_highlight_descriptions() {
        let (r, _) = result();
        let s = r.render_with_highlights();
        assert!(s.contains("b=x → a=1"));
        assert!(s.contains('z'));
    }
}
