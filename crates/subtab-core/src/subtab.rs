//! The [`SubTab`] facade: preprocess once, select many times.

use crate::config::{SelectionParams, SubTabConfig};
use crate::highlight::HighlightIndex;
use crate::preprocess::PreprocessedTable;
use crate::result::SubTableResult;
use crate::select::select_sub_table;
use crate::Result;
use subtab_data::{Query, Table};
use subtab_rules::{MiningConfig, RuleMiner, RuleSet};

/// The SubTab system for one loaded table.
///
/// Construction runs the (comparatively expensive) pre-processing phase;
/// [`SubTab::select`] and [`SubTab::select_for_query`] then produce
/// informative sub-tables in interactive time, for the table itself and for
/// every exploratory query issued over it.
#[derive(Debug)]
pub struct SubTab {
    pre: PreprocessedTable,
    config: SubTabConfig,
}

impl SubTab {
    /// Runs pre-processing (normalise, bin, embed) on `table`.
    pub fn preprocess(table: Table, config: SubTabConfig) -> Result<Self> {
        let pre = PreprocessedTable::new(table, &config)?;
        Ok(SubTab { pre, config })
    }

    /// The pre-processed artefacts (binner, binned table, embedding).
    pub fn preprocessed(&self) -> &PreprocessedTable {
        &self.pre
    }

    /// The original table.
    pub fn table(&self) -> &Table {
        self.pre.table()
    }

    /// The configuration used at pre-processing time.
    pub fn config(&self) -> &SubTabConfig {
        &self.config
    }

    /// Selects a `k × l` sub-table of the full table.
    pub fn select(&self, params: &SelectionParams) -> Result<SubTableResult> {
        select_sub_table(
            &self.pre,
            None,
            params,
            self.config.seed,
            self.config.threads,
        )
    }

    /// Selects a `k × l` sub-table of the result of an SP query over the
    /// table, reusing the pre-processed binning and embedding (the cheap
    /// query-time path of Figure 1).
    pub fn select_for_query(
        &self,
        query: &Query,
        params: &SelectionParams,
    ) -> Result<SubTableResult> {
        select_sub_table(
            &self.pre,
            Some(query),
            params,
            self.config.seed,
            self.config.threads,
        )
    }

    /// [`SubTab::select_for_query`] with a per-session
    /// [`LeafBitmapCache`](crate::compile::LeafBitmapCache), so an
    /// exploration session that refines one predicate at a time recompiles
    /// only the changed leaf. Bit-identical to the uncached path.
    pub fn select_for_query_cached(
        &self,
        query: &Query,
        params: &SelectionParams,
        cache: &crate::compile::LeafBitmapCache,
    ) -> Result<SubTableResult> {
        crate::select::select_sub_table_cached(
            &self.pre,
            Some(query),
            params,
            self.config.seed,
            self.config.threads,
            Some(cache),
        )
    }

    /// Mines association rules over the binned table — the load-time step
    /// that feeds [`SubTab::with_highlights`] and the quality metrics. Runs
    /// the vertical bitmap engine with this SubTab's configured thread
    /// budget (the `threads` field of `mining` is overridden).
    pub fn mine_rules(&self, mining: &MiningConfig) -> RuleSet {
        let config = MiningConfig {
            threads: self.config.threads,
            ..mining.clone()
        };
        RuleMiner::new(config).mine(self.pre.binned())
    }

    /// Like [`SubTab::mine_rules`], but partitioned by the binned values of
    /// the given target columns (Section 6.1 of the paper).
    pub fn mine_rules_for_targets(
        &self,
        mining: &MiningConfig,
        target_columns: &[usize],
    ) -> RuleSet {
        let config = MiningConfig {
            threads: self.config.threads,
            ..mining.clone()
        };
        RuleMiner::new(config).mine_with_targets(self.pre.binned(), target_columns)
    }

    /// Attaches per-row rule highlights to a selection result (the optional
    /// coloured-pattern display of the paper's UI). The rules are typically
    /// mined once per table with [`SubTab::mine_rules`].
    ///
    /// Builds a fresh [`HighlightIndex`] per call; an interactive session
    /// displaying many sub-tables against one rule set should build the
    /// index once and use [`SubTab::with_highlights_indexed`].
    pub fn with_highlights(&self, result: SubTableResult, rules: &RuleSet) -> SubTableResult {
        self.with_highlights_indexed(result, &HighlightIndex::build(rules))
    }

    /// Like [`SubTab::with_highlights`], but probing a pre-built
    /// [`HighlightIndex`] — the build-once / probe-many path: one index per
    /// mined rule set, one probe per displayed sub-table.
    pub fn with_highlights_indexed(
        &self,
        mut result: SubTableResult,
        index: &HighlightIndex<'_>,
    ) -> SubTableResult {
        result.highlights = index.probe(self.pre.binned(), &result.row_indices, &result.columns);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_data::{Predicate, Value};
    use subtab_datasets::{flights, DatasetSize};

    fn flights_subtab() -> SubTab {
        let ds = flights(DatasetSize::Tiny, 7);
        SubTab::preprocess(ds.table, SubTabConfig::fast()).unwrap()
    }

    #[test]
    fn end_to_end_selection_on_the_flights_standin() {
        let subtab = flights_subtab();
        let params = SelectionParams::new(10, 10).with_targets(&["CANCELLED"]);
        let r = subtab.select(&params).unwrap();
        assert_eq!(r.sub_table.num_rows(), 10);
        assert_eq!(r.sub_table.num_columns(), 10);
        assert!(r.columns.contains(&"CANCELLED".to_string()));
    }

    #[test]
    fn query_time_selection_reuses_preprocessing() {
        let subtab = flights_subtab();
        let q = Query::new().filter(Predicate::eq("CANCELLED", Value::Int(1)));
        let r = subtab
            .select_for_query(&q, &SelectionParams::new(5, 6))
            .unwrap();
        assert_eq!(r.sub_table.num_rows(), 5);
        for &row in &r.row_indices {
            assert_eq!(
                subtab.table().value(row, "CANCELLED").unwrap(),
                Value::Int(1)
            );
        }
    }

    #[test]
    fn highlights_attach_rules_to_rows() {
        let subtab = flights_subtab();
        let rules = subtab.mine_rules(&MiningConfig {
            min_rule_size: 2,
            ..Default::default()
        });
        let params = SelectionParams::new(8, 10).with_targets(&["CANCELLED"]);
        let r = subtab.select(&params).unwrap();
        let r = subtab.with_highlights(r, &rules);
        assert_eq!(r.highlights.len(), 8);
        // At least one row of a planted dataset should carry a highlight.
        assert!(r.highlights.iter().any(Option::is_some));
        assert!(!r.render_with_highlights().is_empty());
        // The build-once/probe-many path produces the identical result.
        let index = HighlightIndex::build(&rules);
        let again = subtab.select(&params).unwrap();
        let again = subtab.with_highlights_indexed(again, &index);
        assert_eq!(again.highlights, r.highlights);
    }

    #[test]
    fn target_mining_through_the_facade_keeps_target_rules() {
        let subtab = flights_subtab();
        let binned = subtab.preprocessed().binned();
        let c = binned.column_index("CANCELLED").unwrap();
        let rules = subtab.mine_rules_for_targets(
            &MiningConfig {
                min_rule_size: 2,
                ..Default::default()
            },
            &[c],
        );
        assert!(!rules.is_empty());
        assert!(rules.iter().all(|r| r.uses_any_column(&[c])));
    }

    #[test]
    fn accessors() {
        let subtab = flights_subtab();
        assert_eq!(subtab.table().num_columns(), 31);
        assert_eq!(subtab.config().seed, SubTabConfig::fast().seed);
        assert!(!subtab.preprocessed().embedding().is_empty());
    }
}
