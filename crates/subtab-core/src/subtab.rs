//! The [`SubTab`] facade: preprocess once, select many times.

use crate::config::{SelectionParams, SubTabConfig};
use crate::highlight::highlight_rules;
use crate::preprocess::PreprocessedTable;
use crate::result::SubTableResult;
use crate::select::select_sub_table;
use crate::Result;
use subtab_data::{Query, Table};
use subtab_rules::RuleSet;

/// The SubTab system for one loaded table.
///
/// Construction runs the (comparatively expensive) pre-processing phase;
/// [`SubTab::select`] and [`SubTab::select_for_query`] then produce
/// informative sub-tables in interactive time, for the table itself and for
/// every exploratory query issued over it.
#[derive(Debug)]
pub struct SubTab {
    pre: PreprocessedTable,
    config: SubTabConfig,
}

impl SubTab {
    /// Runs pre-processing (normalise, bin, embed) on `table`.
    pub fn preprocess(table: Table, config: SubTabConfig) -> Result<Self> {
        let pre = PreprocessedTable::new(table, &config)?;
        Ok(SubTab { pre, config })
    }

    /// The pre-processed artefacts (binner, binned table, embedding).
    pub fn preprocessed(&self) -> &PreprocessedTable {
        &self.pre
    }

    /// The original table.
    pub fn table(&self) -> &Table {
        self.pre.table()
    }

    /// The configuration used at pre-processing time.
    pub fn config(&self) -> &SubTabConfig {
        &self.config
    }

    /// Selects a `k × l` sub-table of the full table.
    pub fn select(&self, params: &SelectionParams) -> Result<SubTableResult> {
        select_sub_table(
            &self.pre,
            None,
            params,
            self.config.seed,
            self.config.threads,
        )
    }

    /// Selects a `k × l` sub-table of the result of an SP query over the
    /// table, reusing the pre-processed binning and embedding (the cheap
    /// query-time path of Figure 1).
    pub fn select_for_query(
        &self,
        query: &Query,
        params: &SelectionParams,
    ) -> Result<SubTableResult> {
        select_sub_table(
            &self.pre,
            Some(query),
            params,
            self.config.seed,
            self.config.threads,
        )
    }

    /// Attaches per-row rule highlights to a selection result (the optional
    /// coloured-pattern display of the paper's UI). The rules are typically
    /// mined once per table with `subtab_rules::RuleMiner`.
    pub fn with_highlights(&self, mut result: SubTableResult, rules: &RuleSet) -> SubTableResult {
        result.highlights = highlight_rules(
            self.pre.binned(),
            rules,
            &result.row_indices,
            &result.columns,
        );
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_data::{Predicate, Value};
    use subtab_datasets::{flights, DatasetSize};
    use subtab_rules::{MiningConfig, RuleMiner};

    fn flights_subtab() -> SubTab {
        let ds = flights(DatasetSize::Tiny, 7);
        SubTab::preprocess(ds.table, SubTabConfig::fast()).unwrap()
    }

    #[test]
    fn end_to_end_selection_on_the_flights_standin() {
        let subtab = flights_subtab();
        let params = SelectionParams::new(10, 10).with_targets(&["CANCELLED"]);
        let r = subtab.select(&params).unwrap();
        assert_eq!(r.sub_table.num_rows(), 10);
        assert_eq!(r.sub_table.num_columns(), 10);
        assert!(r.columns.contains(&"CANCELLED".to_string()));
    }

    #[test]
    fn query_time_selection_reuses_preprocessing() {
        let subtab = flights_subtab();
        let q = Query::new().filter(Predicate::eq("CANCELLED", Value::Int(1)));
        let r = subtab
            .select_for_query(&q, &SelectionParams::new(5, 6))
            .unwrap();
        assert_eq!(r.sub_table.num_rows(), 5);
        for &row in &r.row_indices {
            assert_eq!(
                subtab.table().value(row, "CANCELLED").unwrap(),
                Value::Int(1)
            );
        }
    }

    #[test]
    fn highlights_attach_rules_to_rows() {
        let subtab = flights_subtab();
        let binned = subtab.preprocessed().binned();
        let rules = RuleMiner::new(MiningConfig {
            min_rule_size: 2,
            ..Default::default()
        })
        .mine(binned);
        let params = SelectionParams::new(8, 10).with_targets(&["CANCELLED"]);
        let r = subtab.select(&params).unwrap();
        let r = subtab.with_highlights(r, &rules);
        assert_eq!(r.highlights.len(), 8);
        // At least one row of a planted dataset should carry a highlight.
        assert!(r.highlights.iter().any(Option::is_some));
        assert!(!r.render_with_highlights().is_empty());
    }

    #[test]
    fn accessors() {
        let subtab = flights_subtab();
        assert_eq!(subtab.table().num_columns(), 31);
        assert_eq!(subtab.config().seed, SubTabConfig::fast().seed);
        assert!(!subtab.preprocessed().embedding().is_empty());
    }
}
