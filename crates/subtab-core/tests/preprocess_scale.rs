//! Equivalence suite for the scaled preprocess pipeline: on every planted
//! dataset, the streaming pair builder must reproduce the materialized
//! corpus twin exactly when the pruning knobs are off, pruning must be
//! monotone, and quantized-storage gathers must track an f64 reference
//! gather within the documented tolerances at every thread count.

use subtab_binning::Binner;
use subtab_core::SubTabConfig;
use subtab_datasets::{DatasetKind, DatasetSize};
use subtab_embed::{
    build_corpus, build_pair_stream, corpus::CorpusOptions, sgns, CellEmbedding, EmbeddingConfig,
    Quantization, StreamOptions, TokenPlane, NO_TOKEN,
};

const ALL_KINDS: [DatasetKind; 6] = [
    DatasetKind::Flights,
    DatasetKind::Cyber,
    DatasetKind::Spotify,
    DatasetKind::CreditCard,
    DatasetKind::UsFunds,
    DatasetKind::BankLoans,
];

fn binned(kind: DatasetKind) -> subtab_binning::BinnedTable {
    let dataset = kind.build(DatasetSize::Tiny, 7);
    let config = SubTabConfig::fast();
    let binner = Binner::fit(&dataset.table, &config.binning).unwrap();
    binner.apply(&dataset.table).unwrap()
}

/// The materialized twin's pair enumeration (sentence order, centers left to
/// right, contexts left to right, center skipped) — the exact loop the
/// trainer's `flatten_pairs` runs.
fn flatten(corpus: &subtab_embed::Corpus, window: Option<usize>) -> Vec<[u32; 2]> {
    let mut pairs = Vec::new();
    for sentence in &corpus.sentences {
        let len = sentence.len();
        for (i, &center) in sentence.iter().enumerate() {
            let (lo, hi) = match window {
                Some(w) => (i.saturating_sub(w), (i + w + 1).min(len)),
                None => (0, len),
            };
            for (j, &context) in sentence.iter().enumerate().take(hi).skip(lo) {
                if j != i {
                    pairs.push([center, context]);
                }
            }
        }
    }
    pairs
}

#[test]
fn streaming_pairs_match_materialized_on_every_planted_dataset() {
    let embed = SubTabConfig::fast().embedding;
    for kind in ALL_KINDS {
        let bt = binned(kind);
        let stream = build_pair_stream(
            &bt,
            &StreamOptions {
                max_sentences: embed.max_sentences,
                max_column_sentence_len: embed.max_column_sentence_len,
                include_column_sentences: embed.include_column_sentences,
                seed: embed.seed,
                window: embed.window,
                min_count: 0,
                subsample_t: 0.0,
            },
        );
        let corpus = build_corpus(
            &bt,
            &CorpusOptions {
                max_sentences: embed.max_sentences,
                max_column_sentence_len: embed.max_column_sentence_len,
                include_column_sentences: embed.include_column_sentences,
                seed: embed.seed,
            },
        );
        assert_eq!(
            stream.vocab.tokens(),
            corpus.vocab.tokens(),
            "{kind:?}: vocabulary order diverges"
        );
        for id in 0..stream.vocab.len() as u32 {
            assert_eq!(
                stream.vocab.count(id),
                corpus.vocab.count(id),
                "{kind:?}: count of token {id} diverges"
            );
        }
        let want = flatten(&corpus, embed.window);
        assert!(
            !want.is_empty(),
            "{kind:?}: planted corpus must yield pairs"
        );
        assert_eq!(stream.pairs, want, "{kind:?}: pair stream diverges");
    }
}

#[test]
fn streaming_trainer_is_byte_identical_with_knobs_off() {
    let config = SubTabConfig::fast().embedding;
    for kind in [DatasetKind::Flights, DatasetKind::Cyber] {
        let bt = binned(kind);
        let streamed = sgns::train_embedding(&bt, &config);
        let materialized = sgns::train_embedding_materialized(&bt, &config);
        assert_eq!(streamed.tokens(), materialized.tokens(), "{kind:?}");
        let a: Vec<u32> = streamed.matrix().iter().map(|x| x.to_bits()).collect();
        let b: Vec<u32> = materialized.matrix().iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b, "{kind:?}: trained matrices diverge");
    }
}

#[test]
fn pruning_is_monotone_and_surfaces_as_no_token() {
    let base_config = SubTabConfig::fast().embedding;
    for kind in [DatasetKind::Spotify, DatasetKind::UsFunds] {
        let bt = binned(kind);
        let full = sgns::train_embedding(&bt, &base_config);
        let mut prev_len = usize::MAX;
        for min_count in [0u64, 2, 8, 64] {
            let config = EmbeddingConfig {
                min_count,
                ..base_config.clone()
            };
            let model = sgns::train_embedding(&bt, &config);
            assert!(
                model.len() <= prev_len,
                "{kind:?}: vocab grew at min_count={min_count}"
            );
            prev_len = model.len();
            // Kept tokens are a subset of the unpruned vocabulary...
            for token in model.tokens() {
                assert!(
                    full.token_id(token).is_some(),
                    "{kind:?}: pruned model invented token {token}"
                );
            }
            // ...and pruned cells resolve to the sentinel the selection
            // layer already skips.
            let plane = model.token_plane(&bt);
            let full_plane = full.token_plane(&bt);
            for row in (0..plane.num_rows()).step_by(7) {
                for col in 0..plane.num_cols() {
                    if plane.id(row, col) == NO_TOKEN {
                        continue;
                    }
                    assert_ne!(
                        full_plane.id(row, col),
                        NO_TOKEN,
                        "{kind:?}: cell embedded after pruning but not before"
                    );
                }
            }
        }
    }
}

/// f64 reference gather over the dense model: accumulate `vector_owned`
/// rows in f64, divide, and compare the quantized model's f32 gather.
fn reference_row_vector(
    model: &CellEmbedding,
    plane: &TokenPlane,
    row: usize,
    cols: &[usize],
) -> Vec<f64> {
    let mut acc = vec![0.0f64; model.dim()];
    let mut n = 0usize;
    for &c in cols {
        let id = plane.id(row, c);
        if id != NO_TOKEN {
            for (a, x) in acc.iter_mut().zip(model.vector_owned(id)) {
                *a += x as f64;
            }
            n += 1;
        }
    }
    if n > 0 {
        acc.iter_mut().for_each(|a| *a /= n as f64);
    }
    acc
}

#[test]
fn quantized_gathers_track_f64_reference_at_every_thread_count() {
    // Documented tolerances, relative to the model's largest magnitude:
    // f16 carries 11 significand bits (≤ 2^-11 relative per weight), i8 a
    // per-row scale of max_abs/127 (≤ 1/254 of the row's largest magnitude
    // after rounding); the gather averages and cannot amplify either bound.
    let config = SubTabConfig::fast().embedding;
    for kind in [DatasetKind::Flights, DatasetKind::CreditCard] {
        let bt = binned(kind);
        let dense = sgns::train_embedding(&bt, &config);
        let max_abs = dense
            .matrix()
            .iter()
            .fold(0.0f32, |m, &x| m.max(x.abs()))
            .max(1.0) as f64;
        let plane = dense.token_plane(&bt);
        let cols: Vec<usize> = (0..plane.num_cols()).collect();
        let rows: Vec<usize> = (0..plane.num_rows()).step_by(11).collect();
        for (quantize, rel_tol) in [(Quantization::F16, 6e-4), (Quantization::I8, 1.2e-2)] {
            let quant = sgns::train_embedding(
                &bt,
                &EmbeddingConfig {
                    quantize,
                    ..config.clone()
                },
            );
            assert_eq!(quant.quantization(), quantize, "{kind:?}");
            let tol = rel_tol * max_abs;
            let single = quant.row_vectors(&plane, &rows, &cols, 1);
            for (i, &r) in rows.iter().enumerate() {
                let want = reference_row_vector(&dense, &plane, r, &cols);
                for (d, (&got, &want)) in single[i * quant.dim()..(i + 1) * quant.dim()]
                    .iter()
                    .zip(&want)
                    .enumerate()
                {
                    assert!(
                        (got as f64 - want).abs() <= tol,
                        "{kind:?} {quantize:?} row {r} dim {d}: {got} vs {want} (tol {tol})"
                    );
                }
            }
            // The batched gather is bit-identical across thread counts, so
            // the tolerance holds at every parallelism level.
            for threads in [2usize, 4] {
                assert_eq!(
                    single,
                    quant.row_vectors(&plane, &rows, &cols, threads),
                    "{kind:?} {quantize:?}: thread count {threads} diverges"
                );
            }
        }
    }
}
