//! Equivalence suite for the token-ID query engine: on every planted
//! dataset, whole-table and query-time selections through the integer-gather
//! path must be bit-identical to the preserved string-keyed reference path,
//! at every thread count.

use subtab_core::select::{select_sub_table, select_sub_table_strkey};
use subtab_core::{PreprocessedTable, SelectionParams, SubTabConfig};
use subtab_data::{Query, Table};
use subtab_datasets::{benchmark_projected_query, DatasetKind, DatasetSize};
use subtab_embed::NO_TOKEN;

const ALL_KINDS: [DatasetKind; 6] = [
    DatasetKind::Flights,
    DatasetKind::Cyber,
    DatasetKind::Spotify,
    DatasetKind::CreditCard,
    DatasetKind::UsFunds,
    DatasetKind::BankLoans,
];

/// The canonical selection–projection query — the same shape the `query`
/// benchmark experiment times, shared via `subtab_datasets::queries` so the
/// bench and this suite can never drift apart.
fn generic_query(table: &Table) -> Query {
    benchmark_projected_query(table)
}

#[test]
fn token_id_selections_match_strkey_on_every_planted_dataset() {
    for kind in ALL_KINDS {
        let dataset = kind.build(DatasetSize::Tiny, 7);
        let pre = PreprocessedTable::new(dataset.table, &SubTabConfig::fast()).unwrap();
        let query = generic_query(pre.table());
        let params = SelectionParams::new(8, 4);
        for seed in [3u64, 11] {
            let whole_ref = select_sub_table_strkey(&pre, None, &params, seed, 1).unwrap();
            let query_ref = select_sub_table_strkey(&pre, Some(&query), &params, seed, 1).unwrap();
            assert!(
                !query_ref.row_indices.is_empty(),
                "{kind:?}: query must match rows"
            );
            for threads in [1usize, 2, 4] {
                let whole = select_sub_table(&pre, None, &params, seed, threads).unwrap();
                assert_eq!(
                    whole.row_indices, whole_ref.row_indices,
                    "{kind:?} seed {seed} threads {threads}: whole-table rows diverge"
                );
                assert_eq!(
                    whole.columns, whole_ref.columns,
                    "{kind:?} seed {seed} threads {threads}: whole-table columns diverge"
                );
                let q = select_sub_table(&pre, Some(&query), &params, seed, threads).unwrap();
                assert_eq!(
                    q.row_indices, query_ref.row_indices,
                    "{kind:?} seed {seed} threads {threads}: query rows diverge"
                );
                assert_eq!(
                    q.columns, query_ref.columns,
                    "{kind:?} seed {seed} threads {threads}: query columns diverge"
                );
            }
        }
    }
}

#[test]
fn targeted_query_selections_match_strkey() {
    // Target columns exercise the projection-augmentation and free-column
    // bookkeeping on both engines.
    let dataset = DatasetKind::Flights.build(DatasetSize::Tiny, 7);
    let pre = PreprocessedTable::new(dataset.table, &SubTabConfig::fast()).unwrap();
    let target = pre
        .table()
        .schema()
        .field_at(pre.table().num_columns() - 1)
        .expect("index valid")
        .name
        .clone();
    let query = generic_query(pre.table());
    let params = SelectionParams::new(6, 5).with_targets(&[target.as_str()]);
    for seed in [0u64, 5] {
        for (q, label) in [(None, "whole"), (Some(&query), "query")] {
            let a = select_sub_table(&pre, q, &params, seed, 2).unwrap();
            let b = select_sub_table_strkey(&pre, q, &params, seed, 1).unwrap();
            assert_eq!(a.row_indices, b.row_indices, "{label} seed {seed}");
            assert_eq!(a.columns, b.columns, "{label} seed {seed}");
            assert!(a.columns.contains(&target), "{label} seed {seed}");
        }
    }
}

#[test]
fn token_plane_covers_every_cell_of_every_planted_dataset() {
    for kind in ALL_KINDS {
        let dataset = kind.build(DatasetSize::Tiny, 3);
        let pre = PreprocessedTable::new(dataset.table, &SubTabConfig::fast()).unwrap();
        let plane = pre.plane();
        let binned = pre.binned();
        let embedding = pre.embedding();
        assert_eq!(plane.num_rows(), binned.num_rows());
        assert_eq!(plane.num_cols(), binned.num_columns());
        // Spot-check a stratified sample of cells: the plane id must agree
        // with the string lookup, including on sentinel cells.
        for row in (0..binned.num_rows()).step_by(17) {
            for col in 0..binned.num_columns() {
                let id = plane.id(row, col);
                match embedding.cell_vector(binned, row, col) {
                    Some(v) => {
                        assert_ne!(id, NO_TOKEN, "{kind:?} cell ({row}, {col})");
                        assert_eq!(
                            embedding.vector_by_id(id),
                            v,
                            "{kind:?} cell ({row}, {col})"
                        );
                    }
                    None => assert_eq!(id, NO_TOKEN, "{kind:?} cell ({row}, {col})"),
                }
            }
        }
    }
}
