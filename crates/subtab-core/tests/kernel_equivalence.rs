//! Equivalence suite for the shared SIMD kernel layer: on every planted
//! dataset, the vectorised predicate scans behind `leaf_bitmap` must be
//! bit-identical to the pinned scalar twin `leaf_bitmap_scalar` (and to the
//! per-row `Predicate::matches` reference), and the SIMD centroid scan
//! behind `assign_points` must be bit-identical to `assign_points_scalar`
//! across thread counts and dimensions — distances compared via `to_bits`,
//! not approximately. The suite also pins the explicit-ISA scan entry
//! points against each other and honours the `SUBTAB_FORCE_SCALAR_KERNELS`
//! override used by CI.

use subtab_cluster::{assign_points, assign_points_scalar, KMeans, Matrix};
use subtab_core::select::select_sub_table;
use subtab_core::{
    leaf_bitmap, leaf_bitmap_scalar, PreprocessedTable, SelectionParams, SubTabConfig,
};
use subtab_data::{ColumnType, CompareOp, Predicate, Table, Value};
use subtab_datasets::{benchmark_ast_query, DatasetKind, DatasetSize};
use subtab_kernels::{
    scan_codes_with_isa, scan_f64_with_isa, scan_i64_with_isa, CmpOp, Isa, NumericScan,
};

const ALL_KINDS: [DatasetKind; 6] = [
    DatasetKind::Flights,
    DatasetKind::Cyber,
    DatasetKind::Spotify,
    DatasetKind::CreditCard,
    DatasetKind::UsFunds,
    DatasetKind::BankLoans,
];

const ALL_OPS: [CompareOp; 6] = [
    CompareOp::Eq,
    CompareOp::Ne,
    CompareOp::Lt,
    CompareOp::Le,
    CompareOp::Gt,
    CompareOp::Ge,
];

/// The first non-null value of the named column, searched from the middle
/// of the table so comparisons split the rows non-trivially.
fn probe_value(table: &Table, column: &str) -> Option<Value> {
    let col = table.column(column)?;
    let n = table.num_rows();
    (0..n)
        .map(|i| (i + n / 2) % n)
        .map(|r| col.get(r))
        .find(|v| !v.is_null())
}

fn cmp(column: &str, op: CompareOp, value: Value) -> Predicate {
    Predicate::Compare {
        column: column.to_string(),
        op,
        value,
    }
}

/// A labelled predicate battery covering every plane type, every compare
/// operator, null tests, set membership, ranges, and the cross-type edge
/// cases (string constant against a numeric plane, NaN constant).
fn predicate_suite(table: &Table) -> Vec<(String, Predicate)> {
    let mut out = Vec::new();
    for c in 0..table.num_columns() {
        let field = table.schema().field_at(c).expect("index valid");
        let name = field.name.clone();
        out.push((format!("{name} IS NULL"), Predicate::is_null(&name)));
        out.push((format!("{name} IS NOT NULL"), Predicate::not_null(&name)));
        let Some(v) = probe_value(table, &name) else {
            continue;
        };
        for op in ALL_OPS {
            out.push((format!("{name} {op:?} probe"), cmp(&name, op, v.clone())));
        }
        out.push((
            format!("{name} IN (probe, missing)"),
            Predicate::in_set(
                &name,
                vec![v.clone(), Value::Str("__missing__".to_string())],
            ),
        ));
        match field.ty {
            ColumnType::Float | ColumnType::Int => {
                let x = v.as_f64().expect("numeric probe widens");
                out.push((
                    format!("{name} BETWEEN probe-1 and probe+1"),
                    Predicate::between(&name, x - 1.0, x + 1.0),
                ));
                out.push((
                    format!("{name} BETWEEN empty"),
                    Predicate::between(&name, x, x),
                ));
                // A string constant against a numeric plane is row-independent:
                // the kernel const-folds it, the scalar twin evaluates per row.
                out.push((
                    format!("{name} < 'oops'"),
                    cmp(&name, CompareOp::Lt, Value::Str("oops".to_string())),
                ));
                out.push((
                    format!("{name} = 'oops'"),
                    cmp(&name, CompareOp::Eq, Value::Str("oops".to_string())),
                ));
                // NaN constant: Eq lowers to an is-NaN probe, Ne to its
                // complement, and the ordered compares use total_cmp.
                out.push((
                    format!("{name} = NaN"),
                    cmp(&name, CompareOp::Eq, Value::Float(f64::NAN)),
                ));
                out.push((
                    format!("{name} >= NaN"),
                    cmp(&name, CompareOp::Ge, Value::Float(f64::NAN)),
                ));
            }
            ColumnType::Str => {
                out.push((
                    format!("{name} != absent"),
                    cmp(&name, CompareOp::Ne, Value::Str("__absent__".to_string())),
                ));
            }
            ColumnType::Bool => {
                out.push((
                    format!("{name} != true"),
                    cmp(&name, CompareOp::Ne, Value::Bool(true)),
                ));
            }
        }
    }
    out
}

/// Rows matched by the per-row reference evaluator.
fn brute_rows(table: &Table, p: &Predicate) -> Vec<usize> {
    (0..table.num_rows())
        .filter(|&r| p.matches(table, r).expect("reference evaluation"))
        .collect()
}

#[test]
fn kernel_leaf_bitmaps_match_scalar_twins_on_every_planted_dataset() {
    for kind in ALL_KINDS {
        let dataset = kind.build(DatasetSize::Tiny, 9);
        let table = &dataset.table;
        let suite = predicate_suite(table);
        assert!(
            suite.len() >= 3 * table.num_columns(),
            "{kind:?}: predicate battery too thin"
        );
        for (label, p) in suite {
            let kernel = leaf_bitmap(table, &p).expect("kernel leaf compiles");
            let scalar = leaf_bitmap_scalar(table, &p).expect("scalar leaf compiles");
            assert_eq!(
                kernel.as_words(),
                scalar.as_words(),
                "{kind:?} [{label}]: kernel words diverge from the scalar twin"
            );
            assert_eq!(
                kernel.indices(),
                brute_rows(table, &p),
                "{kind:?} [{label}]: kernel bitmap diverges from per-row matches"
            );
        }
    }
}

/// Deterministic pseudo-random f32 in [-1, 1): a splitmix64 mix of the
/// (seed, index) pair — no RNG state to thread through the loops.
fn mixed_unit(seed: u64, index: u64) -> f32 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 40) as f32 / (1u64 << 23) as f32 * 2.0 - 1.0
}

/// A point matrix derived deterministically from a planted table: one point
/// per row (padded past the threading threshold so `threads > 1` actually
/// fans out), features mixed from the dataset seed.
fn planted_points(kind: DatasetKind, table: &Table, dim: usize) -> Matrix {
    let seed = kind.label().bytes().fold(0x243f_6a88_85a3_08d3u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    let n = table.num_rows().max(1300);
    let data: Vec<f32> = (0..n * dim).map(|i| mixed_unit(seed, i as u64)).collect();
    Matrix::new(data, dim)
}

#[test]
fn simd_assignments_match_the_scalar_twin_across_dims_and_threads() {
    for kind in ALL_KINDS {
        let dataset = kind.build(DatasetSize::Tiny, 9);
        for dim in [8usize, 16, 32, 64] {
            let points = planted_points(kind, &dataset.table, dim);
            let n = points.num_rows();
            let k = 9usize;
            let centroids: Vec<f32> = (0..k * dim)
                .map(|i| points.data()[(i * 31) % (n * dim)])
                .collect();

            let mut ref_assign = vec![0usize; n];
            let mut ref_dists = vec![0.0f32; n];
            assign_points_scalar(
                points.view(),
                &centroids,
                dim,
                &mut ref_assign,
                &mut ref_dists,
                1,
            );

            for threads in [1usize, 2, 4] {
                let mut assign = vec![usize::MAX; n];
                let mut dists = vec![f32::NAN; n];
                assign_points(
                    points.view(),
                    &centroids,
                    dim,
                    &mut assign,
                    &mut dists,
                    threads,
                    true,
                );
                assert_eq!(
                    assign, ref_assign,
                    "{kind:?} dim {dim} threads {threads}: assignments diverge"
                );
                let bits: Vec<u32> = dists.iter().map(|d| d.to_bits()).collect();
                let ref_bits: Vec<u32> = ref_dists.iter().map(|d| d.to_bits()).collect();
                assert_eq!(
                    bits, ref_bits,
                    "{kind:?} dim {dim} threads {threads}: distances not bit-identical"
                );
            }
        }
    }
}

#[test]
fn explicit_isa_scans_agree_on_every_available_tier() {
    let values: Vec<f64> = (0..257)
        .map(|i| match i % 13 {
            0 => f64::NAN,
            1 => f64::NEG_INFINITY,
            2 => -0.0,
            _ => (i as f64 - 128.0) * 1.75,
        })
        .collect();
    let ints: Vec<i64> = (0..257).map(|i| (i as i64 - 128) * 3).collect();
    let codes: Vec<u32> = (0..257).map(|i| (i % 5) as u32).collect();
    let table = [false, true, false, true, true];
    let scans = [
        NumericScan::Cmp {
            op: CmpOp::Lt,
            constant: 3.5,
        },
        NumericScan::Cmp {
            op: CmpOp::Ge,
            constant: -0.0,
        },
        NumericScan::Between {
            low: -40.0,
            high: 40.0,
        },
        NumericScan::InSet {
            values: vec![0.0, f64::NAN, 21.0],
        },
    ];
    for isa in [Isa::Avx512, Isa::Avx2Fma] {
        if !isa.available() {
            continue;
        }
        for scan in &scans {
            assert_eq!(
                scan_f64_with_isa(isa, &values, scan),
                scan_f64_with_isa(Isa::Scalar, &values, scan),
                "{isa:?} f64 scan diverges from scalar on {scan:?}"
            );
            assert_eq!(
                scan_i64_with_isa(isa, &ints, scan),
                scan_i64_with_isa(Isa::Scalar, &ints, scan),
                "{isa:?} i64 scan diverges from scalar on {scan:?}"
            );
        }
        assert_eq!(
            scan_codes_with_isa(isa, &codes, &table),
            scan_codes_with_isa(Isa::Scalar, &codes, &table),
            "{isa:?} code scan diverges from scalar"
        );
    }
}

/// When CI sets `SUBTAB_FORCE_SCALAR_KERNELS`, every default dispatch must
/// land on the scalar tier; otherwise detection must match the CPU flags.
/// Env handling is latched once per process, so this reads the same state
/// the kernels themselves latched.
#[test]
fn forced_scalar_override_pins_default_dispatch() {
    let forced =
        std::env::var("SUBTAB_FORCE_SCALAR_KERNELS").is_ok_and(|v| !v.is_empty() && v != "0");
    if forced {
        assert_eq!(subtab_kernels::detect(), Isa::Scalar);
        assert!(!subtab_kernels::has_avx512f());
        assert!(!subtab_kernels::has_avx2_fma());
    } else {
        let expect = if subtab_kernels::has_avx512f() {
            Isa::Avx512
        } else if subtab_kernels::has_avx2_fma() {
            Isa::Avx2Fma
        } else {
            Isa::Scalar
        };
        assert_eq!(subtab_kernels::detect(), expect);
    }
}

/// End-to-end: the full compiled selection pipeline stays bit-identical
/// across thread counts on top of the kernel layer, and the
/// non-deterministic (fused) clustering path still produces a valid
/// clustering of the same shape.
#[test]
fn selection_pipeline_stays_deterministic_on_top_of_the_kernels() {
    let dataset = DatasetKind::Spotify.build(DatasetSize::Tiny, 9);
    let pre = PreprocessedTable::new(dataset.table, &SubTabConfig::fast()).unwrap();
    let params = SelectionParams::new(6, 4);
    let query = benchmark_ast_query(pre.table());
    let reference = select_sub_table(&pre, Some(&query), &params, 5, 1).unwrap();
    assert!(!reference.row_indices.is_empty());
    for threads in [2usize, 4] {
        let got = select_sub_table(&pre, Some(&query), &params, 5, threads).unwrap();
        assert_eq!(got.row_indices, reference.row_indices);
        assert_eq!(got.columns, reference.columns);
    }

    // The reassociating fused variant is opt-in and must still converge to a
    // complete clustering (it only relaxes bit-identity, not correctness).
    let points = planted_points(DatasetKind::Spotify, pre.table(), 16);
    let fused = KMeans::new(4, 42).deterministic(false).fit(points.view());
    assert_eq!(fused.assignments.len(), points.num_rows());
    assert!(fused.assignments.iter().all(|&a| a < 4));
}
