//! Equivalence suite for the compiled query frontend: on every planted
//! dataset, the bitmap-compiled evaluation of a `QueryExpr` tree must be
//! bit-identical to the per-row `QueryExpr::matches` reference — including
//! NULL-bearing columns, empty-match expressions, and deeply nested trees —
//! and the full selection pipeline must agree between the compiled engine
//! (`select_sub_table`) and the preserved per-row engine
//! (`select_sub_table_strkey`) at every thread count.

use subtab_core::select::{select_sub_table, select_sub_table_strkey};
use subtab_core::{
    compiled_selection_rows, query_bitmap, PreprocessedTable, SelectionParams, SubTabConfig,
};
use subtab_data::{Predicate, Query, QueryExpr, Table, Value};
use subtab_datasets::{benchmark_ast_query, benchmark_deep_nest_query, DatasetKind, DatasetSize};

const ALL_KINDS: [DatasetKind; 6] = [
    DatasetKind::Flights,
    DatasetKind::Cyber,
    DatasetKind::Spotify,
    DatasetKind::CreditCard,
    DatasetKind::UsFunds,
    DatasetKind::BankLoans,
];

/// The name of a column that actually contains at least one NULL, if any.
fn null_column(table: &Table) -> Option<String> {
    for (c, col) in table.columns().iter().enumerate() {
        if (0..table.num_rows()).any(|r| col.is_null(r)) {
            return table.schema().field_at(c).map(|f| f.name.clone());
        }
    }
    None
}

/// The first non-null value of the named column.
fn first_value(table: &Table, column: &str) -> Option<Value> {
    let col = table.column(column)?;
    (0..table.num_rows())
        .map(|r| col.get(r))
        .find(|v| !v.is_null())
}

/// A labelled battery of expression shapes for one table: the shared
/// benchmark trees plus NULL-column probes and guaranteed-empty matches.
fn expr_suite(table: &Table) -> Vec<(String, QueryExpr)> {
    let mut out = vec![
        ("benchmark ast".to_string(), benchmark_ast_query(table).expr),
        (
            "deep nest".to_string(),
            benchmark_deep_nest_query(table).expr,
        ),
    ];
    // Probe a column that genuinely carries NULLs (every planted dataset
    // should have one; skip gracefully if a spec has none).
    if let Some(nc) = null_column(table) {
        out.push((
            format!("{nc} IS NULL"),
            QueryExpr::leaf(Predicate::is_null(&nc)),
        ));
        out.push((
            format!("NOT {nc} IS NOT NULL"),
            QueryExpr::leaf(Predicate::not_null(&nc)).negated(),
        ));
        if let Some(v) = first_value(table, &nc) {
            // NOT (c = v) is NOT the same as c != v on NULL rows; the
            // compiled complement must reproduce the two-valued semantics.
            out.push((
                format!("NOT {nc} = <first>"),
                QueryExpr::leaf(Predicate::eq(&nc, v)).negated(),
            ));
        }
    }
    // An expression no row can satisfy, on the first column.
    if let Some(f) = table.schema().field_at(0) {
        out.push((
            format!("{} empty match", f.name),
            QueryExpr::and(vec![
                QueryExpr::leaf(Predicate::is_null(&f.name)),
                QueryExpr::leaf(Predicate::not_null(&f.name)),
            ]),
        ));
    }
    out
}

/// Rows matched by the per-row reference evaluator.
fn brute_rows(table: &Table, expr: &QueryExpr) -> Vec<usize> {
    (0..table.num_rows())
        .filter(|&r| expr.matches(table, r).expect("reference evaluation"))
        .collect()
}

/// Maximum leaf depth of an expression tree.
fn expr_depth(expr: &QueryExpr) -> usize {
    match expr {
        QueryExpr::Leaf(_) => 1,
        QueryExpr::Not(inner) => 1 + expr_depth(inner),
        QueryExpr::And(children) | QueryExpr::Or(children) => {
            1 + children.iter().map(expr_depth).max().unwrap_or(0)
        }
    }
}

#[test]
fn compiled_bitmaps_match_per_row_matches_on_every_planted_dataset() {
    for kind in ALL_KINDS {
        let dataset = kind.build(DatasetSize::Tiny, 7);
        let table = &dataset.table;
        let mut saw_empty = false;
        for (label, expr) in expr_suite(table) {
            let reference = brute_rows(table, &expr);
            let bitmap = query_bitmap(table, &expr).expect("compiles");
            assert_eq!(
                bitmap.indices(),
                reference,
                "{kind:?} [{label}]: compiled bitmap diverges from per-row matches"
            );
            assert_eq!(
                bitmap.count(),
                reference.len(),
                "{kind:?} [{label}]: popcount diverges"
            );
            saw_empty |= reference.is_empty();
            // The canonical rewrite must preserve the matched row set.
            let canon = expr.canonical();
            assert_eq!(
                query_bitmap(table, &canon)
                    .expect("canonical compiles")
                    .indices(),
                reference,
                "{kind:?} [{label}]: canonicalization changed the row set"
            );
        }
        assert!(saw_empty, "{kind:?}: suite must include an empty match");
    }
}

#[test]
fn compiled_and_per_row_selection_engines_agree_at_every_thread_count() {
    for kind in ALL_KINDS {
        let dataset = kind.build(DatasetSize::Tiny, 7);
        let pre = PreprocessedTable::new(dataset.table, &SubTabConfig::fast()).unwrap();
        let params = SelectionParams::new(6, 4);
        for query in [
            benchmark_ast_query(pre.table()),
            benchmark_deep_nest_query(pre.table()),
        ] {
            let reference = select_sub_table_strkey(&pre, Some(&query), &params, 5, 1).unwrap();
            assert!(
                !reference.row_indices.is_empty(),
                "{kind:?}: benchmark query must match rows"
            );
            for threads in [1usize, 2, 4] {
                let compiled = select_sub_table(&pre, Some(&query), &params, 5, threads).unwrap();
                assert_eq!(
                    compiled.row_indices, reference.row_indices,
                    "{kind:?} threads {threads}: rows diverge"
                );
                assert_eq!(
                    compiled.columns, reference.columns,
                    "{kind:?} threads {threads}: columns diverge"
                );
            }
        }
    }
}

/// The acceptance-criteria round trip: a nested query of depth ≥ 3 goes
/// text → AST → canonical key → compiled bitmap, the compiled selection is
/// bit-identical to brute force, and a commuted respelling lands on the
/// same canonical selection key (hence the same server cache entry).
#[test]
fn nested_text_query_round_trips_through_the_compiled_engine() {
    let dataset = DatasetKind::Cyber.build(DatasetSize::Tiny, 11);
    let table = &dataset.table;

    let text = "flagged = 1 AND (protocol = 'udp' OR NOT protocol IN ('tcp', 'icmp')) LIMIT 20";
    let query: Query = text.parse().expect("nested query parses");
    assert!(
        expr_depth(&query.expr) >= 3,
        "acceptance query must nest at least three levels"
    );

    // Text → AST → printed text → AST again: stable canonical key.
    let reprinted = query.to_string();
    let reparsed: Query = reprinted.parse().expect("printed form reparses");
    assert_eq!(query.selection_key(), reparsed.selection_key());

    // A commuted, De-Morganed respelling shares the canonical key.
    let commuted: Query =
        "(NOT (protocol = 'icmp' OR protocol = 'tcp') OR protocol = 'udp') AND flagged = 1.0 LIMIT 20"
            .parse()
            .expect("commuted spelling parses");
    assert_eq!(query.selection_key(), commuted.selection_key());

    // Compiled selection == per-row selection == brute force + LIMIT.
    let compiled = compiled_selection_rows(table, &query).expect("compiles");
    let per_row = query.selection_rows(table).expect("reference selects");
    assert_eq!(compiled, per_row, "compiled selection diverges");
    let mut brute = brute_rows(table, &query.expr);
    assert!(!brute.is_empty(), "nested query must match rows");
    brute.truncate(20);
    assert_eq!(compiled, brute, "LIMIT-truncated brute force diverges");
}
