//! Equivalence suite for the columnar storage layer: on every planted
//! dataset, the zero-copy view planes must agree cell-for-cell with the
//! row-wise `Value` shim, columnar binning must match the per-row
//! reference, and selections and mined rule sets must be bit-identical
//! across storage paths and thread counts.

use subtab_binning::{Binner, BinningConfig};
use subtab_core::select::{select_sub_table, select_sub_table_strkey};
use subtab_core::{PreprocessedTable, SelectionParams, SubTabConfig};
use subtab_data::{Column, Table, Value};
use subtab_datasets::{
    benchmark_projected_query, benchmark_target_column, DatasetKind, DatasetSize,
};
use subtab_rules::{MiningConfig, RuleMiner};

const ALL_KINDS: [DatasetKind; 6] = [
    DatasetKind::Flights,
    DatasetKind::Cyber,
    DatasetKind::Spotify,
    DatasetKind::CreditCard,
    DatasetKind::UsFunds,
    DatasetKind::BankLoans,
];

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Checks one column's planes against its row-wise accessors: the validity
/// bitmap must mirror `is_null`, valid slots must hold the row value, and
/// null slots must hold the documented sentinel.
fn assert_views_match_rows(col: &Column) {
    let n = col.len();
    assert_eq!(col.validity().count(), n - col.null_count());
    if let Some(v) = col.float_view() {
        assert_eq!(v.values.len(), n);
        for row in 0..n {
            assert_eq!(v.validity.get(row), !col.is_null(row));
            match col.get(row) {
                Value::Float(x) => assert_eq!(v.values[row], x),
                Value::Null => assert_eq!(v.values[row], 0.0, "sentinel at {row}"),
                other => panic!("float column yielded {other:?}"),
            }
        }
    }
    if let Some(v) = col.int_view() {
        assert_eq!(v.values.len(), n);
        for row in 0..n {
            assert_eq!(v.validity.get(row), !col.is_null(row));
            match col.get(row) {
                Value::Int(x) => assert_eq!(v.values[row], x),
                Value::Null => assert_eq!(v.values[row], 0, "sentinel at {row}"),
                other => panic!("int column yielded {other:?}"),
            }
        }
    }
    if let Some(v) = col.bool_view() {
        for row in 0..n {
            assert_eq!(v.validity.get(row), !col.is_null(row));
            match col.get(row) {
                Value::Bool(x) => assert_eq!(v.values[row], x),
                Value::Null => assert!(!v.values[row], "sentinel at {row}"),
                other => panic!("bool column yielded {other:?}"),
            }
        }
    }
    if let Some(v) = col.code_view() {
        assert_eq!(v.codes.len(), n);
        for row in 0..n {
            assert_eq!(v.validity.get(row), !col.is_null(row));
            match col.get(row) {
                Value::Str(s) => assert_eq!(v.dict[v.codes[row] as usize], s),
                Value::Null => assert_eq!(v.codes[row], 0, "sentinel at {row}"),
                other => panic!("str column yielded {other:?}"),
            }
        }
    }
    if let Some(v) = col.numeric_view() {
        assert_eq!(v.values.len(), n);
        for row in 0..n {
            match col.get_f64(row) {
                Some(x) => assert_eq!(v.values[row], x),
                None => assert_eq!(v.values[row], 0.0, "sentinel at {row}"),
            }
        }
    }
}

#[test]
fn views_match_the_row_api_on_every_planted_dataset() {
    for kind in ALL_KINDS {
        let dataset = kind.build(DatasetSize::Tiny, 7);
        for col in dataset.table.columns() {
            assert_views_match_rows(col);
        }
    }
}

#[test]
fn columnar_binning_matches_the_per_row_reference() {
    for kind in ALL_KINDS {
        let dataset = kind.build(DatasetSize::Tiny, 7);
        let table = &dataset.table;
        let binner = Binner::fit(table, &BinningConfig::default()).unwrap();
        let binned = binner.apply(table).unwrap();
        for (ci, name) in table.column_names().iter().enumerate() {
            let bi = binned.column_index(name).unwrap();
            for row in 0..table.num_rows() {
                let value = table.value(row, name).unwrap();
                let reference = binner.bin_value(name, &value).unwrap();
                assert_eq!(
                    binned.bin_id(row, bi),
                    reference,
                    "{kind:?} col {ci} ({name}) row {row}: columnar apply \
                     disagrees with the per-row reference"
                );
            }
        }
    }
}

#[test]
fn selections_agree_across_engines_and_thread_counts() {
    for kind in ALL_KINDS {
        let dataset = kind.build(DatasetSize::Tiny, 7);
        let pre = PreprocessedTable::new(dataset.table, &SubTabConfig::fast()).unwrap();
        let query = benchmark_projected_query(pre.table());
        let params = SelectionParams::new(8, 4);
        let seed = 11u64;
        let reference = select_sub_table(&pre, Some(&query), &params, seed, 1).unwrap();
        assert!(
            !reference.row_indices.is_empty(),
            "{kind:?}: empty selection"
        );
        for threads in THREAD_COUNTS {
            let run = select_sub_table(&pre, Some(&query), &params, seed, threads).unwrap();
            assert_eq!(
                run.row_indices, reference.row_indices,
                "{kind:?} {threads}t"
            );
            assert_eq!(run.columns, reference.columns, "{kind:?} {threads}t");
            let strkey =
                select_sub_table_strkey(&pre, Some(&query), &params, seed, threads).unwrap();
            assert_eq!(strkey.row_indices, reference.row_indices, "{kind:?} strkey");
            assert_eq!(strkey.columns, reference.columns, "{kind:?} strkey");
        }
    }
}

#[test]
fn rule_sets_agree_across_engines_and_thread_counts() {
    for kind in ALL_KINDS {
        let dataset = kind.build(DatasetSize::Tiny, 7);
        let binner = Binner::fit(&dataset.table, &BinningConfig::default()).unwrap();
        let binned = binner.apply(&dataset.table).unwrap();
        let target = binned
            .column_index(&benchmark_target_column(&dataset.table))
            .unwrap();
        // Bounded the same way as `subtab-rules/tests/bitmap_equivalence.rs`:
        // a higher support floor (and a rule-size cap for the 298-column
        // US-funds schema) keeps the Apriori oracle affordable in debug
        // builds. Equivalence must hold at any parameters.
        let config = MiningConfig {
            min_support: 0.2,
            max_rule_size: if kind == DatasetKind::UsFunds {
                3
            } else {
                MiningConfig::default().max_rule_size
            },
            ..Default::default()
        };
        let whole_ref = RuleMiner::new(config.clone()).mine_apriori(&binned);
        let target_ref =
            RuleMiner::new(config.clone()).mine_with_targets_apriori(&binned, &[target]);
        for threads in THREAD_COUNTS {
            let miner = RuleMiner::new(config.clone().with_threads(threads));
            assert_eq!(
                miner.mine(&binned).rules,
                whole_ref.rules,
                "{kind:?} whole-table mining at {threads}t"
            );
            assert_eq!(
                miner.mine_with_targets(&binned, &[target]).rules,
                target_ref.rules,
                "{kind:?} target mining at {threads}t"
            );
        }
    }
}

/// Deterministic xorshift generator — enough randomness for a property
/// test without pulling a dependency into the suite.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn chance(&mut self, permille: u64) -> bool {
        self.next() % 1000 < permille
    }
}

/// Property test: random columns of every type, at lengths straddling the
/// validity bitmap's 64-bit word boundaries and with null densities from
/// none to almost-all, must keep views and row accessors in agreement —
/// including after growing past the original allocation.
#[test]
fn random_columns_keep_planes_and_rows_consistent() {
    let mut rng = XorShift(0x5DEECE66D);
    for &len in &[0usize, 1, 63, 64, 65, 127, 128, 129, 300] {
        // 0 = no nulls, 1000 = all-null; the extremes exercise the
        // full-word fast paths of the validity bitmap.
        for &null_permille in &[0u64, 10, 500, 950, 1000] {
            let ints: Vec<Option<i64>> = (0..len)
                .map(|_| (!rng.chance(null_permille)).then(|| rng.next() as i64 % 1_000))
                .collect();
            let floats: Vec<Option<f64>> = (0..len)
                .map(|_| (!rng.chance(null_permille)).then(|| (rng.next() % 10_000) as f64 / 7.0))
                .collect();
            let strs: Vec<Option<String>> = (0..len)
                .map(|_| (!rng.chance(null_permille)).then(|| format!("v{}", rng.next() % 23)))
                .collect();
            let bools: Vec<Option<bool>> = (0..len)
                .map(|_| (!rng.chance(null_permille)).then(|| rng.chance(500)))
                .collect();
            let mut columns = vec![
                Column::from_i64("i", ints.clone()),
                Column::from_f64("f", floats.clone()),
                Column::from_str_values("s", strs.clone()),
                Column::from_bool("b", bools.clone()),
            ];
            for col in &columns {
                assert_views_match_rows(col);
            }
            // Round-trip: every original Option must come back via get().
            for (row, x) in ints.iter().enumerate() {
                assert_eq!(columns[0].get(row), x.map_or(Value::Null, Value::Int));
            }
            for (row, x) in strs.iter().enumerate() {
                assert_eq!(
                    columns[2].get(row),
                    x.clone().map_or(Value::Null, Value::Str)
                );
            }
            // Growing past the word boundary must preserve the contract.
            for col in &mut columns {
                for _ in 0..3 {
                    col.push(Value::Null).unwrap();
                }
            }
            for col in &columns {
                assert_eq!(col.len(), len + 3);
                assert_views_match_rows(col);
            }
        }
    }
}

/// Appending rows through a reserved table must be indistinguishable from
/// plain appends — same cells, same validity — across all column types.
#[test]
fn reserved_tables_match_plain_appends() {
    let dataset = DatasetKind::Cyber.build(DatasetSize::Tiny, 7);
    let source = &dataset.table;
    let names: Vec<&str> = source.column_names();
    let schema = source.schema().clone();
    let mut plain = Table::empty(schema.clone());
    let mut reserved = Table::empty(schema);
    reserved.reserve_rows(source.num_rows());
    for row in 0..source.num_rows().min(200) {
        let values = source.row(row).unwrap();
        plain.push_row(values.clone()).unwrap();
        reserved.push_row(values).unwrap();
    }
    assert_eq!(plain.num_rows(), reserved.num_rows());
    for name in names {
        let (p, r) = (plain.column(name).unwrap(), reserved.column(name).unwrap());
        for row in 0..plain.num_rows() {
            assert_eq!(p.get(row), r.get(row));
        }
        assert_views_match_rows(r);
    }
}
