//! Canonical benchmark queries over the planted datasets.
//!
//! The query benchmark and the token-ID equivalence suite must exercise the
//! *same* query shapes, so the builders live here — next to the dataset
//! generators whose schemas they assume — instead of being duplicated at
//! each consumer.

use subtab_data::{Predicate, Query, QueryExpr, Table};

/// An equality filter guaranteed to match a non-trivial subset of rows on
/// any planted dataset: the first column whose row-0 value is non-null and
/// repeats at least 4 times within the first 64 rows (every generator
/// plants low-cardinality categorical columns, so the scan always finds
/// one).
///
/// Panics if no column qualifies — that would mean a dataset generator no
/// longer plants a repeated categorical value, which both the benchmark and
/// the equivalence suite rely on.
pub fn benchmark_filter(table: &Table) -> Predicate {
    let (filter_col, filter_value) = repeated_value_column(table);
    Predicate::eq(&filter_col, filter_value)
}

/// The canonical target column of the rule-mining benchmark and the
/// bitmap-vs-Apriori equivalence suite: the same low-cardinality column
/// [`benchmark_filter`] filters on, so target-partitioned mining always has
/// non-trivial per-bin partitions to fan out over.
pub fn benchmark_target_column(table: &Table) -> String {
    repeated_value_column(table).0
}

/// The first column whose row-0 value is non-null and repeats at least 4
/// times within the first 64 rows (every generator plants low-cardinality
/// categorical columns, so the scan always finds one). Panics otherwise —
/// that would mean a dataset generator no longer plants a repeated
/// categorical value, which the benchmarks and equivalence suites rely on.
fn repeated_value_column(table: &Table) -> (String, subtab_data::Value) {
    let probe = table.num_rows().min(64);
    column_names(table)
        .iter()
        .find_map(|name| {
            let v0 = table.value(0, name).ok()?;
            if v0.is_null() {
                return None;
            }
            let repeats = (1..probe)
                .filter(|&r| table.value(r, name).is_ok_and(|v| v == v0))
                .count();
            (repeats >= 4).then_some((name.clone(), v0))
        })
        .expect("every planted dataset has a repeated categorical value")
}

/// The selection-only benchmark query: [`benchmark_filter`] with no
/// projection, so candidate columns are the full schema — the
/// gather-heaviest canonical query shape.
pub fn benchmark_filter_query(table: &Table) -> Query {
    Query::new().filter(benchmark_filter(table))
}

/// The selection–projection benchmark query: the same filter plus the first
/// half of the columns (at least 2) projected.
pub fn benchmark_projected_query(table: &Table) -> Query {
    let names = column_names(table);
    let projected: Vec<&str> = names
        .iter()
        .take((names.len() / 2).max(2))
        .map(String::as_str)
        .collect();
    Query::new()
        .filter(benchmark_filter(table))
        .select(&projected)
}

/// The nested-AST benchmark query (depth ≥ 3: `AND` → `OR` → `NOT` →
/// leaf), built on the same repeated categorical value as
/// [`benchmark_filter`]. The tree is arranged so its row set is *exactly*
/// the [`benchmark_filter_query`] row set — `(c = v OR NOT c IS NOT NULL)
/// AND c IS NOT NULL` — so the AST benchmark modes measure tree-evaluation
/// overhead against the flat filter at identical selection work, and the
/// equivalence suite can pin all three queries to one reference row set.
pub fn benchmark_ast_query(table: &Table) -> Query {
    let (col, value) = repeated_value_column(table);
    Query::expr(QueryExpr::and(vec![
        QueryExpr::or(vec![
            QueryExpr::leaf(Predicate::eq(&col, value)),
            QueryExpr::leaf(Predicate::not_null(&col)).negated(),
        ]),
        QueryExpr::leaf(Predicate::not_null(&col)),
    ]))
}

/// The deeply nested benchmark query: [`benchmark_ast_query`]'s tree
/// wrapped in three rounds of double negation plus a redundant `AND c IS
/// NOT NULL` conjunct (depth > 10, 8 leaves). Every wrap preserves the row
/// set, so this still selects exactly the [`benchmark_filter_query`] rows
/// while stressing tree traversal, `NOT` compilation, and canonicalization
/// depth.
pub fn benchmark_deep_nest_query(table: &Table) -> Query {
    let (col, _) = repeated_value_column(table);
    let mut expr = benchmark_ast_query(table).expr;
    for _ in 0..3 {
        expr = QueryExpr::and(vec![
            expr.negated().negated(),
            QueryExpr::leaf(Predicate::not_null(&col)),
        ]);
    }
    Query::expr(expr)
}

fn column_names(table: &Table) -> Vec<String> {
    (0..table.num_columns())
        .map(|c| {
            table
                .schema()
                .field_at(c)
                .expect("index valid")
                .name
                .clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, DatasetSize};

    fn expr_depth(e: &QueryExpr) -> usize {
        match e {
            QueryExpr::Leaf(_) => 1,
            QueryExpr::Not(inner) => 1 + expr_depth(inner),
            QueryExpr::And(cs) | QueryExpr::Or(cs) => {
                1 + cs.iter().map(expr_depth).max().unwrap_or(0)
            }
        }
    }

    #[test]
    fn benchmark_queries_hold_on_every_planted_dataset() {
        for kind in [
            DatasetKind::Flights,
            DatasetKind::Cyber,
            DatasetKind::Spotify,
            DatasetKind::CreditCard,
            DatasetKind::UsFunds,
            DatasetKind::BankLoans,
        ] {
            let dataset = kind.build(DatasetSize::Tiny, 5);
            let fq = benchmark_filter_query(&dataset.table);
            let matched = fq.matching_rows(&dataset.table).unwrap();
            assert!(!matched.is_empty(), "{kind:?}: filter must match rows");
            assert!(matched.len() <= dataset.table.num_rows());
            assert!(fq.projection.is_none());
            let pq = benchmark_projected_query(&dataset.table);
            assert_eq!(
                pq.matching_rows(&dataset.table).unwrap(),
                matched,
                "{kind:?}: both queries share the filter"
            );
            // The nested and deeply nested AST queries select the exact
            // same rows as the flat filter, by construction.
            let aq = benchmark_ast_query(&dataset.table);
            assert_eq!(
                aq.matching_rows(&dataset.table).unwrap(),
                matched,
                "{kind:?}: the AST query preserves the filter's row set"
            );
            let dq = benchmark_deep_nest_query(&dataset.table);
            assert_eq!(
                dq.matching_rows(&dataset.table).unwrap(),
                matched,
                "{kind:?}: deep nesting preserves the filter's row set"
            );
            // Depth is what the AST benchmark modes advertise.
            assert!(expr_depth(&aq.expr) >= 3, "{kind:?}: nested query depth");
            assert!(expr_depth(&dq.expr) > 10, "{kind:?}: deep query depth");
            let target = benchmark_target_column(&dataset.table);
            assert!(
                dataset.table.schema().index_of(&target).is_some(),
                "{kind:?}: target column must exist"
            );
            let proj = pq.projection.as_ref().expect("projection set");
            assert!(proj.len() >= 2);
            assert!(proj.len() <= dataset.table.num_columns());
        }
    }
}
