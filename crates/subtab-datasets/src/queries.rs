//! Canonical benchmark queries over the planted datasets.
//!
//! The query benchmark and the token-ID equivalence suite must exercise the
//! *same* query shapes, so the builders live here — next to the dataset
//! generators whose schemas they assume — instead of being duplicated at
//! each consumer.

use subtab_data::{Predicate, Query, Table};

/// An equality filter guaranteed to match a non-trivial subset of rows on
/// any planted dataset: the first column whose row-0 value is non-null and
/// repeats at least 4 times within the first 64 rows (every generator
/// plants low-cardinality categorical columns, so the scan always finds
/// one).
///
/// Panics if no column qualifies — that would mean a dataset generator no
/// longer plants a repeated categorical value, which both the benchmark and
/// the equivalence suite rely on.
pub fn benchmark_filter(table: &Table) -> Predicate {
    let (filter_col, filter_value) = repeated_value_column(table);
    Predicate::eq(&filter_col, filter_value)
}

/// The canonical target column of the rule-mining benchmark and the
/// bitmap-vs-Apriori equivalence suite: the same low-cardinality column
/// [`benchmark_filter`] filters on, so target-partitioned mining always has
/// non-trivial per-bin partitions to fan out over.
pub fn benchmark_target_column(table: &Table) -> String {
    repeated_value_column(table).0
}

/// The first column whose row-0 value is non-null and repeats at least 4
/// times within the first 64 rows (every generator plants low-cardinality
/// categorical columns, so the scan always finds one). Panics otherwise —
/// that would mean a dataset generator no longer plants a repeated
/// categorical value, which the benchmarks and equivalence suites rely on.
fn repeated_value_column(table: &Table) -> (String, subtab_data::Value) {
    let probe = table.num_rows().min(64);
    column_names(table)
        .iter()
        .find_map(|name| {
            let v0 = table.value(0, name).ok()?;
            if v0.is_null() {
                return None;
            }
            let repeats = (1..probe)
                .filter(|&r| table.value(r, name).is_ok_and(|v| v == v0))
                .count();
            (repeats >= 4).then_some((name.clone(), v0))
        })
        .expect("every planted dataset has a repeated categorical value")
}

/// The selection-only benchmark query: [`benchmark_filter`] with no
/// projection, so candidate columns are the full schema — the
/// gather-heaviest canonical query shape.
pub fn benchmark_filter_query(table: &Table) -> Query {
    Query::new().filter(benchmark_filter(table))
}

/// The selection–projection benchmark query: the same filter plus the first
/// half of the columns (at least 2) projected.
pub fn benchmark_projected_query(table: &Table) -> Query {
    let names = column_names(table);
    let projected: Vec<&str> = names
        .iter()
        .take((names.len() / 2).max(2))
        .map(String::as_str)
        .collect();
    Query::new()
        .filter(benchmark_filter(table))
        .select(&projected)
}

fn column_names(table: &Table) -> Vec<String> {
    (0..table.num_columns())
        .map(|c| {
            table
                .schema()
                .field_at(c)
                .expect("index valid")
                .name
                .clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, DatasetSize};

    #[test]
    fn benchmark_queries_hold_on_every_planted_dataset() {
        for kind in [
            DatasetKind::Flights,
            DatasetKind::Cyber,
            DatasetKind::Spotify,
            DatasetKind::CreditCard,
            DatasetKind::UsFunds,
            DatasetKind::BankLoans,
        ] {
            let dataset = kind.build(DatasetSize::Tiny, 5);
            let fq = benchmark_filter_query(&dataset.table);
            let matched = fq.matching_rows(&dataset.table).unwrap();
            assert!(!matched.is_empty(), "{kind:?}: filter must match rows");
            assert!(matched.len() <= dataset.table.num_rows());
            assert!(fq.projection.is_none());
            let pq = benchmark_projected_query(&dataset.table);
            assert_eq!(
                pq.matching_rows(&dataset.table).unwrap(),
                matched,
                "{kind:?}: both queries share the filter"
            );
            let target = benchmark_target_column(&dataset.table);
            assert!(
                dataset.table.schema().index_of(&target).is_some(),
                "{kind:?}: target column must exist"
            );
            let proj = pq.projection.as_ref().expect("projection set");
            assert!(proj.len() >= 2);
            assert!(proj.len() <= dataset.table.num_columns());
        }
    }
}
