//! Declarative specification of a synthetic dataset.

/// Scale of a generated dataset.
///
/// The paper's datasets range from 23K to 6M rows; the generators scale them
/// down so that the full experiment suite runs on a laptop while preserving
/// the relative size ordering (Flights remains the largest, Cyber the
/// smallest of the four main ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetSize {
    /// Very small — intended for unit tests (hundreds of rows).
    Tiny,
    /// Small — default for integration tests and examples (thousands of rows).
    Small,
    /// Medium — used by the experiment harness (tens of thousands of rows).
    Medium,
    /// Large — closest to the paper's scale that is still practical offline.
    Large,
}

impl DatasetSize {
    /// Multiplier applied to a dataset's base row count.
    pub fn factor(self) -> f64 {
        match self {
            DatasetSize::Tiny => 0.05,
            DatasetSize::Small => 0.25,
            DatasetSize::Medium => 1.0,
            DatasetSize::Large => 4.0,
        }
    }
}

/// The kind and value domain of one generated column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSpec {
    /// Categorical column with the given value domain.
    Categorical {
        /// Column name.
        name: String,
        /// Possible category values.
        values: Vec<String>,
    },
    /// Continuous column uniform over the given range (before archetype
    /// overrides).
    Numeric {
        /// Column name.
        name: String,
        /// Inclusive lower bound of the background distribution.
        low: f64,
        /// Exclusive upper bound of the background distribution.
        high: f64,
    },
    /// Integer column uniform over `low..high`.
    Integer {
        /// Column name.
        name: String,
        /// Inclusive lower bound.
        low: i64,
        /// Exclusive upper bound.
        high: i64,
    },
}

impl ColumnSpec {
    /// The column's name.
    pub fn name(&self) -> &str {
        match self {
            ColumnSpec::Categorical { name, .. }
            | ColumnSpec::Numeric { name, .. }
            | ColumnSpec::Integer { name, .. } => name,
        }
    }

    /// Convenience constructor for a categorical column.
    pub fn categorical(name: &str, values: &[&str]) -> Self {
        ColumnSpec::Categorical {
            name: name.to_string(),
            values: values.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Convenience constructor for a continuous column.
    pub fn numeric(name: &str, low: f64, high: f64) -> Self {
        ColumnSpec::Numeric {
            name: name.to_string(),
            low,
            high,
        }
    }

    /// Convenience constructor for an integer column.
    pub fn integer(name: &str, low: i64, high: i64) -> Self {
        ColumnSpec::Integer {
            name: name.to_string(),
            low,
            high,
        }
    }
}

/// What an archetype dictates for one column of its rows.
#[derive(Debug, Clone, PartialEq)]
pub enum CellSpec {
    /// A fixed categorical value.
    Category(String),
    /// A numeric value drawn uniformly from this sub-range.
    Range(f64, f64),
    /// A fixed integer value.
    IntValue(i64),
    /// The cell is missing (models the "NaN when cancelled" pattern).
    Missing,
}

/// A latent row archetype: a named pattern fixing the values of a subset of
/// columns. Rows generated from an archetype follow its cell specs (with a
/// small noise probability); the remaining columns take background values.
///
/// Every archetype corresponds to a *planted association rule* over its
/// defining columns, which is what the evaluation's oracles check against.
#[derive(Debug, Clone, PartialEq)]
pub struct Archetype {
    /// Human-readable name, e.g. `"cancelled-redeye"`.
    pub name: String,
    /// Relative sampling weight of the archetype.
    pub weight: f64,
    /// The (column name, cell spec) pairs the archetype dictates.
    pub cells: Vec<(String, CellSpec)>,
}

impl Archetype {
    /// Creates an archetype.
    pub fn new(name: &str, weight: f64, cells: Vec<(&str, CellSpec)>) -> Self {
        Archetype {
            name: name.to_string(),
            weight,
            cells: cells.into_iter().map(|(c, s)| (c.to_string(), s)).collect(),
        }
    }

    /// Names of the columns this archetype constrains.
    pub fn columns(&self) -> Vec<&str> {
        self.cells.iter().map(|(c, _)| c.as_str()).collect()
    }
}

/// The full specification handed to [`crate::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name (used in experiment output).
    pub name: String,
    /// Number of rows to generate.
    pub num_rows: usize,
    /// The columns.
    pub columns: Vec<ColumnSpec>,
    /// The planted archetypes.
    pub archetypes: Vec<Archetype>,
    /// Probability that a row ignores its archetype for a given constrained
    /// cell (noise; keeps rule confidences below 1).
    pub noise: f64,
    /// Background probability that any unconstrained cell is missing.
    pub missing_rate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_factors_are_ordered() {
        assert!(DatasetSize::Tiny.factor() < DatasetSize::Small.factor());
        assert!(DatasetSize::Small.factor() < DatasetSize::Medium.factor());
        assert!(DatasetSize::Medium.factor() < DatasetSize::Large.factor());
    }

    #[test]
    fn column_spec_accessors() {
        let c = ColumnSpec::categorical("airline", &["AA", "DL"]);
        assert_eq!(c.name(), "airline");
        let n = ColumnSpec::numeric("distance", 0.0, 100.0);
        assert_eq!(n.name(), "distance");
        let i = ColumnSpec::integer("year", 2014, 2017);
        assert_eq!(i.name(), "year");
    }

    #[test]
    fn archetype_columns() {
        let a = Archetype::new(
            "cancelled",
            1.0,
            vec![
                ("cancelled", CellSpec::IntValue(1)),
                ("dep_time", CellSpec::Missing),
            ],
        );
        assert_eq!(a.columns(), vec!["cancelled", "dep_time"]);
        assert_eq!(a.weight, 1.0);
    }
}
