//! The generic archetype-based table generator.

use crate::spec::{Archetype, CellSpec, ColumnSpec, DatasetSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subtab_data::{Column, Table, Value};

/// A generated dataset: the table plus the planted structure that produced
/// it, so experiments can evaluate sub-tables against ground truth.
#[derive(Debug, Clone)]
pub struct PlantedDataset {
    /// Dataset name.
    pub name: String,
    /// The generated table.
    pub table: Table,
    /// The archetypes the rows were drawn from (the planted rules).
    pub archetypes: Vec<Archetype>,
    /// For each row, the index of the archetype it was drawn from
    /// (`None` for pure-background rows).
    pub row_archetype: Vec<Option<usize>>,
}

impl PlantedDataset {
    /// Rows generated from the given archetype.
    pub fn rows_of_archetype(&self, archetype: usize) -> Vec<usize> {
        self.row_archetype
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == Some(archetype))
            .map(|(i, _)| i)
            .collect()
    }

    /// The empirical confidence of the planted rule behind an archetype: the
    /// fraction of rows matching the archetype's *antecedent* cells (all but
    /// the last constrained column) that also match its last constrained cell.
    ///
    /// Used by the simulated user study to decide whether an "insight" about
    /// the archetype is statistically correct in the full table.
    pub fn archetype_confidence(&self, archetype: usize) -> f64 {
        let arch = &self.archetypes[archetype];
        if arch.cells.len() < 2 {
            return 1.0;
        }
        let (consequent, antecedent) = arch.cells.split_last().expect("len >= 2");
        let mut matching_antecedent = 0usize;
        let mut matching_full = 0usize;
        for row in 0..self.table.num_rows() {
            if antecedent
                .iter()
                .all(|(c, s)| cell_matches(&self.table, row, c, s))
            {
                matching_antecedent += 1;
                if cell_matches(&self.table, row, &consequent.0, &consequent.1) {
                    matching_full += 1;
                }
            }
        }
        if matching_antecedent == 0 {
            0.0
        } else {
            matching_full as f64 / matching_antecedent as f64
        }
    }
}

/// Whether the cell at (`row`, `column`) of `table` is consistent with a
/// [`CellSpec`].
pub fn cell_matches(table: &Table, row: usize, column: &str, spec: &CellSpec) -> bool {
    let Ok(v) = table.value(row, column) else {
        return false;
    };
    match spec {
        CellSpec::Missing => v.is_null(),
        CellSpec::Category(c) => v.as_str() == Some(c.as_str()),
        CellSpec::IntValue(i) => v.as_i64() == Some(*i),
        CellSpec::Range(lo, hi) => v.as_f64().map(|x| x >= *lo && x < *hi).unwrap_or(false),
    }
}

/// Generates a dataset from its specification, deterministically for a given
/// seed.
pub fn generate(spec: &DatasetSpec, seed: u64) -> PlantedDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = spec.num_rows;
    let total_weight: f64 = spec.archetypes.iter().map(|a| a.weight).sum();

    let mut row_archetype: Vec<Option<usize>> = Vec::with_capacity(n);
    // Cells are generated column-wise for cache friendliness, but the
    // archetype of each row is drawn first so columns agree.
    for _ in 0..n {
        let arch = if total_weight > 0.0 {
            let mut target = rng.gen::<f64>() * total_weight.max(1.0);
            let mut chosen = None;
            for (i, a) in spec.archetypes.iter().enumerate() {
                if target < a.weight {
                    chosen = Some(i);
                    break;
                }
                target -= a.weight;
            }
            chosen
        } else {
            None
        };
        row_archetype.push(arch);
    }

    let mut columns: Vec<Column> = Vec::with_capacity(spec.columns.len());
    for col_spec in &spec.columns {
        let mut col = match col_spec {
            ColumnSpec::Categorical { name, .. } => {
                Column::empty(name.clone(), subtab_data::ColumnType::Str)
            }
            ColumnSpec::Numeric { name, .. } => {
                Column::empty(name.clone(), subtab_data::ColumnType::Float)
            }
            ColumnSpec::Integer { name, .. } => {
                Column::empty(name.clone(), subtab_data::ColumnType::Int)
            }
        };
        // The row count is known up front; reserving the value plane and
        // validity bitmap once keeps the cell loop reallocation-free (at the
        // large scale tier this loop pushes 10^6 cells per column).
        col.reserve(n);
        for &arch_idx in row_archetype.iter() {
            let value = generate_cell(spec, col_spec, arch_idx, &mut rng);
            col.push(value)
                .expect("generator produces well-typed values");
        }
        columns.push(col);
    }

    let table = Table::from_columns(columns).expect("generator builds a consistent table");
    PlantedDataset {
        name: spec.name.clone(),
        table,
        archetypes: spec.archetypes.clone(),
        row_archetype,
    }
}

fn generate_cell(
    spec: &DatasetSpec,
    col_spec: &ColumnSpec,
    archetype: Option<usize>,
    rng: &mut StdRng,
) -> Value {
    // Archetype override (unless noise strikes).
    if let Some(ai) = archetype {
        if let Some((_, cell)) = spec.archetypes[ai]
            .cells
            .iter()
            .find(|(c, _)| c == col_spec.name())
        {
            if rng.gen::<f64>() >= spec.noise {
                return match cell {
                    CellSpec::Missing => Value::Null,
                    CellSpec::Category(c) => Value::Str(c.clone()),
                    CellSpec::IntValue(i) => Value::Int(*i),
                    CellSpec::Range(lo, hi) => Value::Float(rng.gen_range(*lo..*hi)),
                };
            }
        }
    }
    // Background value, possibly missing.
    if rng.gen::<f64>() < spec.missing_rate {
        return Value::Null;
    }
    match col_spec {
        ColumnSpec::Categorical { values, .. } => {
            if values.is_empty() {
                Value::Null
            } else {
                Value::Str(values[rng.gen_range(0..values.len())].clone())
            }
        }
        ColumnSpec::Numeric { low, high, .. } => Value::Float(rng.gen_range(*low..*high)),
        ColumnSpec::Integer { low, high, .. } => Value::Int(rng.gen_range(*low..*high)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;

    fn spec() -> DatasetSpec {
        DatasetSpec {
            name: "toy".into(),
            num_rows: 500,
            columns: vec![
                ColumnSpec::integer("cancelled", 0, 2),
                ColumnSpec::numeric("dep_time", 0.0, 2400.0),
                ColumnSpec::categorical("airline", &["AA", "DL", "UA", "WN"]),
                ColumnSpec::numeric("distance", 50.0, 3000.0),
            ],
            archetypes: vec![
                Archetype::new(
                    "cancelled-flights",
                    0.3,
                    vec![
                        ("dep_time", CellSpec::Missing),
                        ("cancelled", CellSpec::IntValue(1)),
                    ],
                ),
                // Narrow antecedent: background rows draw distance uniformly
                // from [50, 3000), so a [2000, 3000) window is hit by ~1/3 of
                // them by chance and caps the rule's empirical confidence
                // near 0.67 — below what `planted_rule_confidence_is_high`
                // asserts. [2600, 3000) keeps chance matches rare.
                Archetype::new(
                    "long-haul-ok",
                    0.3,
                    vec![
                        ("distance", CellSpec::Range(2600.0, 3000.0)),
                        ("cancelled", CellSpec::IntValue(0)),
                    ],
                ),
            ],
            noise: 0.05,
            missing_rate: 0.02,
        }
    }

    #[test]
    fn generates_requested_shape_deterministically() {
        let a = generate(&spec(), 7);
        let b = generate(&spec(), 7);
        assert_eq!(a.table.num_rows(), 500);
        assert_eq!(a.table.num_columns(), 4);
        for r in [0usize, 100, 499] {
            for c in a.table.column_names() {
                assert_eq!(a.table.value(r, c).unwrap(), b.table.value(r, c).unwrap());
            }
        }
        let c = generate(&spec(), 8);
        // Different seed should give a different table (almost surely).
        let differs = (0..a.table.num_rows()).any(|r| {
            a.table.value(r, "distance").unwrap() != c.table.value(r, "distance").unwrap()
        });
        assert!(differs);
    }

    #[test]
    fn archetype_rows_follow_their_pattern() {
        let ds = generate(&spec(), 3);
        let rows = ds.rows_of_archetype(0);
        assert!(!rows.is_empty());
        // With 5% noise, the vast majority of archetype-0 rows must have
        // cancelled = 1 and a missing dep_time.
        let consistent = rows
            .iter()
            .filter(|&&r| {
                ds.table.value(r, "cancelled").unwrap() == Value::Int(1)
                    && ds.table.value(r, "dep_time").unwrap().is_null()
            })
            .count();
        assert!(consistent as f64 / rows.len() as f64 > 0.8);
    }

    #[test]
    fn planted_rule_confidence_is_high() {
        let ds = generate(&spec(), 11);
        let conf = ds.archetype_confidence(0);
        assert!(conf > 0.7, "confidence = {conf}");
        let conf1 = ds.archetype_confidence(1);
        assert!(conf1 > 0.7, "confidence = {conf1}");
    }

    #[test]
    fn missingness_is_injected() {
        let ds = generate(&spec(), 5);
        assert!(ds.table.null_fraction() > 0.02);
        assert!(ds.table.null_fraction() < 0.5);
    }

    #[test]
    fn cell_matches_helper() {
        let ds = generate(&spec(), 1);
        let t = &ds.table;
        // Construct a row we know: find a cancelled-archetype row.
        let rows = ds.rows_of_archetype(0);
        let consistent = rows.iter().find(|&&r| {
            t.value(r, "cancelled").unwrap() == Value::Int(1)
                && t.value(r, "dep_time").unwrap().is_null()
        });
        if let Some(&r) = consistent {
            assert!(cell_matches(t, r, "cancelled", &CellSpec::IntValue(1)));
            assert!(cell_matches(t, r, "dep_time", &CellSpec::Missing));
            assert!(!cell_matches(t, r, "cancelled", &CellSpec::IntValue(0)));
        }
        assert!(!cell_matches(t, 0, "no_such_column", &CellSpec::Missing));
    }

    #[test]
    fn no_archetypes_gives_pure_background() {
        let mut s = spec();
        s.archetypes.clear();
        let ds = generate(&s, 2);
        assert!(ds.row_archetype.iter().all(Option::is_none));
        assert_eq!(ds.table.num_rows(), 500);
    }
}
