//! Synthetic EDA-session generation.
//!
//! The paper's simulation study (Section 6.2.2, Figure 6) replays 122
//! recorded exploration sessions over the cyber-security dataset: for each
//! query it builds a sub-table of the result and checks whether a *fragment*
//! of the next query (a selection term, group-by attribute, …) appears in
//! that sub-table. Real analysts' queries follow patterns they can see in the
//! data, so our synthetic sessions are generated the same way: each session
//! "investigates" one planted archetype, and its successive queries filter,
//! group and sort on that archetype's defining columns and values.

use crate::generator::PlantedDataset;
use crate::spec::CellSpec;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use subtab_data::{AggFunc, Predicate, Query, SortOrder, Value};

/// One exploration session: an ordered list of queries over the dataset.
#[derive(Debug, Clone)]
pub struct Session {
    /// The archetype the session investigates.
    pub archetype: usize,
    /// The ordered queries of the session.
    pub queries: Vec<Query>,
}

/// Parameters of session generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Number of sessions to generate (the paper's corpus has 122).
    pub num_sessions: usize,
    /// Minimum number of queries per session.
    pub min_queries: usize,
    /// Maximum number of queries per session.
    pub max_queries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            num_sessions: 122,
            min_queries: 3,
            max_queries: 7,
            seed: 17,
        }
    }
}

/// Generates exploration sessions over a planted dataset.
pub fn generate_sessions(dataset: &PlantedDataset, config: &SessionConfig) -> Vec<Session> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sessions = Vec::with_capacity(config.num_sessions);
    if dataset.archetypes.is_empty() || dataset.table.num_rows() == 0 {
        return sessions;
    }
    let numeric_columns: Vec<String> = dataset
        .table
        .schema()
        .fields()
        .iter()
        .filter(|f| f.ty.is_numeric())
        .map(|f| f.name.clone())
        .collect();
    for _ in 0..config.num_sessions {
        let archetype = rng.gen_range(0..dataset.archetypes.len());
        let arch = &dataset.archetypes[archetype];
        let len = rng.gen_range(config.min_queries..=config.max_queries.max(config.min_queries));
        let mut queries = Vec::with_capacity(len);
        let mut cells: Vec<(String, CellSpec)> = arch.cells.clone();
        cells.shuffle(&mut rng);
        let mut cell_iter = cells.into_iter().cycle();
        for step in 0..len {
            let (column, spec) = cell_iter.next().expect("cycle never ends");
            let query = match step % 4 {
                // Selection on an archetype-defining value.
                0 | 1 => Query::new().filter(predicate_for(&column, &spec)),
                // Group-by on an archetype column with a count.
                2 => Query::new().group(&[column.as_str()], AggFunc::Count, None),
                // Filter + sort by a numeric column (possibly unrelated).
                _ => {
                    let sort_col = numeric_columns
                        .as_slice()
                        .choose(&mut rng)
                        .cloned()
                        .unwrap_or_else(|| column.clone());
                    Query::new()
                        .filter(predicate_for(&column, &spec))
                        .sort_by(&sort_col, SortOrder::Descending)
                }
            };
            queries.push(query);
        }
        sessions.push(Session { archetype, queries });
    }
    sessions
}

/// Generates server replay traces: the exploration sessions of
/// [`generate_sessions`], bracketed the way a served EDA client behaves —
/// every session opens with the whole-table view (`Query::new()`, the
/// landing display) and closes with a `limit`ed variant of its last
/// filtering query (the "show me just a page of that" step).
///
/// Built by post-processing [`generate_sessions`] output, so it consumes
/// the exact same RNG stream: adding traces can never perturb the session
/// corpus the simulation experiments replay.
pub fn generate_server_traces(dataset: &PlantedDataset, config: &SessionConfig) -> Vec<Session> {
    let mut sessions = generate_sessions(dataset, config);
    for session in &mut sessions {
        let last_filtered = session
            .queries
            .iter()
            .rev()
            .find(|q| q.is_filtered())
            .cloned();
        session.queries.insert(0, Query::new());
        if let Some(q) = last_filtered {
            session.queries.push(q.limit(20));
        }
    }
    sessions
}

fn predicate_for(column: &str, spec: &CellSpec) -> Predicate {
    match spec {
        CellSpec::Missing => Predicate::is_null(column),
        CellSpec::Category(c) => Predicate::eq(column, Value::from(c.as_str())),
        CellSpec::IntValue(i) => Predicate::eq(column, Value::Int(*i)),
        CellSpec::Range(lo, hi) => Predicate::between(column, *lo, *hi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSize;
    use crate::zoo::cyber;

    #[test]
    fn sessions_have_requested_count_and_lengths() {
        let ds = cyber(DatasetSize::Tiny, 2);
        let cfg = SessionConfig {
            num_sessions: 20,
            min_queries: 3,
            max_queries: 6,
            seed: 5,
        };
        let sessions = generate_sessions(&ds, &cfg);
        assert_eq!(sessions.len(), 20);
        for s in &sessions {
            assert!(s.queries.len() >= 3 && s.queries.len() <= 6);
            assert!(s.archetype < ds.archetypes.len());
        }
    }

    #[test]
    fn queries_reference_archetype_columns() {
        let ds = cyber(DatasetSize::Tiny, 2);
        let sessions = generate_sessions(&ds, &SessionConfig::default());
        let mut referencing = 0usize;
        let mut total = 0usize;
        for s in &sessions {
            let arch_cols = ds.archetypes[s.archetype].columns();
            for q in &s.queries {
                total += 1;
                if q.referenced_columns()
                    .iter()
                    .any(|c| arch_cols.contains(&c.as_str()))
                {
                    referencing += 1;
                }
            }
        }
        // The vast majority of queries touch the session's archetype columns
        // (sort columns may be unrelated numeric columns).
        assert!(referencing as f64 / total as f64 > 0.8);
    }

    #[test]
    fn queries_execute_against_the_dataset() {
        let ds = cyber(DatasetSize::Tiny, 4);
        let cfg = SessionConfig {
            num_sessions: 10,
            ..Default::default()
        };
        for s in generate_sessions(&ds, &cfg) {
            for q in &s.queries {
                let result = q.execute(&ds.table).expect("query must be valid");
                // Group-by queries return small tables; selections may return
                // anything including empty results — both are fine, we only
                // require validity.
                let _ = result;
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = cyber(DatasetSize::Tiny, 4);
        let cfg = SessionConfig {
            num_sessions: 5,
            seed: 99,
            ..Default::default()
        };
        let a = generate_sessions(&ds, &cfg);
        let b = generate_sessions(&ds, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.archetype, y.archetype);
            assert_eq!(x.queries, y.queries);
        }
    }

    #[test]
    fn server_traces_bracket_the_sessions_without_perturbing_them() {
        let ds = cyber(DatasetSize::Tiny, 4);
        let cfg = SessionConfig {
            num_sessions: 8,
            seed: 13,
            ..Default::default()
        };
        let sessions = generate_sessions(&ds, &cfg);
        let traces = generate_server_traces(&ds, &cfg);
        assert_eq!(traces.len(), sessions.len());
        for (trace, session) in traces.iter().zip(&sessions) {
            // The landing display, then the original session verbatim.
            assert_eq!(trace.queries[0], Query::new());
            assert_eq!(
                &trace.queries[1..=session.queries.len()],
                &session.queries[..]
            );
            // Every session of the default shape has a filtering query, so
            // every trace ends with its limited page view.
            let last = trace.queries.last().unwrap();
            assert_eq!(last.limit, Some(20));
            assert!(last.is_filtered());
        }
    }

    #[test]
    fn empty_dataset_gives_no_sessions() {
        let ds = PlantedDataset {
            name: "empty".into(),
            table: subtab_data::Table::builder()
                .column_i64("x", Vec::new())
                .build()
                .unwrap(),
            archetypes: Vec::new(),
            row_archetype: Vec::new(),
        };
        assert!(generate_sessions(&ds, &SessionConfig::default()).is_empty());
    }
}
