//! # subtab-datasets
//!
//! Synthetic dataset and EDA-session generators mirroring the evaluation
//! datasets of the SubTab paper.
//!
//! The paper evaluates on six Kaggle datasets (Flights, Cyber-security,
//! Spotify, Credit-card fraud, US Funds, Bank Loans) and on a corpus of 122
//! recorded data-exploration sessions. None of these are available offline,
//! so this crate generates *synthetic stand-ins* that preserve the properties
//! the evaluation depends on:
//!
//! * each dataset's **schema shape** (number and types of columns, scaled row
//!   counts, missing-value patterns such as "delay columns are NaN unless the
//!   flight was delayed"),
//! * **planted association rules**: rows are drawn from a small number of
//!   *archetypes*, each fixing the values of a subset of columns; the
//!   archetype definitions are returned alongside the table so that
//!   experiments (e.g. the simulated user study) can check whether a
//!   sub-table exposes a true pattern,
//! * **exploration sessions** whose queries follow the planted structure, as
//!   real analysts' queries follow the patterns visible in the data.
//!
//! See `DESIGN.md` (substitutions 4–6) for the full rationale.
//!
//! ```
//! use subtab_datasets::{flights, DatasetSize};
//!
//! let ds = flights(DatasetSize::Small, 42);
//! assert!(ds.table.num_rows() >= 1_000);
//! assert!(ds.table.num_columns() >= 20);
//! assert!(!ds.archetypes.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod generator;
pub mod queries;
pub mod scale;
pub mod sessions;
pub mod spec;
pub mod zoo;

pub use generator::{generate, PlantedDataset};
pub use queries::{
    benchmark_ast_query, benchmark_deep_nest_query, benchmark_filter, benchmark_filter_query,
    benchmark_projected_query, benchmark_target_column,
};
pub use scale::{scale_dataset, scale_spec, ScaleShape, ScaleTier};
pub use sessions::{generate_server_traces, generate_sessions, Session, SessionConfig};
pub use spec::{Archetype, CellSpec, ColumnSpec, DatasetSize, DatasetSpec};
pub use zoo::{bank_loans, credit_card, cyber, flights, spotify, us_funds, DatasetKind};
