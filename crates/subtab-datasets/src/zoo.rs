//! Builders for the six evaluation datasets of the paper.
//!
//! Each builder constructs a [`DatasetSpec`] whose schema shape mirrors the
//! corresponding Kaggle dataset (column count and types, missing-value
//! patterns) and whose archetypes plant the kind of prominent association
//! rules the paper's examples describe (e.g. "cancelled flights have missing
//! departure times"), then calls the generic generator. Row counts are the
//! paper's sizes scaled down by roughly 100–300× at [`DatasetSize::Medium`];
//! the relative ordering (Flights largest, Cyber smallest) is preserved
//! because Figure 9 depends on it.

use crate::generator::{generate, PlantedDataset};
use crate::spec::{Archetype, CellSpec, ColumnSpec, DatasetSize, DatasetSpec};

/// Identifier of one of the paper's evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Kaggle flight-delays (paper: 6M × 31).
    Flights,
    /// Honeynet cyber-security challenge (paper: 30K × 15).
    Cyber,
    /// Spotify popularity challenge (paper: 42K × 15).
    Spotify,
    /// Credit-card fraud (paper: 250K × 31).
    CreditCard,
    /// US mutual funds (paper: 23.5K × 298).
    UsFunds,
    /// Bank-loan status (paper: 110K × 19).
    BankLoans,
}

impl DatasetKind {
    /// Short name used in experiment output (matches the paper's labels).
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::Flights => "FL",
            DatasetKind::Cyber => "CY",
            DatasetKind::Spotify => "SP",
            DatasetKind::CreditCard => "CC",
            DatasetKind::UsFunds => "USF",
            DatasetKind::BankLoans => "BL",
        }
    }

    /// Builds the dataset at the given size with the given seed.
    pub fn build(self, size: DatasetSize, seed: u64) -> PlantedDataset {
        match self {
            DatasetKind::Flights => flights(size, seed),
            DatasetKind::Cyber => cyber(size, seed),
            DatasetKind::Spotify => spotify(size, seed),
            DatasetKind::CreditCard => credit_card(size, seed),
            DatasetKind::UsFunds => us_funds(size, seed),
            DatasetKind::BankLoans => bank_loans(size, seed),
        }
    }
}

fn rows(base: usize, size: DatasetSize) -> usize {
    ((base as f64 * size.factor()) as usize).max(200)
}

/// Synthetic stand-in for the Kaggle flight-delays dataset (`FL`).
pub fn flights(size: DatasetSize, seed: u64) -> PlantedDataset {
    let airlines = ["AA", "DL", "UA", "WN", "B6", "AS", "NK", "HA"];
    let airports = [
        "ATL", "LAX", "ORD", "DFW", "JFK", "SFO", "SEA", "MIA", "BOS", "PHX",
    ];
    let mut columns = vec![
        ColumnSpec::integer("YEAR", 2015, 2016),
        ColumnSpec::integer("MONTH", 1, 13),
        ColumnSpec::integer("DAY", 1, 29),
        ColumnSpec::integer("DAY_OF_WEEK", 1, 8),
        ColumnSpec::categorical("AIRLINE", &airlines),
        ColumnSpec::integer("FLIGHT_NUMBER", 1, 7000),
        ColumnSpec::categorical("ORIGIN_AIRPORT", &airports),
        ColumnSpec::categorical("DESTINATION_AIRPORT", &airports),
        ColumnSpec::numeric("SCHEDULED_DEPARTURE", 0.0, 2400.0),
        ColumnSpec::numeric("DEPARTURE_TIME", 0.0, 2400.0),
        ColumnSpec::numeric("DEPARTURE_DELAY", -20.0, 180.0),
        ColumnSpec::numeric("TAXI_OUT", 1.0, 60.0),
        ColumnSpec::numeric("WHEELS_OFF", 0.0, 2400.0),
        ColumnSpec::numeric("SCHEDULED_TIME", 30.0, 500.0),
        ColumnSpec::numeric("ELAPSED_TIME", 30.0, 500.0),
        ColumnSpec::numeric("AIR_TIME", 20.0, 450.0),
        ColumnSpec::numeric("DISTANCE", 50.0, 2800.0),
        ColumnSpec::numeric("WHEELS_ON", 0.0, 2400.0),
        ColumnSpec::numeric("TAXI_IN", 1.0, 45.0),
        ColumnSpec::numeric("SCHEDULED_ARRIVAL", 0.0, 2400.0),
        ColumnSpec::numeric("ARRIVAL_TIME", 0.0, 2400.0),
        ColumnSpec::numeric("ARRIVAL_DELAY", -30.0, 200.0),
        ColumnSpec::integer("DIVERTED", 0, 2),
        ColumnSpec::integer("CANCELLED", 0, 1), // background is 0; archetype sets 1
        ColumnSpec::categorical("CANCELLATION_REASON", &["A", "B", "C", "D"]),
        ColumnSpec::numeric("AIR_SYSTEM_DELAY", 0.0, 60.0),
        ColumnSpec::numeric("SECURITY_DELAY", 0.0, 30.0),
        ColumnSpec::numeric("AIRLINE_DELAY", 0.0, 90.0),
        ColumnSpec::numeric("LATE_AIRCRAFT_DELAY", 0.0, 90.0),
        ColumnSpec::numeric("WEATHER_DELAY", 0.0, 120.0),
    ];
    // 31st column: scheduled day period derived from departure hour.
    columns.push(ColumnSpec::categorical(
        "DAY_PERIOD",
        &["morning", "afternoon", "evening", "redeye"],
    ));
    let archetypes = vec![
        // The paper's running example: cancelled flights have missing times.
        // Like the real dataset, each archetype constrains most operational
        // columns (times, taxi, delays, airports are all correlated), so that
        // structure spans the schema rather than a small block of columns.
        Archetype::new(
            "cancelled-missing-times",
            0.14,
            vec![
                ("DEPARTURE_TIME", CellSpec::Missing),
                ("WHEELS_OFF", CellSpec::Missing),
                ("AIR_TIME", CellSpec::Missing),
                ("ELAPSED_TIME", CellSpec::Missing),
                ("ARRIVAL_TIME", CellSpec::Missing),
                ("WHEELS_ON", CellSpec::Missing),
                ("TAXI_IN", CellSpec::Missing),
                ("ARRIVAL_DELAY", CellSpec::Missing),
                ("CANCELLATION_REASON", CellSpec::Category("B".into())),
                ("DAY_PERIOD", CellSpec::Category("afternoon".into())),
                ("SCHEDULED_DEPARTURE", CellSpec::Range(1200.0, 1800.0)),
                ("SCHEDULED_ARRIVAL", CellSpec::Range(1400.0, 2000.0)),
                ("MONTH", CellSpec::IntValue(1)),
                ("CANCELLED", CellSpec::IntValue(1)),
            ],
        ),
        // Long flights are rarely cancelled (Example 1.2).
        Archetype::new(
            "long-haul-on-time",
            0.22,
            vec![
                ("DISTANCE", CellSpec::Range(1546.0, 2724.0)),
                ("AIR_TIME", CellSpec::Range(198.0, 422.0)),
                ("SCHEDULED_TIME", CellSpec::Range(220.0, 470.0)),
                ("ELAPSED_TIME", CellSpec::Range(220.0, 480.0)),
                ("DAY_PERIOD", CellSpec::Category("morning".into())),
                ("SCHEDULED_DEPARTURE", CellSpec::Range(400.0, 1000.0)),
                ("ORIGIN_AIRPORT", CellSpec::Category("JFK".into())),
                ("DESTINATION_AIRPORT", CellSpec::Category("LAX".into())),
                ("AIRLINE", CellSpec::Category("DL".into())),
                ("DEPARTURE_DELAY", CellSpec::Range(-15.0, 10.0)),
                ("CANCELLED", CellSpec::IntValue(0)),
            ],
        ),
        // Evening flights with late-aircraft delays.
        Archetype::new(
            "evening-late-aircraft",
            0.2,
            vec![
                ("DAY_PERIOD", CellSpec::Category("evening".into())),
                ("SCHEDULED_DEPARTURE", CellSpec::Range(1800.0, 2359.0)),
                ("DEPARTURE_TIME", CellSpec::Range(1840.0, 2400.0)),
                ("DEPARTURE_DELAY", CellSpec::Range(45.0, 180.0)),
                ("LATE_AIRCRAFT_DELAY", CellSpec::Range(30.0, 90.0)),
                ("AIRLINE_DELAY", CellSpec::Range(20.0, 90.0)),
                ("ARRIVAL_DELAY", CellSpec::Range(40.0, 200.0)),
                ("TAXI_OUT", CellSpec::Range(25.0, 60.0)),
                ("ORIGIN_AIRPORT", CellSpec::Category("ORD".into())),
                ("DAY_OF_WEEK", CellSpec::IntValue(5)),
                ("CANCELLED", CellSpec::IntValue(0)),
            ],
        ),
        // Short commuter hops in the morning, on time.
        Archetype::new(
            "short-morning-hop",
            0.26,
            vec![
                ("DISTANCE", CellSpec::Range(50.0, 400.0)),
                ("AIR_TIME", CellSpec::Range(20.0, 80.0)),
                ("SCHEDULED_TIME", CellSpec::Range(35.0, 110.0)),
                ("ELAPSED_TIME", CellSpec::Range(35.0, 120.0)),
                ("DAY_PERIOD", CellSpec::Category("morning".into())),
                ("SCHEDULED_DEPARTURE", CellSpec::Range(500.0, 1100.0)),
                ("DEPARTURE_DELAY", CellSpec::Range(-20.0, 5.0)),
                ("TAXI_OUT", CellSpec::Range(1.0, 15.0)),
                ("TAXI_IN", CellSpec::Range(1.0, 10.0)),
                ("AIRLINE", CellSpec::Category("WN".into())),
                ("ORIGIN_AIRPORT", CellSpec::Category("ATL".into())),
                ("CANCELLED", CellSpec::IntValue(0)),
            ],
        ),
        // Weather-delayed winter flights.
        Archetype::new(
            "winter-weather-delay",
            0.13,
            vec![
                ("MONTH", CellSpec::IntValue(1)),
                ("WEATHER_DELAY", CellSpec::Range(45.0, 120.0)),
                ("AIR_SYSTEM_DELAY", CellSpec::Range(20.0, 60.0)),
                ("SECURITY_DELAY", CellSpec::Range(0.0, 5.0)),
                ("DEPARTURE_DELAY", CellSpec::Range(60.0, 180.0)),
                ("ARRIVAL_DELAY", CellSpec::Range(60.0, 200.0)),
                ("ORIGIN_AIRPORT", CellSpec::Category("BOS".into())),
                ("DAY_OF_WEEK", CellSpec::IntValue(1)),
                ("DAY_PERIOD", CellSpec::Category("redeye".into())),
                ("CANCELLED", CellSpec::IntValue(0)),
            ],
        ),
    ];
    let spec = DatasetSpec {
        name: "FL".into(),
        num_rows: rows(20_000, size),
        columns,
        archetypes,
        noise: 0.08,
        missing_rate: 0.03,
    };
    generate(&spec, seed)
}

/// Synthetic stand-in for the Honeynet cyber-security dataset (`CY`).
pub fn cyber(size: DatasetSize, seed: u64) -> PlantedDataset {
    let columns = vec![
        ColumnSpec::integer("hour", 0, 24),
        ColumnSpec::categorical("protocol", &["tcp", "udp", "icmp"]),
        ColumnSpec::integer("src_port", 1024, 65535),
        ColumnSpec::integer("dst_port", 1, 1024),
        ColumnSpec::categorical(
            "service",
            &["ssh", "http", "https", "dns", "smtp", "ftp", "telnet"],
        ),
        ColumnSpec::numeric("duration", 0.0, 600.0),
        ColumnSpec::numeric("bytes_in", 0.0, 1e6),
        ColumnSpec::numeric("bytes_out", 0.0, 1e6),
        ColumnSpec::integer("packets", 1, 5000),
        ColumnSpec::categorical("src_country", &["US", "CN", "RU", "DE", "BR", "IN", "FR"]),
        ColumnSpec::categorical(
            "alert_type",
            &["none", "scan", "bruteforce", "exfil", "malware"],
        ),
        ColumnSpec::integer("severity", 0, 5),
        ColumnSpec::integer("flagged", 0, 1),
        ColumnSpec::categorical("direction", &["inbound", "outbound"]),
        ColumnSpec::integer("failed_logins", 0, 3),
    ];
    let archetypes = vec![
        Archetype::new(
            "port-scan",
            0.2,
            vec![
                ("packets", CellSpec::IntValue(1)),
                ("bytes_in", CellSpec::Range(0.0, 200.0)),
                ("bytes_out", CellSpec::Range(0.0, 100.0)),
                ("duration", CellSpec::Range(0.0, 1.0)),
                ("protocol", CellSpec::Category("tcp".into())),
                ("direction", CellSpec::Category("inbound".into())),
                ("src_country", CellSpec::Category("RU".into())),
                ("hour", CellSpec::IntValue(3)),
                ("alert_type", CellSpec::Category("scan".into())),
                ("severity", CellSpec::IntValue(2)),
                ("flagged", CellSpec::IntValue(1)),
            ],
        ),
        Archetype::new(
            "ssh-bruteforce",
            0.15,
            vec![
                ("service", CellSpec::Category("ssh".into())),
                ("dst_port", CellSpec::IntValue(22)),
                ("protocol", CellSpec::Category("tcp".into())),
                ("failed_logins", CellSpec::IntValue(2)),
                ("direction", CellSpec::Category("inbound".into())),
                ("src_country", CellSpec::Category("CN".into())),
                ("packets", CellSpec::IntValue(40)),
                ("alert_type", CellSpec::Category("bruteforce".into())),
                ("severity", CellSpec::IntValue(4)),
                ("flagged", CellSpec::IntValue(1)),
            ],
        ),
        Archetype::new(
            "data-exfiltration",
            0.1,
            vec![
                ("bytes_out", CellSpec::Range(5e5, 1e6)),
                ("bytes_in", CellSpec::Range(0.0, 5_000.0)),
                ("duration", CellSpec::Range(300.0, 600.0)),
                ("direction", CellSpec::Category("outbound".into())),
                ("service", CellSpec::Category("ftp".into())),
                ("hour", CellSpec::IntValue(2)),
                ("alert_type", CellSpec::Category("exfil".into())),
                ("severity", CellSpec::IntValue(4)),
                ("flagged", CellSpec::IntValue(1)),
            ],
        ),
        Archetype::new(
            "benign-web",
            0.4,
            vec![
                ("service", CellSpec::Category("https".into())),
                ("dst_port", CellSpec::IntValue(443)),
                ("protocol", CellSpec::Category("tcp".into())),
                ("direction", CellSpec::Category("outbound".into())),
                ("src_country", CellSpec::Category("US".into())),
                ("duration", CellSpec::Range(1.0, 60.0)),
                ("failed_logins", CellSpec::IntValue(0)),
                ("alert_type", CellSpec::Category("none".into())),
                ("severity", CellSpec::IntValue(0)),
                ("flagged", CellSpec::IntValue(0)),
            ],
        ),
    ];
    let spec = DatasetSpec {
        name: "CY".into(),
        num_rows: rows(3_000, size),
        columns,
        archetypes,
        noise: 0.05,
        missing_rate: 0.01,
    };
    generate(&spec, seed)
}

/// Synthetic stand-in for the Spotify popularity dataset (`SP`).
pub fn spotify(size: DatasetSize, seed: u64) -> PlantedDataset {
    let columns = vec![
        ColumnSpec::categorical(
            "genre",
            &[
                "pop",
                "rock",
                "hiphop",
                "classical",
                "jazz",
                "electronic",
                "folk",
            ],
        ),
        ColumnSpec::numeric("danceability", 0.0, 1.0),
        ColumnSpec::numeric("energy", 0.0, 1.0),
        ColumnSpec::numeric("loudness", -40.0, 0.0),
        ColumnSpec::numeric("speechiness", 0.0, 1.0),
        ColumnSpec::numeric("acousticness", 0.0, 1.0),
        ColumnSpec::numeric("instrumentalness", 0.0, 1.0),
        ColumnSpec::numeric("liveness", 0.0, 1.0),
        ColumnSpec::numeric("valence", 0.0, 1.0),
        ColumnSpec::numeric("tempo", 50.0, 210.0),
        ColumnSpec::numeric("duration_ms", 60_000.0, 420_000.0),
        ColumnSpec::integer("explicit", 0, 2),
        ColumnSpec::integer("year", 1990, 2021),
        ColumnSpec::integer("key", 0, 12),
        ColumnSpec::integer("popularity", 0, 100),
    ];
    let archetypes = vec![
        Archetype::new(
            "dance-pop-hit",
            0.25,
            vec![
                ("genre", CellSpec::Category("pop".into())),
                ("danceability", CellSpec::Range(0.7, 1.0)),
                ("energy", CellSpec::Range(0.7, 1.0)),
                ("loudness", CellSpec::Range(-8.0, 0.0)),
                ("valence", CellSpec::Range(0.6, 1.0)),
                ("tempo", CellSpec::Range(110.0, 135.0)),
                ("duration_ms", CellSpec::Range(150_000.0, 240_000.0)),
                ("acousticness", CellSpec::Range(0.0, 0.2)),
                ("year", CellSpec::IntValue(2019)),
                ("popularity", CellSpec::IntValue(85)),
            ],
        ),
        Archetype::new(
            "quiet-classical",
            0.2,
            vec![
                ("genre", CellSpec::Category("classical".into())),
                ("acousticness", CellSpec::Range(0.85, 1.0)),
                ("instrumentalness", CellSpec::Range(0.8, 1.0)),
                ("energy", CellSpec::Range(0.0, 0.25)),
                ("loudness", CellSpec::Range(-40.0, -20.0)),
                ("speechiness", CellSpec::Range(0.0, 0.05)),
                ("duration_ms", CellSpec::Range(300_000.0, 420_000.0)),
                ("explicit", CellSpec::IntValue(0)),
                ("popularity", CellSpec::IntValue(25)),
            ],
        ),
        Archetype::new(
            "hiphop-explicit",
            0.2,
            vec![
                ("genre", CellSpec::Category("hiphop".into())),
                ("speechiness", CellSpec::Range(0.2, 0.6)),
                ("explicit", CellSpec::IntValue(1)),
                ("danceability", CellSpec::Range(0.6, 0.95)),
                ("tempo", CellSpec::Range(80.0, 105.0)),
                ("instrumentalness", CellSpec::Range(0.0, 0.1)),
                ("year", CellSpec::IntValue(2017)),
                ("popularity", CellSpec::IntValue(70)),
            ],
        ),
        Archetype::new(
            "live-jazz",
            0.15,
            vec![
                ("genre", CellSpec::Category("jazz".into())),
                ("liveness", CellSpec::Range(0.6, 1.0)),
                ("tempo", CellSpec::Range(90.0, 140.0)),
                ("acousticness", CellSpec::Range(0.5, 0.9)),
                ("valence", CellSpec::Range(0.3, 0.7)),
                ("key", CellSpec::IntValue(2)),
                ("year", CellSpec::IntValue(1998)),
                ("popularity", CellSpec::IntValue(40)),
            ],
        ),
    ];
    let spec = DatasetSpec {
        name: "SP".into(),
        num_rows: rows(4_000, size),
        columns,
        archetypes,
        noise: 0.06,
        missing_rate: 0.02,
    };
    generate(&spec, seed)
}

/// Synthetic stand-in for the credit-card fraud dataset (`CC`): 31 numeric
/// columns (Time, V1–V28, Amount, Class). All-numeric tables stress the
/// binning step, which the paper notes makes CC's pre-processing the slowest.
pub fn credit_card(size: DatasetSize, seed: u64) -> PlantedDataset {
    let mut columns = vec![ColumnSpec::numeric("Time", 0.0, 172_800.0)];
    for i in 1..=28 {
        columns.push(ColumnSpec::numeric(&format!("V{i}"), -5.0, 5.0));
    }
    columns.push(ColumnSpec::numeric("Amount", 0.0, 2_000.0));
    columns.push(ColumnSpec::integer("Class", 0, 1));
    let archetypes = vec![
        Archetype::new(
            "fraud-pattern-a",
            0.05,
            vec![
                ("V1", CellSpec::Range(-5.0, -3.0)),
                ("V3", CellSpec::Range(-5.0, -3.0)),
                ("V14", CellSpec::Range(-5.0, -3.5)),
                ("Amount", CellSpec::Range(0.0, 50.0)),
                ("Class", CellSpec::IntValue(1)),
            ],
        ),
        Archetype::new(
            "fraud-pattern-b",
            0.03,
            vec![
                ("V4", CellSpec::Range(3.0, 5.0)),
                ("V11", CellSpec::Range(3.0, 5.0)),
                ("Time", CellSpec::Range(80_000.0, 100_000.0)),
                ("Class", CellSpec::IntValue(1)),
            ],
        ),
        Archetype::new(
            "normal-small-purchase",
            0.5,
            vec![
                ("Amount", CellSpec::Range(1.0, 80.0)),
                ("V1", CellSpec::Range(-1.0, 1.0)),
                ("V2", CellSpec::Range(-1.0, 1.0)),
                ("Class", CellSpec::IntValue(0)),
            ],
        ),
        Archetype::new(
            "normal-large-purchase",
            0.2,
            vec![
                ("Amount", CellSpec::Range(500.0, 2_000.0)),
                ("V5", CellSpec::Range(1.0, 3.0)),
                ("Class", CellSpec::IntValue(0)),
            ],
        ),
    ];
    let spec = DatasetSpec {
        name: "CC".into(),
        num_rows: rows(8_000, size),
        columns,
        archetypes,
        noise: 0.05,
        missing_rate: 0.0,
    };
    generate(&spec, seed)
}

/// Synthetic stand-in for the US mutual-funds dataset (`USF`): a very wide,
/// mostly numeric table (the paper's has 298 columns; we scale the width to 60
/// while keeping it by far the widest dataset).
pub fn us_funds(size: DatasetSize, seed: u64) -> PlantedDataset {
    let mut columns = vec![
        ColumnSpec::categorical(
            "category",
            &["equity", "bond", "mixed", "commodity", "real_estate"],
        ),
        ColumnSpec::categorical("region", &["US", "EU", "global", "emerging"]),
        ColumnSpec::categorical("risk_rating", &["low", "medium", "high"]),
        ColumnSpec::numeric("net_assets", 1e6, 1e10),
        ColumnSpec::numeric("expense_ratio", 0.01, 2.5),
        ColumnSpec::integer("morningstar_rating", 1, 6),
        ColumnSpec::numeric("yield", 0.0, 8.0),
        ColumnSpec::integer("inception_year", 1980, 2021),
    ];
    for year in 2010..2021 {
        columns.push(ColumnSpec::numeric(&format!("return_{year}"), -30.0, 40.0));
    }
    for q in 1..=8 {
        columns.push(ColumnSpec::numeric(
            &format!("quarterly_return_q{q}"),
            -15.0,
            20.0,
        ));
    }
    for i in 1..=10 {
        columns.push(ColumnSpec::numeric(
            &format!("sector_weight_{i}"),
            0.0,
            60.0,
        ));
    }
    for i in 1..=10 {
        columns.push(ColumnSpec::numeric(&format!("holding_pct_{i}"), 0.0, 12.0));
    }
    for name in [
        "alpha_3y",
        "beta_3y",
        "sharpe_3y",
        "stddev_3y",
        "sortino_3y",
        "treynor_3y",
        "alpha_5y",
        "beta_5y",
        "sharpe_5y",
        "stddev_5y",
        "turnover",
        "manager_tenure",
        "min_investment",
    ] {
        columns.push(ColumnSpec::numeric(name, 0.0, 10.0));
    }
    let archetypes = vec![
        Archetype::new(
            "high-risk-equity",
            0.3,
            vec![
                ("category", CellSpec::Category("equity".into())),
                ("risk_rating", CellSpec::Category("high".into())),
                ("stddev_3y", CellSpec::Range(7.0, 10.0)),
                ("beta_3y", CellSpec::Range(1.0, 2.0)),
                ("yield", CellSpec::Range(0.0, 1.5)),
            ],
        ),
        Archetype::new(
            "stable-bond",
            0.3,
            vec![
                ("category", CellSpec::Category("bond".into())),
                ("risk_rating", CellSpec::Category("low".into())),
                ("stddev_3y", CellSpec::Range(0.0, 2.0)),
                ("yield", CellSpec::Range(2.5, 6.0)),
                ("expense_ratio", CellSpec::Range(0.01, 0.5)),
            ],
        ),
        Archetype::new(
            "five-star-cheap",
            0.15,
            vec![
                ("morningstar_rating", CellSpec::IntValue(5)),
                ("expense_ratio", CellSpec::Range(0.01, 0.3)),
                ("sharpe_3y", CellSpec::Range(6.0, 10.0)),
            ],
        ),
    ];
    let spec = DatasetSpec {
        name: "USF".into(),
        num_rows: rows(2_000, size),
        columns,
        archetypes,
        noise: 0.05,
        missing_rate: 0.08,
    };
    generate(&spec, seed)
}

/// Synthetic stand-in for the bank-loan status dataset (`BL`).
pub fn bank_loans(size: DatasetSize, seed: u64) -> PlantedDataset {
    let columns = vec![
        ColumnSpec::categorical("loan_status", &["Fully Paid", "Charged Off"]),
        ColumnSpec::numeric("current_loan_amount", 1_000.0, 800_000.0),
        ColumnSpec::categorical("term", &["Short Term", "Long Term"]),
        ColumnSpec::numeric("credit_score", 550.0, 850.0),
        ColumnSpec::numeric("annual_income", 15_000.0, 400_000.0),
        ColumnSpec::categorical("years_in_job", &["<1", "1-3", "3-5", "5-10", "10+"]),
        ColumnSpec::categorical("home_ownership", &["Rent", "Mortgage", "Own"]),
        ColumnSpec::categorical(
            "purpose",
            &[
                "debt_consolidation",
                "home_improvements",
                "business",
                "medical",
                "other",
            ],
        ),
        ColumnSpec::numeric("monthly_debt", 0.0, 30_000.0),
        ColumnSpec::numeric("years_credit_history", 2.0, 50.0),
        ColumnSpec::numeric("months_since_delinquent", 0.0, 120.0),
        ColumnSpec::integer("open_accounts", 1, 40),
        ColumnSpec::integer("credit_problems", 0, 5),
        ColumnSpec::numeric("current_credit_balance", 0.0, 1_000_000.0),
        ColumnSpec::numeric("max_open_credit", 0.0, 1_500_000.0),
        ColumnSpec::integer("bankruptcies", 0, 3),
        ColumnSpec::integer("tax_liens", 0, 3),
        ColumnSpec::numeric("interest_rate", 3.0, 28.0),
        ColumnSpec::integer("num_dependents", 0, 5),
    ];
    let archetypes = vec![
        Archetype::new(
            "charged-off-low-score",
            0.2,
            vec![
                ("credit_score", CellSpec::Range(550.0, 640.0)),
                ("credit_problems", CellSpec::IntValue(2)),
                ("interest_rate", CellSpec::Range(18.0, 28.0)),
                ("loan_status", CellSpec::Category("Charged Off".into())),
            ],
        ),
        Archetype::new(
            "paid-prime-borrower",
            0.35,
            vec![
                ("credit_score", CellSpec::Range(740.0, 850.0)),
                ("annual_income", CellSpec::Range(120_000.0, 400_000.0)),
                ("home_ownership", CellSpec::Category("Mortgage".into())),
                ("interest_rate", CellSpec::Range(3.0, 9.0)),
                ("loan_status", CellSpec::Category("Fully Paid".into())),
            ],
        ),
        Archetype::new(
            "long-term-consolidation",
            0.25,
            vec![
                ("term", CellSpec::Category("Long Term".into())),
                ("purpose", CellSpec::Category("debt_consolidation".into())),
                ("monthly_debt", CellSpec::Range(10_000.0, 30_000.0)),
                ("loan_status", CellSpec::Category("Fully Paid".into())),
            ],
        ),
        // The antecedent must stay rare among background rows (which draw
        // months_since_delinquent uniformly from [0, 120)): a [0, 24) window
        // lets ~7% of background rows match by chance, diluting the planted
        // rule's empirical confidence to ~0.6 on Tiny datasets. [0, 12) plus
        // a higher weight keeps the rule recoverable at every size.
        Archetype::new(
            "bankruptcy-history",
            0.15,
            vec![
                ("bankruptcies", CellSpec::IntValue(1)),
                ("months_since_delinquent", CellSpec::Range(0.0, 12.0)),
                ("loan_status", CellSpec::Category("Charged Off".into())),
            ],
        ),
    ];
    let spec = DatasetSpec {
        name: "BL".into(),
        num_rows: rows(5_000, size),
        columns,
        archetypes,
        noise: 0.05,
        missing_rate: 0.04,
    };
    generate(&spec, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shapes_match_paper_proportions() {
        let size = DatasetSize::Tiny;
        let fl = flights(size, 1);
        let cy = cyber(size, 1);
        let sp = spotify(size, 1);
        let cc = credit_card(size, 1);
        let usf = us_funds(size, 1);
        let bl = bank_loans(size, 1);

        assert_eq!(fl.table.num_columns(), 31);
        assert_eq!(cy.table.num_columns(), 15);
        assert_eq!(sp.table.num_columns(), 15);
        assert_eq!(cc.table.num_columns(), 31);
        assert!(usf.table.num_columns() >= 55, "USF must be very wide");
        assert_eq!(bl.table.num_columns(), 19);

        // Relative row ordering mirrors the paper.
        assert!(fl.table.num_rows() > cc.table.num_rows());
        assert!(cc.table.num_rows() > sp.table.num_rows());
        assert!(sp.table.num_rows() >= cy.table.num_rows());
    }

    #[test]
    fn all_datasets_have_planted_structure() {
        for kind in [
            DatasetKind::Flights,
            DatasetKind::Cyber,
            DatasetKind::Spotify,
            DatasetKind::CreditCard,
            DatasetKind::UsFunds,
            DatasetKind::BankLoans,
        ] {
            let ds = kind.build(DatasetSize::Tiny, 9);
            assert!(!ds.archetypes.is_empty(), "{:?} has no archetypes", kind);
            for a in 0..ds.archetypes.len() {
                let conf = ds.archetype_confidence(a);
                assert!(
                    conf > 0.6,
                    "{:?} archetype {a} ({}) confidence {conf} too low",
                    kind,
                    ds.archetypes[a].name
                );
            }
            assert_eq!(ds.row_archetype.len(), ds.table.num_rows());
        }
    }

    #[test]
    fn flights_cancelled_pattern_matches_paper_example() {
        let ds = flights(DatasetSize::Tiny, 3);
        let t = &ds.table;
        let mut cancelled_with_missing_dep = 0usize;
        let mut cancelled = 0usize;
        for r in 0..t.num_rows() {
            if t.value(r, "CANCELLED").unwrap() == subtab_data::Value::Int(1) {
                cancelled += 1;
                if t.value(r, "DEPARTURE_TIME").unwrap().is_null() {
                    cancelled_with_missing_dep += 1;
                }
            }
        }
        assert!(cancelled > 0);
        assert!(
            cancelled_with_missing_dep as f64 / cancelled as f64 > 0.7,
            "cancelled flights should mostly have missing departure times"
        );
    }

    #[test]
    fn labels_are_the_paper_abbreviations() {
        assert_eq!(DatasetKind::Flights.label(), "FL");
        assert_eq!(DatasetKind::Cyber.label(), "CY");
        assert_eq!(DatasetKind::Spotify.label(), "SP");
        assert_eq!(DatasetKind::CreditCard.label(), "CC");
        assert_eq!(DatasetKind::UsFunds.label(), "USF");
        assert_eq!(DatasetKind::BankLoans.label(), "BL");
    }

    #[test]
    fn sizes_scale_row_counts() {
        let tiny = cyber(DatasetSize::Tiny, 5);
        let small = cyber(DatasetSize::Small, 5);
        let medium = cyber(DatasetSize::Medium, 5);
        assert!(tiny.table.num_rows() < small.table.num_rows());
        assert!(small.table.num_rows() < medium.table.num_rows());
    }
}
