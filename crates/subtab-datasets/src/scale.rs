//! The 100k–1M-row scale tier (`--scale large`).
//!
//! The six zoo datasets scale the paper's Kaggle tables *down* so the full
//! experiment suite stays laptop-sized. This module scales *up*: four
//! stress archetypes at 100k (CI quick sub-tier) and 1M rows (local/paper
//! tier), each designed to lean on a different part of the columnar core:
//!
//! * [`ScaleShape::Wide`] — many columns of every type; stresses
//!   per-column fit/apply fan-out and the token plane width.
//! * [`ScaleShape::HighCardinality`] — string columns with thousands of
//!   distinct values; stresses dictionary interning and code-plane scans.
//! * [`ScaleShape::SparseNulls`] — NULL-heavy columns (≥ half the cells
//!   missing); stresses the validity bitmaps, sentinel slots and
//!   `IS NULL` compilation.
//! * [`ScaleShape::Timestamps`] — wide-range epoch/duration integers;
//!   stresses numeric cut binning and plane scans with high-entropy values.
//!
//! Row counts are pinned by [`ScaleTier`] rather than multiplied out of a
//! base count, so `large-100k` means exactly 100 000 rows.

use crate::generator::{generate, PlantedDataset};
use crate::spec::{Archetype, CellSpec, ColumnSpec, DatasetSpec};

/// Row count of a scale-tier dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleTier {
    /// 100 000 rows — the CI quick sub-tier; end-to-end in seconds.
    Rows100k,
    /// 1 000 000 rows — the local acceptance tier.
    Rows1M,
}

impl ScaleTier {
    /// The exact number of rows this tier generates.
    pub fn num_rows(self) -> usize {
        match self {
            ScaleTier::Rows100k => 100_000,
            ScaleTier::Rows1M => 1_000_000,
        }
    }

    /// Short label used in benchmark output (`100k` / `1m`).
    pub fn label(self) -> &'static str {
        match self {
            ScaleTier::Rows100k => "100k",
            ScaleTier::Rows1M => "1m",
        }
    }
}

/// Which stress shape a scale-tier dataset takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleShape {
    /// 48 columns across all types.
    Wide,
    /// String domains with thousands of distinct values.
    HighCardinality,
    /// Most cells missing.
    SparseNulls,
    /// Epoch-second and duration integers with huge ranges.
    Timestamps,
}

impl ScaleShape {
    /// All shapes, in the order benchmarks iterate them.
    pub const ALL: [ScaleShape; 4] = [
        ScaleShape::Wide,
        ScaleShape::HighCardinality,
        ScaleShape::SparseNulls,
        ScaleShape::Timestamps,
    ];

    /// Short label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            ScaleShape::Wide => "wide",
            ScaleShape::HighCardinality => "highcard",
            ScaleShape::SparseNulls => "sparse",
            ScaleShape::Timestamps => "timestamp",
        }
    }
}

/// Builds the [`DatasetSpec`] of a scale shape at an explicit row count.
///
/// Exposed separately from [`scale_dataset`] so tests and the benchmark's
/// quick sub-tier can generate the same *shape* at a smaller size.
pub fn scale_spec(shape: ScaleShape, num_rows: usize) -> DatasetSpec {
    match shape {
        ScaleShape::Wide => wide_spec(num_rows),
        ScaleShape::HighCardinality => high_cardinality_spec(num_rows),
        ScaleShape::SparseNulls => sparse_nulls_spec(num_rows),
        ScaleShape::Timestamps => timestamps_spec(num_rows),
    }
}

/// Generates one scale-tier dataset deterministically.
pub fn scale_dataset(shape: ScaleShape, tier: ScaleTier, seed: u64) -> PlantedDataset {
    generate(&scale_spec(shape, tier.num_rows()), seed)
}

/// 48 columns: 16 numeric, 16 low-cardinality categorical, 16 integer.
fn wide_spec(num_rows: usize) -> DatasetSpec {
    let mut columns = Vec::with_capacity(48);
    for i in 0..16 {
        columns.push(ColumnSpec::numeric(
            &format!("metric_{i:02}"),
            0.0,
            1_000.0 * (i + 1) as f64,
        ));
    }
    let domains: [&[&str]; 4] = [
        &["alpha", "beta", "gamma", "delta"],
        &["north", "south", "east", "west", "central"],
        &["low", "mid", "high"],
        &["a", "b", "c", "d", "e", "f", "g", "h"],
    ];
    for i in 0..16 {
        columns.push(ColumnSpec::categorical(
            &format!("cat_{i:02}"),
            domains[i % domains.len()],
        ));
    }
    for i in 0..16 {
        columns.push(ColumnSpec::integer(
            &format!("count_{i:02}"),
            0,
            (i as i64 + 2) * 10,
        ));
    }
    DatasetSpec {
        name: "scale-wide".into(),
        num_rows,
        columns,
        archetypes: vec![
            Archetype::new(
                "hot-alpha",
                0.25,
                vec![
                    ("cat_00", CellSpec::Category("alpha".into())),
                    ("metric_00", CellSpec::Range(900.0, 1_000.0)),
                    ("count_00", CellSpec::IntValue(1)),
                ],
            ),
            Archetype::new(
                "cold-west",
                0.2,
                vec![
                    ("cat_01", CellSpec::Category("west".into())),
                    ("metric_01", CellSpec::Range(0.0, 100.0)),
                    ("count_01", CellSpec::IntValue(0)),
                ],
            ),
        ],
        noise: 0.05,
        missing_rate: 0.02,
    }
}

/// String columns with thousands of distinct values (ids, hosts) alongside
/// a handful of narrow columns so rules still exist.
fn high_cardinality_spec(num_rows: usize) -> DatasetSpec {
    // Domain sizes are fixed (independent of the row count) so the 1M tier
    // revisits values — that is what a real id column does, and it is what
    // makes dictionary interning worth measuring.
    let users: Vec<String> = (0..8_192).map(|i| format!("user-{i:05}")).collect();
    let hosts: Vec<String> = (0..2_048)
        .map(|i| format!("host-{i:04}.internal"))
        .collect();
    let paths: Vec<String> = (0..4_096)
        .map(|i| format!("/api/v2/resource/{i}"))
        .collect();
    DatasetSpec {
        name: "scale-highcard".into(),
        num_rows,
        columns: vec![
            ColumnSpec::Categorical {
                name: "user".into(),
                values: users,
            },
            ColumnSpec::Categorical {
                name: "host".into(),
                values: hosts,
            },
            ColumnSpec::Categorical {
                name: "path".into(),
                values: paths,
            },
            ColumnSpec::categorical("method", &["GET", "POST", "PUT", "DELETE"]),
            ColumnSpec::categorical("status_class", &["2xx", "3xx", "4xx", "5xx"]),
            ColumnSpec::numeric("latency_ms", 0.1, 2_000.0),
            ColumnSpec::integer("bytes", 0, 1_048_576),
            ColumnSpec::integer("retries", 0, 4),
        ],
        archetypes: vec![
            Archetype::new(
                "slow-errors",
                0.25,
                vec![
                    ("status_class", CellSpec::Category("5xx".into())),
                    ("latency_ms", CellSpec::Range(1_500.0, 2_000.0)),
                    ("retries", CellSpec::IntValue(3)),
                ],
            ),
            Archetype::new(
                "fast-reads",
                0.3,
                vec![
                    ("method", CellSpec::Category("GET".into())),
                    ("status_class", CellSpec::Category("2xx".into())),
                    ("latency_ms", CellSpec::Range(0.1, 50.0)),
                ],
            ),
        ],
        noise: 0.05,
        missing_rate: 0.01,
    }
}

/// NULL-heavy shape: a high background missing rate plus archetypes whose
/// pattern *is* missingness (the paper's "NaN when cancelled" motif).
fn sparse_nulls_spec(num_rows: usize) -> DatasetSpec {
    DatasetSpec {
        name: "scale-sparse".into(),
        num_rows,
        columns: vec![
            ColumnSpec::integer("churned", 0, 2),
            ColumnSpec::numeric("last_login_days", 0.0, 365.0),
            ColumnSpec::numeric("purchase_total", 0.0, 10_000.0),
            ColumnSpec::numeric("refund_total", 0.0, 2_000.0),
            ColumnSpec::categorical("plan", &["free", "pro", "team", "enterprise"]),
            ColumnSpec::categorical("referrer", &["ad", "organic", "partner"]),
            ColumnSpec::numeric("support_tickets", 0.0, 50.0),
            ColumnSpec::integer("seats", 1, 500),
        ],
        archetypes: vec![
            Archetype::new(
                "ghost-churner",
                0.3,
                vec![
                    ("churned", CellSpec::IntValue(1)),
                    ("purchase_total", CellSpec::Missing),
                    ("last_login_days", CellSpec::Missing),
                ],
            ),
            Archetype::new(
                "active-pro",
                0.25,
                vec![
                    ("plan", CellSpec::Category("pro".into())),
                    ("churned", CellSpec::IntValue(0)),
                    ("last_login_days", CellSpec::Range(0.0, 7.0)),
                ],
            ),
        ],
        noise: 0.05,
        // More than half of all unconstrained cells are NULL: the validity
        // planes are mostly zeros and the sentinel slots dominate.
        missing_rate: 0.55,
    }
}

/// Timestamp-heavy shape: epoch seconds across two years, durations, and a
/// few derived low-cardinality time fields.
fn timestamps_spec(num_rows: usize) -> DatasetSpec {
    // 2023-01-01 .. 2025-01-01 as epoch seconds.
    let (epoch_lo, epoch_hi) = (1_672_531_200i64, 1_735_689_600i64);
    DatasetSpec {
        name: "scale-timestamp".into(),
        num_rows,
        columns: vec![
            ColumnSpec::integer("started_at", epoch_lo, epoch_hi),
            ColumnSpec::integer("finished_at", epoch_lo, epoch_hi),
            ColumnSpec::numeric("duration_s", 0.001, 86_400.0),
            ColumnSpec::integer("hour_of_day", 0, 24),
            ColumnSpec::integer("day_of_week", 0, 7),
            ColumnSpec::categorical("job_kind", &["etl", "report", "backup", "compact"]),
            ColumnSpec::integer("exit_code", 0, 3),
            ColumnSpec::numeric("cpu_s", 0.0, 7_200.0),
        ],
        archetypes: vec![
            Archetype::new(
                "night-backup",
                0.25,
                vec![
                    ("job_kind", CellSpec::Category("backup".into())),
                    ("hour_of_day", CellSpec::IntValue(3)),
                    ("exit_code", CellSpec::IntValue(0)),
                ],
            ),
            Archetype::new(
                "failing-etl",
                0.2,
                vec![
                    ("job_kind", CellSpec::Category("etl".into())),
                    ("duration_s", CellSpec::Range(20_000.0, 86_400.0)),
                    ("exit_code", CellSpec::IntValue(2)),
                ],
            ),
        ],
        noise: 0.05,
        missing_rate: 0.03,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_pin_exact_row_counts() {
        assert_eq!(ScaleTier::Rows100k.num_rows(), 100_000);
        assert_eq!(ScaleTier::Rows1M.num_rows(), 1_000_000);
        assert_eq!(ScaleTier::Rows100k.label(), "100k");
        assert_eq!(ScaleTier::Rows1M.label(), "1m");
    }

    #[test]
    fn every_shape_generates_its_stress_property() {
        // Small row counts here: the shapes, not the tiers, are under test.
        let n = 3_000usize;
        for shape in ScaleShape::ALL {
            let ds = generate(&scale_spec(shape, n), 42);
            assert_eq!(ds.table.num_rows(), n, "{}", shape.label());
            assert!(!ds.archetypes.is_empty());
            match shape {
                ScaleShape::Wide => {
                    assert_eq!(ds.table.num_columns(), 48);
                }
                ScaleShape::HighCardinality => {
                    let distinct = ds.table.column("user").unwrap().distinct_count();
                    assert!(distinct > 1_000, "user cardinality = {distinct}");
                }
                ScaleShape::SparseNulls => {
                    let nulls = ds.table.null_fraction();
                    assert!(nulls > 0.4, "null fraction = {nulls}");
                }
                ScaleShape::Timestamps => {
                    let col = ds.table.column("started_at").unwrap();
                    let distinct = col.distinct_count();
                    // Epoch seconds over two years barely ever repeat.
                    assert!(distinct as f64 > n as f64 * 0.9, "distinct = {distinct}");
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&scale_spec(ScaleShape::SparseNulls, 500), 7);
        let b = generate(&scale_spec(ScaleShape::SparseNulls, 500), 7);
        for c in a.table.column_names() {
            for r in [0usize, 250, 499] {
                assert_eq!(a.table.value(r, c).unwrap(), b.table.value(r, c).unwrap());
            }
        }
    }

    #[test]
    fn scale_dataset_honours_the_tier() {
        let ds = scale_dataset(ScaleShape::Wide, ScaleTier::Rows100k, 1);
        assert_eq!(ds.table.num_rows(), 100_000);
        assert_eq!(ds.table.num_columns(), 48);
    }
}
