//! A keyed LRU result cache with single-flight computation and hit/miss
//! accounting.
//!
//! Keys are canonical request encodings (see
//! [`Query::selection_key`](subtab_data::Query::selection_key)), values are
//! `Arc`-shared results, so a cache hit is a pointer bump. Concurrent misses
//! on the *same* key are collapsed into one computation: the first caller
//! computes while every racer parks on a condvar and receives the winner's
//! value — two sessions issuing the same query never duplicate work or race
//! to insert duplicate entries.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Point-in-time counters of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to compute (including single-flight winners).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` when the cache has seen no requests.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    value: V,
    /// Recency stamp from the cache's logical clock; the smallest stamp is
    /// the least recently used entry.
    last_used: u64,
}

struct Inner<V> {
    map: HashMap<String, Entry<V>>,
    /// Keys currently being computed by some thread (single-flight).
    inflight: HashSet<String>,
    /// Logical clock advanced on every touch.
    tick: u64,
}

/// An LRU map from canonical request keys to shared results.
///
/// Capacity `0` disables caching entirely: every request computes, nothing
/// is stored and concurrent duplicates are *not* collapsed (useful for
/// benchmarking the raw execution path).
pub struct ResultCache<V> {
    inner: Mutex<Inner<V>>,
    /// Signalled when an in-flight computation finishes (either outcome).
    changed: Condvar,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> ResultCache<V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                inflight: HashSet::new(),
                tick: 0,
            }),
            changed: Condvar::new(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the cached value for `key`, or computes it with `f`.
    ///
    /// The boolean is `true` on a cache hit. Exactly one caller computes a
    /// missing key at a time; racers block until the computation finishes
    /// and then read the inserted value. A failed computation inserts
    /// nothing — one parked racer retries (and may succeed, e.g. after a
    /// transient failure), the error propagates to the caller that hit it.
    pub fn get_or_compute<E>(
        &self,
        key: &str,
        f: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), E> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return f().map(|v| (v, false));
        }
        {
            let mut guard = self.inner.lock().expect("cache lock poisoned");
            loop {
                if let Some(entry) = guard.map.get(key) {
                    let value = entry.value.clone();
                    guard.tick += 1;
                    let tick = guard.tick;
                    guard
                        .map
                        .get_mut(key)
                        .expect("entry present just above")
                        .last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((value, true));
                }
                if guard.inflight.contains(key) {
                    guard = self.changed.wait(guard).expect("cache lock poisoned");
                    continue;
                }
                guard.inflight.insert(key.to_string());
                self.misses.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        // Compute outside the lock — this is the expensive part the
        // single-flight discipline protects.
        let computed = f();
        let mut guard = self.inner.lock().expect("cache lock poisoned");
        guard.inflight.remove(key);
        let out = match computed {
            Ok(value) => {
                if guard.map.len() >= self.capacity && !guard.map.contains_key(key) {
                    // Evict the least recently used entry. The scan is
                    // O(entries), which is dwarfed by the miss computation
                    // that triggered it at any realistic capacity.
                    if let Some(lru_key) = guard
                        .map
                        .iter()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(k, _)| k.clone())
                    {
                        guard.map.remove(&lru_key);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                guard.tick += 1;
                let tick = guard.tick;
                guard.map.insert(
                    key.to_string(),
                    Entry {
                        value: value.clone(),
                        last_used: tick,
                    },
                );
                Ok((value, false))
            }
            Err(e) => Err(e),
        };
        drop(guard);
        self.changed.notify_all();
        out
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("cache lock poisoned").map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn compute(counter: &AtomicUsize, v: u64) -> Result<u64, Infallible> {
        counter.fetch_add(1, Ordering::SeqCst);
        Ok(v)
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache: ResultCache<u64> = ResultCache::new(4);
        let calls = AtomicUsize::new(0);
        let (v, hit) = cache.get_or_compute("a", || compute(&calls, 1)).unwrap();
        assert_eq!((v, hit), (1, false));
        let (v, hit) = cache.get_or_compute("a", || compute(&calls, 2)).unwrap();
        assert_eq!((v, hit), (1, true), "second lookup must hit");
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_follows_lru_order() {
        let cache: ResultCache<u64> = ResultCache::new(2);
        let calls = AtomicUsize::new(0);
        cache.get_or_compute("a", || compute(&calls, 1)).unwrap();
        cache.get_or_compute("b", || compute(&calls, 2)).unwrap();
        // Touch "a" so "b" becomes the least recently used entry.
        cache.get_or_compute("a", || compute(&calls, 9)).unwrap();
        // Inserting "c" evicts "b", not "a".
        cache.get_or_compute("c", || compute(&calls, 3)).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        let (_, hit_a) = cache.get_or_compute("a", || compute(&calls, 9)).unwrap();
        assert!(hit_a, "recently used entry must survive");
        let (_, hit_b) = cache.get_or_compute("b", || compute(&calls, 2)).unwrap();
        assert!(!hit_b, "LRU entry must have been evicted");
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache: ResultCache<u64> = ResultCache::new(0);
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let (_, hit) = cache.get_or_compute("a", || compute(&calls, 1)).unwrap();
            assert!(!hit);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn failed_computation_inserts_nothing() {
        let cache: ResultCache<u64> = ResultCache::new(4);
        let r: Result<(u64, bool), &str> = cache.get_or_compute("a", || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(cache.stats().entries, 0);
        // The key is computable again afterwards.
        let calls = AtomicUsize::new(0);
        let (v, hit) = cache.get_or_compute("a", || compute(&calls, 7)).unwrap();
        assert_eq!((v, hit), (7, false));
    }

    #[test]
    fn concurrent_misses_single_flight_into_one_computation() {
        let cache: Arc<ResultCache<u64>> = Arc::new(ResultCache::new(4));
        let calls = Arc::new(AtomicUsize::new(0));
        let results: Vec<(u64, bool)> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let calls = Arc::clone(&calls);
                    scope.spawn(move || {
                        cache
                            .get_or_compute("shared", || {
                                // Widen the race window so racers really park.
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                compute(&calls, 42)
                            })
                            .unwrap()
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "exactly one thread computes"
        );
        assert!(results.iter().all(|&(v, _)| v == 42));
        assert_eq!(
            results.iter().filter(|&&(_, hit)| !hit).count(),
            1,
            "exactly one miss; every racer reads the winner's entry"
        );
    }
}
