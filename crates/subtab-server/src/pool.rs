//! A dual-lane worker pool with heavy-job admission control.
//!
//! Jobs arrive on one of two lanes. The **interactive** lane (selects,
//! highlight probes) is always preferred: an idle worker drains it first.
//! The **heavy** lane (rule mining) is admission-controlled: at most
//! `heavy_slots` heavy jobs run at once, so a burst of
//! `mine_rules_for_targets` calls can never occupy every worker and starve
//! interactive selects — with `workers > heavy_slots` there is always at
//! least one worker that heavy jobs cannot claim.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Which lane a job is submitted on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Latency-sensitive work; always drained first.
    Interactive,
    /// Throughput work; at most `heavy_slots` run concurrently.
    Heavy,
}

struct State {
    interactive: VecDeque<Job>,
    heavy: VecDeque<Job>,
    heavy_running: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled on submit, on heavy-slot release and on shutdown.
    work: Condvar,
    heavy_slots: usize,
}

/// The worker pool. Dropping it drains both queues (every submitted job
/// still runs) and joins the workers.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool of `workers` threads admitting at most `heavy_slots`
    /// concurrent heavy jobs. Both values are clamped to at least 1; when
    /// `heavy_slots >= workers` it is clamped to `workers - 1` (so one
    /// worker always remains for interactive work), except for a
    /// single-worker pool where the lone worker serves both lanes.
    pub fn new(workers: usize, heavy_slots: usize) -> Self {
        let workers = workers.max(1);
        let heavy_slots = if workers == 1 {
            1
        } else {
            heavy_slots.clamp(1, workers - 1)
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                interactive: VecDeque::new(),
                heavy: VecDeque::new(),
                heavy_running: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            heavy_slots,
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Pool {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Maximum number of concurrently running heavy jobs.
    pub fn heavy_slots(&self) -> usize {
        self.shared.heavy_slots
    }

    /// Enqueues `job` on `lane`. Jobs submitted after the pool started
    /// dropping are still executed by the drain.
    pub fn submit(&self, lane: Lane, job: impl FnOnce() + Send + 'static) {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        match lane {
            Lane::Interactive => state.interactive.push_back(Box::new(job)),
            Lane::Heavy => state.heavy.push_back(Box::new(job)),
        }
        drop(state);
        self.shared.work.notify_all();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut state = shared.state.lock().expect("pool lock poisoned");
    loop {
        // Interactive work first; heavy work only while a slot is free.
        if let Some(job) = state.interactive.pop_front() {
            drop(state);
            job();
            state = shared.state.lock().expect("pool lock poisoned");
            continue;
        }
        if state.heavy_running < shared.heavy_slots {
            if let Some(job) = state.heavy.pop_front() {
                state.heavy_running += 1;
                drop(state);
                job();
                state = shared.state.lock().expect("pool lock poisoned");
                state.heavy_running -= 1;
                // A freed slot may unblock workers parked on a full lane.
                shared.work.notify_all();
                continue;
            }
        }
        if state.shutdown && state.interactive.is_empty() && state.heavy.is_empty() {
            return;
        }
        state = shared.work.wait(state).expect("pool lock poisoned");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_report_back() {
        let pool = Pool::new(2, 1);
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            let tx = tx.clone();
            pool.submit(Lane::Interactive, move || tx.send(i).unwrap());
        }
        let mut got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn heavy_jobs_cannot_starve_interactive_work() {
        // 2 workers, 1 heavy slot: even with heavy jobs queued and one
        // running forever, an interactive job must still get a worker.
        let pool = Pool::new(2, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        for _ in 0..4 {
            let release_rx = Arc::clone(&release_rx);
            pool.submit(Lane::Heavy, move || {
                // Blocks until the test releases it.
                let _ = release_rx.lock().unwrap().recv();
            });
        }
        let (tx, rx) = mpsc::channel();
        pool.submit(Lane::Interactive, move || tx.send(42).unwrap());
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10)),
            Ok(42),
            "interactive job starved by queued heavy jobs"
        );
        for _ in 0..4 {
            release_tx.send(()).unwrap();
        }
    }

    #[test]
    fn heavy_concurrency_is_capped_by_the_slot_count() {
        let pool = Pool::new(4, 1);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..6 {
            let running = Arc::clone(&running);
            let peak = Arc::clone(&peak);
            let tx = tx.clone();
            pool.submit(Lane::Heavy, move || {
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(10));
                running.fetch_sub(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..6 {
            rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        assert_eq!(
            peak.load(Ordering::SeqCst),
            1,
            "more heavy jobs ran concurrently than the slot count allows"
        );
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = Pool::new(2, 1);
            for _ in 0..20 {
                let done = Arc::clone(&done);
                pool.submit(Lane::Interactive, move || {
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
            for _ in 0..5 {
                let done = Arc::clone(&done);
                pool.submit(Lane::Heavy, move || {
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // Drop joins the workers after the drain.
        assert_eq!(done.load(Ordering::SeqCst), 25);
    }

    #[test]
    fn degenerate_configurations_are_clamped() {
        let pool = Pool::new(0, 0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.heavy_slots(), 1);
        let pool = Pool::new(4, 99);
        assert_eq!(pool.heavy_slots(), 3, "one worker stays interactive-only");
    }
}
