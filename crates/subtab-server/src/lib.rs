//! # subtab-server
//!
//! A long-running, concurrent exploration service over one table: the
//! serving layer the paper's interactive EDA setting implies. The table is
//! pre-processed **once** ([`subtab_core::SubTab::preprocess`]); many
//! analyst sessions then issue selects, rule-mining runs and highlighted
//! selects against the shared immutable state concurrently.
//!
//! Architecture:
//!
//! * **`Arc`-shared state** — one [`SubTab`] (table, binning, embedding)
//!   serves every request; nothing is copied per session.
//! * **Dual-lane thread pool** ([`pool`]) — interactive selects are always
//!   preferred; heavy rule-mining jobs pass an admission gate (at most
//!   `heavy_slots` at once) so mining can never starve selects.
//! * **Keyed LRU caches** ([`cache`]) — canonical request encodings
//!   ([`Query::selection_key`]) map to `Arc`-shared results with
//!   single-flight computation and hit/miss counters. Queries that differ
//!   only in predicate order or numeric spelling share one cache entry.
//! * **Sessions** ([`session`]) — per-analyst ids with a history of every
//!   completed request (kind, query, cache hit, wall time).
//!
//! Selections and mined rule sets are bit-identical at every thread count,
//! which is what makes result caching across sessions sound: the `threads`
//! knob is deliberately absent from every cache key.
//!
//! ```
//! use subtab_core::{SelectionParams, SubTabConfig};
//! use subtab_data::Table;
//! use subtab_server::{ExplorationServer, Request, ServerConfig};
//!
//! let table = Table::builder()
//!     .column_f64("distance", (0..120).map(|i| Some(100.0 * (1 + i % 7) as f64)).collect())
//!     .column_str("airline", (0..120).map(|i| Some(if i % 2 == 0 { "WN" } else { "DL" })).collect())
//!     .build()
//!     .unwrap();
//! let server =
//!     ExplorationServer::new(table, SubTabConfig::fast(), ServerConfig::default()).unwrap();
//! let session = server.open_session();
//! let request = Request::Select { query: None, params: SelectionParams::new(5, 2) };
//! let cold = server.execute(session, request.clone()).unwrap();
//! assert!(!cold.cache_hit);
//! let warm = server.execute(session, request).unwrap();
//! assert!(warm.cache_hit, "identical request must be served from the cache");
//! let history = server.close_session(session).unwrap();
//! assert_eq!(history.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod pool;
pub mod session;

pub use cache::{CacheStats, ResultCache};
pub use pool::{Lane, Pool};
pub use session::{HistoryRecord, RequestKind, SessionId};

use std::fmt;
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use subtab_core::{
    CoreError, LeafBitmapCache, SelectionParams, SubTab, SubTabConfig, SubTableResult,
};
use subtab_data::{Query, Table};
use subtab_rules::{MiningConfig, RuleSet};

use session::SessionRegistry;

/// Separates the select part from the rules part of a combined
/// highlighted-select cache key. Distinct from the `'\u{1}'` field
/// separator used inside [`Query::selection_key`] encodings, so combined
/// keys can never collide with plain select keys.
const KEY_PART_SEP: char = '\u{3}';

/// Errors of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The underlying query/selection/mining surface rejected the request.
    Core(CoreError),
    /// The request referenced a session that was never opened or is
    /// already closed.
    UnknownSession(SessionId),
    /// The server shut down before the request produced a response.
    Shutdown,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Core(e) => write!(f, "request failed: {e}"),
            ServerError::UnknownSession(id) => write!(f, "unknown {id}"),
            ServerError::Shutdown => write!(f, "server shut down"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<CoreError> for ServerError {
    fn from(e: CoreError) -> Self {
        ServerError::Core(e)
    }
}

/// Configuration of an [`ExplorationServer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Maximum number of concurrently *running* heavy (rule-mining) jobs;
    /// clamped below `workers` so selects always have a worker (see
    /// [`Pool::new`]).
    pub heavy_slots: usize,
    /// Capacity of the selection-result cache (`0` disables it).
    pub select_cache_capacity: usize,
    /// Capacity of the mined-rule-set cache (`0` disables it).
    pub rules_cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            heavy_slots: 1,
            select_cache_capacity: 256,
            rules_cache_capacity: 32,
        }
    }
}

/// One request against the served table.
#[derive(Debug, Clone)]
pub enum Request {
    /// Select a `k × l` sub-table of the full table (`query: None`) or of a
    /// query result. Runs on the interactive lane.
    Select {
        /// The SP query scoping the selection; `None` (and the empty
        /// query) mean the full table.
        query: Option<Query>,
        /// Sub-table dimensions and target columns.
        params: SelectionParams,
    },
    /// Select a `k × l` sub-table scoped by a SQL-ish query *text* (e.g.
    /// `"age > 30 AND (city = 'NYC' OR NOT risk IN ('high')) LIMIT 20"`) —
    /// the wire-friendly twin of [`Request::Select`] for clients that ship
    /// strings instead of [`Query`] values. The text is parsed server-side
    /// when the request is submitted; a parse failure resolves the request
    /// immediately with [`CoreError::QueryParse`] and never reaches the
    /// result cache. A successfully parsed request is indistinguishable
    /// from the equivalent structured [`Request::Select`] — including its
    /// cache key, so a commuted respelling of a cached query text is a
    /// cache hit. Runs on the interactive lane.
    SelectText {
        /// The SQL-ish query text; the empty string means the full table.
        query: String,
        /// Sub-table dimensions and target columns.
        params: SelectionParams,
    },
    /// Mine association rules over the binned table, optionally partitioned
    /// by target columns. Runs on the admission-controlled heavy lane.
    MineRules {
        /// Mining thresholds.
        mining: MiningConfig,
        /// Target column *names*; empty mines the whole table.
        target_columns: Vec<String>,
    },
    /// Select a sub-table and attach per-row rule highlights from a mined
    /// (and cached) rule set. Runs on the heavy lane — a cold call mines.
    SelectHighlighted {
        /// The SP query scoping the selection; `None` means the full table.
        query: Option<Query>,
        /// Sub-table dimensions and target columns.
        params: SelectionParams,
        /// Mining thresholds for the highlighting rule set.
        mining: MiningConfig,
        /// Target column names for the mining run; empty mines the whole
        /// table.
        target_columns: Vec<String>,
    },
}

impl Request {
    fn kind(&self) -> RequestKind {
        match self {
            Request::Select { .. } | Request::SelectText { .. } => RequestKind::Select,
            Request::MineRules { .. } => RequestKind::MineRules,
            Request::SelectHighlighted { .. } => RequestKind::SelectHighlighted,
        }
    }

    fn lane(&self) -> Lane {
        match self {
            Request::Select { .. } | Request::SelectText { .. } => Lane::Interactive,
            Request::MineRules { .. } | Request::SelectHighlighted { .. } => Lane::Heavy,
        }
    }

    fn query(&self) -> Option<&Query> {
        match self {
            Request::Select { query, .. } | Request::SelectHighlighted { query, .. } => {
                query.as_ref()
            }
            // Text requests are normalised into `Select` at submission, so
            // a worker never sees this variant with its query unparsed.
            Request::SelectText { .. } | Request::MineRules { .. } => None,
        }
    }
}

/// A successful response payload.
#[derive(Debug, Clone)]
pub enum Response {
    /// A selected (possibly highlighted) sub-table.
    SubTable(Arc<SubTableResult>),
    /// A mined rule set.
    Rules(Arc<RuleSet>),
}

impl Response {
    /// The sub-table payload, if this response carries one.
    pub fn sub_table(&self) -> Option<&Arc<SubTableResult>> {
        match self {
            Response::SubTable(r) => Some(r),
            Response::Rules(_) => None,
        }
    }

    /// The rule-set payload, if this response carries one.
    pub fn rules(&self) -> Option<&Arc<RuleSet>> {
        match self {
            Response::Rules(r) => Some(r),
            Response::SubTable(_) => None,
        }
    }
}

/// A completed request: the payload plus serving metadata.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The response payload.
    pub response: Response,
    /// Whether a server cache answered the request.
    pub cache_hit: bool,
}

/// Point-in-time serving statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Counters of the selection-result cache.
    pub select_cache: CacheStats,
    /// Counters of the mined-rule-set cache.
    pub rules_cache: CacheStats,
    /// Currently open sessions.
    pub open_sessions: usize,
}

/// Everything the worker threads share. Immutable after construction apart
/// from the (internally synchronised) caches and session registry.
struct Shared {
    subtab: Arc<SubTab>,
    selects: ResultCache<Arc<SubTableResult>>,
    rules: ResultCache<Arc<RuleSet>>,
    sessions: Mutex<SessionRegistry>,
}

impl Shared {
    /// Canonical cache key of a select request. `None` and the empty query
    /// select over the same row set, so they share an entry; the seed is
    /// included because it changes the clustering (and thus the result).
    fn select_key(&self, query: Option<&Query>, params: &SelectionParams) -> String {
        let empty = Query::new();
        let q = query.unwrap_or(&empty);
        let mut key = format!(
            "sel\u{2}{}\u{2}{}\u{2}{}\u{2}{}",
            self.subtab.config().seed,
            params.k,
            params.l,
            params.target_columns.len(),
        );
        // Target order is part of the key: targets are force-included in
        // request order, so reordering them can reorder result columns.
        for t in &params.target_columns {
            key.push('\u{2}');
            key.push_str(&format!("{}:{t}", t.len()));
        }
        key.push('\u{2}');
        key.push_str(&q.selection_key());
        key
    }

    /// Canonical cache key of a mining request over resolved (sorted,
    /// deduplicated) target column indices. Thresholds are keyed by bit
    /// pattern, so `0.1` and `0.1 + 0.0` share an entry but any real
    /// threshold change does not.
    fn rules_key(mining: &MiningConfig, target_indices: &[usize]) -> String {
        let mut key = format!(
            "rules\u{2}{:016x}\u{2}{:016x}\u{2}{}\u{2}{}\u{2}{}",
            mining.min_support.to_bits(),
            mining.min_confidence.to_bits(),
            mining.min_rule_size,
            mining.max_rule_size,
            mining.max_rules,
        );
        for c in target_indices {
            key.push('\u{2}');
            key.push_str(&c.to_string());
        }
        key
    }

    /// Runs a selection, compiling query leaves through the session's
    /// leaf-bitmap cache when one is supplied. The cache only affects how
    /// leaf bitmaps are obtained — results are bit-identical either way, so
    /// the shared result cache stays sound across sessions.
    fn run_select(
        &self,
        query: Option<&Query>,
        params: &SelectionParams,
        leaf_cache: Option<&LeafBitmapCache>,
    ) -> Result<Arc<SubTableResult>, ServerError> {
        let result = match (query, leaf_cache) {
            (Some(q), Some(cache)) => self.subtab.select_for_query_cached(q, params, cache),
            (Some(q), None) => self.subtab.select_for_query(q, params),
            (None, _) => self.subtab.select(params),
        }?;
        Ok(Arc::new(result))
    }

    fn cached_select(
        &self,
        query: Option<&Query>,
        params: &SelectionParams,
        leaf_cache: Option<&LeafBitmapCache>,
    ) -> Result<(Arc<SubTableResult>, bool), ServerError> {
        let key = self.select_key(query, params);
        self.selects
            .get_or_compute(&key, || self.run_select(query, params, leaf_cache))
    }

    /// Resolves target column names against the binned schema, then mines
    /// through the rules cache.
    fn cached_rules(
        &self,
        mining: &MiningConfig,
        target_columns: &[String],
    ) -> Result<(Arc<RuleSet>, bool), ServerError> {
        let binned = self.subtab.preprocessed().binned();
        let mut indices = target_columns
            .iter()
            .map(|name| {
                binned
                    .column_index(name)
                    .ok_or_else(|| ServerError::Core(CoreError::UnknownColumn(name.clone())))
            })
            .collect::<Result<Vec<usize>, ServerError>>()?;
        indices.sort_unstable();
        indices.dedup();
        let key = Self::rules_key(mining, &indices);
        self.rules.get_or_compute(&key, || {
            let rules = if indices.is_empty() {
                self.subtab.mine_rules(mining)
            } else {
                self.subtab.mine_rules_for_targets(mining, &indices)
            };
            Ok::<_, ServerError>(Arc::new(rules))
        })
    }

    fn handle(
        &self,
        request: &Request,
        leaf_cache: Option<&LeafBitmapCache>,
    ) -> Result<Outcome, ServerError> {
        match request {
            // Normally normalised away at submission; parsing here keeps
            // direct calls well-defined with the same error contract.
            Request::SelectText { query, params } => {
                let parsed: Query = query.parse().map_err(CoreError::from)?;
                self.handle(
                    &Request::Select {
                        query: Some(parsed),
                        params: params.clone(),
                    },
                    leaf_cache,
                )
            }
            Request::Select { query, params } => {
                let (result, hit) = self.cached_select(query.as_ref(), params, leaf_cache)?;
                Ok(Outcome {
                    response: Response::SubTable(result),
                    cache_hit: hit,
                })
            }
            Request::MineRules {
                mining,
                target_columns,
            } => {
                let (rules, hit) = self.cached_rules(mining, target_columns)?;
                Ok(Outcome {
                    response: Response::Rules(rules),
                    cache_hit: hit,
                })
            }
            Request::SelectHighlighted {
                query,
                params,
                mining,
                target_columns,
            } => {
                // The highlighted result is cached under a combined key; a
                // miss reuses the plain-select and rule-set caches, so two
                // highlighted queries over one rule set mine exactly once.
                let sel_key = self.select_key(query.as_ref(), params);
                let combined = {
                    let binned = self.subtab.preprocessed().binned();
                    let mut indices: Vec<usize> = target_columns
                        .iter()
                        .filter_map(|n| binned.column_index(n))
                        .collect();
                    indices.sort_unstable();
                    indices.dedup();
                    format!(
                        "{sel_key}{KEY_PART_SEP}{}",
                        Self::rules_key(mining, &indices)
                    )
                };
                let (result, hit) = self.selects.get_or_compute(&combined, || {
                    let (plain, _) = self.cached_select(query.as_ref(), params, leaf_cache)?;
                    let (rules, _) = self.cached_rules(mining, target_columns)?;
                    let highlighted = self.subtab.with_highlights((*plain).clone(), &rules);
                    Ok::<_, ServerError>(Arc::new(highlighted))
                })?;
                Ok(Outcome {
                    response: Response::SubTable(result),
                    cache_hit: hit,
                })
            }
        }
    }
}

/// The concurrent exploration server: preprocess once, serve many sessions.
///
/// Dropping the server drains in-flight and queued requests (their
/// [`ExplorationServer::submit`] receivers still resolve) and joins the
/// worker threads.
pub struct ExplorationServer {
    shared: Arc<Shared>,
    pool: Pool,
}

impl ExplorationServer {
    /// Pre-processes `table` and starts the worker pool.
    pub fn new(
        table: Table,
        config: SubTabConfig,
        server_config: ServerConfig,
    ) -> Result<Self, ServerError> {
        let subtab = SubTab::preprocess(table, config)?;
        Ok(Self::from_subtab(subtab, server_config))
    }

    /// Wraps an already pre-processed [`SubTab`] (e.g. to share one
    /// preprocessing run between several servers or between a server and a
    /// direct-call baseline — pass an `Arc<SubTab>` clone).
    pub fn from_subtab(subtab: impl Into<Arc<SubTab>>, server_config: ServerConfig) -> Self {
        let shared = Arc::new(Shared {
            subtab: subtab.into(),
            selects: ResultCache::new(server_config.select_cache_capacity),
            rules: ResultCache::new(server_config.rules_cache_capacity),
            sessions: Mutex::new(SessionRegistry::default()),
        });
        let pool = Pool::new(server_config.workers, server_config.heavy_slots);
        ExplorationServer { shared, pool }
    }

    /// The served [`SubTab`] instance (read-only).
    pub fn subtab(&self) -> &SubTab {
        &self.shared.subtab
    }

    /// Opens a new session and returns its id.
    pub fn open_session(&self) -> SessionId {
        self.shared
            .sessions
            .lock()
            .expect("session lock poisoned")
            .open()
    }

    /// Closes a session, returning its full history.
    pub fn close_session(&self, id: SessionId) -> Result<Vec<HistoryRecord>, ServerError> {
        self.shared
            .sessions
            .lock()
            .expect("session lock poisoned")
            .close(id)
            .ok_or(ServerError::UnknownSession(id))
    }

    /// Counters of a session's private leaf-bitmap cache: how many
    /// predicate-leaf compilations were answered from the cache vs had to
    /// scan a column, and how many distinct leaves are resident. Evictions
    /// are always zero (the cache is unbounded for the session's lifetime
    /// and dropped on close).
    pub fn leaf_cache_stats(&self, id: SessionId) -> Result<CacheStats, ServerError> {
        let cache = self
            .shared
            .sessions
            .lock()
            .expect("session lock poisoned")
            .leaf_cache(id)
            .ok_or(ServerError::UnknownSession(id))?;
        Ok(CacheStats {
            hits: cache.hits(),
            misses: cache.misses(),
            evictions: 0,
            entries: cache.len(),
        })
    }

    /// The history of an open session so far.
    pub fn session_history(&self, id: SessionId) -> Result<Vec<HistoryRecord>, ServerError> {
        self.shared
            .sessions
            .lock()
            .expect("session lock poisoned")
            .history(id)
            .ok_or(ServerError::UnknownSession(id))
    }

    /// Enqueues `request` for `session` and returns a receiver that
    /// resolves to the outcome. Selects ride the interactive lane; mining
    /// and highlighted selects ride the admission-controlled heavy lane.
    ///
    /// The session is validated up front. If it is closed while the
    /// request is in flight, the request still completes (the result may
    /// be shared with other sessions through the cache) — only the history
    /// record is dropped.
    pub fn submit(
        &self,
        session: SessionId,
        request: Request,
    ) -> Receiver<Result<Outcome, ServerError>> {
        let (tx, rx) = mpsc::channel();
        // Validating the session also hands us its private leaf-bitmap
        // cache: compiled predicate leaves are reused across this session's
        // refinement chain, and the Arc keeps the cache usable even if the
        // session closes while the request is in flight.
        let leaf_cache = {
            let sessions = self.shared.sessions.lock().expect("session lock poisoned");
            match sessions.leaf_cache(session) {
                Some(cache) => cache,
                None => {
                    // The receiver resolves immediately with the error.
                    let _ = tx.send(Err(ServerError::UnknownSession(session)));
                    return rx;
                }
            }
        };
        // SQL-ish text requests are parsed at submission and normalised into
        // structured selects, so they share cache keys (and history records)
        // with their structured twins. A parse failure is a client error:
        // the receiver resolves immediately and no cache or worker is
        // touched — failures can never poison the result cache.
        let request = match request {
            Request::SelectText { query, params } => match query.parse::<Query>() {
                Ok(parsed) => Request::Select {
                    query: Some(parsed),
                    params,
                },
                Err(e) => {
                    let _ = tx.send(Err(ServerError::Core(CoreError::from(e))));
                    return rx;
                }
            },
            other => other,
        };
        let shared = Arc::clone(&self.shared);
        let lane = request.lane();
        self.pool.submit(lane, move || {
            let start = Instant::now();
            let outcome = shared.handle(&request, Some(&leaf_cache));
            let wall = start.elapsed();
            if let Ok(outcome) = &outcome {
                let record = HistoryRecord {
                    kind: request.kind(),
                    query: request.query().cloned(),
                    cache_hit: outcome.cache_hit,
                    wall,
                };
                shared
                    .sessions
                    .lock()
                    .expect("session lock poisoned")
                    .record(session, record);
            }
            // A dropped receiver just means the caller stopped waiting.
            let _ = tx.send(outcome);
        });
        rx
    }

    /// Executes `request` for `session`, blocking until the response.
    pub fn execute(&self, session: SessionId, request: Request) -> Result<Outcome, ServerError> {
        self.submit(session, request)
            .recv()
            .unwrap_or(Err(ServerError::Shutdown))
    }

    /// Current cache counters and session count.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            select_cache: self.shared.selects.stats(),
            rules_cache: self.shared.rules.stats(),
            open_sessions: self
                .shared
                .sessions
                .lock()
                .expect("session lock poisoned")
                .len(),
        }
    }
}

impl fmt::Debug for ExplorationServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExplorationServer")
            .field("workers", &self.pool.workers())
            .field("heavy_slots", &self.pool.heavy_slots())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_data::{Predicate, Value};
    use subtab_datasets::{cyber, DatasetSize};

    fn server() -> ExplorationServer {
        let dataset = cyber(DatasetSize::Tiny, 11);
        ExplorationServer::new(
            dataset.table,
            SubTabConfig::fast(),
            ServerConfig {
                workers: 2,
                heavy_slots: 1,
                select_cache_capacity: 16,
                rules_cache_capacity: 4,
            },
        )
        .expect("preprocess")
    }

    fn flagged_query() -> Query {
        Query::new().filter(Predicate::eq("flagged", Value::Int(1)))
    }

    #[test]
    fn select_requests_hit_the_cache_on_repeat() {
        let server = server();
        let session = server.open_session();
        let request = Request::Select {
            query: Some(flagged_query()),
            params: SelectionParams::new(6, 5),
        };
        let cold = server.execute(session, request.clone()).unwrap();
        assert!(!cold.cache_hit);
        let warm = server.execute(session, request).unwrap();
        assert!(warm.cache_hit);
        let (a, b) = (cold.response.sub_table(), warm.response.sub_table());
        assert!(
            Arc::ptr_eq(a.unwrap(), b.unwrap()),
            "a hit returns the identical shared result"
        );
        let stats = server.stats();
        assert_eq!(stats.select_cache.hits, 1);
        assert_eq!(stats.select_cache.misses, 1);
    }

    #[test]
    fn refinement_chains_reuse_leaf_bitmaps_per_session() {
        let server = server();
        let session = server.open_session();
        let params = SelectionParams::new(6, 5);
        // An exploration chain: each query refines the previous one, so the
        // select keys differ (no result-cache hit) but the `flagged = 1`
        // leaf repeats.
        for text in [
            "flagged = 1",
            "flagged = 1 AND protocol = 'tcp'",
            "flagged = 1 AND protocol = 'udp'",
        ] {
            let outcome = server
                .execute(
                    session,
                    Request::SelectText {
                        query: text.to_string(),
                        params: params.clone(),
                    },
                )
                .unwrap();
            assert!(!outcome.cache_hit, "distinct refinements miss: {text}");
        }
        let stats = server.leaf_cache_stats(session).unwrap();
        assert!(
            stats.hits >= 2,
            "repeated leaves compile from the cache: {stats:?}"
        );
        // flagged=1, protocol=tcp, protocol=udp.
        assert_eq!(stats.entries, 3, "{stats:?}");

        // A fresh session starts cold: its cache is private.
        let other = server.open_session();
        let cold = server.leaf_cache_stats(other).unwrap();
        assert_eq!((cold.hits, cold.entries), (0, 0), "sessions are isolated");
        server
            .execute(
                other,
                Request::SelectText {
                    query: "flagged = 1 AND protocol = 'tcp'".to_string(),
                    params: params.clone(),
                },
            )
            .unwrap();
        // The shared *result* cache answers the repeat, so the other
        // session's leaf cache is never even consulted.
        let after = server.leaf_cache_stats(other).unwrap();
        assert_eq!(after.entries, 0, "result-cache hit bypasses compilation");
        // Closing invalidates the stats surface with the session.
        server.close_session(other).unwrap();
        assert_eq!(
            server.leaf_cache_stats(other).unwrap_err(),
            ServerError::UnknownSession(other)
        );
    }

    #[test]
    fn equivalent_queries_share_one_cache_entry() {
        let server = server();
        let session = server.open_session();
        let params = SelectionParams::new(6, 5);
        let a = Query::new()
            .filter(Predicate::eq("flagged", Value::Int(1)))
            .filter(Predicate::eq("protocol", Value::from("tcp")));
        // Same predicates in the other order, with a different numeric
        // spelling of the flag.
        let b = Query::new()
            .filter(Predicate::eq("protocol", Value::from("tcp")))
            .filter(Predicate::eq("flagged", Value::Float(1.0)));
        let cold = server
            .execute(
                session,
                Request::Select {
                    query: Some(a),
                    params: params.clone(),
                },
            )
            .unwrap();
        assert!(!cold.cache_hit);
        let warm = server
            .execute(
                session,
                Request::Select {
                    query: Some(b),
                    params,
                },
            )
            .unwrap();
        assert!(warm.cache_hit, "canonicalized queries must share an entry");
    }

    #[test]
    fn text_requests_share_the_cache_with_structured_and_commuted_spellings() {
        let server = server();
        let session = server.open_session();
        let params = SelectionParams::new(6, 5);
        // Depth-3 nesting: AND over (OR over (NOT over a leaf)).
        let text = "flagged = 1 AND (protocol = 'udp' OR NOT protocol IN ('tcp', 'icmp'))";
        let cold = server
            .execute(
                session,
                Request::SelectText {
                    query: text.to_string(),
                    params: params.clone(),
                },
            )
            .unwrap();
        assert!(!cold.cache_hit);
        // A commuted respelling — operands flipped, the IN set written as a
        // negated disjunction, the flag in a different numeric spelling —
        // must land on the same cache entry.
        let commuted =
            "(NOT (protocol = 'icmp' OR protocol = 'tcp') OR protocol = 'udp') AND flagged = 1.0";
        let warm = server
            .execute(
                session,
                Request::SelectText {
                    query: commuted.to_string(),
                    params: params.clone(),
                },
            )
            .unwrap();
        assert!(warm.cache_hit, "commuted spelling must share the entry");
        assert!(Arc::ptr_eq(
            cold.response.sub_table().unwrap(),
            warm.response.sub_table().unwrap()
        ));
        // The structured equivalent shares it too.
        let structured: Query = text.parse().unwrap();
        let hit = server
            .execute(
                session,
                Request::Select {
                    query: Some(structured),
                    params,
                },
            )
            .unwrap();
        assert!(hit.cache_hit);
        // All three requests record history as plain selects, with the
        // parsed query attached.
        let history = server.session_history(session).unwrap();
        assert_eq!(history.len(), 3);
        assert!(history
            .iter()
            .all(|h| h.kind == RequestKind::Select && h.query.is_some()));
    }

    #[test]
    fn parse_errors_are_typed_and_never_touch_the_cache() {
        let server = server();
        let session = server.open_session();
        let params = SelectionParams::new(6, 5);
        for bad in [
            "flagged = 1 AND (protocol = 'tcp'", // unbalanced parens
            "flagged ** 2",                      // unknown operator
            "protocol = 'unterminated",          // bad literal
        ] {
            let err = server
                .execute(
                    session,
                    Request::SelectText {
                        query: bad.to_string(),
                        params: params.clone(),
                    },
                )
                .unwrap_err();
            assert!(
                matches!(err, ServerError::Core(CoreError::QueryParse { .. })),
                "query {bad:?} must fail with a typed parse error, got {err:?}"
            );
        }
        // Parse failures never reach the result cache or session history.
        let stats = server.stats().select_cache;
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert!(server.session_history(session).unwrap().is_empty());
    }

    #[test]
    fn full_table_select_matches_the_empty_query() {
        let server = server();
        let session = server.open_session();
        let params = SelectionParams::new(5, 4);
        let none = server
            .execute(
                session,
                Request::Select {
                    query: None,
                    params: params.clone(),
                },
            )
            .unwrap();
        let empty = server
            .execute(
                session,
                Request::Select {
                    query: Some(Query::new()),
                    params,
                },
            )
            .unwrap();
        assert!(empty.cache_hit, "None and the empty query share an entry");
        let direct = server.subtab().select(&SelectionParams::new(5, 4)).unwrap();
        let served = none.response.sub_table().unwrap();
        assert_eq!(served.row_indices, direct.row_indices);
        assert_eq!(served.columns, direct.columns);
    }

    #[test]
    fn mining_is_cached_and_typed_errors_surface() {
        let server = server();
        let session = server.open_session();
        let mining = MiningConfig {
            min_rule_size: 2,
            ..Default::default()
        };
        let request = Request::MineRules {
            mining: mining.clone(),
            target_columns: vec!["flagged".to_string()],
        };
        let cold = server.execute(session, request.clone()).unwrap();
        assert!(!cold.cache_hit);
        assert!(!cold.response.rules().unwrap().is_empty());
        let warm = server.execute(session, request).unwrap();
        assert!(warm.cache_hit);
        // Duplicated and reordered targets resolve to the same key.
        let dup = server
            .execute(
                session,
                Request::MineRules {
                    mining: mining.clone(),
                    target_columns: vec!["flagged".to_string(), "flagged".to_string()],
                },
            )
            .unwrap();
        assert!(dup.cache_hit);
        let err = server
            .execute(
                session,
                Request::MineRules {
                    mining,
                    target_columns: vec!["no_such_column".to_string()],
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            ServerError::Core(CoreError::UnknownColumn("no_such_column".to_string()))
        );
    }

    #[test]
    fn highlighted_select_reuses_both_caches() {
        let server = server();
        let session = server.open_session();
        let mining = MiningConfig {
            min_rule_size: 2,
            ..Default::default()
        };
        let request = Request::SelectHighlighted {
            query: Some(flagged_query()),
            params: SelectionParams::new(6, 5),
            mining: mining.clone(),
            target_columns: Vec::new(),
        };
        let cold = server.execute(session, request.clone()).unwrap();
        assert!(!cold.cache_hit);
        let warm = server.execute(session, request).unwrap();
        assert!(warm.cache_hit);
        // The mining run itself was cached once; a second highlighted
        // query over a different selection reuses it.
        let other = server
            .execute(
                session,
                Request::SelectHighlighted {
                    query: None,
                    params: SelectionParams::new(5, 5),
                    mining,
                    target_columns: Vec::new(),
                },
            )
            .unwrap();
        assert!(!other.cache_hit);
        assert_eq!(server.stats().rules_cache.misses, 1, "mined exactly once");
        assert!(server.stats().rules_cache.hits >= 1);
    }

    #[test]
    fn degenerate_requests_return_empty_results_through_the_cache() {
        let server = server();
        let session = server.open_session();
        for request in [
            Request::Select {
                query: None,
                params: SelectionParams::new(0, 5),
            },
            Request::Select {
                query: Some(Query::new().filter(Predicate::eq("protocol", Value::from("nope")))),
                params: SelectionParams::new(6, 5),
            },
            Request::Select {
                query: Some(Query::new().limit(0)),
                params: SelectionParams::new(6, 5),
            },
        ] {
            let cold = server.execute(session, request.clone()).unwrap();
            let result = cold.response.sub_table().unwrap().clone();
            assert_eq!(result.sub_table.num_rows(), 0);
            assert!(result.row_indices.is_empty());
            let warm = server.execute(session, request).unwrap();
            assert!(warm.cache_hit, "degenerate results are cacheable too");
            assert_eq!(warm.response.sub_table().unwrap().sub_table.num_rows(), 0);
        }
    }

    #[test]
    fn sessions_record_history_and_reject_unknown_ids() {
        let server = server();
        let session = server.open_session();
        let request = Request::Select {
            query: Some(flagged_query()),
            params: SelectionParams::new(4, 4),
        };
        server.execute(session, request.clone()).unwrap();
        server.execute(session, request.clone()).unwrap();
        let history = server.session_history(session).unwrap();
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].kind, RequestKind::Select);
        assert!(!history[0].cache_hit);
        assert!(history[1].cache_hit);
        assert!(history[1].query.is_some());
        let closed = server.close_session(session).unwrap();
        assert_eq!(closed.len(), 2);
        let err = server.execute(session, request).unwrap_err();
        assert_eq!(err, ServerError::UnknownSession(session));
        assert_eq!(
            server.session_history(session).unwrap_err(),
            ServerError::UnknownSession(session)
        );
    }

    #[test]
    fn submit_overlaps_requests_across_sessions() {
        let server = server();
        let a = server.open_session();
        let b = server.open_session();
        assert_eq!(server.stats().open_sessions, 2);
        let queries = [None, Some(flagged_query())];
        let receivers: Vec<_> = (0..6)
            .map(|i| {
                server.submit(
                    if i % 2 == 0 { a } else { b },
                    Request::Select {
                        query: queries[i % queries.len()].clone(),
                        params: SelectionParams::new(5, 4),
                    },
                )
            })
            .collect();
        for rx in receivers {
            let outcome = rx.recv().expect("worker responded").expect("select ok");
            assert!(outcome.response.sub_table().is_some());
        }
        // 6 requests over 2 distinct keys: 2 misses (single-flighted or
        // sequential) and 4 hits.
        let stats = server.stats().select_cache;
        assert_eq!(stats.hits + stats.misses, 6);
        assert_eq!(stats.misses, 2);
    }
}
