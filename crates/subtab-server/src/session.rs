//! Per-session bookkeeping: identifiers and query history.
//!
//! A session models one analyst's exploration of the served table. The
//! server records every completed request against its session — what kind
//! of request, which query, whether the cache answered it, and how long it
//! took — so an EDA front-end can replay or summarise the session.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;
use subtab_core::LeafBitmapCache;
use subtab_data::Query;

/// Opaque identifier of one exploration session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub(crate) u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// The kind of request a history record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// A sub-table selection (full table or query result).
    Select,
    /// An association-rule mining run.
    MineRules,
    /// A selection with per-row rule highlights attached.
    SelectHighlighted,
}

/// One completed request in a session's history.
#[derive(Debug, Clone)]
pub struct HistoryRecord {
    /// What was requested.
    pub kind: RequestKind,
    /// The query the request ran over, when it had one (`None` = the full
    /// table).
    pub query: Option<Query>,
    /// Whether the result came out of a server cache.
    pub cache_hit: bool,
    /// Wall-clock time the server spent producing the response.
    pub wall: Duration,
}

/// Everything the server keeps per open session: the request history and
/// the session's private leaf-bitmap cache.
///
/// The leaf cache lives here (not in the shared result caches) because its
/// working set tracks one analyst's refinement chain — each query in the
/// paper's exploration loop shares most predicate leaves with the previous
/// one. Closing the session drops the cache with it.
#[derive(Debug, Default)]
struct SessionState {
    history: Vec<HistoryRecord>,
    leaf_cache: Arc<LeafBitmapCache>,
}

/// Registry of open sessions and their histories.
#[derive(Debug, Default)]
pub(crate) struct SessionRegistry {
    next: u64,
    sessions: HashMap<SessionId, SessionState>,
}

impl SessionRegistry {
    pub(crate) fn open(&mut self) -> SessionId {
        let id = SessionId(self.next);
        self.next += 1;
        self.sessions.insert(id, SessionState::default());
        id
    }

    /// Removes the session, returning its history — `None` when the id is
    /// unknown (never issued, or already closed). The session's leaf-bitmap
    /// cache is dropped with it.
    pub(crate) fn close(&mut self, id: SessionId) -> Option<Vec<HistoryRecord>> {
        self.sessions.remove(&id).map(|s| s.history)
    }

    pub(crate) fn record(&mut self, id: SessionId, record: HistoryRecord) -> bool {
        match self.sessions.get_mut(&id) {
            Some(state) => {
                state.history.push(record);
                true
            }
            None => false,
        }
    }

    pub(crate) fn history(&self, id: SessionId) -> Option<Vec<HistoryRecord>> {
        self.sessions.get(&id).map(|s| s.history.clone())
    }

    /// The session's private leaf-bitmap cache (cheap `Arc` clone), or
    /// `None` for an unknown/closed session.
    pub(crate) fn leaf_cache(&self, id: SessionId) -> Option<Arc<LeafBitmapCache>> {
        self.sessions.get(&id).map(|s| Arc::clone(&s.leaf_cache))
    }

    pub(crate) fn len(&self) -> usize {
        self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: RequestKind, hit: bool) -> HistoryRecord {
        HistoryRecord {
            kind,
            query: None,
            cache_hit: hit,
            wall: Duration::from_millis(1),
        }
    }

    #[test]
    fn sessions_are_distinct_and_closable() {
        let mut reg = SessionRegistry::default();
        let a = reg.open();
        let b = reg.open();
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        assert!(reg.record(a, record(RequestKind::Select, false)));
        assert!(reg.record(a, record(RequestKind::Select, true)));
        assert_eq!(reg.history(a).unwrap().len(), 2);
        assert_eq!(reg.history(b).unwrap().len(), 0);
        let history = reg.close(a).unwrap();
        assert_eq!(history.len(), 2);
        assert!(history[1].cache_hit);
        assert!(
            reg.leaf_cache(a).is_none(),
            "cache dropped with the session"
        );
        assert!(reg.close(a).is_none(), "double close is detected");
        assert!(!reg.record(a, record(RequestKind::Select, false)));
        assert!(reg.history(a).is_none());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut reg = SessionRegistry::default();
        let a = reg.open();
        reg.close(a);
        let b = reg.open();
        assert_ne!(a, b, "closed ids must not be recycled");
        assert!(format!("{b}").starts_with("session#"));
    }
}
