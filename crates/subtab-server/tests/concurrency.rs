//! Concurrency suite: many threads replaying mixed-request sessions against
//! one server must produce results bit-identical to a sequential reference
//! computed with direct facade calls (no server, no caches).

use std::sync::Arc;
use subtab_core::{SelectionParams, SubTab, SubTabConfig, SubTableResult};
use subtab_data::{Predicate, Query, Value};
use subtab_datasets::{cyber, DatasetSize};
use subtab_rules::MiningConfig;
use subtab_server::{ExplorationServer, Outcome, Request, Response, ServerConfig};

/// A comparable digest of a selection result (`Table` itself has no
/// `PartialEq`; the render is exact because it prints every cell).
#[derive(Debug, Clone, PartialEq)]
struct SelectDigest {
    row_indices: Vec<usize>,
    columns: Vec<String>,
    rendered: String,
    highlighted: Vec<Option<String>>,
}

fn digest(result: &SubTableResult) -> SelectDigest {
    SelectDigest {
        row_indices: result.row_indices.clone(),
        columns: result.columns.clone(),
        rendered: result.sub_table.render(result.sub_table.num_rows()),
        highlighted: result
            .highlights
            .iter()
            .map(|h| h.as_ref().map(|h| h.description.clone()))
            .collect(),
    }
}

/// One digest per request; rule sets digest to their rendered rules.
#[derive(Debug, Clone, PartialEq)]
enum Digest {
    Select(SelectDigest),
    Rules(Vec<String>),
}

fn digest_outcome(outcome: &Outcome) -> Digest {
    match &outcome.response {
        Response::SubTable(r) => Digest::Select(digest(r)),
        Response::Rules(rules) => Digest::Rules(
            rules
                .iter()
                .map(|r| r.render(rules.interner()))
                .collect::<Vec<_>>(),
        ),
    }
}

fn mining() -> MiningConfig {
    MiningConfig {
        min_rule_size: 2,
        ..Default::default()
    }
}

/// The mixed per-session trace: selects over several queries and shapes, a
/// mining run, and a highlighted select.
fn trace() -> Vec<Request> {
    let flagged = Query::new().filter(Predicate::eq("flagged", Value::Int(1)));
    let tcp = Query::new().filter(Predicate::eq("protocol", Value::from("tcp")));
    vec![
        Request::Select {
            query: None,
            params: SelectionParams::new(8, 6),
        },
        Request::Select {
            query: Some(flagged.clone()),
            params: SelectionParams::new(6, 5),
        },
        Request::Select {
            query: Some(tcp.clone()),
            params: SelectionParams::new(5, 4).with_targets(&["flagged"]),
        },
        Request::MineRules {
            mining: mining(),
            target_columns: vec!["flagged".to_string()],
        },
        Request::SelectHighlighted {
            query: Some(flagged),
            params: SelectionParams::new(6, 5),
            mining: mining(),
            target_columns: Vec::new(),
        },
        Request::Select {
            query: Some(tcp),
            params: SelectionParams::new(5, 4).with_targets(&["flagged"]),
        },
        Request::SelectText {
            query: "flagged = 1 AND (protocol = 'udp' OR NOT protocol IN ('tcp', 'icmp'))"
                .to_string(),
            params: SelectionParams::new(6, 5),
        },
    ]
}

/// Computes the sequential reference for one request with plain facade
/// calls on the same preprocessed state.
fn reference(subtab: &SubTab, request: &Request) -> Digest {
    match request {
        Request::Select { query, params } => {
            let result = match query {
                Some(q) => subtab.select_for_query(q, params),
                None => subtab.select(params),
            }
            .expect("reference select");
            Digest::Select(digest(&result))
        }
        Request::SelectText { query, params } => {
            let parsed: Query = query.parse().expect("reference parse");
            let result = subtab
                .select_for_query(&parsed, params)
                .expect("reference select");
            Digest::Select(digest(&result))
        }
        Request::MineRules {
            mining,
            target_columns,
        } => {
            let binned = subtab.preprocessed().binned();
            let indices: Vec<usize> = target_columns
                .iter()
                .map(|n| binned.column_index(n).expect("known column"))
                .collect();
            let rules = if indices.is_empty() {
                subtab.mine_rules(mining)
            } else {
                subtab.mine_rules_for_targets(mining, &indices)
            };
            Digest::Rules(rules.iter().map(|r| r.render(rules.interner())).collect())
        }
        Request::SelectHighlighted {
            query,
            params,
            mining,
            target_columns,
        } => {
            let result = match query {
                Some(q) => subtab.select_for_query(q, params),
                None => subtab.select(params),
            }
            .expect("reference select");
            assert!(target_columns.is_empty(), "trace mines the whole table");
            let rules = subtab.mine_rules(mining);
            Digest::Select(digest(&subtab.with_highlights(result, &rules)))
        }
    }
}

#[test]
fn concurrent_sessions_match_the_sequential_reference() {
    const THREADS: usize = 4;
    const SESSIONS_PER_THREAD: usize = 2;

    let dataset = cyber(DatasetSize::Tiny, 23);
    let subtab = SubTab::preprocess(dataset.table, SubTabConfig::fast()).expect("preprocess");
    let trace = trace();
    let expected: Vec<Digest> = trace.iter().map(|r| reference(&subtab, r)).collect();

    let server = Arc::new(ExplorationServer::from_subtab(
        subtab,
        ServerConfig {
            workers: THREADS,
            heavy_slots: 1,
            select_cache_capacity: 32,
            rules_cache_capacity: 8,
        },
    ));

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let server = Arc::clone(&server);
            let trace = &trace;
            let expected = &expected;
            scope.spawn(move || {
                for _ in 0..SESSIONS_PER_THREAD {
                    let session = server.open_session();
                    for (i, request) in trace.iter().enumerate() {
                        let outcome = server
                            .execute(session, request.clone())
                            .expect("request succeeds under concurrency");
                        assert_eq!(
                            digest_outcome(&outcome),
                            expected[i],
                            "request {i} diverged from the sequential reference"
                        );
                    }
                    let history = server.close_session(session).expect("history");
                    assert_eq!(history.len(), trace.len());
                }
            });
        }
    });

    // Across 8 sessions, single-flight guarantees exactly one miss per
    // distinct key. The trace has 5 distinct select keys (full table,
    // flagged, tcp — issued twice per session — the parsed text query, and
    // the combined highlighted key) and 2 rules keys (targeted and
    // untargeted mining).
    let stats = server.stats();
    assert_eq!(stats.select_cache.misses, 5);
    assert_eq!(stats.rules_cache.misses, 2);
    let sessions = (THREADS * SESSIONS_PER_THREAD) as u64;
    // Per session: 5 plain selects (the text select normalises into one) +
    // 1 combined-key lookup; the single combined-key miss adds one inner
    // select lookup (a guaranteed hit — its session already cached the
    // flagged select).
    assert_eq!(
        stats.select_cache.hits + stats.select_cache.misses,
        6 * sessions + 1
    );
    // Per session: 1 mining request; the combined-key miss adds one inner
    // rules lookup.
    assert_eq!(
        stats.rules_cache.hits + stats.rules_cache.misses,
        sessions + 1
    );
    assert_eq!(stats.open_sessions, 0, "all sessions were closed");
}

#[test]
fn heavy_mining_does_not_block_interactive_selects() {
    // A server with 2 workers and 1 heavy slot: while an uncached mining
    // request runs, a burst of selects must still complete.
    let dataset = cyber(DatasetSize::Tiny, 29);
    let server = ExplorationServer::new(
        dataset.table,
        SubTabConfig::fast(),
        ServerConfig {
            workers: 2,
            heavy_slots: 1,
            select_cache_capacity: 0, // force every select to compute
            rules_cache_capacity: 8,
        },
    )
    .expect("preprocess");
    let session = server.open_session();
    let mine_rx = server.submit(
        session,
        Request::MineRules {
            mining: MiningConfig {
                min_rule_size: 2,
                min_support: 0.01, // a deliberately expensive run
                ..Default::default()
            },
            target_columns: Vec::new(),
        },
    );
    for i in 0..4 {
        let outcome = server
            .execute(
                session,
                Request::Select {
                    query: None,
                    params: SelectionParams::new(4 + i, 4),
                },
            )
            .expect("interactive select while mining");
        assert!(outcome.response.sub_table().is_some());
    }
    let mined = mine_rx.recv().expect("mining responds").expect("mines");
    assert!(mined.response.rules().is_some());
    let history = server.close_session(session).expect("history");
    assert_eq!(history.len(), 5);
}
