//! Reproduction of the worked example of Section 3 of the paper (Figures 3
//! and 4): the 8-row flights excerpt, its rule set, and the cell coverage /
//! diversity / combined scores of the three sub-tables discussed in the text.
//!
//! Paper-reported values checked here:
//! * 36 cells of the example table are describable by association rules
//!   (`upcov = 36`),
//! * sub-table T̂(1) (rows 1, 5, 7 over CANCELLED, DEP_TIME, YEAR, DISTANCE)
//!   describes 28 cells → cell coverage 28/36 ≈ 0.78, diversity 0.83,
//!   combined 0.80,
//! * sub-table T̂(2) (… SCHED_DEP instead of DISTANCE) describes 26 cells →
//!   cell coverage 26/36 ≈ 0.72,
//! * sub-table T̂(3) (Figure 4: rows 1, 5, 7 over CANCELLED, DEP_TIME,
//!   SCHED_DEP, DISTANCE) describes 24 cells, diversity 0.92, combined 0.79.

use std::sync::Arc;
use subtab_binning::{BinnedTable, Binner, BinningConfig};
use subtab_data::Table;
use subtab_metrics::{diversity, CoverageIndex, Evaluator};
use subtab_rules::{AssociationRule, Item, ItemInterner, RuleSet};

/// The example table T̂ of Figure 3. Values are already bin names.
fn example_table() -> Table {
    Table::builder()
        .column_i64(
            "CANCELLED",
            vec![
                Some(1),
                Some(1),
                Some(1),
                Some(1),
                Some(0),
                Some(0),
                Some(0),
                Some(0),
            ],
        )
        .column_str(
            "DEP_TIME",
            vec![
                None,
                None,
                None,
                None,
                Some("morning"),
                Some("morning"),
                Some("evening"),
                Some("evening"),
            ],
        )
        .column_i64(
            "YEAR",
            vec![
                Some(2015),
                Some(2015),
                Some(2015),
                Some(2015),
                Some(2016),
                Some(2015),
                Some(2015),
                Some(2015),
            ],
        )
        .column_str(
            "SCHED_DEP",
            vec![
                Some("afternoon"),
                Some("afternoon"),
                Some("morning"),
                Some("morning"),
                Some("morning"),
                Some("morning"),
                Some("evening"),
                Some("afternoon"),
            ],
        )
        .column_str(
            "DISTANCE",
            vec![
                Some("short"),
                Some("medium"),
                Some("medium"),
                Some("short"),
                Some("medium"),
                Some("medium"),
                Some("long"),
                Some("long"),
            ],
        )
        .build()
        .unwrap()
}

fn binned() -> BinnedTable {
    let t = example_table();
    let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
    binner.apply(&t).unwrap()
}

/// Enumerates the rule set of the example: "all association rules with column
/// CANCELLED on the right, and at least two columns on the left, that hold
/// for at least two rows".
fn example_rules(bt: &BinnedTable) -> RuleSet {
    let interner = Arc::new(ItemInterner::from_binned(bt));
    let target = bt.column_index("CANCELLED").unwrap();
    let other_cols: Vec<usize> = (0..bt.num_columns()).filter(|&c| c != target).collect();
    let mut rules: Vec<AssociationRule> = Vec::new();
    // Enumerate LHS column subsets of size >= 2 via bitmask over other_cols.
    for mask in 1u32..(1 << other_cols.len()) {
        let cols: Vec<usize> = other_cols
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &c)| c)
            .collect();
        if cols.len() < 2 {
            continue;
        }
        // For each row, instantiate the rule with that row's bin values.
        for r in 0..bt.num_rows() {
            let antecedent: Vec<Item> = cols
                .iter()
                .map(|&c| Item::new(c, bt.bin_id(r, c)))
                .collect();
            let consequent = vec![Item::new(target, bt.bin_id(r, target))];
            let rule =
                AssociationRule::from_items(&interner, &antecedent, &consequent, 0.0, 0, 1.0, 1.0);
            let count = rule.matching_rows(&interner, bt).len();
            if count >= 2 {
                let mut rule = rule;
                rule.support_count = count;
                rule.support = count as f64 / bt.num_rows() as f64;
                if !rules
                    .iter()
                    .any(|x| x.antecedent == rule.antecedent && x.consequent == rule.consequent)
                {
                    rules.push(rule);
                }
            }
        }
    }
    RuleSet::new(rules, bt.num_rows(), interner)
}

fn col_indices(bt: &BinnedTable, names: &[&str]) -> Vec<usize> {
    names.iter().map(|n| bt.column_index(n).unwrap()).collect()
}

#[test]
fn upcov_is_36_of_40_cells() {
    let bt = binned();
    let rules = example_rules(&bt);
    let index = CoverageIndex::build(&bt, &rules);
    assert_eq!(bt.num_rows() * bt.num_columns(), 40);
    assert_eq!(index.upcov(), 36);
}

#[test]
fn subtable_1_covers_28_cells() {
    let bt = binned();
    let rules = example_rules(&bt);
    let index = CoverageIndex::build(&bt, &rules);
    // Rows 1, 5, 7 of the paper are 0-indexed 0, 4, 6.
    let rows = [0usize, 4, 6];
    let cols = col_indices(&bt, &["CANCELLED", "DEP_TIME", "YEAR", "DISTANCE"]);
    assert_eq!(index.covered_cells(&rows, &cols), 28);
    let cov = index.cell_coverage(&rows, &cols);
    assert!((cov - 28.0 / 36.0).abs() < 1e-12);
}

#[test]
fn subtable_2_covers_26_cells() {
    let bt = binned();
    let rules = example_rules(&bt);
    let index = CoverageIndex::build(&bt, &rules);
    let rows = [0usize, 4, 6];
    let cols = col_indices(&bt, &["CANCELLED", "DEP_TIME", "YEAR", "SCHED_DEP"]);
    assert_eq!(index.covered_cells(&rows, &cols), 26);
}

#[test]
fn subtable_3_covers_24_cells() {
    let bt = binned();
    let rules = example_rules(&bt);
    let index = CoverageIndex::build(&bt, &rules);
    let rows = [0usize, 4, 6];
    let cols = col_indices(&bt, &["CANCELLED", "DEP_TIME", "SCHED_DEP", "DISTANCE"]);
    assert_eq!(index.covered_cells(&rows, &cols), 24);
}

#[test]
fn diversity_of_subtable_1_is_083() {
    let bt = binned();
    let rows = [0usize, 4, 6];
    let cols = col_indices(&bt, &["CANCELLED", "DEP_TIME", "YEAR", "DISTANCE"]);
    let sub = bt.take_rows(&rows).take_columns(&cols);
    let d = diversity(&sub);
    // 1 - avg(0.25, 0, 0.25) = 1 - 1/6 ≈ 0.8333
    assert!((d - (1.0 - 1.0 / 6.0)).abs() < 1e-9, "diversity = {d}");
}

#[test]
fn diversity_of_subtable_3_is_092() {
    let bt = binned();
    let rows = [0usize, 4, 6];
    let cols = col_indices(&bt, &["CANCELLED", "DEP_TIME", "SCHED_DEP", "DISTANCE"]);
    let sub = bt.take_rows(&rows).take_columns(&cols);
    let d = diversity(&sub);
    // 1 - avg(0, 0, 0.25) = 1 - 1/12 ≈ 0.9167
    assert!((d - (1.0 - 1.0 / 12.0)).abs() < 1e-9, "diversity = {d}");
}

#[test]
fn combined_scores_match_example_3_9() {
    let bt = binned();
    let rules = example_rules(&bt);
    let ev = Evaluator::new(bt.clone(), &rules, 0.5);
    let rows = [0usize, 4, 6];
    let cols1 = col_indices(&bt, &["CANCELLED", "DEP_TIME", "YEAR", "DISTANCE"]);
    let cols3 = col_indices(&bt, &["CANCELLED", "DEP_TIME", "SCHED_DEP", "DISTANCE"]);
    let s1 = ev.score(&rows, &cols1);
    let s3 = ev.score(&rows, &cols3);
    // Example 3.9: 0.5·28/36 + 0.5·0.83 = 0.80 and 0.5·24/36 + 0.5·0.92 = 0.79.
    assert!((s1.combined - (0.5 * 28.0 / 36.0 + 0.5 * (1.0 - 1.0 / 6.0))).abs() < 1e-9);
    assert!((s3.combined - (0.5 * 24.0 / 36.0 + 0.5 * (1.0 - 1.0 / 12.0))).abs() < 1e-9);
    // T̂(1) is the better sub-table, as stated in the paper.
    assert!(s1.combined > s3.combined);
    assert!((s1.combined - 0.80).abs() < 0.01);
    assert!((s3.combined - 0.79).abs() < 0.01);
}
