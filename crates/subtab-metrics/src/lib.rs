//! # subtab-metrics
//!
//! The informativeness metrics of the SubTab paper (Section 3):
//!
//! * **Cell coverage** ([`coverage`]) — Definition 3.6: the normalised number
//!   of cells of the full table that are describable by association rules
//!   *covered* by the sub-table (a rule is covered when all of its columns are
//!   selected and at least one selected row satisfies it).
//! * **Diversity** ([`mod@diversity`]) — Definition 3.7: one minus the average
//!   pairwise Jaccard-on-bins similarity of the sub-table's rows.
//! * **Combined score** ([`combined`]) — Equation 3:
//!   `α · cellCov + (1 − α) · diversity` with `α = 0.5` by default.
//!
//! The [`Evaluator`] bundles a binned table, a rule set and `α` so that
//! selection algorithms (the SubTab algorithm itself, and the greedy / MAB /
//! random baselines) can score candidate sub-tables cheaply and consistently.
//!
//! The unit tests of this crate reproduce the worked example of Figure 3/4 of
//! the paper (the 8-row flights excerpt with its two sub-tables).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod combined;
pub mod coverage;
pub mod diversity;

pub use combined::{Evaluator, SubTableScore};
pub use coverage::CoverageIndex;
pub use diversity::{diversity, jaccard_similarity};
