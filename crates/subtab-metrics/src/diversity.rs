//! Diversity (Definition 3.7).

use subtab_binning::BinnedTable;

/// Jaccard-like similarity of two rows of a binned (sub-)table: the fraction
/// of columns whose values fall in the same bin.
///
/// Two missing values are considered similar (they share the dedicated `NaN`
/// bin), matching the paper's observation that cancelled-flight rows look
/// alike precisely because many fields are `NaN`.
pub fn jaccard_similarity(binned: &BinnedTable, row_a: usize, row_b: usize) -> f64 {
    let m = binned.num_columns();
    if m == 0 {
        return 0.0;
    }
    let same = (0..m)
        .filter(|&c| binned.bin_id(row_a, c) == binned.bin_id(row_b, c))
        .count();
    same as f64 / m as f64
}

/// Diversity of a binned sub-table: `1 −` the average pairwise Jaccard
/// similarity over all unordered row pairs.
///
/// Sub-tables with fewer than two rows are maximally diverse by convention
/// (there is no repetition to penalise).
pub fn diversity(binned_sub: &BinnedTable) -> f64 {
    let k = binned_sub.num_rows();
    if k < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for a in 0..k {
        for b in (a + 1)..k {
            total += jaccard_similarity(binned_sub, a, b);
            pairs += 1;
        }
    }
    1.0 - total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;

    fn binned(rows: &[(&str, i64)]) -> BinnedTable {
        let t = Table::builder()
            .column_str("a", rows.iter().map(|(s, _)| Some(*s)).collect())
            .column_i64("b", rows.iter().map(|(_, i)| Some(*i)).collect())
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        binner.apply(&t).unwrap()
    }

    #[test]
    fn identical_rows_have_similarity_one_and_diversity_zero() {
        let bt = binned(&[("x", 1), ("x", 1), ("x", 1)]);
        assert_eq!(jaccard_similarity(&bt, 0, 1), 1.0);
        assert_eq!(diversity(&bt), 0.0);
    }

    #[test]
    fn completely_different_rows_have_diversity_one() {
        let bt = binned(&[("x", 1), ("y", 2), ("z", 3)]);
        assert_eq!(jaccard_similarity(&bt, 0, 1), 0.0);
        assert_eq!(diversity(&bt), 1.0);
    }

    #[test]
    fn partial_overlap() {
        // Rows share the second column only: similarity 1/2.
        let bt = binned(&[("x", 1), ("y", 1)]);
        assert!((jaccard_similarity(&bt, 0, 1) - 0.5).abs() < 1e-12);
        assert!((diversity(&bt) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn small_subtables_are_maximally_diverse() {
        let bt = binned(&[("x", 1)]);
        assert_eq!(diversity(&bt), 1.0);
        let empty = bt.take_rows(&[]);
        assert_eq!(diversity(&empty), 1.0);
    }

    #[test]
    fn nulls_in_same_bin_count_as_similar() {
        let t = Table::builder()
            .column_f64("x", vec![None, None])
            .column_i64("y", vec![Some(1), Some(2)])
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let bt = binner.apply(&t).unwrap();
        assert!((jaccard_similarity(&bt, 0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn diversity_is_between_zero_and_one() {
        let bt = binned(&[("x", 1), ("x", 2), ("y", 1), ("z", 3)]);
        let d = diversity(&bt);
        assert!((0.0..=1.0).contains(&d));
    }
}
