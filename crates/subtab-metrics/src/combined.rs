//! The combined informativeness score (Equation 3) and the [`Evaluator`].

use crate::coverage::CoverageIndex;
use crate::diversity::diversity;
use subtab_binning::BinnedTable;
use subtab_rules::RuleSet;

/// The three quality numbers of one sub-table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubTableScore {
    /// Cell coverage in `[0, 1]` (Definition 3.6).
    pub cell_coverage: f64,
    /// Diversity in `[0, 1]` (Definition 3.7).
    pub diversity: f64,
    /// `α · cellCov + (1 − α) · diversity` (Equation 3).
    pub combined: f64,
}

/// Evaluates candidate sub-tables of one table against one rule set.
///
/// The evaluator owns the binned full table, the coverage index and the
/// trade-off parameter `α`; sub-tables are identified by row indices and
/// column indices into the full table, which is exactly the form in which the
/// selection algorithms produce them.
#[derive(Debug, Clone)]
pub struct Evaluator {
    binned: BinnedTable,
    index: CoverageIndex,
    alpha: f64,
}

impl Evaluator {
    /// Creates an evaluator. `alpha` is clamped to `[0, 1]`; the paper's
    /// default is `0.5`.
    pub fn new(binned: BinnedTable, rules: &RuleSet, alpha: f64) -> Self {
        let index = CoverageIndex::build(&binned, rules);
        Evaluator {
            binned,
            index,
            alpha: alpha.clamp(0.0, 1.0),
        }
    }

    /// The trade-off parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The underlying coverage index.
    pub fn coverage_index(&self) -> &CoverageIndex {
        &self.index
    }

    /// The binned full table the evaluator was built on.
    pub fn binned(&self) -> &BinnedTable {
        &self.binned
    }

    /// Scores the sub-table given by `rows` (row indices into the full table)
    /// and `cols` (column indices into the full table).
    pub fn score(&self, rows: &[usize], cols: &[usize]) -> SubTableScore {
        let cell_coverage = self.index.cell_coverage(rows, cols);
        let sub = self.binned.take_rows(rows).take_columns(cols);
        let diversity = diversity(&sub);
        SubTableScore {
            cell_coverage,
            diversity,
            combined: self.alpha * cell_coverage + (1.0 - self.alpha) * diversity,
        }
    }

    /// Cell coverage only (used by the greedy baseline, which optimises
    /// coverage and ignores diversity, as in Algorithm 1).
    pub fn cell_coverage(&self, rows: &[usize], cols: &[usize]) -> f64 {
        self.index.cell_coverage(rows, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;
    use subtab_rules::{MiningConfig, RuleMiner};

    fn evaluator(alpha: f64) -> (Evaluator, usize, usize) {
        let t = Table::builder()
            .column_i64(
                "cancelled",
                vec![Some(1), Some(1), Some(1), Some(0), Some(0), Some(0)],
            )
            .column_str(
                "dep",
                vec![None, None, None, Some("m"), Some("m"), Some("e")],
            )
            .column_i64(
                "year",
                vec![
                    Some(2015),
                    Some(2015),
                    Some(2015),
                    Some(2015),
                    Some(2016),
                    Some(2015),
                ],
            )
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let binned = binner.apply(&t).unwrap();
        let rules = RuleMiner::new(MiningConfig {
            min_rule_size: 2,
            min_support: 0.2,
            ..Default::default()
        })
        .mine(&binned);
        let (n, m) = (binned.num_rows(), binned.num_columns());
        (Evaluator::new(binned, &rules, alpha), n, m)
    }

    #[test]
    fn score_components_are_in_range_and_combined_matches_formula() {
        let (ev, n, m) = evaluator(0.5);
        let rows = vec![0, 3, 5];
        let cols: Vec<usize> = (0..m).collect();
        let s = ev.score(&rows, &cols);
        assert!((0.0..=1.0).contains(&s.cell_coverage));
        assert!((0.0..=1.0).contains(&s.diversity));
        let expected = 0.5 * s.cell_coverage + 0.5 * s.diversity;
        assert!((s.combined - expected).abs() < 1e-12);
        let _ = n;
    }

    #[test]
    fn alpha_extremes_reduce_to_single_metrics() {
        let (ev_cov, _, m) = evaluator(1.0);
        let (ev_div, _, _) = evaluator(0.0);
        let rows = vec![0, 4];
        let cols: Vec<usize> = (0..m).collect();
        let sc = ev_cov.score(&rows, &cols);
        assert!((sc.combined - sc.cell_coverage).abs() < 1e-12);
        let sd = ev_div.score(&rows, &cols);
        assert!((sd.combined - sd.diversity).abs() < 1e-12);
    }

    #[test]
    fn alpha_is_clamped() {
        let (ev, _, _) = evaluator(7.0);
        assert_eq!(ev.alpha(), 1.0);
        let (ev, _, _) = evaluator(-3.0);
        assert_eq!(ev.alpha(), 0.0);
    }

    #[test]
    fn cell_coverage_shortcut_matches_score() {
        let (ev, _, m) = evaluator(0.5);
        let rows = vec![1, 4];
        let cols: Vec<usize> = (0..m).collect();
        assert!(
            (ev.cell_coverage(&rows, &cols) - ev.score(&rows, &cols).cell_coverage).abs() < 1e-12
        );
    }

    #[test]
    fn accessors() {
        let (ev, n, m) = evaluator(0.5);
        assert_eq!(ev.binned().num_rows(), n);
        assert_eq!(ev.binned().num_columns(), m);
        assert!(ev.coverage_index().num_rules() > 0);
    }
}
