//! Cell coverage (Definition 3.6).

use subtab_binning::BinnedTable;
use subtab_rules::RuleSet;

/// Pre-computed data for evaluating the cell coverage of sub-tables of one
/// table against one rule set.
///
/// For every rule `R` the index stores `U_R` (its columns) and `T_R` (the rows
/// of the *full* table for which it holds), plus the normalisation factor
/// `upcov = |⋃_R cell(R, T)|`. Individual sub-table evaluations then only need
/// to (a) decide which rules are covered and (b) union the pre-computed cell
/// sets of the covered rules.
#[derive(Debug, Clone)]
pub struct CoverageIndex {
    num_rows: usize,
    num_cols: usize,
    /// Per rule: (columns of the rule, rows of the full table where it holds).
    rules: Vec<(Vec<usize>, Vec<u32>)>,
    upcov: usize,
}

impl CoverageIndex {
    /// Builds the index by evaluating every rule against the full binned
    /// table.
    pub fn build(binned: &BinnedTable, rules: &RuleSet) -> Self {
        let num_rows = binned.num_rows();
        let num_cols = binned.num_columns();
        let interner = rules.interner();
        let mut infos = Vec::with_capacity(rules.len());
        for rule in rules.iter() {
            let cols = rule.columns();
            let rows: Vec<u32> = rule
                .matching_rows(interner, binned)
                .into_iter()
                .map(|r| r as u32)
                .collect();
            infos.push((cols, rows));
        }
        let mut index = CoverageIndex {
            num_rows,
            num_cols,
            rules: infos,
            upcov: 0,
        };
        // upcov = number of cells covered when every rule is covered.
        let all_rules: Vec<usize> = (0..index.rules.len()).collect();
        index.upcov = index.union_cells(&all_rules);
        index
    }

    /// Number of rules in the index.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// The normalisation factor: the number of cells of the full table that
    /// are describable by *any* rule.
    pub fn upcov(&self) -> usize {
        self.upcov
    }

    /// Indices of the rules covered by the sub-table defined by `rows` and
    /// `cols` (row/column indices into the full table).
    ///
    /// A rule is covered when all of its columns are among `cols` and at least
    /// one of `rows` is in its matching-row set (Definition 3.6, d1).
    pub fn covered_rules(&self, rows: &[usize], cols: &[usize]) -> Vec<usize> {
        let mut col_mask = vec![false; self.num_cols];
        for &c in cols {
            if c < self.num_cols {
                col_mask[c] = true;
            }
        }
        let mut row_mask = vec![false; self.num_rows];
        for &r in rows {
            if r < self.num_rows {
                row_mask[r] = true;
            }
        }
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, (rcols, rrows))| {
                rcols.iter().all(|&c| col_mask[c]) && rrows.iter().any(|&r| row_mask[r as usize])
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of distinct cells of the full table described by the given
    /// rules (`|⋃ cell(R, T)|`).
    pub fn union_cells(&self, rule_indices: &[usize]) -> usize {
        if self.num_rows == 0 || self.num_cols == 0 {
            return 0;
        }
        let bits = self.num_rows * self.num_cols;
        let mut bitset = vec![0u64; bits.div_ceil(64)];
        let mut count = 0usize;
        for &ri in rule_indices {
            let (cols, rows) = &self.rules[ri];
            for &r in rows {
                let base = r as usize * self.num_cols;
                for &c in cols {
                    let bit = base + c;
                    let (word, off) = (bit / 64, bit % 64);
                    if bitset[word] & (1 << off) == 0 {
                        bitset[word] |= 1 << off;
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// Cell coverage of the sub-table defined by `rows`/`cols`
    /// (Definition 3.6, d3). Returns a value in `[0, 1]`; `0` when no rule
    /// exists (`upcov = 0`).
    pub fn cell_coverage(&self, rows: &[usize], cols: &[usize]) -> f64 {
        if self.upcov == 0 {
            return 0.0;
        }
        let covered = self.covered_rules(rows, cols);
        self.union_cells(&covered) as f64 / self.upcov as f64
    }

    /// Raw number of cells described by the covered rules (before
    /// normalisation) — handy for tests and for the greedy baseline's
    /// marginal-gain computations.
    pub fn covered_cells(&self, rows: &[usize], cols: &[usize]) -> usize {
        let covered = self.covered_rules(rows, cols);
        self.union_cells(&covered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;
    use subtab_rules::{MiningConfig, RuleMiner};

    fn setup() -> (BinnedTable, RuleSet) {
        let t = Table::builder()
            .column_i64(
                "cancelled",
                vec![Some(1), Some(1), Some(1), Some(0), Some(0), Some(0)],
            )
            .column_str(
                "dep",
                vec![None, None, None, Some("m"), Some("m"), Some("e")],
            )
            .column_i64(
                "year",
                vec![
                    Some(2015),
                    Some(2015),
                    Some(2015),
                    Some(2015),
                    Some(2016),
                    Some(2015),
                ],
            )
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        let binned = binner.apply(&t).unwrap();
        let rules = RuleMiner::new(MiningConfig {
            min_rule_size: 2,
            min_support: 0.2,
            min_confidence: 0.6,
            ..Default::default()
        })
        .mine(&binned);
        (binned, rules)
    }

    #[test]
    fn upcov_bounded_by_table_size() {
        let (binned, rules) = setup();
        let idx = CoverageIndex::build(&binned, &rules);
        assert!(idx.num_rules() > 0);
        assert!(idx.upcov() <= binned.num_rows() * binned.num_columns());
        assert!(idx.upcov() > 0);
    }

    #[test]
    fn full_table_has_coverage_one() {
        let (binned, rules) = setup();
        let idx = CoverageIndex::build(&binned, &rules);
        let all_rows: Vec<usize> = (0..binned.num_rows()).collect();
        let all_cols: Vec<usize> = (0..binned.num_columns()).collect();
        let cov = idx.cell_coverage(&all_rows, &all_cols);
        assert!((cov - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_subtable_has_zero_coverage() {
        let (binned, rules) = setup();
        let idx = CoverageIndex::build(&binned, &rules);
        assert_eq!(idx.cell_coverage(&[], &[]), 0.0);
        assert_eq!(idx.cell_coverage(&[0, 1], &[]), 0.0);
        let _ = binned;
    }

    #[test]
    fn coverage_is_monotone_in_rows_and_columns() {
        let (binned, rules) = setup();
        let idx = CoverageIndex::build(&binned, &rules);
        let all_cols: Vec<usize> = (0..binned.num_columns()).collect();
        let c1 = idx.cell_coverage(&[0], &all_cols);
        let c2 = idx.cell_coverage(&[0, 3], &all_cols);
        let c3 = idx.cell_coverage(&[0, 3, 4], &all_cols);
        assert!(c2 >= c1);
        assert!(c3 >= c2);
        let c_fewer_cols = idx.cell_coverage(&[0, 3], &all_cols[..2]);
        assert!(c_fewer_cols <= c2);
    }

    #[test]
    fn rule_covered_requires_all_columns_and_a_witness_row() {
        let (binned, rules) = setup();
        let idx = CoverageIndex::build(&binned, &rules);
        let all_cols: Vec<usize> = (0..binned.num_columns()).collect();
        // A cancelled row covers the cancelled-related rules.
        let with_witness = idx.covered_rules(&[0], &all_cols);
        assert!(!with_witness.is_empty());
        // Omitting rule columns uncovers those rules.
        let no_cols = idx.covered_rules(&[0], &[]);
        assert!(no_cols.is_empty());
        let _ = rules;
    }

    #[test]
    fn no_rules_means_zero_coverage() {
        let (binned, _) = setup();
        let idx = CoverageIndex::build(&binned, &RuleSet::default());
        assert_eq!(idx.upcov(), 0);
        assert_eq!(idx.cell_coverage(&[0], &[0, 1, 2]), 0.0);
    }

    #[test]
    fn out_of_range_indices_are_ignored() {
        let (binned, rules) = setup();
        let idx = CoverageIndex::build(&binned, &rules);
        let cols: Vec<usize> = (0..binned.num_columns()).collect();
        let cov_ok = idx.cell_coverage(&[0, 1], &cols);
        let cov_extra = idx.cell_coverage(&[0, 1, 999], &cols);
        assert!((cov_ok - cov_extra).abs() < 1e-12);
    }

    use subtab_rules::RuleSet;
}
