//! Equivalence suite pinning the vertical bitmap miner's output identical —
//! same rules, same support counts, bit-equal supports / confidences /
//! lifts, same order — to the preserved Apriori reference twin, on all six
//! planted evaluation datasets, for plain and target-partitioned mining, at
//! thread counts {1, 2, 4}.

use subtab_binning::{BinnedTable, Binner, BinningConfig};
use subtab_datasets::{benchmark_target_column, DatasetKind, DatasetSize};
use subtab_rules::{MiningConfig, RuleMiner, RuleSet};

const KINDS: [DatasetKind; 6] = [
    DatasetKind::Flights,
    DatasetKind::Cyber,
    DatasetKind::Spotify,
    DatasetKind::CreditCard,
    DatasetKind::UsFunds,
    DatasetKind::BankLoans,
];

/// Mining parameters per dataset: wide schemas (US funds has 298 columns)
/// get a higher support floor so the Apriori twin's per-candidate row scans
/// stay affordable under the debug test profile. Equivalence must hold at
/// *any* parameters; these only bound oracle runtime.
fn config_for(kind: DatasetKind) -> MiningConfig {
    match kind {
        DatasetKind::UsFunds => MiningConfig {
            min_support: 0.2,
            max_rule_size: 3,
            ..Default::default()
        },
        _ => MiningConfig {
            min_support: 0.2,
            ..Default::default()
        },
    }
}

fn binned_for(kind: DatasetKind) -> (BinnedTable, usize) {
    let dataset = kind.build(DatasetSize::Tiny, 5);
    let binner = Binner::fit(&dataset.table, &BinningConfig::default()).expect("binning fits");
    let binned = binner.apply(&dataset.table).expect("binning applies");
    let target = benchmark_target_column(&dataset.table);
    let target_idx = binned.column_index(&target).expect("target column exists");
    (binned, target_idx)
}

/// Asserts full identity of two rule sets: count, ids, integer counts, and
/// bit-equal floating-point statistics, in the same order.
fn assert_identical(label: &str, got: &RuleSet, oracle: &RuleSet) {
    assert_eq!(got.len(), oracle.len(), "{label}: rule count");
    assert_eq!(got.num_rows, oracle.num_rows, "{label}: num_rows");
    for (i, (g, o)) in got.iter().zip(oracle.iter()).enumerate() {
        assert_eq!(g.antecedent, o.antecedent, "{label}: rule {i} antecedent");
        assert_eq!(g.consequent, o.consequent, "{label}: rule {i} consequent");
        assert_eq!(g.column_mask, o.column_mask, "{label}: rule {i} mask");
        assert_eq!(
            g.support_count, o.support_count,
            "{label}: rule {i} support count"
        );
        assert_eq!(
            g.support.to_bits(),
            o.support.to_bits(),
            "{label}: rule {i} support"
        );
        assert_eq!(
            g.confidence.to_bits(),
            o.confidence.to_bits(),
            "{label}: rule {i} confidence"
        );
        assert_eq!(g.lift.to_bits(), o.lift.to_bits(), "{label}: rule {i} lift");
    }
}

#[test]
fn plain_mining_is_pinned_to_the_apriori_twin_on_all_datasets() {
    for kind in KINDS {
        let (binned, _) = binned_for(kind);
        let cfg = config_for(kind);
        let oracle = RuleMiner::new(cfg.clone()).mine_apriori(&binned);
        assert!(
            !oracle.is_empty(),
            "{kind:?}: planted data must produce rules for the comparison to mean anything"
        );
        for threads in [1, 2, 4] {
            let got = RuleMiner::new(cfg.clone().with_threads(threads)).mine(&binned);
            assert_identical(&format!("{kind:?} plain t{threads}"), &got, &oracle);
        }
    }
}

#[test]
fn target_mining_is_pinned_to_the_apriori_twin_on_all_datasets() {
    for kind in KINDS {
        let (binned, target) = binned_for(kind);
        let cfg = config_for(kind);
        let oracle = RuleMiner::new(cfg.clone()).mine_with_targets_apriori(&binned, &[target]);
        for threads in [1, 2, 4] {
            let got = RuleMiner::new(cfg.clone().with_threads(threads))
                .mine_with_targets(&binned, &[target]);
            assert_identical(&format!("{kind:?} target t{threads}"), &got, &oracle);
        }
    }
}

#[test]
fn truncated_mining_is_pinned_across_engines_and_threads() {
    // max_rules exercises the deterministic truncation tie-break on real
    // planted data, where many rules share a support value.
    for kind in [DatasetKind::Flights, DatasetKind::Cyber] {
        let (binned, target) = binned_for(kind);
        let cfg = MiningConfig {
            max_rules: 10,
            min_rule_size: 2,
            ..config_for(kind)
        };
        let oracle = RuleMiner::new(cfg.clone()).mine_apriori(&binned);
        assert_eq!(oracle.len(), 10, "{kind:?}: cap must actually bite");
        let oracle_t = RuleMiner::new(cfg.clone()).mine_with_targets_apriori(&binned, &[target]);
        for threads in [1, 2, 4] {
            let miner = RuleMiner::new(cfg.clone().with_threads(threads));
            assert_identical(
                &format!("{kind:?} capped t{threads}"),
                &miner.mine(&binned),
                &oracle,
            );
            assert_identical(
                &format!("{kind:?} capped target t{threads}"),
                &miner.mine_with_targets(&binned, &[target]),
                &oracle_t,
            );
        }
    }
}
