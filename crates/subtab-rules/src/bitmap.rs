//! Vertical bitmap mining (Eclat-style) over binned transactions.
//!
//! Instead of scanning rows once per candidate itemset (the level-wise
//! Apriori reference in [`crate::apriori`]), the vertical miner gives every
//! (column, bin) item a `u64` row bitmap; the support of an itemset is the
//! popcount of the AND of its items' bitmaps. The frequent-itemset lattice
//! is walked by column-ordered prefix extension: item ids are column-major
//! (see [`ItemInterner`]), every transaction holds exactly one item per
//! column, so a prefix ending in an item of column `c` is only ever
//! extended with ids `≥ offsets(c + 1)` — candidates never repeat a column
//! and each itemset is enumerated exactly once, in ascending-id order.
//!
//! The walk keeps *conditional* bitmaps: each extension's bitmap is already
//! ANDed with the prefix, so extending one level deeper ANDs two bitmaps of
//! `⌈n / 64⌉` words instead of re-intersecting the whole prefix, and
//! infrequent extensions are pruned before recursing.
//!
//! Root subtrees of the lattice are independent, so
//! [`frequent_itemsets_bitmap`] fans them out across scoped worker threads;
//! results are collected per root and merged in root order, making the
//! output identical at every thread count.

use crate::apriori::FrequentItemset;
use crate::interner::{ItemId, ItemInterner};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use subtab_binning::BinnedTable;

/// The shared workspace bitmap, re-exported under its historical mining
/// name. Bit `i` corresponds to the `i`-th row of the mining scope — for
/// whole-table mining that is row `i` itself, for a target-bin partition it
/// is the `i`-th row of the partition. The type itself lives in
/// `subtab-data`, where it also serves as every column's validity plane.
pub use subtab_data::Bitmap as RowBitmap;

/// The vertical representation of one mining scope: every item that occurs
/// in the scope, ascending by id, with its row bitmap and support count.
#[derive(Debug)]
pub struct VerticalIndex {
    /// Occurring item ids, ascending.
    pub ids: Vec<ItemId>,
    /// Row bitmap of each id (parallel to `ids`).
    pub bitmaps: Vec<RowBitmap>,
    /// Popcount of each bitmap (parallel to `ids`).
    pub counts: Vec<usize>,
    /// Number of rows in the scope.
    pub num_rows: usize,
}

impl VerticalIndex {
    /// Builds the vertical index of `binned` restricted to `rows` (`None` =
    /// all rows), reading each column's code slice once.
    pub fn build(binned: &BinnedTable, interner: &ItemInterner, rows: Option<&[usize]>) -> Self {
        let n = rows.map_or(binned.num_rows(), <[usize]>::len);
        let total = interner.num_items();
        let mut slots: Vec<Option<RowBitmap>> = vec![None; total];
        for c in 0..binned.num_columns() {
            let codes = binned.codes(c);
            let base = interner.id_of(c, 0);
            let mut mark = |local: usize, code: subtab_binning::BinId| {
                let id = (base + code as ItemId) as usize;
                slots[id]
                    .get_or_insert_with(|| RowBitmap::zeros(n))
                    .set(local);
            };
            match rows {
                None => {
                    for (local, &code) in codes.iter().enumerate() {
                        mark(local, code);
                    }
                }
                Some(rows) => {
                    for (local, &r) in rows.iter().enumerate() {
                        mark(local, codes[r]);
                    }
                }
            }
        }
        let mut ids = Vec::new();
        let mut bitmaps = Vec::new();
        let mut counts = Vec::new();
        for (id, slot) in slots.into_iter().enumerate() {
            if let Some(bm) = slot {
                counts.push(bm.count());
                ids.push(id as ItemId);
                bitmaps.push(bm);
            }
        }
        VerticalIndex {
            ids,
            bitmaps,
            counts,
            num_rows: n,
        }
    }

    /// Support count of an arbitrary id set over the scope (AND of all item
    /// bitmaps) — the vertical twin of [`crate::apriori::support_count`].
    /// Items absent from the scope have zero support.
    pub fn support_count(&self, items: &[ItemId]) -> usize {
        let mut scratch = RowBitmap::zeros(self.num_rows);
        self.support_count_into(items.iter().copied(), &mut scratch)
            .unwrap_or(self.num_rows)
    }

    /// Like [`VerticalIndex::support_count`], but reusing a caller-provided
    /// scratch bitmap — the allocation-free bulk path (e.g. recomputing
    /// global supports for every pooled rule after target mining). Returns
    /// `None` for the empty item set (whose support is the scope size).
    pub fn support_count_into(
        &self,
        items: impl IntoIterator<Item = ItemId>,
        scratch: &mut RowBitmap,
    ) -> Option<usize> {
        let mut seen = false;
        for item in items {
            let Ok(idx) = self.ids.binary_search(&item) else {
                return Some(0);
            };
            if seen {
                scratch.and_assign(&self.bitmaps[idx]);
            } else {
                scratch.copy_from(&self.bitmaps[idx]);
                seen = true;
            }
        }
        seen.then(|| scratch.count())
    }
}

/// One frequent extension of the current prefix: its id, its bitmap
/// *conditional on the prefix*, and that bitmap's popcount.
struct Ext {
    id: ItemId,
    bitmap: RowBitmap,
    count: usize,
}

/// One discovered frequent itemset (ids ascending) with its support count —
/// the raw shape the parallel walk collects before levels are assembled.
type FoundItemset = (Vec<ItemId>, usize);

/// Mines all frequent itemsets of the scope with support ≥ `min_support`
/// and size ≤ `max_size`, returning them grouped by size exactly like
/// [`crate::apriori::frequent_itemsets`]: index `k` holds the size-`k + 1`
/// itemsets, each level ascending by item ids. The output (itemsets,
/// counts, order) is pinned identical to the Apriori reference; only the
/// walk differs.
///
/// `threads` fans the root subtrees out across scoped workers (`0` = all
/// available cores, `≤ 1` = sequential); the result is identical at every
/// thread count.
pub fn frequent_itemsets_bitmap(
    binned: &BinnedTable,
    interner: &ItemInterner,
    min_support: f64,
    max_size: usize,
    rows: Option<&[usize]>,
    threads: usize,
) -> Vec<Vec<FrequentItemset>> {
    let n = rows.map_or(binned.num_rows(), <[usize]>::len);
    if n == 0 || max_size == 0 {
        return Vec::new();
    }
    let min_count = ((min_support * n as f64).ceil() as usize).max(1);
    let vertical = VerticalIndex::build(binned, interner, rows);
    let frequent: Vec<usize> = (0..vertical.ids.len())
        .filter(|&i| vertical.counts[i] >= min_count)
        .collect();
    if frequent.is_empty() {
        return Vec::new();
    }
    let singles: Vec<FrequentItemset> = frequent
        .iter()
        .map(|&i| FrequentItemset {
            items: vec![vertical.ids[i]],
            count: vertical.counts[i],
        })
        .collect();
    let mut levels = vec![singles];
    if max_size == 1 {
        return levels;
    }

    // Larger itemsets: walk each root's subtree, fanned out across scoped
    // workers with index-ordered results, so the merged output is
    // independent of scheduling.
    let walk_root = |root: usize| {
        let i = frequent[root];
        let mut found = Vec::new();
        let exts = extensions_of(
            vertical.ids[i],
            &vertical.bitmaps[i],
            &frequent[root + 1..],
            &vertical,
            interner,
            min_count,
        );
        let mut prefix = vec![vertical.ids[i]];
        extend(&mut prefix, exts, interner, min_count, max_size, &mut found);
        found
    };
    let per_root: Vec<Vec<FoundItemset>> = parallel_map_indexed(threads, frequent.len(), walk_root);

    // Group by size and sort each level by item ids — the exact shape the
    // Apriori reference produces.
    for (items, count) in per_root.into_iter().flatten() {
        let level = items.len() - 1;
        while levels.len() <= level {
            levels.push(Vec::new());
        }
        levels[level].push(FrequentItemset { items, count });
    }
    while levels.last().is_some_and(Vec::is_empty) {
        levels.pop();
    }
    for level in &mut levels[1..] {
        level.sort_by(|a, b| a.items.cmp(&b.items));
    }
    levels
}

/// The frequent extensions of a prefix ending in `last`: among the frequent
/// singles after `last` (positions `tail` into the vertical index), those
/// of a *later column* whose bitmap intersected with the prefix stays
/// frequent.
fn extensions_of(
    last: ItemId,
    prefix_bitmap: &RowBitmap,
    tail: &[usize],
    vertical: &VerticalIndex,
    interner: &ItemInterner,
    min_count: usize,
) -> Vec<Ext> {
    // Ids are column-major, so "later column" is a single partition point.
    let floor = interner.next_column_start(last);
    let start = tail.partition_point(|&i| vertical.ids[i] < floor);
    tail[start..]
        .iter()
        .filter_map(|&i| {
            let (bitmap, count) = prefix_bitmap.and_with_count(&vertical.bitmaps[i]);
            (count >= min_count).then_some(Ext {
                id: vertical.ids[i],
                bitmap,
                count,
            })
        })
        .collect()
}

/// Depth-first prefix extension: records every frequent extension of
/// `prefix` and recurses while the itemset stays under `max_size`.
fn extend(
    prefix: &mut Vec<ItemId>,
    exts: Vec<Ext>,
    interner: &ItemInterner,
    min_count: usize,
    max_size: usize,
    out: &mut Vec<FoundItemset>,
) {
    for (i, ext) in exts.iter().enumerate() {
        prefix.push(ext.id);
        out.push((prefix.clone(), ext.count));
        if prefix.len() < max_size {
            let floor = interner.next_column_start(ext.id);
            let children: Vec<Ext> = exts[i + 1..]
                .iter()
                .filter(|e| e.id >= floor)
                .filter_map(|e| {
                    let (bitmap, count) = ext.bitmap.and_with_count(&e.bitmap);
                    (count >= min_count).then_some(Ext {
                        id: e.id,
                        bitmap,
                        count,
                    })
                })
                .collect();
            if !children.is_empty() {
                extend(prefix, children, interner, min_count, max_size, out);
            }
        }
        prefix.pop();
    }
}

/// Resolves a thread-count knob: `0` = all available cores, clamped to the
/// number of independent work units.
pub(crate) fn effective_threads(threads: usize, units: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    t.min(units).max(1)
}

/// Runs `f(0..n)` across scoped worker threads pulling indices from a
/// shared counter, collecting results in index order — the fan-out shape
/// shared by the lattice-root walk and the target-partition mining (`0`
/// threads = all available cores, `≤ 1` = sequential in the caller's
/// thread).
pub(crate) fn parallel_map_indexed<T: Send>(
    threads: usize,
    n: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let threads = effective_threads(threads, n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock().expect("fan-out slot lock poisoned") = Some(f(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("fan-out slot lock poisoned")
                .expect("every index was drained by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use subtab_binning::{Binner, BinningConfig};
    use subtab_data::Table;

    /// A 130-row two-column table crossing the u64 word boundary, with a
    /// hand-checkable layout: `x` alternates two values, `y` is constant on
    /// the first 100 rows.
    fn wide_binned() -> BinnedTable {
        let x: Vec<Option<&str>> = (0..130)
            .map(|i| Some(if i % 2 == 0 { "a" } else { "b" }))
            .collect();
        let y: Vec<Option<i64>> = (0..130).map(|i| Some(i64::from(i >= 100))).collect();
        let t = Table::builder()
            .column_str("x", x)
            .column_i64("y", y)
            .build()
            .unwrap();
        let binner = Binner::fit(&t, &BinningConfig::default()).unwrap();
        binner.apply(&t).unwrap()
    }

    #[test]
    fn vertical_supports_match_hand_counts_across_word_boundaries() {
        let bt = wide_binned();
        let interner = ItemInterner::from_binned(&bt);
        let v = VerticalIndex::build(&bt, &interner, None);
        assert_eq!(v.num_rows, 130);
        // Every occurring item's popcount equals a manual row scan.
        for (pos, &id) in v.ids.iter().enumerate() {
            let item = interner.item(id);
            let manual = (0..130).filter(|&r| item.matches(&bt, r)).count();
            assert_eq!(v.counts[pos], manual);
            assert_eq!(v.bitmaps[pos].count(), manual);
        }
        // x="a" ∧ y=0: even rows below 100 → exactly 50 rows.
        let xa = interner.row_item_id(&bt, 0, 0);
        let y0 = interner.row_item_id(&bt, 0, 1);
        assert_eq!(v.support_count(&[xa, y0]), 50);
        assert_eq!(v.support_count(&[]), 130);
    }

    #[test]
    fn vertical_respects_row_subsets() {
        let bt = wide_binned();
        let interner = ItemInterner::from_binned(&bt);
        let rows: Vec<usize> = (100..130).collect();
        let v = VerticalIndex::build(&bt, &interner, Some(&rows));
        assert_eq!(v.num_rows, 30);
        let y1 = interner.row_item_id(&bt, 100, 1);
        assert_eq!(v.support_count(&[y1]), 30, "y=1 holds on all subset rows");
        let y0 = interner.row_item_id(&bt, 0, 1);
        assert_eq!(v.support_count(&[y0]), 0, "y=0 never occurs in the subset");
    }

    #[test]
    fn miner_finds_the_planted_pair_with_exact_support() {
        let bt = wide_binned();
        let interner = ItemInterner::from_binned(&bt);
        let levels = frequent_itemsets_bitmap(&bt, &interner, 0.3, 2, None, 1);
        assert_eq!(levels.len(), 2);
        // Singles: x=a (65), x=b (65), y=0 (100) pass 30% of 130 = 39.
        assert_eq!(levels[0].len(), 3);
        // Pairs: x=a∧y=0 (50) and x=b∧y=0 (50).
        assert_eq!(levels[1].len(), 2);
        for fi in &levels[1] {
            assert_eq!(fi.count, 50);
            assert_eq!(fi.items.len(), 2);
            let cols: Vec<usize> = fi.items.iter().map(|&id| interner.column_of(id)).collect();
            assert_eq!(cols, vec![0, 1], "one item per column, column-ordered");
        }
    }

    #[test]
    fn thread_counts_do_not_change_the_output() {
        let bt = wide_binned();
        let interner = ItemInterner::from_binned(&bt);
        let reference = frequent_itemsets_bitmap(&bt, &interner, 0.2, 2, None, 1);
        for threads in [2, 4, 0] {
            let got = frequent_itemsets_bitmap(&bt, &interner, 0.2, 2, None, threads);
            assert_eq!(got, reference, "threads = {threads}");
        }
    }

    #[test]
    fn empty_inputs() {
        let bt = wide_binned();
        let interner = ItemInterner::from_binned(&bt);
        assert!(frequent_itemsets_bitmap(&bt, &interner, 0.5, 0, None, 1).is_empty());
        assert!(frequent_itemsets_bitmap(&bt, &interner, 0.5, 2, Some(&[]), 1).is_empty());
        assert!(frequent_itemsets_bitmap(&bt, &interner, 1.5, 2, None, 1).is_empty());
    }
}
